#!/usr/bin/env bash
# Advisory benchmark regression check: run a fresh `quickbench --smoke
# --json` and compare every row's median against the committed
# BENCH_smoke.json baseline with a ±30% tolerance.
#
#   ./scripts/bench_check.sh [baseline.json]
#
# The check is ADVISORY: rows outside the tolerance are flagged loudly but
# the script always exits 0 — single-run medians on shared CI hardware are
# too noisy to gate a merge, the goal is a visible perf trajectory. Rows
# are keyed by (bench, dataset, config, engine, threads); rows added or
# removed since the baseline are reported as such.
set -uo pipefail

cd "$(dirname "$0")/.."

BASELINE="${1:-BENCH_smoke.json}"
TOL_PCT=30

if [[ ! -f "$BASELINE" ]]; then
    echo "bench_check: baseline $BASELINE not found (scripts/verify.sh seeds it); nothing to compare"
    exit 0
fi

fresh="$(mktemp "${TMPDIR:-/tmp}/flipper-bench-fresh-XXXXXX.json")"
base_rows="$(mktemp "${TMPDIR:-/tmp}/flipper-bench-base-XXXXXX.rows")"
fresh_rows="$(mktemp "${TMPDIR:-/tmp}/flipper-bench-new-XXXXXX.rows")"
trap 'rm -f "$fresh" "$base_rows" "$fresh_rows"' EXIT

echo "== bench_check: fresh quickbench --smoke run (release)"
cargo run --release -q --bin quickbench -- --smoke --json "$fresh" >/dev/null

# One row per line: "bench|dataset|config|engine|threads median_ns".
# The flipper-quickbench/v1 writer emits fields in this fixed order.
extract_rows() {
    sed -nE 's/.*\{"bench":"([^"]*)","dataset":"([^"]*)","n":[0-9]+,"config":"([^"]*)","engine":"([^"]*)","threads":([0-9]+),"samples":[0-9]+,"median_ns":([0-9]+).*/\1|\2|\3|\4|t\5 \6/p' "$1"
}

extract_rows "$BASELINE" | sort >"$base_rows"
extract_rows "$fresh" | sort >"$fresh_rows"

if [[ ! -s "$base_rows" ]]; then
    echo "bench_check: no rows parsed from $BASELINE; is it a flipper-quickbench/v1 report?"
    exit 0
fi

awk -v tol="$TOL_PCT" '
    NR == FNR { base[$1] = $2; next }
    {
        key = $1; fresh = $2
        if (!(key in base)) { printf "  NEW     %-55s fresh %12d ns (no baseline)\n", key, fresh; next }
        seen[key] = 1
        b = base[key]
        if (b == 0) next
        delta = (fresh - b) * 100.0 / b
        flag = (delta > tol || delta < -tol) ? sprintf("  ** outside ±%d%% **", tol) : ""
        printf "  %-63s base %12d  fresh %12d  %+7.1f%%%s\n", key, b, fresh, delta, flag
        if (flag != "") bad++
    }
    END {
        for (k in base) if (!(k in seen)) printf "  GONE    %-55s base %12d ns (row disappeared)\n", k, base[k]
        if (bad > 0)
            printf "bench_check: %d row(s) outside the advisory ±%d%% tolerance — investigate before merging\n", bad, tol
        else
            printf "bench_check: all rows within ±%d%% of %s\n", tol, "the baseline"
    }
' "$base_rows" "$fresh_rows"

exit 0
