#!/usr/bin/env bash
# Tier-1 verification: the workspace must build in release mode and pass the
# full test suite offline (no network, no external crates). The execution
# layer gets two extra gates: the engine/thread equivalence suite re-runs
# under --release (optimized codegen has caught UB-adjacent bugs debug
# builds miss), and a few-second `quickbench --smoke` runs the engine ×
# threads grid so a mis-wired engine or a perf cliff fails loudly.
#
#   ./scripts/verify.sh
#
# Clippy runs afterwards as a non-blocking second step: its findings are
# printed but do not fail verification.
set -uo pipefail

cd "$(dirname "$0")/.."

set -e
echo "== tier-1: cargo build --release"
cargo build --release

echo "== tier-1: cargo test -q"
cargo test -q

echo "== execution layer: equivalence suite under --release"
cargo test --release -q -p flipper-integration --test equivalence

echo "== execution layer: quickbench --smoke (engine × threads grid)"
cargo run --release -q --bin quickbench -- --smoke
set +e

echo "== advisory: cargo clippy --all-targets -- -D warnings (non-blocking)"
if cargo clippy --all-targets -- -D warnings; then
    echo "clippy: clean"
else
    echo "clippy: findings above are advisory only; tier-1 still PASSED"
fi

echo "== tier-1 verification PASSED"
