#!/usr/bin/env bash
# Tier-1 verification: the workspace must build in release mode and pass the
# full test suite offline (no network, no external crates).
#
#   ./scripts/verify.sh
#
# Clippy runs afterwards as a non-blocking second step: its findings are
# printed but do not fail verification.
set -uo pipefail

cd "$(dirname "$0")/.."

set -e
echo "== tier-1: cargo build --release"
cargo build --release

echo "== tier-1: cargo test -q"
cargo test -q
set +e

echo "== advisory: cargo clippy --all-targets -- -D warnings (non-blocking)"
if cargo clippy --all-targets -- -D warnings; then
    echo "clippy: clean"
else
    echo "clippy: findings above are advisory only; tier-1 still PASSED"
fi

echo "== tier-1 verification PASSED"
