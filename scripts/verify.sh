#!/usr/bin/env bash
# Tier-1 verification: the workspace must build in release mode and pass the
# full test suite offline (no network, no external crates). Extra release-
# mode gates (optimized codegen has caught UB-adjacent bugs debug builds
# miss):
#
#   * the engine/thread equivalence suite,
#   * the prefix-group counting sweep (grouped kernels bit-identical to the
#     naive per-candidate reference, counts and stats, at every thread
#     count),
#   * the FBIN storage suite (text↔fbin round-trip idempotence, streamed-
#     vs-loaded mining equivalence, truncation/corruption behavior),
#   * the façade acceptance suite (Session/Sweep bit-identical to the
#     single-shot paths, flipper-results/v1 golden bytes, repeated-run
#     byte identity),
#   * flipper-lint (crates/lint): project-specific static analysis — the
#     ratchet against LINT_BASELINE.json must hold (no rule above its
#     committed count; see README "Static analysis"),
#   * the quickstart example (the library-API walkthrough must run green),
#   * the observability suite plus a traced smoke mine: `flipper mine
#     --trace` on a planted dataset must emit a `flipper-trace/v1` document
#     that parses, nests per lane and covers the pipeline's span names
#     (checked by the flipper-obs `validate_trace` example),
#   * the fault-injection suite (crates/integration/tests/fault_injection.rs):
#     seeded flipper-guard faults at every instrumented site across engines
#     × threads must surface as typed errors or quarantine-flagged degraded
#     results — never a panic, never silent corruption — and the inert
#     guard must be byte-invisible in flipper-results/v1,
#   * a cancelled-sweep-then-resume smoke: a checkpointed `flipper sweep`
#     killed by a tiny `--timeout` must exit 3 (cancelled/timeout), leave a
#     readable flipper-sweep-ckpt/v1 journal, and complete under `--resume`,
#   * a few-second `quickbench --smoke` running the engine × threads grid,
#     the counting-kernel rows, the observability-overhead rows, the
#     guard-overhead rows, the support-cache probe rows and the storage IO
#     rows, so a mis-wired engine, a perf cliff or a broken format fails
#     loudly; `--json` writes the machine-readable BENCH_smoke.json
#     baseline.
#
# Documentation is a gate too: `cargo doc --no-deps` must build with
# RUSTDOCFLAGS="-D warnings" — a public API change that breaks its own
# docs fails verification.
#
#   ./scripts/verify.sh
#
# Three advisory, non-blocking steps ride along: scripts/bench_check.sh
# compares a fresh smoke run against the *committed* BENCH_smoke.json
# medians (±30%) before the baseline is re-blessed, and clippy/rustfmt run
# at the end. Their findings are printed but never fail verification.
set -uo pipefail

cd "$(dirname "$0")/.."

set -e
echo "== tier-1: cargo build --release"
cargo build --release

echo "== tier-1: cargo test -q"
cargo test -q

echo "== execution layer: equivalence suite under --release"
cargo test --release -q -p flipper-integration --test equivalence

echo "== counting kernels: prefix-group equivalence sweep under --release"
cargo test --release -q -p flipper-integration --test prefix_groups

echo "== storage: fbin round-trip + streamed-vs-loaded equivalence under --release"
cargo test --release -q -p flipper-integration --test store_roundtrip

echo "== api façade: session/sweep equivalence + results/v1 golden under --release"
cargo test --release -q -p flipper-integration --test facade

echo "== static analysis: flipper-lint against LINT_BASELINE.json"
cargo run --release -q -p flipper-lint -- --json

echo "== static analysis: crate dependency graph is acyclic (--graph dot)"
DOT_OUT="$(cargo run --release -q -p flipper-lint -- --graph dot)"
echo "$DOT_OUT" | grep -q '^digraph flipper {' || {
    echo "flipper-lint --graph dot did not emit a DOT document" >&2
    exit 1
}
if command -v tsort >/dev/null 2>&1; then
    # Each DOT edge `"to" -> "from";` becomes a `to from` pair; tsort fails
    # loudly on any cycle. The layering rule already forbids back-edges, so
    # this is a belt-and-braces check on the observed graph itself.
    echo "$DOT_OUT" | sed -n 's/^  "\([a-z]*\)" -> "\([a-z]*\)";$/\1 \2/p' \
        | tsort >/dev/null || {
        echo "crate dependency graph has a cycle" >&2
        exit 1
    }
else
    echo "tsort unavailable; acyclicity still enforced by the layering rule"
fi

echo "== docs: cargo doc --no-deps with -D warnings"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

echo "== examples: quickstart (release)"
cargo run --release -q -p flipper-integration --example quickstart >/dev/null

echo "== observability: obs suite + traced smoke mine under --release"
cargo test --release -q -p flipper-integration --test obs_trace
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
cargo run --release -q -p flipper-cli -- generate --kind planted \
    --out "$OBS_TMP/planted.fbin" >/dev/null
cargo run --release -q -p flipper-cli -- mine --input "$OBS_TMP/planted.fbin" \
    --threads 2 --trace "$OBS_TMP/trace.json" --timings >/dev/null
cargo run --release -q -p flipper-obs --example validate_trace -- \
    "$OBS_TMP/trace.json" \
    --expect session.ingest,view.build,mine.run,mine.cell,mine.count,cache.cell

echo "== robustness: fault-injection suite under --release"
cargo test --release -q -p flipper-integration --test fault_injection

echo "== robustness: cancelled-sweep-then-resume smoke (checkpoint journal)"
set +e
cargo run --release -q -p flipper-cli -- sweep --input "$OBS_TMP/planted.fbin" \
    --gammas 0.6,0.5,0.4 --epsilons 0.35,0.2 \
    --checkpoint "$OBS_TMP/sweep.ckpt" --timeout 0.000000001 >/dev/null 2>&1
rc=$?
set -e
if [ "$rc" -ne 3 ]; then
    echo "cancelled sweep: expected the cancelled/timeout exit code 3, got $rc" >&2
    exit 1
fi
head -1 "$OBS_TMP/sweep.ckpt" | grep -q '^flipper-sweep-ckpt/v1$' || {
    echo "cancelled sweep left no readable flipper-sweep-ckpt/v1 journal" >&2
    exit 1
}
cargo run --release -q -p flipper-cli -- sweep --input "$OBS_TMP/planted.fbin" \
    --gammas 0.6,0.5,0.4 --epsilons 0.35,0.2 \
    --checkpoint "$OBS_TMP/sweep.ckpt" --resume >/dev/null

set +e
echo "== advisory: bench_check vs committed BENCH_smoke.json (non-blocking)"
if ./scripts/bench_check.sh; then
    echo "bench_check: done (advisory only)"
else
    echo "bench_check: failed to run; advisory only, tier-1 still continues"
fi
set -e

echo "== execution layer + storage: quickbench --smoke (writes BENCH_smoke.json)"
cargo run --release -q --bin quickbench -- --smoke --json BENCH_smoke.json
set +e

echo "== advisory: cargo clippy --all-targets -- -D warnings (non-blocking)"
if cargo clippy --all-targets -- -D warnings; then
    echo "clippy: clean"
else
    echo "clippy: findings above are advisory only; tier-1 still PASSED"
fi

echo "== advisory: cargo fmt --check (non-blocking)"
if cargo fmt --check; then
    echo "fmt: clean"
else
    echo "fmt: drift above is advisory only; tier-1 still PASSED"
fi

echo "== tier-1 verification PASSED"
