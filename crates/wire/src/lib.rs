//! # flipper-wire
//!
//! The single source of truth for every versioned wire-format tag the
//! workspace emits or parses. A schema tag is a string of the shape
//! `flipper-<format>/v<N>`; producers write it into the document header
//! and consumers match on it before trusting any byte that follows.
//!
//! Duplicating these literals at the point of use is how formats drift: a
//! producer bumps its copy, a consumer keeps the old one, and the mismatch
//! only surfaces as a runtime parse error. Centralizing them here makes
//! the compiler enforce agreement — and `flipper-lint`'s
//! `wire-format-registry` rule enforces the centralization itself: any
//! schema-tag string literal in non-test library code *outside this
//! module* is a finding.
//!
//! The crate is dependency-free and sits at the bottom of the workspace
//! layering, so every producer (`flipper-obs`, `flipper-api`,
//! `flipper-bench`, the CLI) and consumer (including `flipper-lint`
//! itself) can reach it.

/// Deterministic mining results emitted by `flipper_api::JsonWriter` and
/// consumed by `flipper results-diff`. Byte-pinned by the facade golden.
pub const RESULTS_V1: &str = "flipper-results/v1";

/// Chrome-trace-event span documents written by `flipper mine --trace`.
pub const TRACE_V1: &str = "flipper-trace/v1";

/// Prometheus-style metrics text written by the flipper-obs exporter.
pub const METRICS_V1: &str = "flipper-metrics/v1";

/// Append-only sweep checkpoint journals (`flipper sweep --checkpoint`).
pub const SWEEP_CKPT_V1: &str = "flipper-sweep-ckpt/v1";

/// Machine-readable quickbench reports (`quickbench --json`).
pub const QUICKBENCH_V1: &str = "flipper-quickbench/v1";

/// `flipper-lint --json` analysis reports.
pub const LINT_V1: &str = "flipper-lint/v1";

/// The lint ratchet baseline (`LINT_BASELINE.json`), v2: per-rule counts
/// split into entry-point-reachable and unreachable findings.
pub const LINT_BASELINE_V2: &str = "flipper-lint-baseline/v2";

/// The retired v1 baseline tag, recognized only to produce a precise
/// "re-bless to v2" migration error.
pub const LINT_BASELINE_V1: &str = "flipper-lint-baseline/v1";

/// Every tag in the registry, for exhaustiveness checks and docs.
pub const ALL: &[&str] = &[
    RESULTS_V1,
    TRACE_V1,
    METRICS_V1,
    SWEEP_CKPT_V1,
    QUICKBENCH_V1,
    LINT_V1,
    LINT_BASELINE_V2,
    LINT_BASELINE_V1,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_well_formed_and_unique() {
        for tag in ALL {
            let (name, version) = tag.rsplit_once("/v").expect("tag has /vN suffix");
            assert!(name.starts_with("flipper-"), "{tag}");
            assert!(
                name[8..]
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c == '-'),
                "{tag}"
            );
            assert!(
                !version.is_empty() && version.chars().all(|c| c.is_ascii_digit()),
                "{tag}"
            );
        }
        let mut seen = ALL.to_vec();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), ALL.len(), "duplicate tag in the registry");
    }
}
