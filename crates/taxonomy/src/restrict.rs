//! Level restriction — the paper's §2.2 device for user queries over a
//! subset of abstraction levels: *"all that needs to be changed is the
//! input to the algorithm, which would be a truncated taxonomy tree
//! containing these specific levels of interest."*

use crate::builder::{RebalancePolicy, TaxonomyBuilder};
use crate::error::TaxonomyError;
use crate::tree::Taxonomy;

impl Taxonomy {
    /// Build a new taxonomy containing only the given abstraction levels.
    ///
    /// `keep` must be strictly increasing, within `1..=height`, and end
    /// with `height` (the leaf level must survive, or the transaction
    /// database would no longer reference leaves). Each kept node is
    /// re-parented to its nearest kept ancestor.
    ///
    /// ```
    /// use flipper_taxonomy::Taxonomy;
    /// let t = Taxonomy::uniform(2, 2, 3).unwrap();
    /// // Drop the middle level: flips are then evaluated between level 1
    /// // and the leaves only.
    /// let r = t.restrict_levels(&[1, 3]).unwrap();
    /// assert_eq!(r.height(), 2);
    /// assert_eq!(r.leaf_count(), t.leaf_count());
    /// ```
    pub fn restrict_levels(&self, keep: &[usize]) -> Result<Taxonomy, TaxonomyError> {
        if keep.is_empty() {
            return Err(TaxonomyError::Empty);
        }
        if !keep.windows(2).all(|w| w[0] < w[1]) || keep[0] < 1 {
            return Err(TaxonomyError::InvalidLevel {
                requested: keep[0],
                height: self.height(),
            });
        }
        let last = *keep.last().expect("non-empty");
        if last != self.height() {
            return Err(TaxonomyError::InvalidLevel {
                requested: last,
                height: self.height(),
            });
        }

        let mut b = TaxonomyBuilder::new();
        for (i, &level) in keep.iter().enumerate() {
            let parent_level = if i == 0 { None } else { Some(keep[i - 1]) };
            for &node in self.nodes_at_level(level)? {
                match parent_level {
                    None => b.add_root_child(self.name(node))?,
                    Some(pl) => {
                        let anc = self.ancestor_at_level(node, pl)?;
                        b.add_child(self.name(node), self.name(anc))?;
                    }
                }
            }
        }
        b.build(RebalancePolicy::RequireBalanced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_middle_level() {
        let t = Taxonomy::uniform(2, 2, 3).unwrap();
        let r = t.restrict_levels(&[1, 3]).unwrap();
        assert_eq!(r.height(), 2);
        assert_eq!(r.leaf_count(), 8);
        // A leaf's level-1 ancestor is preserved across the restriction.
        for &leaf in t.leaves() {
            let orig_cat = t.ancestor_at_level(leaf, 1).unwrap();
            let new_leaf = r.node_by_name(t.name(leaf)).expect("leaf survives");
            let new_cat = r.ancestor_at_level(new_leaf, 1).unwrap();
            assert_eq!(r.name(new_cat), t.name(orig_cat));
        }
        assert!(r.validate().is_ok());
    }

    #[test]
    fn keep_bottom_levels_only() {
        let t = Taxonomy::uniform(2, 2, 3).unwrap();
        let r = t.restrict_levels(&[2, 3]).unwrap();
        assert_eq!(r.height(), 2);
        // Former level-2 nodes become the categories.
        assert_eq!(r.nodes_at_level(1).unwrap().len(), 4);
    }

    #[test]
    fn identity_restriction() {
        let t = Taxonomy::uniform(2, 3, 3).unwrap();
        let r = t.restrict_levels(&[1, 2, 3]).unwrap();
        assert_eq!(r.height(), t.height());
        assert_eq!(r.node_count(), t.node_count());
        for &leaf in t.leaves() {
            assert!(r.node_by_name(t.name(leaf)).is_some());
        }
    }

    #[test]
    fn must_keep_leaf_level() {
        let t = Taxonomy::uniform(2, 2, 3).unwrap();
        let err = t.restrict_levels(&[1, 2]).unwrap_err();
        assert!(matches!(
            err,
            TaxonomyError::InvalidLevel { requested: 2, .. }
        ));
    }

    #[test]
    fn rejects_bad_inputs() {
        let t = Taxonomy::uniform(2, 2, 3).unwrap();
        assert!(t.restrict_levels(&[]).is_err());
        assert!(t.restrict_levels(&[0, 3]).is_err());
        assert!(t.restrict_levels(&[2, 2, 3]).is_err());
        assert!(t.restrict_levels(&[3, 1]).is_err());
    }

    #[test]
    fn single_level_restriction_gives_flat_tree() {
        let t = Taxonomy::uniform(3, 2, 2).unwrap();
        let r = t.restrict_levels(&[2]).unwrap();
        assert_eq!(r.height(), 1);
        assert_eq!(r.leaf_count(), 6);
        // All former leaves are now level-1 categories of their own.
        assert_eq!(r.nodes_at_level(1).unwrap().len(), 6);
    }
}
