//! The balanced taxonomy tree (`is-a` hierarchy) at the heart of multi-level
//! correlation mining.
//!
//! A [`Taxonomy`] models the paper's tree `T`: the root sits at abstraction
//! level 0 and is excluded from mining; level 1 holds the most general
//! categories; level `H` (= [`Taxonomy::height`]) holds the leaf items that
//! actually appear in transactions. Every leaf is at exactly level `H` — the
//! builder enforces this, rebalancing unbalanced input per Fig. 3 of the
//! paper.

use crate::error::TaxonomyError;
use crate::node::{NodeData, NodeId};
use std::collections::HashMap;

/// A balanced taxonomy tree.
///
/// Construct one with [`crate::TaxonomyBuilder`] or the convenience
/// constructors [`Taxonomy::uniform`] / [`Taxonomy::from_edges`].
///
/// # Invariants
///
/// * node 0 is the root at level 0;
/// * every non-root node has a parent one level above it;
/// * every leaf (childless node) is at level `height`;
/// * node names are unique.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Taxonomy {
    pub(crate) nodes: Vec<NodeData>,
    pub(crate) name_to_id: HashMap<String, NodeId>,
    pub(crate) height: usize,
    /// `levels[h]` lists the node ids at abstraction level `h` (ascending).
    pub(crate) levels: Vec<Vec<NodeId>>,
}

impl Taxonomy {
    /// Height `H` of the tree: the number of abstraction levels below the
    /// root. Leaves live at level `H`; the shallowest minable level is 1.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of nodes, including the root.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaf items (nodes at level `height`).
    #[inline]
    pub fn leaf_count(&self) -> usize {
        self.levels[self.height].len()
    }

    /// The unique name of `node`.
    ///
    /// # Panics
    /// Panics if `node` is out of range for this taxonomy.
    #[inline]
    pub fn name(&self, node: NodeId) -> &str {
        &self.nodes[node.index()].name
    }

    /// Look a node up by its unique name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.name_to_id.get(name).copied()
    }

    /// Parent of `node`, or `None` for the root.
    #[inline]
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.index()].parent
    }

    /// Children of `node` in insertion order.
    #[inline]
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.nodes[node.index()].children
    }

    /// Abstraction level of `node` (0 = root, `height` = leaves).
    #[inline]
    pub fn level_of(&self, node: NodeId) -> usize {
        self.nodes[node.index()].level
    }

    /// Whether `node` is a leaf (sits at level `height`).
    #[inline]
    pub fn is_leaf(&self, node: NodeId) -> bool {
        self.nodes[node.index()].children.is_empty()
    }

    /// Whether `node` is a synthetic rebalancing copy (Fig. 3 \[B\]).
    #[inline]
    pub fn is_synthetic(&self, node: NodeId) -> bool {
        self.nodes[node.index()].synthetic
    }

    /// All nodes at abstraction level `h`, in ascending id order.
    ///
    /// # Errors
    /// Returns [`TaxonomyError::InvalidLevel`] if `h > height`. Level 0 is
    /// allowed and yields the root alone.
    pub fn nodes_at_level(&self, h: usize) -> Result<&[NodeId], TaxonomyError> {
        self.levels
            .get(h)
            .map(Vec::as_slice)
            .ok_or(TaxonomyError::InvalidLevel {
                requested: h,
                height: self.height,
            })
    }

    /// Leaf items: the nodes at level `height`, ascending by id.
    #[inline]
    pub fn leaves(&self) -> &[NodeId] {
        &self.levels[self.height]
    }

    /// Ancestor of `node` at level `h`.
    ///
    /// If `node` is already at level `h`, returns `node` itself. Returns an
    /// error if `h` exceeds the node's own level (a node has no descendants
    /// that are its "ancestors") or is outside the tree.
    pub fn ancestor_at_level(&self, node: NodeId, h: usize) -> Result<NodeId, TaxonomyError> {
        let lvl = self.level_of(node);
        if h > lvl || h > self.height {
            return Err(TaxonomyError::InvalidLevel {
                requested: h,
                height: lvl,
            });
        }
        let mut cur = node;
        for _ in h..lvl {
            cur = self
                .parent(cur)
                .ok_or(TaxonomyError::InvalidNode(cur.as_u32()))?;
        }
        Ok(cur)
    }

    /// The level-1 ancestor (top category) of `node`.
    ///
    /// The paper requires all items of a flipping pattern to descend from
    /// *different* level-1 nodes; this accessor implements that check.
    pub fn top_category(&self, node: NodeId) -> Result<NodeId, TaxonomyError> {
        self.ancestor_at_level(node, 1)
    }

    /// Path from `node` up to (and excluding) the root: `[node, parent, …,
    /// level-1 ancestor]`.
    pub fn path_to_root(&self, node: NodeId) -> Vec<NodeId> {
        let mut path = Vec::with_capacity(self.level_of(node));
        let mut cur = Some(node);
        while let Some(n) = cur {
            if n.is_root() {
                break;
            }
            path.push(n);
            cur = self.parent(n);
        }
        path
    }

    /// Whether `anc` is an ancestor of `node` (a node is not its own
    /// ancestor).
    pub fn is_ancestor(&self, anc: NodeId, node: NodeId) -> bool {
        if self.level_of(anc) >= self.level_of(node) {
            return false;
        }
        self.ancestor_at_level(node, self.level_of(anc))
            .map(|a| a == anc)
            .unwrap_or(false)
    }

    /// Lowest common ancestor of two nodes (may be the root).
    pub fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        let (mut a, mut b) = (a, b);
        while self.level_of(a) > self.level_of(b) {
            a = self.parent(a).expect("non-root has parent");
        }
        while self.level_of(b) > self.level_of(a) {
            b = self.parent(b).expect("non-root has parent");
        }
        while a != b {
            a = self.parent(a).expect("non-root has parent");
            b = self.parent(b).expect("non-root has parent");
        }
        a
    }

    /// Number of edges on the shortest path between `a` and `b` in the tree
    /// (the "taxonomy distance" used by surprisingness-ranking baselines).
    pub fn distance(&self, a: NodeId, b: NodeId) -> usize {
        let l = self.lca(a, b);
        (self.level_of(a) - self.level_of(l)) + (self.level_of(b) - self.level_of(l))
    }

    /// All leaf descendants of `node` (if `node` is a leaf, just itself).
    pub fn leaf_descendants(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            if self.is_leaf(n) {
                out.push(n);
            } else {
                stack.extend_from_slice(self.children(n));
            }
        }
        out.sort_unstable();
        out
    }

    /// All descendants of `node` at level `h` (empty if `h <= level(node)`).
    pub fn descendants_at_level(&self, node: NodeId, h: usize) -> Vec<NodeId> {
        if h <= self.level_of(node) || h > self.height {
            return Vec::new();
        }
        let mut frontier = vec![node];
        for _ in self.level_of(node)..h {
            let mut next = Vec::new();
            for n in frontier {
                next.extend_from_slice(self.children(n));
            }
            frontier = next;
        }
        frontier.sort_unstable();
        frontier
    }

    /// Iterate over all node ids in id order (root first).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Pre-order depth-first traversal starting at the root.
    pub fn preorder(&self) -> crate::iter::Preorder<'_> {
        crate::iter::Preorder::new(self, NodeId::ROOT)
    }

    /// Validate all structural invariants; used by tests and after
    /// deserialization. Returns the first violation found.
    pub fn validate(&self) -> Result<(), TaxonomyError> {
        if self.nodes.len() < 2 {
            return Err(TaxonomyError::Empty);
        }
        for id in self.node_ids() {
            let d = &self.nodes[id.index()];
            match d.parent {
                None => {
                    if !id.is_root() {
                        return Err(TaxonomyError::InvalidNode(id.as_u32()));
                    }
                }
                Some(p) => {
                    if p.index() >= self.nodes.len() {
                        return Err(TaxonomyError::UnknownParent(d.name.clone()));
                    }
                    if self.level_of(p) + 1 != d.level {
                        return Err(TaxonomyError::InvalidNode(id.as_u32()));
                    }
                    if !self.children(p).contains(&id) {
                        return Err(TaxonomyError::InvalidNode(id.as_u32()));
                    }
                }
            }
            if d.children.is_empty() && !id.is_root() && d.level != self.height {
                return Err(TaxonomyError::Unbalanced {
                    leaf: d.name.clone(),
                    depth: d.level,
                    height: self.height,
                });
            }
        }
        Ok(())
    }

    /// Build a uniform balanced taxonomy: `roots` nodes at level 1, each
    /// internal node having `fanout` children, with `height` levels.
    ///
    /// Node names are systematic: `c3` for the 4th level-1 category,
    /// `c3.0.2` for grandchildren, etc. This matches the synthetic-data
    /// setting of the paper's §5.1 (10 level-1 categories, fanout 5,
    /// 4 levels).
    pub fn uniform(roots: usize, fanout: usize, height: usize) -> Result<Self, TaxonomyError> {
        assert!(height >= 1, "height must be at least 1");
        assert!(
            roots >= 1 && fanout >= 1,
            "roots and fanout must be positive"
        );
        let mut b = crate::builder::TaxonomyBuilder::new();
        let mut frontier: Vec<String> = Vec::new();
        for r in 0..roots {
            let name = format!("c{r}");
            b.add_root_child(&name)?;
            frontier.push(name);
        }
        for _ in 1..height {
            let mut next = Vec::with_capacity(frontier.len() * fanout);
            for parent in &frontier {
                for c in 0..fanout {
                    let name = format!("{parent}.{c}");
                    b.add_child(&name, parent)?;
                    next.push(name);
                }
            }
            frontier = next;
        }
        b.build(crate::RebalancePolicy::RequireBalanced)
    }

    /// Fast-path constructor for **already balanced, level-ordered** input:
    /// entry `i` (zero-based) becomes node id `i + 1` with the given name
    /// and parent node id (`0` = child of the root), exactly as the builder
    /// would have assigned them. This is the hot deserialization path for
    /// binary storage formats whose dictionaries are written in node-id
    /// order — it skips the builder's name-index bookkeeping, per-node depth
    /// walks and the level sort, building the arena in one pass.
    ///
    /// The result is **identical** (by `==`) to what
    /// [`TaxonomyBuilder`](crate::TaxonomyBuilder) produces for the same
    /// entries in the same order, which the test-suite asserts.
    ///
    /// # Errors
    /// Returns an error — so callers can fall back to the rebalancing
    /// builder — when the input breaks any fast-path precondition:
    /// * [`TaxonomyError::Empty`] — no entries;
    /// * [`TaxonomyError::UnknownParent`] — a parent id not smaller than the
    ///   entry's own id;
    /// * [`TaxonomyError::InvalidNode`] — entries not sorted by level
    ///   (a node shallower than its predecessor);
    /// * [`TaxonomyError::DuplicateName`] — a reused name;
    /// * [`TaxonomyError::Unbalanced`] — a leaf above the maximum depth
    ///   (the input needs real rebalancing).
    pub fn from_balanced_level_order<S: AsRef<str>>(
        entries: &[(S, u32)],
    ) -> Result<Self, TaxonomyError> {
        if entries.is_empty() {
            return Err(TaxonomyError::Empty);
        }
        let n = entries.len();
        let mut nodes = Vec::with_capacity(n + 1);
        nodes.push(NodeData {
            name: "<root>".to_string(),
            parent: None,
            level: 0,
            children: Vec::new(),
            synthetic: false,
        });
        let mut name_to_id = HashMap::with_capacity(n + 1);
        name_to_id.insert("<root>".to_string(), NodeId::ROOT);
        for (i, (name, parent)) in entries.iter().enumerate() {
            let name = name.as_ref();
            let id = NodeId((i + 1) as u32);
            if *parent >= id.as_u32() {
                return Err(TaxonomyError::UnknownParent(name.to_string()));
            }
            let pid = NodeId(*parent);
            let level = nodes[pid.index()].level + 1;
            // Level-ordered means levels never decrease along the id order;
            // anything else would have been reordered by the builder.
            if level < nodes[i].level {
                return Err(TaxonomyError::InvalidNode(id.as_u32()));
            }
            nodes.push(NodeData {
                name: name.to_string(),
                parent: Some(pid),
                level,
                children: Vec::new(),
                synthetic: false,
            });
            if name_to_id.insert(name.to_string(), id).is_some() {
                return Err(TaxonomyError::DuplicateName(name.to_string()));
            }
        }
        let height = nodes.last().ok_or(TaxonomyError::Empty)?.level;
        let mut levels = vec![Vec::new(); height + 1];
        for idx in 0..nodes.len() {
            let id = NodeId(idx as u32);
            levels[nodes[idx].level].push(id);
            if let Some(p) = nodes[idx].parent {
                nodes[p.index()].children.push(id);
            }
        }
        let tax = Taxonomy {
            nodes,
            name_to_id,
            height,
            levels,
        };
        // Catches unbalanced leaves (and any precondition the checks above
        // missed), exactly like the builder's freeze step does.
        tax.validate()?;
        Ok(tax)
    }

    /// Build a taxonomy from `(child, parent)` name pairs. Parents must be
    /// declared (as someone's child, or as a root child with parent `""`)
    /// before being referenced. An empty parent string means "child of the
    /// root".
    pub fn from_edges<'a, I>(
        edges: I,
        policy: crate::RebalancePolicy,
    ) -> Result<Self, TaxonomyError>
    where
        I: IntoIterator<Item = (&'a str, &'a str)>,
    {
        let mut b = crate::builder::TaxonomyBuilder::new();
        for (child, parent) in edges {
            if parent.is_empty() {
                b.add_root_child(child)?;
            } else {
                b.add_child(child, parent)?;
            }
        }
        b.build(policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RebalancePolicy;

    fn toy() -> Taxonomy {
        // The Fig. 4 taxonomy: a/b categories, a1/a2/b1/b2, then 8 leaves.
        Taxonomy::from_edges(
            [
                ("a", ""),
                ("b", ""),
                ("a1", "a"),
                ("a2", "a"),
                ("b1", "b"),
                ("b2", "b"),
                ("a11", "a1"),
                ("a12", "a1"),
                ("a21", "a2"),
                ("a22", "a2"),
                ("b11", "b1"),
                ("b12", "b1"),
                ("b21", "b2"),
                ("b22", "b2"),
            ],
            RebalancePolicy::RequireBalanced,
        )
        .unwrap()
    }

    #[test]
    fn toy_structure() {
        let t = toy();
        assert_eq!(t.height(), 3);
        assert_eq!(t.node_count(), 15); // root + 2 + 4 + 8
        assert_eq!(t.leaf_count(), 8);
        assert_eq!(t.nodes_at_level(1).unwrap().len(), 2);
        assert_eq!(t.nodes_at_level(2).unwrap().len(), 4);
        assert_eq!(t.nodes_at_level(3).unwrap().len(), 8);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn ancestors_and_categories() {
        let t = toy();
        let a11 = t.node_by_name("a11").unwrap();
        let a1 = t.node_by_name("a1").unwrap();
        let a = t.node_by_name("a").unwrap();
        assert_eq!(t.ancestor_at_level(a11, 2).unwrap(), a1);
        assert_eq!(t.ancestor_at_level(a11, 1).unwrap(), a);
        assert_eq!(t.ancestor_at_level(a11, 3).unwrap(), a11);
        assert_eq!(t.top_category(a11).unwrap(), a);
        assert!(t.ancestor_at_level(a, 2).is_err());
        assert!(t.is_ancestor(a, a11));
        assert!(!t.is_ancestor(a11, a));
        assert!(!t.is_ancestor(a11, a11));
    }

    #[test]
    fn paths_lca_distance() {
        let t = toy();
        let a11 = t.node_by_name("a11").unwrap();
        let a12 = t.node_by_name("a12").unwrap();
        let b11 = t.node_by_name("b11").unwrap();
        let a1 = t.node_by_name("a1").unwrap();
        assert_eq!(t.lca(a11, a12), a1);
        assert_eq!(t.lca(a11, b11), NodeId::ROOT);
        assert_eq!(t.distance(a11, a12), 2);
        assert_eq!(t.distance(a11, b11), 6);
        assert_eq!(t.distance(a11, a11), 0);
        let p = t.path_to_root(a11);
        assert_eq!(p.len(), 3);
        assert_eq!(p[0], a11);
        assert_eq!(p[2], t.node_by_name("a").unwrap());
    }

    #[test]
    fn descendants() {
        let t = toy();
        let a = t.node_by_name("a").unwrap();
        assert_eq!(t.leaf_descendants(a).len(), 4);
        assert_eq!(t.descendants_at_level(a, 2).len(), 2);
        assert_eq!(t.descendants_at_level(a, 3).len(), 4);
        assert!(t.descendants_at_level(a, 1).is_empty());
        let a11 = t.node_by_name("a11").unwrap();
        assert_eq!(t.leaf_descendants(a11), vec![a11]);
    }

    #[test]
    fn uniform_tree_matches_paper_defaults() {
        // Paper §5.1: 10 categories, fanout 5, 4 levels → 10*5^3 = 1250 leaves.
        let t = Taxonomy::uniform(10, 5, 4).unwrap();
        assert_eq!(t.height(), 4);
        assert_eq!(t.nodes_at_level(1).unwrap().len(), 10);
        assert_eq!(t.leaf_count(), 1250);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn uniform_tree_height_one() {
        let t = Taxonomy::uniform(4, 3, 1).unwrap();
        assert_eq!(t.height(), 1);
        assert_eq!(t.leaf_count(), 4);
        // At height 1 the level-1 nodes are themselves the leaves.
        assert_eq!(t.leaves(), t.nodes_at_level(1).unwrap());
    }

    #[test]
    fn nodes_at_invalid_level() {
        let t = toy();
        assert!(t.nodes_at_level(4).is_err());
        assert_eq!(t.nodes_at_level(0).unwrap(), &[NodeId::ROOT]);
    }

    #[test]
    fn clone_roundtrip_preserves_everything() {
        // The serde round-trip needs the off-by-default `serde` feature plus
        // a serde_json dev-dependency; deep-copy equality plus validation
        // covers the same structural invariants offline.
        let t = toy();
        let back = t.clone();
        assert_eq!(t, back);
        assert!(back.validate().is_ok());
    }

    /// Entries of `tax` as the fast-path constructor expects them: node-id
    /// order, parent encoded as a node id (synthetic nodes skipped — this
    /// mirrors what a binary dictionary stores).
    fn level_order_entries(tax: &Taxonomy) -> Vec<(String, u32)> {
        tax.node_ids()
            .skip(1)
            .filter(|&n| !tax.is_synthetic(n))
            .map(|n| {
                (
                    tax.name(n).to_string(),
                    tax.parent(n).expect("non-root").as_u32(),
                )
            })
            .collect()
    }

    #[test]
    fn fast_path_matches_builder_exactly() {
        // Balanced trees of assorted shapes: the fast path must reproduce
        // the builder's output bit for bit (ids, levels, children order,
        // name index).
        for (roots, fanout, height) in [(1usize, 1usize, 1usize), (2, 2, 2), (3, 2, 3), (2, 3, 2)] {
            let built = Taxonomy::uniform(roots, fanout, height).unwrap();
            let fast = Taxonomy::from_balanced_level_order(&level_order_entries(&built)).unwrap();
            assert_eq!(built, fast, "roots={roots} fanout={fanout} height={height}");
        }
        let built = toy();
        let fast = Taxonomy::from_balanced_level_order(&level_order_entries(&built)).unwrap();
        assert_eq!(built, fast);
    }

    #[test]
    fn fast_path_rejects_bad_input() {
        let e = |v: &[(&str, u32)]| {
            Taxonomy::from_balanced_level_order(
                &v.iter()
                    .map(|(n, p)| (n.to_string(), *p))
                    .collect::<Vec<_>>(),
            )
            .unwrap_err()
        };
        assert_eq!(
            Taxonomy::from_balanced_level_order::<String>(&[]).unwrap_err(),
            TaxonomyError::Empty
        );
        // Forward parent reference.
        assert!(matches!(
            e(&[("a", 2), ("b", 0)]),
            TaxonomyError::UnknownParent(_)
        ));
        // Self parent.
        assert!(matches!(e(&[("a", 1)]), TaxonomyError::UnknownParent(_)));
        // Duplicate name.
        assert!(matches!(
            e(&[("a", 0), ("a", 0)]),
            TaxonomyError::DuplicateName(_)
        ));
        // Not level-ordered: a level-2 node before a level-1 node.
        assert!(matches!(
            e(&[("a", 0), ("b", 1), ("c", 0), ("d", 3)]),
            TaxonomyError::InvalidNode(_)
        ));
        // Unbalanced: leaf "b" at depth 1 in a height-2 tree — the caller
        // must fall back to the rebalancing builder.
        assert!(matches!(
            e(&[("a", 0), ("b", 0), ("a1", 1)]),
            TaxonomyError::Unbalanced { .. }
        ));
    }

    #[test]
    fn preorder_visits_all_nodes_root_first() {
        let t = toy();
        let order: Vec<NodeId> = t.preorder().collect();
        assert_eq!(order.len(), t.node_count());
        assert_eq!(order[0], NodeId::ROOT);
    }
}
