//! Traversal iterators over taxonomy trees.

use crate::node::NodeId;
use crate::tree::Taxonomy;

/// Pre-order (node before its children) depth-first traversal.
pub struct Preorder<'t> {
    tax: &'t Taxonomy,
    stack: Vec<NodeId>,
}

impl<'t> Preorder<'t> {
    pub(crate) fn new(tax: &'t Taxonomy, start: NodeId) -> Self {
        Preorder {
            tax,
            stack: vec![start],
        }
    }
}

impl Iterator for Preorder<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let node = self.stack.pop()?;
        // Push children in reverse so the first child is visited first.
        for &c in self.tax.children(node).iter().rev() {
            self.stack.push(c);
        }
        Some(node)
    }
}

/// Iterator over the ancestors of a node, from its parent up to (and
/// excluding) the root.
pub struct Ancestors<'t> {
    tax: &'t Taxonomy,
    cur: Option<NodeId>,
}

impl<'t> Ancestors<'t> {
    /// Ancestors of `node`, nearest first.
    pub fn new(tax: &'t Taxonomy, node: NodeId) -> Self {
        Ancestors {
            tax,
            cur: tax.parent(node),
        }
    }
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let node = self.cur?;
        if node.is_root() {
            return None;
        }
        self.cur = self.tax.parent(node);
        Some(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RebalancePolicy, Taxonomy};

    fn chain() -> Taxonomy {
        Taxonomy::from_edges(
            [
                ("top", ""),
                ("mid", "top"),
                ("leaf", "mid"),
                ("leaf2", "mid"),
            ],
            RebalancePolicy::RequireBalanced,
        )
        .unwrap()
    }

    #[test]
    fn preorder_parent_before_children() {
        let t = chain();
        let order: Vec<NodeId> = t.preorder().collect();
        let pos = |n: &str| {
            let id = t.node_by_name(n).unwrap();
            order.iter().position(|&x| x == id).unwrap()
        };
        assert!(pos("top") < pos("mid"));
        assert!(pos("mid") < pos("leaf"));
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn ancestors_excludes_root_and_self() {
        let t = chain();
        let leaf = t.node_by_name("leaf").unwrap();
        let anc: Vec<String> = Ancestors::new(&t, leaf)
            .map(|n| t.name(n).to_string())
            .collect();
        assert_eq!(anc, vec!["mid".to_string(), "top".to_string()]);
    }

    #[test]
    fn ancestors_of_level1_is_empty() {
        let t = chain();
        let top = t.node_by_name("top").unwrap();
        assert_eq!(Ancestors::new(&t, top).count(), 0);
    }
}
