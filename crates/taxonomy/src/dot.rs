//! Graphviz DOT export for taxonomies — handy for inspecting the hierarchies
//! behind discovered flipping patterns.

use crate::node::NodeId;
use crate::tree::Taxonomy;
use std::fmt::Write as _;

/// Options controlling DOT output.
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Graph name after `digraph`.
    pub graph_name: String,
    /// Include the artificial root node.
    pub include_root: bool,
    /// Highlight these nodes (filled style), e.g. the members of a pattern.
    pub highlight: Vec<NodeId>,
    /// Maximum level to render (`None` = all levels).
    pub max_level: Option<usize>,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            graph_name: "taxonomy".to_string(),
            include_root: false,
            highlight: Vec::new(),
            max_level: None,
        }
    }
}

/// Render `tax` as a Graphviz DOT digraph.
pub fn to_dot(tax: &Taxonomy, opts: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize_id(&opts.graph_name));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, fontsize=10];");
    let max_level = opts.max_level.unwrap_or(tax.height());
    for id in tax.node_ids() {
        let lvl = tax.level_of(id);
        if lvl > max_level || (id.is_root() && !opts.include_root) {
            continue;
        }
        let mut attrs = format!("label=\"{}\"", escape(tax.name(id)));
        if opts.highlight.contains(&id) {
            attrs.push_str(", style=filled, fillcolor=lightblue");
        }
        if tax.is_synthetic(id) {
            attrs.push_str(", style=dashed");
        }
        let _ = writeln!(out, "  {} [{}];", id, attrs);
    }
    for id in tax.node_ids() {
        if tax.level_of(id) > max_level {
            continue;
        }
        if let Some(p) = tax.parent(id) {
            if p.is_root() && !opts.include_root {
                continue;
            }
            let _ = writeln!(out, "  {} -> {};", p, id);
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn sanitize_id(s: &str) -> String {
    let cleaned: String = s
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        format!("g{cleaned}")
    } else if cleaned.is_empty() {
        "taxonomy".to_string()
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RebalancePolicy;

    fn tax() -> Taxonomy {
        Taxonomy::from_edges(
            [
                ("drinks", ""),
                ("beer", "drinks"),
                ("wine \"red\"", "drinks"),
            ],
            RebalancePolicy::RequireBalanced,
        )
        .unwrap()
    }

    #[test]
    fn dot_contains_nodes_and_edges() {
        let t = tax();
        let dot = to_dot(&t, &DotOptions::default());
        assert!(dot.starts_with("digraph taxonomy {"));
        assert!(dot.contains("label=\"beer\""));
        assert!(dot.contains("->"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_escapes_quotes() {
        let t = tax();
        let dot = to_dot(&t, &DotOptions::default());
        assert!(dot.contains("wine \\\"red\\\""));
    }

    #[test]
    fn root_excluded_by_default_included_on_request() {
        let t = tax();
        let without = to_dot(&t, &DotOptions::default());
        assert!(!without.contains("<root>"));
        let with = to_dot(
            &t,
            &DotOptions {
                include_root: true,
                ..Default::default()
            },
        );
        assert!(with.contains("<root>"));
    }

    #[test]
    fn highlight_marks_nodes() {
        let t = tax();
        let beer = t.node_by_name("beer").unwrap();
        let dot = to_dot(
            &t,
            &DotOptions {
                highlight: vec![beer],
                ..Default::default()
            },
        );
        assert!(dot.contains("fillcolor=lightblue"));
    }

    #[test]
    fn graph_name_sanitized() {
        let t = tax();
        let dot = to_dot(
            &t,
            &DotOptions {
                graph_name: "9 weird name!".to_string(),
                ..Default::default()
            },
        );
        assert!(dot.starts_with("digraph g9_weird_name_ {"));
    }

    #[test]
    fn max_level_limits_depth() {
        let t = Taxonomy::uniform(2, 2, 3).unwrap();
        let dot = to_dot(
            &t,
            &DotOptions {
                max_level: Some(1),
                ..Default::default()
            },
        );
        // Only the two level-1 nodes, no edges between rendered nodes.
        assert!(dot.contains("label=\"c0\""));
        assert!(!dot.contains("label=\"c0.0\""));
    }
}
