//! Incremental construction of taxonomies, with the rebalancing strategies of
//! Fig. 3 of the paper.

use crate::error::TaxonomyError;
use crate::node::{NodeData, NodeId};
use crate::tree::Taxonomy;
use std::collections::HashMap;

/// How to handle leaves shallower than the tree height (Fig. 3).
///
/// Flipping patterns compare correlations of the *same* itemset across every
/// abstraction level, so every item needs a generalization at every level.
/// When the raw hierarchy is unbalanced the paper offers two repairs:
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RebalancePolicy {
    /// Fig. 3 \[B\] (used in the paper's experiments, and our default):
    /// extend each shallow leaf with synthetic copies of itself down to the
    /// leaf level. A copy generalizes to the original, so the correlation
    /// chain simply repeats across the padded levels.
    #[default]
    LeafCopy,
    /// Fig. 3 \[A\]: keep only the levels that exist on *every* root-to-leaf
    /// path. The new height is the minimum leaf depth; internal nodes at or
    /// below it are dropped and each leaf is re-parented to its ancestor at
    /// the level just above the new leaf level.
    Truncate,
    /// Refuse to build unless the input is already balanced.
    RequireBalanced,
}

/// Builder for [`Taxonomy`].
///
/// Nodes are added as `(name, parent-name)` pairs; parents must already
/// exist. [`TaxonomyBuilder::build`] balances the tree according to the
/// chosen [`RebalancePolicy`] and freezes it.
///
/// ```
/// use flipper_taxonomy::{TaxonomyBuilder, RebalancePolicy};
/// let mut b = TaxonomyBuilder::new();
/// b.add_root_child("drinks").unwrap();
/// b.add_child("beer", "drinks").unwrap();
/// b.add_child("canned beer", "beer").unwrap();
/// let tax = b.build(RebalancePolicy::LeafCopy).unwrap();
/// assert_eq!(tax.height(), 3);
/// ```
#[derive(Debug, Default, Clone)]
pub struct TaxonomyBuilder {
    /// name, parent index into `names` (None = root child), synthetic flag.
    entries: Vec<(String, Option<usize>, bool)>,
    index: HashMap<String, usize>,
}

impl TaxonomyBuilder {
    /// Create an empty builder (the root node is implicit).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes added so far (excluding the implicit root).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no nodes have been added yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Add a level-1 node (direct child of the root).
    pub fn add_root_child(&mut self, name: &str) -> Result<(), TaxonomyError> {
        self.insert(name, None)
    }

    /// Add `name` as a child of the previously added node `parent`.
    pub fn add_child(&mut self, name: &str, parent: &str) -> Result<(), TaxonomyError> {
        let p = *self
            .index
            .get(parent)
            .ok_or_else(|| TaxonomyError::UnknownParent(parent.to_string()))?;
        self.insert(name, Some(p))
    }

    fn insert(&mut self, name: &str, parent: Option<usize>) -> Result<(), TaxonomyError> {
        if self.index.contains_key(name) {
            return Err(TaxonomyError::DuplicateName(name.to_string()));
        }
        if Some(name) == parent.map(|p| self.entries[p].0.as_str()) {
            return Err(TaxonomyError::Cycle(name.to_string()));
        }
        self.index.insert(name.to_string(), self.entries.len());
        self.entries.push((name.to_string(), parent, false));
        Ok(())
    }

    /// Depth of entry `i` (1 = child of root).
    fn depth(&self, i: usize) -> usize {
        let mut d = 1;
        let mut cur = self.entries[i].1;
        while let Some(p) = cur {
            d += 1;
            cur = self.entries[p].1;
        }
        d
    }

    /// Finalize the taxonomy, applying `policy` if the tree is unbalanced.
    pub fn build(mut self, policy: RebalancePolicy) -> Result<Taxonomy, TaxonomyError> {
        if self.entries.is_empty() {
            return Err(TaxonomyError::Empty);
        }
        let depths: Vec<usize> = (0..self.entries.len()).map(|i| self.depth(i)).collect();
        let mut has_child = vec![false; self.entries.len()];
        for e in &self.entries {
            if let Some(p) = e.1 {
                has_child[p] = true;
            }
        }
        let height = depths.iter().copied().max().ok_or(TaxonomyError::Empty)?;
        let min_leaf_depth = depths
            .iter()
            .zip(&has_child)
            .filter(|&(_, &hc)| !hc)
            .map(|(&d, _)| d)
            .min()
            .ok_or(TaxonomyError::Empty)?;

        if min_leaf_depth != height {
            match policy {
                RebalancePolicy::RequireBalanced => {
                    let leaf = (0..self.entries.len())
                        .find(|&i| !has_child[i] && depths[i] == min_leaf_depth)
                        // lint:allow(panic-hygiene) min_leaf_depth was computed from an existing childless entry above
                        .expect("a shallow leaf exists");
                    return Err(TaxonomyError::Unbalanced {
                        leaf: self.entries[leaf].0.clone(),
                        depth: min_leaf_depth,
                        height,
                    });
                }
                RebalancePolicy::LeafCopy => self.pad_leaves(&depths, &has_child, height)?,
                RebalancePolicy::Truncate => {
                    return self.truncate(&depths, &has_child, min_leaf_depth);
                }
            }
        }
        self.freeze()
    }

    /// Fig. 3 [B]: pad each shallow leaf with synthetic self-copies.
    fn pad_leaves(
        &mut self,
        depths: &[usize],
        has_child: &[bool],
        height: usize,
    ) -> Result<(), TaxonomyError> {
        let n = self.entries.len();
        for i in 0..n {
            if has_child[i] || depths[i] == height {
                continue;
            }
            let mut parent = i;
            for pad in 1..=(height - depths[i]) {
                let name = format!("{}#{}", self.entries[i].0, pad);
                if self.index.contains_key(&name) {
                    return Err(TaxonomyError::DuplicateName(name));
                }
                self.index.insert(name.clone(), self.entries.len());
                self.entries.push((name, Some(parent), true));
                parent = self.entries.len() - 1;
            }
        }
        Ok(())
    }

    /// Fig. 3 [A]: new height = min leaf depth; drop internal nodes at or
    /// below it and re-parent every leaf to its ancestor at `new_height - 1`.
    fn truncate(
        self,
        depths: &[usize],
        has_child: &[bool],
        new_height: usize,
    ) -> Result<Taxonomy, TaxonomyError> {
        let mut b = TaxonomyBuilder::new();
        // Keep internal nodes strictly above the new leaf level.
        for (i, (name, parent, _)) in self.entries.iter().enumerate() {
            if depths[i] < new_height && has_child[i] {
                match parent {
                    None => b.add_root_child(name)?,
                    Some(p) => b.add_child(name, &self.entries[*p].0)?,
                }
            }
        }
        // Re-attach each original leaf at the new leaf level.
        for (i, (name, parent, _)) in self.entries.iter().enumerate() {
            if has_child[i] {
                continue;
            }
            // Walk up to the ancestor at depth new_height - 1.
            let mut anc = *parent;
            let mut d = depths[i] - 1;
            while d >= new_height {
                let p = anc.ok_or_else(|| TaxonomyError::UnknownParent(name.clone()))?;
                anc = self.entries[p].1;
                d -= 1;
            }
            match anc {
                None => b.add_root_child(name)?,
                Some(p) => b.add_child(name, &self.entries[p].0)?,
            }
        }
        b.build(RebalancePolicy::RequireBalanced)
    }

    /// Convert entries into the arena representation, assigning ids in
    /// level order so that parents always precede children.
    fn freeze(self) -> Result<Taxonomy, TaxonomyError> {
        let n = self.entries.len();
        let depths: Vec<usize> = (0..n).map(|i| self.depth(i)).collect();
        let height = depths.iter().copied().max().ok_or(TaxonomyError::Empty)?;

        // Order entries by (depth, insertion order) so ids are level-ordered.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (depths[i], i));
        let mut new_id = vec![0u32; n];
        for (rank, &i) in order.iter().enumerate() {
            new_id[i] = (rank + 1) as u32; // +1: root takes id 0
        }

        let mut nodes = Vec::with_capacity(n + 1);
        nodes.push(NodeData {
            name: "<root>".to_string(),
            parent: None,
            level: 0,
            children: Vec::new(),
            synthetic: false,
        });
        let mut name_to_id = HashMap::with_capacity(n + 1);
        name_to_id.insert("<root>".to_string(), NodeId::ROOT);
        for &i in &order {
            let (name, parent, synthetic) = &self.entries[i];
            let pid = match parent {
                None => NodeId::ROOT,
                Some(p) => NodeId(new_id[*p]),
            };
            let id = NodeId(new_id[i]);
            nodes.push(NodeData {
                name: name.clone(),
                parent: Some(pid),
                level: depths[i],
                children: Vec::new(),
                synthetic: *synthetic,
            });
            name_to_id.insert(name.clone(), id);
        }
        // Children lists and level index.
        let mut levels = vec![Vec::new(); height + 1];
        levels[0].push(NodeId::ROOT);
        for idx in 1..nodes.len() {
            let id = NodeId(idx as u32);
            // lint:allow(panic-hygiene) every non-root node was pushed with Some(parent) in the loop above
            let parent = nodes[idx].parent.expect("non-root");
            let level = nodes[idx].level;
            nodes[parent.index()].children.push(id);
            levels[level].push(id);
        }
        let tax = Taxonomy {
            nodes,
            name_to_id,
            height,
            levels,
        };
        tax.validate()?;
        Ok(tax)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The unbalanced tree of Fig. 3: b-leaves b11, b12 hang directly off b
    /// (no b1 between them) in the original figure; here we model the figure
    /// exactly: category b has a child b2 (internal) and direct leaf
    /// children b11, b12.
    fn fig3_builder() -> TaxonomyBuilder {
        let mut b = TaxonomyBuilder::new();
        for (c, p) in [
            ("a", ""),
            ("b", ""),
            ("a1", "a"),
            ("a2", "a"),
            ("b2", "b"),
            ("a11", "a1"),
            ("a12", "a1"),
            ("a21", "a2"),
            ("a22", "a2"),
            ("b11", "b"),
            ("b12", "b"),
            ("b21", "b2"),
            ("b22", "b2"),
        ] {
            if p.is_empty() {
                b.add_root_child(c).unwrap();
            } else {
                b.add_child(c, p).unwrap();
            }
        }
        b
    }

    #[test]
    fn require_balanced_rejects_fig3() {
        let err = fig3_builder()
            .build(RebalancePolicy::RequireBalanced)
            .unwrap_err();
        match err {
            TaxonomyError::Unbalanced { depth, height, .. } => {
                assert_eq!(depth, 2);
                assert_eq!(height, 3);
            }
            other => panic!("expected Unbalanced, got {other:?}"),
        }
    }

    #[test]
    fn leaf_copy_pads_to_full_height() {
        let t = fig3_builder().build(RebalancePolicy::LeafCopy).unwrap();
        assert_eq!(t.height(), 3);
        // b11 and b12 each gained one synthetic copy.
        let b11 = t.node_by_name("b11").unwrap();
        let b11c = t.node_by_name("b11#1").unwrap();
        assert_eq!(t.parent(b11c), Some(b11));
        assert!(t.is_synthetic(b11c));
        assert!(!t.is_synthetic(b11));
        assert_eq!(t.level_of(b11c), 3);
        assert!(t.validate().is_ok());
        // Leaves: 8 original leaves, but b11/b12 replaced by their copies.
        assert_eq!(t.leaf_count(), 8);
    }

    #[test]
    fn truncate_collapses_to_min_leaf_depth() {
        let t = fig3_builder().build(RebalancePolicy::Truncate).unwrap();
        // Fig. 3 [A]: only two consistent levels remain.
        assert_eq!(t.height(), 2);
        let a11 = t.node_by_name("a11").unwrap();
        let a = t.node_by_name("a").unwrap();
        assert_eq!(t.parent(a11), Some(a));
        // Internal nodes a1/a2/b2 are gone.
        assert!(t.node_by_name("a1").is_none());
        assert!(t.node_by_name("b2").is_none());
        assert_eq!(t.leaf_count(), 8);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut b = TaxonomyBuilder::new();
        b.add_root_child("x").unwrap();
        assert_eq!(
            b.add_root_child("x").unwrap_err(),
            TaxonomyError::DuplicateName("x".into())
        );
    }

    #[test]
    fn unknown_parent_rejected() {
        let mut b = TaxonomyBuilder::new();
        assert!(matches!(
            b.add_child("y", "nope").unwrap_err(),
            TaxonomyError::UnknownParent(_)
        ));
    }

    #[test]
    fn empty_build_rejected() {
        assert_eq!(
            TaxonomyBuilder::new()
                .build(RebalancePolicy::LeafCopy)
                .unwrap_err(),
            TaxonomyError::Empty
        );
    }

    #[test]
    fn ids_are_level_ordered() {
        let t = fig3_builder().build(RebalancePolicy::LeafCopy).unwrap();
        for id in t.node_ids() {
            if let Some(p) = t.parent(id) {
                assert!(p < id, "parent {p} must precede child {id}");
            }
        }
    }

    #[test]
    fn builder_len_tracks_insertions() {
        let mut b = TaxonomyBuilder::new();
        assert!(b.is_empty());
        b.add_root_child("x").unwrap();
        b.add_child("y", "x").unwrap();
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn single_level_taxonomy() {
        let mut b = TaxonomyBuilder::new();
        b.add_root_child("only").unwrap();
        let t = b.build(RebalancePolicy::RequireBalanced).unwrap();
        assert_eq!(t.height(), 1);
        assert_eq!(t.leaves().len(), 1);
    }

    #[test]
    fn deep_chain() {
        let mut b = TaxonomyBuilder::new();
        b.add_root_child("l1").unwrap();
        let mut prev = "l1".to_string();
        for i in 2..=6 {
            let name = format!("l{i}");
            b.add_child(&name, &prev).unwrap();
            prev = name;
        }
        let t = b.build(RebalancePolicy::RequireBalanced).unwrap();
        assert_eq!(t.height(), 6);
        let leaf = t.node_by_name("l6").unwrap();
        assert_eq!(
            t.ancestor_at_level(leaf, 1).unwrap(),
            t.node_by_name("l1").unwrap()
        );
    }
}
