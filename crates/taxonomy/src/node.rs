//! Node identifiers and per-node data for taxonomy trees.

use std::fmt;

/// Identifier of a node in a [`crate::Taxonomy`].
///
/// Node ids are dense indices into the taxonomy arena: the root is always
/// `NodeId::ROOT` (id 0) and every other node has a positive id. Ids are
/// assigned in insertion order, which the builder guarantees to be
/// breadth-compatible (a parent's id is always smaller than its children's).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The root of every taxonomy (abstraction level 0).
    pub const ROOT: NodeId = NodeId(0);

    /// Raw index of this node in the arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Raw `u32` value of this node id.
    #[inline]
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// Construct a node id from a raw index.
    ///
    /// The id is not validated against any particular taxonomy; queries with
    /// an out-of-range id return errors or panic with a clear message.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }

    /// Whether this node is the root.
    #[inline]
    pub fn is_root(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Per-node payload stored in the taxonomy arena.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub(crate) struct NodeData {
    /// Human-readable unique name (e.g. `"whole milk"`, `"dairy"`).
    pub name: String,
    /// Parent node; `None` only for the root.
    pub parent: Option<NodeId>,
    /// Abstraction level: 0 for the root, `height` for (balanced) leaves.
    pub level: usize,
    /// Children in insertion order.
    pub children: Vec<NodeId>,
    /// Whether this node is a synthetic copy introduced by rebalancing
    /// (Fig. 3 [B] of the paper): a leaf shallower than the tree height is
    /// extended with copies of itself down to the leaf level.
    pub synthetic: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_constants() {
        assert_eq!(NodeId::ROOT.index(), 0);
        assert!(NodeId::ROOT.is_root());
        assert!(!NodeId::from_index(3).is_root());
    }

    #[test]
    fn display_and_roundtrip() {
        let id = NodeId::from_index(42);
        assert_eq!(id.to_string(), "n42");
        assert_eq!(id.as_u32(), 42);
        assert_eq!(NodeId::from_index(id.index()), id);
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
    }

    #[test]
    fn index_roundtrip() {
        // The `#[serde(transparent)]` JSON representation is covered only
        // when the `serde` feature (plus a serde_json dev-dependency) is
        // enabled; the index round-trip pins the same in-memory identity.
        let id = NodeId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(NodeId::from_index(id.index()), id);
    }
}
