//! # flipper-taxonomy
//!
//! Taxonomy (*is-a* hierarchy) trees for multi-level correlation mining, as
//! used by the Flipper algorithm of Barsky et al., *Mining Flipping
//! Correlations from Large Datasets with Taxonomies* (PVLDB 5(4), 2011).
//!
//! A taxonomy maps every leaf item of a transaction database to a chain of
//! generalizations: `canned beer → beer → drinks`. Flipping-pattern mining
//! contrasts correlations of the *same* itemset at every abstraction level,
//! which requires a **balanced** tree — every leaf at the same depth. This
//! crate provides:
//!
//! * an arena-backed [`Taxonomy`] with O(1) parent/children/level access and
//!   ancestor queries;
//! * a [`TaxonomyBuilder`] accepting arbitrary (possibly unbalanced) input
//!   and the two rebalancing strategies of the paper's Fig. 3
//!   ([`RebalancePolicy::LeafCopy`] and [`RebalancePolicy::Truncate`]);
//! * traversal iterators and Graphviz [`dot`] export.
//!
//! ```
//! use flipper_taxonomy::{Taxonomy, RebalancePolicy};
//!
//! let tax = Taxonomy::from_edges(
//!     [("drinks", ""), ("food", ""),
//!      ("beer", "drinks"), ("soda", "drinks"),
//!      ("bread", "food"), ("cheese", "food")],
//!     RebalancePolicy::RequireBalanced,
//! ).unwrap();
//!
//! let beer = tax.node_by_name("beer").unwrap();
//! let drinks = tax.node_by_name("drinks").unwrap();
//! assert_eq!(tax.ancestor_at_level(beer, 1).unwrap(), drinks);
//! assert_eq!(tax.height(), 2);
//! ```

mod builder;
pub mod dot;
mod error;
pub mod iter;
mod node;
mod restrict;
mod tree;

pub use builder::{RebalancePolicy, TaxonomyBuilder};
pub use error::TaxonomyError;
pub use node::NodeId;
pub use tree::Taxonomy;

#[cfg(test)]
mod proptests {
    //! Property-style tests, ported from `proptest` strategies to plain
    //! loops for the offline (dependency-free) build. The original strategy
    //! drew uniform trees from the grid 1–3 roots × 1–3 fanout × 1–3 height;
    //! that space is small enough to check *exhaustively*, which is strictly
    //! stronger than sampling it.

    use super::*;

    /// Every uniform tree over the small parameter grid exercised by the
    /// algorithm (1–3 roots, fanout 1–3, height 1–3).
    fn all_taxonomies() -> impl Iterator<Item = Taxonomy> {
        (1usize..4).flat_map(move |roots| {
            (1usize..4).flat_map(move |fanout| {
                (1usize..4).map(move |height| Taxonomy::uniform(roots, fanout, height).unwrap())
            })
        })
    }

    #[test]
    fn ancestor_levels_are_consistent() {
        for tax in all_taxonomies() {
            for &leaf in tax.leaves() {
                for h in 1..=tax.height() {
                    let anc = tax.ancestor_at_level(leaf, h).unwrap();
                    assert_eq!(tax.level_of(anc), h);
                    if h < tax.height() {
                        assert!(tax.is_ancestor(anc, leaf));
                    } else {
                        assert_eq!(anc, leaf);
                    }
                }
            }
        }
    }

    #[test]
    fn leaf_descendants_partition_leaves() {
        // Leaf descendants of level-1 nodes partition the leaf set.
        for tax in all_taxonomies() {
            let mut all: Vec<NodeId> = Vec::new();
            for &cat in tax.nodes_at_level(1).unwrap() {
                all.extend(tax.leaf_descendants(cat));
            }
            all.sort_unstable();
            assert_eq!(all.as_slice(), tax.leaves());
        }
    }

    #[test]
    fn lca_is_symmetric_and_ancestral() {
        for tax in all_taxonomies() {
            let leaves = tax.leaves();
            for &a in leaves.iter().take(4) {
                for &b in leaves.iter().rev().take(4) {
                    let l = tax.lca(a, b);
                    assert_eq!(l, tax.lca(b, a));
                    assert!(l == a || tax.is_ancestor(l, a));
                    assert!(l == b || tax.is_ancestor(l, b));
                }
            }
        }
    }

    #[test]
    fn distance_is_a_metric_on_sampled_nodes() {
        for tax in all_taxonomies() {
            let nodes: Vec<NodeId> = tax.node_ids().skip(1).collect();
            let sample: Vec<NodeId> = nodes.iter().copied().take(6).collect();
            for &a in &sample {
                assert_eq!(tax.distance(a, a), 0);
                for &b in &sample {
                    assert_eq!(tax.distance(a, b), tax.distance(b, a));
                    for &c in &sample {
                        assert!(tax.distance(a, c) <= tax.distance(a, b) + tax.distance(b, c));
                    }
                }
            }
        }
    }

    #[test]
    fn clone_roundtrip() {
        // The serde round-trip variant of this test needs the
        // off-by-default `serde` feature plus a serde_json dev-dependency.
        for tax in all_taxonomies() {
            let back = tax.clone();
            assert_eq!(tax, back);
            assert!(back.validate().is_ok());
        }
    }
}
