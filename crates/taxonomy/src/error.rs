//! Error types for taxonomy construction and queries.

use std::fmt;

/// Errors that can arise while building or querying a [`crate::Taxonomy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaxonomyError {
    /// A node name was used more than once. Names must be unique because the
    /// data layer addresses taxonomy nodes by name when parsing datasets.
    DuplicateName(String),
    /// A parent was referenced before being defined.
    UnknownParent(String),
    /// The builder produced a tree with no nodes below the root.
    Empty,
    /// A node id is out of range for this taxonomy.
    InvalidNode(u32),
    /// Requested level is outside `1..=height`.
    InvalidLevel {
        /// The level that was asked for.
        requested: usize,
        /// The height of the tree (or the node's own level, for ancestor
        /// queries).
        height: usize,
    },
    /// An operation that requires a balanced taxonomy was attempted on an
    /// unbalanced one (leaves at differing depths).
    Unbalanced {
        /// Name of the offending leaf.
        leaf: String,
        /// Depth of the offending leaf.
        depth: usize,
        /// Height (maximum depth) of the tree.
        height: usize,
    },
    /// Adding this node would create a cycle (the node is its own ancestor).
    Cycle(String),
}

impl fmt::Display for TaxonomyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaxonomyError::DuplicateName(name) => {
                write!(f, "duplicate taxonomy node name: {name:?}")
            }
            TaxonomyError::UnknownParent(name) => {
                write!(f, "unknown parent node: {name:?}")
            }
            TaxonomyError::Empty => write!(f, "taxonomy has no nodes below the root"),
            TaxonomyError::InvalidNode(id) => write!(f, "invalid node id: {id}"),
            TaxonomyError::InvalidLevel { requested, height } => write!(
                f,
                "invalid taxonomy level {requested} (valid levels are 1..={height})"
            ),
            TaxonomyError::Unbalanced {
                leaf,
                depth,
                height,
            } => write!(
                f,
                "taxonomy is unbalanced: leaf {leaf:?} is at depth {depth}, height is {height} \
                 (rebalance with RebalancePolicy before building)"
            ),
            TaxonomyError::Cycle(name) => {
                write!(f, "taxonomy edge would create a cycle at node {name:?}")
            }
        }
    }
}

impl std::error::Error for TaxonomyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TaxonomyError::DuplicateName("milk".into());
        assert!(e.to_string().contains("milk"));
        let e = TaxonomyError::InvalidLevel {
            requested: 9,
            height: 3,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains("1..=3"));
        let e = TaxonomyError::Unbalanced {
            leaf: "x".into(),
            depth: 2,
            height: 4,
        };
        assert!(e.to_string().contains("unbalanced"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&TaxonomyError::Empty);
    }
}
