//! Workspace-level analysis: the crate dependency graph with the declared
//! layering, the intra-workspace call graph with panic-reachability, and
//! the lock-acquisition-order relation.
//!
//! Everything here works on the facts [`crate::parser`] recovers per file;
//! no file is re-read. The crate graph is observed from two sources —
//! `[dependencies]` sections of `crates/<name>/Cargo.toml` manifests and
//! `flipper_<name>::` paths in non-test code — so a fixture tree without
//! manifests still produces edges, and a manifest dependency that is never
//! imported still counts.

use crate::lexer::{LexOutput, TokKind};
use crate::parser::{self, CallKind, CallSite, FnItem};
use crate::regions::Regions;
use crate::rules::{Finding, NO_TOK};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// The architecture layer of every workspace crate. A dependency edge is
/// legal only when it points to a *strictly lower* layer.
pub const LAYERS: &[(&str, u32)] = &[
    ("rng", 0),
    ("wire", 0),
    ("guard", 1),
    ("measures", 1),
    ("obs", 1),
    ("taxonomy", 1),
    ("data", 2),
    ("core", 3),
    ("datagen", 3),
    ("store", 3),
    ("api", 4),
    ("lint", 4),
    ("bench", 5),
    ("cli", 5),
    ("integration", 5),
];

/// The declared dependency edges. A layer-legal edge that is not listed
/// here is still a finding: growing the coupling surface is a deliberate
/// act, recorded by editing this table. `integration` (the cross-crate
/// test harness) is exempt — it may depend on anything below it.
pub const ALLOWED_EDGES: &[(&str, &str)] = &[
    ("api", "core"),
    ("api", "data"),
    ("api", "datagen"),
    ("api", "guard"),
    ("api", "measures"),
    ("api", "obs"),
    ("api", "store"),
    ("api", "taxonomy"),
    ("api", "wire"),
    ("bench", "api"),
    ("bench", "core"),
    ("bench", "data"),
    ("bench", "datagen"),
    ("bench", "lint"),
    ("bench", "measures"),
    ("bench", "obs"),
    ("bench", "store"),
    ("bench", "taxonomy"),
    ("bench", "wire"),
    ("cli", "api"),
    ("cli", "obs"),
    ("cli", "wire"),
    ("core", "data"),
    ("core", "guard"),
    ("core", "measures"),
    ("core", "obs"),
    ("core", "taxonomy"),
    ("data", "guard"),
    ("data", "obs"),
    ("data", "rng"),
    ("data", "taxonomy"),
    ("datagen", "data"),
    ("datagen", "taxonomy"),
    ("guard", "rng"),
    ("lint", "wire"),
    ("obs", "wire"),
    ("store", "data"),
    ("store", "guard"),
    ("store", "obs"),
    ("store", "taxonomy"),
];

/// Layer of a crate, when it is in the map.
pub fn layer_of(krate: &str) -> Option<u32> {
    LAYERS
        .iter()
        .find(|(name, _)| *name == krate)
        .map(|(_, l)| *l)
}

/// Where an edge (or other graph fact) was first observed.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Witness {
    /// Workspace-relative file (a source file or a `Cargo.toml`).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// The observed crate dependency graph.
#[derive(Debug, Default)]
pub struct CrateGraph {
    /// Every crate seen (from file paths and manifests), sorted.
    pub crates: BTreeSet<String>,
    /// Observed `from → to` edges with the first witness for each.
    pub edges: BTreeMap<(String, String), Witness>,
}

impl CrateGraph {
    /// Render the graph as deterministic Graphviz DOT, crates annotated
    /// with their declared layer and grouped bottom-up (`rankdir=BT` puts
    /// layer 0 at the bottom, arrows pointing down the stack).
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph flipper {\n  rankdir=BT;\n  node [shape=box];\n");
        for c in &self.crates {
            match layer_of(c) {
                Some(l) => {
                    s.push_str(&format!("  \"{c}\" [label=\"{c}\\nlayer {l}\"];\n"));
                }
                None => s.push_str(&format!("  \"{c}\";\n")),
            }
        }
        for (from, to) in self.edges.keys() {
            s.push_str(&format!("  \"{to}\" -> \"{from}\";\n"));
        }
        s.push_str("}\n");
        s
    }
}

/// One source file's lexed tokens and regions, handed to [`analyze`].
pub struct SourceFile<'a> {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Lexer output.
    pub lx: &'a LexOutput,
    /// Test-region classification.
    pub rg: &'a Regions,
}

/// A parsed fn together with where it lives.
#[derive(Debug)]
struct FnRef {
    file: String,
    krate: String,
    item: FnItem,
}

/// The workspace-level analysis result.
pub struct WorkspaceGraph {
    /// The observed crate dependency graph (for `--graph dot`).
    pub crate_graph: CrateGraph,
    /// Graph-rule findings: layering-discipline and lock-ordering.
    pub findings: Vec<Finding>,
    fns: Vec<FnRef>,
    reachable: Vec<bool>,
}

impl WorkspaceGraph {
    /// Is the token at index `tok` of `file` inside a function that is
    /// transitively reachable from a mining/serialization entry point?
    pub fn reachable_at(&self, file: &str, tok: usize) -> bool {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.file == file && f.item.body.0 < tok && tok < f.item.body.1)
            .min_by_key(|(_, f)| f.item.body.1 - f.item.body.0)
            .is_some_and(|(i, _)| self.reachable[i])
    }
}

/// Crate name of a workspace-relative source path
/// (`crates/core/src/miner.rs` → `core`).
fn crate_of(rel: &str) -> Option<&str> {
    rel.strip_prefix("crates/")?.split('/').next()
}

/// Run the workspace-level analysis over the live (non-test-only) files.
pub fn analyze(root: &Path, files: &[SourceFile<'_>]) -> WorkspaceGraph {
    let crate_graph = build_crate_graph(root, files);
    let mut findings = layering_findings(&crate_graph);

    // Parse every file's fns; test fns never join the graph.
    let mut fns: Vec<FnRef> = Vec::new();
    for f in files {
        let Some(krate) = crate_of(&f.rel) else {
            continue;
        };
        for item in parser::parse_file(&f.lx.tokens, f.rg) {
            fns.push(FnRef {
                file: f.rel.clone(),
                krate: krate.to_string(),
                item,
            });
        }
    }

    let callees = resolve_calls(&fns);
    let reachable = reach_entry_points(&fns, &callees);
    findings.extend(lock_order_findings(&fns, &callees));

    WorkspaceGraph {
        crate_graph,
        findings,
        fns,
        reachable,
    }
}

/// Observe crate edges from manifests and `flipper_<x>::` use paths.
fn build_crate_graph(root: &Path, files: &[SourceFile<'_>]) -> CrateGraph {
    let mut g = CrateGraph::default();
    let mut add_edge = |from: String, to: String, w: Witness| {
        let key = (from, to);
        match g.edges.get(&key) {
            Some(existing) if *existing <= w => {}
            _ => {
                g.edges.insert(key, w);
            }
        }
    };

    // Every crate directory a scanned file sits in is a node.
    let mut crates = BTreeSet::new();
    for f in files {
        if let Some(c) = crate_of(&f.rel) {
            crates.insert(c.to_string());
        }
    }

    // Manifest edges: `flipper-<to>` lines inside `[dependencies]` (dev
    // dependencies deliberately excluded — test-only coupling does not
    // shape the runtime architecture). Fixture trees have no manifests;
    // `read_to_string` misses are simply no edges.
    for from in &crates {
        let manifest_rel = format!("crates/{from}/Cargo.toml");
        let Ok(text) = std::fs::read_to_string(root.join(&manifest_rel)) else {
            continue;
        };
        let mut in_deps = false;
        for (idx, line) in text.lines().enumerate() {
            let trimmed = line.trim();
            if trimmed.starts_with('[') {
                in_deps = trimmed == "[dependencies]";
                continue;
            }
            if !in_deps {
                continue;
            }
            let Some(dep) = trimmed.split(['=', ' ']).next() else {
                continue;
            };
            if let Some(to) = dep.strip_prefix("flipper-") {
                add_edge(
                    from.clone(),
                    to.to_string(),
                    Witness {
                        file: manifest_rel.clone(),
                        line: idx as u32 + 1,
                        col: 1,
                    },
                );
            }
        }
    }

    // Use-path edges: a `flipper_<to>::` path in non-test code.
    for f in files {
        let Some(from) = crate_of(&f.rel) else {
            continue;
        };
        for (i, t) in f.lx.tokens.iter().enumerate() {
            if t.kind != TokKind::Ident || f.rg.is_test(i) {
                continue;
            }
            let Some(to) = t.text.strip_prefix("flipper_") else {
                continue;
            };
            let followed_by_path = f.lx.tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
                && f.lx.tokens.get(i + 2).is_some_and(|n| n.is_punct(':'));
            if !followed_by_path || to == from {
                continue;
            }
            add_edge(
                from.to_string(),
                to.to_string(),
                Witness {
                    file: f.rel.clone(),
                    line: t.line,
                    col: t.col,
                },
            );
        }
    }

    for (from, to) in g.edges.keys() {
        crates.insert(from.clone());
        crates.insert(to.clone());
    }
    g.crates = crates;
    g
}

/// Check every observed edge against the layer map and the declared edge
/// list.
fn layering_findings(g: &CrateGraph) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut graph_finding = |w: &Witness, message: String| {
        findings.push(Finding {
            rule: "layering-discipline",
            file: w.file.clone(),
            line: w.line,
            col: w.col,
            message,
            allowed: false,
            tok: NO_TOK,
            reachable: false,
        });
    };
    for ((from, to), w) in &g.edges {
        let (Some(lf), Some(lt)) = (layer_of(from), layer_of(to)) else {
            let unknown = if layer_of(from).is_none() { from } else { to };
            graph_finding(
                w,
                format!(
                    "crate `{unknown}` is not in the layer map; declare it in \
                     LAYERS (crates/lint/src/graph.rs) before depending on it"
                ),
            );
            continue;
        };
        if lf <= lt {
            graph_finding(
                w,
                format!(
                    "back-edge: `{from}` (layer {lf}) depends on `{to}` (layer {lt}); \
                     dependency edges must point to a strictly lower layer"
                ),
            );
        } else if from != "integration" && !ALLOWED_EDGES.contains(&(from.as_str(), to.as_str())) {
            graph_finding(
                w,
                format!(
                    "undeclared edge: `{from}` → `{to}` is layer-legal but not in \
                     ALLOWED_EDGES (crates/lint/src/graph.rs); declare it deliberately \
                     or drop the dependency"
                ),
            );
        }
    }
    findings
}

/// Convert `CamelCase` to `snake_case` for qualifier ↔ file-stem matches.
fn snake(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for c in name.chars() {
        if c.is_uppercase() {
            if !out.is_empty() {
                out.push('_');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// File stem of a relative path (`crates/api/src/session.rs` → `session`).
fn stem(rel: &str) -> &str {
    rel.rsplit('/')
        .next()
        .unwrap_or(rel)
        .trim_end_matches(".rs")
}

/// Resolve every call site of every non-test fn to candidate callee
/// indices. Resolution is tiered to bound over-approximation: the most
/// specific non-empty candidate set wins.
fn resolve_calls(fns: &[FnRef]) -> Vec<Vec<usize>> {
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        if !f.item.is_test {
            by_name.entry(f.item.name.as_str()).or_default().push(i);
        }
    }
    fns.iter()
        .enumerate()
        .map(|(caller, f)| {
            if f.item.is_test {
                return Vec::new();
            }
            let mut out: Vec<usize> = Vec::new();
            for call in &f.item.calls {
                out.extend(resolve_one(call, caller, fns, &by_name));
            }
            out.sort_unstable();
            out.dedup();
            out
        })
        .collect()
}

/// Resolution tiers for one call site (see [`CallKind`]).
fn resolve_one(
    call: &CallSite,
    caller: usize,
    fns: &[FnRef],
    by_name: &BTreeMap<&str, Vec<usize>>,
) -> Vec<usize> {
    let Some(cands) = by_name.get(call.name.as_str()) else {
        return Vec::new();
    };
    let pick = |pred: &dyn Fn(usize) -> bool| -> Vec<usize> {
        cands.iter().copied().filter(|&i| pred(i)).collect()
    };
    match call.kind {
        CallKind::Qualified => {
            let q = match call.qualifier.as_deref() {
                Some("Self") => fns[caller].item.impl_type.clone(),
                Some(q) => Some(q.to_string()),
                None => None,
            };
            let Some(q) = q else {
                return cands.clone(); // `<T as Trait>::f(…)` — keep them all
            };
            let tier1 = pick(&|i| fns[i].item.impl_type.as_deref() == Some(q.as_str()));
            if !tier1.is_empty() {
                return tier1;
            }
            let q_snake = snake(&q);
            let q_crate = q.strip_prefix("flipper_").unwrap_or(&q);
            let same_crate = matches!(q.as_str(), "crate" | "self" | "super");
            let tier2 = pick(&|i| {
                stem(&fns[i].file) == q_snake
                    || fns[i].krate == q_crate
                    || (same_crate && fns[i].krate == fns[caller].krate)
            });
            if !tier2.is_empty() {
                return tier2;
            }
            cands.clone()
        }
        CallKind::Method => {
            let tier1 = pick(&|i| fns[i].item.has_self);
            if !tier1.is_empty() {
                return tier1;
            }
            cands.clone()
        }
        CallKind::Bare => {
            let tier1 = pick(&|i| fns[i].file == fns[caller].file);
            if !tier1.is_empty() {
                return tier1;
            }
            let tier2 = pick(&|i| fns[i].krate == fns[caller].krate);
            if !tier2.is_empty() {
                return tier2;
            }
            cands.clone()
        }
    }
}

/// Is this fn a mining/serialization entry point? The set mirrors the
/// public result path: `Session::mine`/`mine_seeded`, `Sweep::run`, and
/// everything on `JsonWriter` (the byte-pinned serializer).
fn is_entry_point(f: &FnRef) -> bool {
    if f.item.is_test {
        return false;
    }
    match f.item.impl_type.as_deref() {
        Some("Session") => f.item.name == "mine" || f.item.name == "mine_seeded",
        Some("Sweep") => f.item.name == "run",
        Some("JsonWriter") => true,
        _ => false,
    }
}

/// BFS over the call graph from the entry points.
fn reach_entry_points(fns: &[FnRef], callees: &[Vec<usize>]) -> Vec<bool> {
    let mut reachable = vec![false; fns.len()];
    let mut queue: Vec<usize> = fns
        .iter()
        .enumerate()
        .filter(|(_, f)| is_entry_point(f))
        .map(|(i, _)| i)
        .collect();
    for &i in &queue {
        reachable[i] = true;
    }
    while let Some(i) = queue.pop() {
        for &j in &callees[i] {
            if !reachable[j] {
                reachable[j] = true;
                queue.push(j);
            }
        }
    }
    reachable
}

/// Build the lock-acquisition-order relation and flag cyclic components.
///
/// An edge `A → B` means: somewhere, lock class `A` is held (acquired
/// earlier in the same fn body) when `B` is acquired — directly, or inside
/// a callee that transitively acquires `B`. Self-edges are ignored (a
/// token-level scan cannot tell re-acquisition after drop from a
/// double-lock). A cycle means two code paths acquire the same classes in
/// opposite orders — the classic deadlock shape.
fn lock_order_findings(fns: &[FnRef], callees: &[Vec<usize>]) -> Vec<Finding> {
    // Transitive lock classes per fn, to fixpoint.
    let mut acquired: Vec<BTreeSet<String>> = fns
        .iter()
        .map(|f| f.item.locks.iter().map(|l| l.class.clone()).collect())
        .collect();
    loop {
        let mut changed = false;
        for i in 0..fns.len() {
            for &j in &callees[i] {
                if i == j {
                    continue;
                }
                let extra: Vec<String> = acquired[j]
                    .iter()
                    .filter(|c| !acquired[i].contains(*c))
                    .cloned()
                    .collect();
                if !extra.is_empty() {
                    acquired[i].extend(extra);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Order edges with their first witness.
    let mut edges: BTreeMap<(String, String), Witness> = BTreeMap::new();
    let mut add = |from: &str, to: &str, w: Witness| {
        if from == to {
            return;
        }
        let key = (from.to_string(), to.to_string());
        match edges.get(&key) {
            Some(existing) if *existing <= w => {}
            _ => {
                edges.insert(key, w);
            }
        }
    };
    for (i, f) in fns.iter().enumerate() {
        if f.item.is_test {
            continue;
        }
        for lock in &f.item.locks {
            let w = Witness {
                file: f.file.clone(),
                line: lock.line,
                col: lock.col,
            };
            for later in f.item.locks.iter().filter(|l| l.tok > lock.tok) {
                add(&lock.class, &later.class, w.clone());
            }
            for call in f.item.calls.iter().filter(|c| c.tok > lock.tok) {
                // Which fns this call can reach is already resolved; the
                // callee list is per-fn, so re-resolve membership by name.
                for &j in callees[i]
                    .iter()
                    .filter(|&&j| fns[j].item.name == call.name)
                {
                    for class in &acquired[j] {
                        add(&lock.class, class, w.clone());
                    }
                }
            }
        }
    }

    // Pairwise reachability over the (small) class graph, then group the
    // cyclic strongly-connected components.
    let classes: BTreeSet<&String> = edges.keys().flat_map(|(a, b)| [a, b]).collect();
    let reaches = |from: &String, to: &String| -> bool {
        let mut seen = BTreeSet::new();
        let mut queue = vec![from];
        while let Some(c) = queue.pop() {
            for ((a, b), _) in edges.iter().filter(|((a, _), _)| a == c) {
                let _ = a;
                if b == to {
                    return true;
                }
                if seen.insert(b) {
                    queue.push(b);
                }
            }
        }
        false
    };
    let mut findings = Vec::new();
    let mut assigned: BTreeSet<&String> = BTreeSet::new();
    for &c in &classes {
        if assigned.contains(c) {
            continue;
        }
        let scc: Vec<&String> = classes
            .iter()
            .copied()
            .filter(|&d| d == c || (reaches(c, d) && reaches(d, c)))
            .collect();
        if scc.len() < 2 {
            continue;
        }
        assigned.extend(scc.iter().copied());
        let witness = edges
            .iter()
            .filter(|((a, b), _)| scc.contains(&a) && scc.contains(&b))
            .map(|(_, w)| w.clone())
            .min()
            .unwrap_or(Witness {
                file: String::new(),
                line: 1,
                col: 1,
            });
        let names: Vec<&str> = scc.iter().map(|s| s.as_str()).collect();
        findings.push(Finding {
            rule: "lock-ordering",
            file: witness.file,
            line: witness.line,
            col: witness.col,
            message: format!(
                "lock classes {{{}}} are acquired in conflicting orders; pick one \
                 global order and release before acquiring against it",
                names.join(", ")
            ),
            allowed: false,
            tok: NO_TOK,
            reachable: false,
        });
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::regions::analyze as regions_analyze;

    fn ws(files: &[(&str, &str)]) -> WorkspaceGraph {
        let lexed: Vec<(String, crate::lexer::LexOutput)> = files
            .iter()
            .map(|(rel, src)| (rel.to_string(), lex(src)))
            .collect();
        let regioned: Vec<Regions> = lexed
            .iter()
            .map(|(_, lx)| regions_analyze(&lx.tokens))
            .collect();
        let inputs: Vec<SourceFile<'_>> = lexed
            .iter()
            .zip(&regioned)
            .map(|((rel, lx), rg)| SourceFile {
                rel: rel.clone(),
                lx,
                rg,
            })
            .collect();
        analyze(Path::new("/nonexistent-root"), &inputs)
    }

    #[test]
    fn reachability_follows_calls_from_session_mine() {
        let g = ws(&[
            (
                "crates/api/src/session.rs",
                "impl Session { pub fn mine(&self) { flipper_core::step(); } }",
            ),
            (
                "crates/core/src/miner.rs",
                "pub fn step() { helper(); }\nfn helper() {}\nfn orphan() {}",
            ),
        ]);
        let lx = lex("pub fn step() { helper(); }\nfn helper() {}\nfn orphan() {}");
        // Token index of `helper` body content: find via fns directly.
        let step = g.fns.iter().position(|f| f.item.name == "helper").unwrap();
        assert!(g.reachable[step]);
        let orphan = g.fns.iter().position(|f| f.item.name == "orphan").unwrap();
        assert!(!g.reachable[orphan]);
        drop(lx);
    }

    #[test]
    fn layering_flags_back_edges_and_undeclared_edges() {
        let g = ws(&[
            (
                "crates/data/src/lib.rs",
                "pub fn up() { flipper_api::touch(); }",
            ),
            (
                "crates/guard/src/lib.rs",
                "pub fn sideways() { flipper_obs::touch(); }",
            ),
        ]);
        let msgs: Vec<&str> = g.findings.iter().map(|f| f.message.as_str()).collect();
        assert!(
            msgs.iter().any(|m| m.contains("back-edge")),
            "data→api must be a back-edge: {msgs:?}"
        );
        // guard(1) → obs(1) is same-layer: also a back-edge (not strictly
        // lower), not an undeclared-edge.
        assert_eq!(g.findings.len(), 2, "{msgs:?}");
        assert!(g.findings.iter().all(|f| f.rule == "layering-discipline"));
    }

    #[test]
    fn declared_edges_are_clean() {
        let g = ws(&[(
            "crates/core/src/miner.rs",
            "pub fn f() { flipper_data::count(); }",
        )]);
        assert!(g.findings.is_empty(), "{:?}", g.findings);
        assert!(g
            .crate_graph
            .edges
            .contains_key(&("core".to_string(), "data".to_string())));
    }

    #[test]
    fn lock_cycles_are_one_finding_per_component() {
        let g = ws(&[(
            "crates/core/src/miner.rs",
            "fn a() { let x = m1.lock(); let y = m2.lock(); }\n\
             fn b() { let y = m2.lock(); let x = m1.lock(); }",
        )]);
        let locks: Vec<&Finding> = g
            .findings
            .iter()
            .filter(|f| f.rule == "lock-ordering")
            .collect();
        assert_eq!(locks.len(), 1, "{:?}", g.findings);
        assert!(locks[0].message.contains("m1, m2"));
        assert_eq!((locks[0].line, locks[0].col), (1, 21));
    }

    #[test]
    fn lock_order_without_inversion_is_clean() {
        let g = ws(&[(
            "crates/guard/src/fault.rs",
            "fn arm() { let a = arm_lock().lock(); let s = state().lock(); }\n\
             fn probe() { let s = state().lock(); }",
        )]);
        assert!(g.findings.is_empty(), "{:?}", g.findings);
    }

    #[test]
    fn transitive_lock_acquisition_feeds_ordering() {
        let g = ws(&[(
            "crates/core/src/miner.rs",
            "fn a() { let x = m1.lock(); take_two(); }\n\
             fn take_two() { let y = m2.lock(); }\n\
             fn b() { let y = m2.lock(); take_one(); }\n\
             fn take_one() { let x = m1.lock(); }",
        )]);
        assert_eq!(
            g.findings
                .iter()
                .filter(|f| f.rule == "lock-ordering")
                .count(),
            1,
            "{:?}",
            g.findings
        );
    }

    #[test]
    fn dot_export_is_deterministic_and_layer_labelled() {
        let g = ws(&[(
            "crates/core/src/miner.rs",
            "pub fn f() { flipper_data::count(); }",
        )]);
        let dot = g.crate_graph.to_dot();
        assert!(dot.starts_with("digraph flipper {"));
        assert!(dot.contains("\"core\" [label=\"core\\nlayer 3\"]"));
        assert!(dot.contains("\"data\" -> \"core\";"));
        assert_eq!(dot, g.crate_graph.to_dot());
    }

    #[test]
    fn declared_edge_table_is_layer_consistent() {
        // Every allowlisted edge must itself point strictly downward —
        // the table cannot legalize a back-edge.
        for (from, to) in ALLOWED_EDGES {
            let (lf, lt) = (layer_of(from).unwrap(), layer_of(to).unwrap());
            assert!(lf > lt, "ALLOWED_EDGES entry {from}→{to} is not downward");
        }
    }
}
