//! # flipper-lint
//!
//! An offline, dependency-free static-analysis pass over the workspace's
//! own sources. `cargo clippy` knows Rust; this knows *Flipper*: the
//! invariants PR 1–5 paid for — byte-pinned `flipper-results/v1` output,
//! bit-identical counts at every thread count, typed errors everywhere —
//! are enforced by project-specific rules instead of reviewer vigilance.
//!
//! The pipeline per file: a hand-rolled lexer ([`lexer`]) that cannot be
//! fooled by string/char literals or nested comments, a test-region
//! tracker ([`regions`]) so rules fire on library code only, and a rule
//! engine ([`rules`]) emitting `file:line:col` diagnostics. Findings
//! aggregate into a [`report::Report`] checked against the committed
//! ratchet baseline (`LINT_BASELINE.json`): existing debt cannot grow, and
//! burned-down counts are locked in by re-blessing.
//!
//! Run it from anywhere in the workspace:
//!
//! ```text
//! cargo run -p flipper-lint --release              # human summary
//! cargo run -p flipper-lint --release -- --json    # flipper-lint/v1 JSON
//! cargo run -p flipper-lint --release -- --bless   # rewrite the baseline
//! ```

pub mod graph;
pub mod lexer;
pub mod parser;
pub mod regions;
pub mod report;
pub mod rules;

use report::Report;
use std::fmt;
use std::path::{Path, PathBuf};

/// Everything one analysis run produces: the findings report plus the
/// observed crate dependency graph (for `--graph dot`).
pub struct Analysis {
    /// Aggregated findings, checked against the ratchet baseline.
    pub report: Report,
    /// The observed crate dependency graph.
    pub crate_graph: graph::CrateGraph,
}

/// Errors from the analysis driver (I/O and baseline problems; rule
/// findings are data, not errors).
#[derive(Debug)]
pub enum LintError {
    /// Filesystem access failed.
    Io {
        /// What was being accessed.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The baseline file is malformed.
    Baseline {
        /// Path of the offending file.
        path: PathBuf,
        /// Parser message.
        message: String,
    },
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { context, source } => write!(f, "{context}: {source}"),
            LintError::Baseline { path, message } => {
                write!(f, "malformed baseline {}: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for LintError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LintError::Io { source, .. } => Some(source),
            LintError::Baseline { .. } => None,
        }
    }
}

fn io_err(context: impl Into<String>, source: std::io::Error) -> LintError {
    LintError::Io {
        context: context.into(),
        source,
    }
}

/// Analyze every crate source under `root` (the workspace directory) and
/// aggregate the findings.
///
/// Scanned: `crates/<name>/src/**/*.rs`. Test directories, examples,
/// fixtures and `target/` are out of scope by construction — and files
/// declared as `#[cfg(test)] mod <name>;` by a sibling are skipped as
/// test-only in their entirety.
pub fn analyze_workspace(root: &Path) -> Result<Report, LintError> {
    analyze_workspace_full(root).map(|a| a.report)
}

/// Full analysis: per-file rules plus the workspace pass (symbol table,
/// call graph, crate graph). Per-file findings at panic sites that are
/// transitively reachable from a mining/serialization entry point are
/// re-ruled to `panic-reachability` — the hard-zero variant — unless an
/// explicit `lint:allow(panic-hygiene, …)` covers them.
pub fn analyze_workspace_full(root: &Path) -> Result<Analysis, LintError> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs = read_dir_sorted(&crates_dir)?;
    crate_dirs.retain(|p| p.is_dir());
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    files.sort();

    // Pass 1: lex everything, recording per-directory test-only modules.
    let mut lexed = Vec::with_capacity(files.len());
    let mut test_only: Vec<PathBuf> = Vec::new();
    for path in &files {
        let text = std::fs::read_to_string(path)
            .map_err(|e| io_err(format!("read {}", path.display()), e))?;
        let lx = lexer::lex(&text);
        let rg = regions::analyze(&lx.tokens);
        if let Some(dir) = path.parent() {
            for name in &rg.cfg_test_mods {
                test_only.push(dir.join(format!("{name}.rs")));
                test_only.push(dir.join(name).join("mod.rs"));
            }
        }
        lexed.push((path.clone(), lx, rg));
    }

    // Pass 2: run the per-file rules on every live file, and hand the
    // same lexed files to the workspace pass.
    let mut findings = Vec::new();
    let mut scanned = 0usize;
    let mut live = Vec::new();
    for (path, lx, rg) in &lexed {
        if test_only.contains(path) {
            continue;
        }
        scanned += 1;
        let rel = relative_unix(root, path);
        findings.extend(rules::check_file(&rel, lx, rg));
        live.push(graph::SourceFile { rel, lx, rg });
    }

    // Pass 3: workspace analysis — crate graph, call graph, locks.
    let wg = graph::analyze(root, &live);
    for f in &mut findings {
        if f.tok == rules::NO_TOK {
            continue;
        }
        f.reachable = wg.reachable_at(&f.file, f.tok);
        // A panic site on the hot result path is not ratchetable debt; an
        // explicit allow (already folded into `allowed`) still stands.
        if f.rule == "panic-hygiene" && f.reachable && !f.allowed {
            f.rule = "panic-reachability";
        }
    }
    findings.extend(wg.findings);

    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    Ok(Analysis {
        report: Report {
            files_scanned: scanned,
            findings,
        },
        crate_graph: wg.crate_graph,
    })
}

/// Locate the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let rd = std::fs::read_dir(dir).map_err(|e| io_err(format!("read {}", dir.display()), e))?;
    let mut out = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| io_err(format!("read {}", dir.display()), e))?;
        out.push(entry.path());
    }
    out.sort();
    Ok(out)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    for path in read_dir_sorted(dir)? {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, with forward slashes, for stable diagnostics
/// across platforms.
fn relative_unix(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
