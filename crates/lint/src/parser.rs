//! A token-level item parser on top of [`crate::lexer`]: just enough
//! structure recovery — `impl` blocks, `fn` items, call sites, lock
//! acquisitions — for the workspace-graph rules (panic-reachability,
//! lock-ordering) to resolve names across files.
//!
//! This is deliberately not a Rust parser. It never builds an expression
//! tree; it walks the token stream once per concern, using brace matching
//! for item extents. The recovered facts over-approximate (a tuple-struct
//! construction looks like a call, a method name matches every inherent
//! method with that name) — acceptable for reachability, where an extra
//! edge can only make the analysis more conservative, never less.

use crate::lexer::{Tok, TokKind};
use crate::regions::Regions;

/// How a call site is written, which decides how it resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `recv.name(…)` — resolves against methods (`fn` with a `self`
    /// receiver) anywhere in the workspace.
    Method,
    /// `Qual::name(…)` — resolves against the impl block / module / crate
    /// named by the last qualifying segment.
    Qualified,
    /// `name(…)` — resolves same-file first, then same-crate, then
    /// workspace-wide.
    Bare,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Call shape.
    pub kind: CallKind,
    /// Callee name (the identifier before the argument list).
    pub name: String,
    /// Last qualifying path segment for [`CallKind::Qualified`] calls
    /// (`Session` in `Session::open(…)`), when one is present.
    pub qualifier: Option<String>,
    /// Token index of the callee name.
    pub tok: usize,
}

/// One lock acquisition: `receiver.lock()`, `receiver.read()`,
/// `receiver.write()` or `receiver().lock()` with an empty argument list
/// (the zero-arg shape separates `Mutex::lock`/`RwLock::read` from
/// `io::Read::read(buf)` and friends).
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Lock class: the receiver identifier (`supports`, `STORE`, …).
    pub class: String,
    /// Token index of the acquiring method name.
    pub tok: usize,
    /// 1-based source line of the acquisition.
    pub line: u32,
    /// 1-based source column of the acquisition.
    pub col: u32,
}

/// One `fn` item recovered from a file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Self type of the enclosing `impl` block, when there is one
    /// (`Session` for `impl Session { … }` and `impl Mineable for Session`).
    pub impl_type: Option<String>,
    /// Does the parameter list have a `self` receiver?
    pub has_self: bool,
    /// Is the item inside test-only code?
    pub is_test: bool,
    /// Token range of the body, `(open_brace, close_brace)` inclusive.
    pub body: (usize, usize),
    /// Token index of the name, for diagnostics.
    pub tok: usize,
    /// Call sites inside the body, in token order.
    pub calls: Vec<CallSite>,
    /// Lock acquisitions inside the body, in token order.
    pub locks: Vec<LockSite>,
}

/// Keywords that look like `name(…)` call sites but never are.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "let", "fn",
    "impl", "struct", "enum", "union", "trait", "mod", "use", "pub", "unsafe", "move", "ref",
    "mut", "as", "in", "where", "dyn", "self", "Self", "super", "crate", "async", "await", "const",
    "static", "type", "extern", "box", "yield",
];

/// An `impl` block's self-type and body extent.
#[derive(Debug)]
struct ImplSpan {
    type_name: String,
    start: usize,
    end: usize,
}

/// Parse one lexed file into its `fn` items with call and lock sites.
pub fn parse_file(toks: &[Tok], rg: &Regions) -> Vec<FnItem> {
    let impls = find_impls(toks);
    let mut fns = find_fns(toks, rg, &impls);
    attribute_sites(toks, &mut fns);
    fns
}

/// Locate `impl … { … }` item blocks and their self-type names.
fn find_impls(toks: &[Tok]) -> Vec<ImplSpan> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("impl") || !impl_is_item(toks, i) {
            continue;
        }
        let Some((type_name, open)) = impl_header(toks, i) else {
            continue;
        };
        let Some(close) = matching_brace(toks, open) else {
            continue;
        };
        out.push(ImplSpan {
            type_name,
            start: open,
            end: close,
        });
    }
    out
}

/// Is the `impl` at index `i` an item (vs `-> impl Trait` in a return
/// type)? Items start a line of their own: nothing, `}`/`;`/`]` (end of a
/// previous item or attribute) or an `unsafe` qualifier precedes them.
fn impl_is_item(toks: &[Tok], i: usize) -> bool {
    match i.checked_sub(1).and_then(|p| toks.get(p)) {
        None => true,
        Some(p) => p.is_punct('}') || p.is_punct(';') || p.is_punct(']') || p.is_ident("unsafe"),
    }
}

/// Extract the self-type name of the `impl` header starting at `i` and the
/// index of its opening `{`. The self type is the last angle-depth-0 path
/// identifier before the brace — after `for` when the block is a trait
/// impl, and stopping at `where`.
fn impl_header(toks: &[Tok], i: usize) -> Option<(String, usize)> {
    let mut j = i + 1;
    let mut angle = 0i32;
    let mut name: Option<String> = None;
    while let Some(t) = toks.get(j) {
        match t.kind {
            TokKind::Punct => match t.punct {
                '<' => angle += 1,
                '>' => angle -= 1,
                '{' if angle <= 0 => return name.map(|n| (n, j)),
                ';' => return None, // `impl Trait for Type;` has no body
                _ => {}
            },
            TokKind::Ident if angle <= 0 => {
                if t.text == "for" {
                    name = None; // the self type is on the right of `for`
                } else if t.text == "where" {
                    // Names in the where clause are bounds, not the type.
                    let brace = (j..toks.len()).find(|&k| toks[k].is_punct('{'))?;
                    return name.map(|n| (n, brace));
                } else {
                    name = Some(t.text.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Locate every `fn name … { body }` item (trait-method declarations that
/// end in `;` carry no body and are skipped).
fn find_fns(toks: &[Tok], rg: &Regions, impls: &[ImplSpan]) -> Vec<FnItem> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("fn") {
            continue;
        }
        let name_tok = i + 1;
        let Some(name) = toks.get(name_tok).filter(|t| t.kind == TokKind::Ident) else {
            continue; // `fn(u32) -> u32` pointer type
        };
        // Parameter list: skip optional generics, then match the parens.
        let mut j = name_tok + 1;
        if toks.get(j).is_some_and(|t| t.is_punct('<')) {
            let mut angle = 0i32;
            while let Some(t) = toks.get(j) {
                if t.is_punct('<') {
                    angle += 1;
                } else if t.is_punct('>') {
                    angle -= 1;
                    if angle == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        if !toks.get(j).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let params_open = j;
        let mut depth = 0usize;
        let mut params_close = None;
        while let Some(t) = toks.get(j) {
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    params_close = Some(j);
                    break;
                }
            }
            j += 1;
        }
        let Some(params_close) = params_close else {
            continue;
        };
        let has_self = toks[params_open..=params_close]
            .iter()
            .any(|t| t.is_ident("self"));
        // Body: the first `{` after the signature; a `;` first means a
        // trait-method declaration without a body.
        let mut k = params_close + 1;
        let mut body = None;
        while let Some(t) = toks.get(k) {
            if t.is_punct('{') {
                body = matching_brace(toks, k).map(|close| (k, close));
                break;
            }
            if t.is_punct(';') {
                break;
            }
            k += 1;
        }
        let Some(body) = body else { continue };
        // Innermost impl block containing this fn names the self type.
        let impl_type = impls
            .iter()
            .filter(|s| s.start < i && i < s.end)
            .min_by_key(|s| s.end - s.start)
            .map(|s| s.type_name.clone());
        out.push(FnItem {
            name: name.text.clone(),
            impl_type,
            has_self,
            is_test: rg.is_test(name_tok),
            body,
            tok: name_tok,
            calls: Vec::new(),
            locks: Vec::new(),
        });
    }
    out
}

/// After the identifier at `i`, is there an argument list — `(` directly,
/// or through a turbofish `::<…>(`?
fn call_paren_after(toks: &[Tok], i: usize) -> bool {
    let mut j = i + 1;
    if toks.get(j).is_some_and(|t| t.is_punct(':'))
        && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(j + 2).is_some_and(|t| t.is_punct('<'))
    {
        let mut angle = 0i32;
        j += 2;
        while let Some(t) = toks.get(j) {
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle -= 1;
                if angle == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    toks.get(j).is_some_and(|t| t.is_punct('('))
}

/// Scan the whole token stream for call and lock sites and attribute each
/// to the innermost enclosing fn body. Sites outside any body (const
/// initializers, statics) are dropped.
fn attribute_sites(toks: &[Tok], fns: &mut [FnItem]) {
    fn enclosing(fns: &[FnItem], tok: usize) -> Option<usize> {
        fns.iter()
            .enumerate()
            .filter(|(_, f)| f.body.0 < tok && tok < f.body.1)
            .min_by_key(|(_, f)| f.body.1 - f.body.0)
            .map(|(idx, _)| idx)
    }
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if let Some(site) = lock_site_at(toks, i) {
            if let Some(f) = enclosing(fns, i) {
                fns[f].locks.push(site);
            }
            continue;
        }
        if NON_CALL_KEYWORDS.contains(&t.text.as_str()) || !call_paren_after(toks, i) {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|p| toks.get(p));
        let call = if prev.is_some_and(|p| p.is_punct('.')) {
            CallSite {
                kind: CallKind::Method,
                name: t.text.clone(),
                qualifier: None,
                tok: i,
            }
        } else if prev.is_some_and(|p| p.is_punct(':')) && i >= 2 && toks[i - 2].is_punct(':') {
            let qualifier = (i >= 3)
                .then(|| &toks[i - 3])
                .filter(|q| q.kind == TokKind::Ident)
                .map(|q| q.text.clone());
            CallSite {
                kind: CallKind::Qualified,
                name: t.text.clone(),
                qualifier,
                tok: i,
            }
        } else if prev.is_none_or(|p| !p.is_ident("fn")) {
            CallSite {
                kind: CallKind::Bare,
                name: t.text.clone(),
                qualifier: None,
                tok: i,
            }
        } else {
            continue;
        };
        if let Some(f) = enclosing(fns, i) {
            fns[f].calls.push(call);
        }
    }
}

/// Recognize a lock acquisition ending at the method identifier `i`:
/// `IDENT.lock()`, `IDENT.read()`, `IDENT.write()` or `IDENT().lock()`
/// (and the `read`/`write` variants), always with an empty argument list.
fn lock_site_at(toks: &[Tok], i: usize) -> Option<LockSite> {
    let t = &toks[i];
    if !matches!(t.text.as_str(), "lock" | "read" | "write") {
        return None;
    }
    if !(toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        && toks.get(i + 2).is_some_and(|n| n.is_punct(')')))
    {
        return None;
    }
    if !i
        .checked_sub(1)
        .and_then(|p| toks.get(p))
        .is_some_and(|p| p.is_punct('.'))
    {
        return None;
    }
    // Receiver: the identifier before the `.`, looking through one
    // zero-arg call (`state()`); a `self.` prefix is looked through by
    // taking the field name (`self.supports.read()` → `supports`).
    let mut r = i.checked_sub(2)?;
    if toks[r].is_punct(')') && r >= 1 && toks[r - 1].is_punct('(') {
        r = r.checked_sub(2)?;
    }
    let recv = toks.get(r)?;
    if recv.kind != TokKind::Ident || recv.text == "self" {
        return None;
    }
    Some(LockSite {
        class: recv.text.clone(),
        tok: i,
        line: t.line,
        col: t.col,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::regions::analyze;

    fn parse(src: &str) -> Vec<FnItem> {
        let lx = lex(src);
        let rg = analyze(&lx.tokens);
        parse_file(&lx.tokens, &rg)
    }

    #[test]
    fn fns_and_impl_types_are_recovered() {
        let fns = parse(
            "impl Session {\n  pub fn mine(&self) -> u32 { helper() }\n}\n\
             impl Drop for Session { fn drop(&mut self) {} }\n\
             fn helper() -> u32 { 7 }\n\
             impl<T: Clone> Wrapper<T> { fn get(&self) -> &T { &self.0 } }",
        );
        let names: Vec<(&str, Option<&str>, bool)> = fns
            .iter()
            .map(|f| (f.name.as_str(), f.impl_type.as_deref(), f.has_self))
            .collect();
        assert_eq!(
            names,
            vec![
                ("mine", Some("Session"), true),
                ("drop", Some("Session"), true),
                ("helper", None, false),
                ("get", Some("Wrapper"), true),
            ]
        );
    }

    #[test]
    fn return_position_impl_is_not_a_block() {
        let fns = parse("fn gen() -> impl Iterator<Item = u32> { (0..3).map(step) }\nfn step(x: u32) -> u32 { x }");
        assert_eq!(fns.len(), 2);
        assert!(fns.iter().all(|f| f.impl_type.is_none()));
    }

    #[test]
    fn call_kinds_are_classified() {
        let fns =
            parse("fn f() { helper(); Session::open(x); cfg.run::<u32>(); let t = Point(1, 2); }");
        let calls: Vec<(CallKind, &str, Option<&str>)> = fns[0]
            .calls
            .iter()
            .map(|c| (c.kind, c.name.as_str(), c.qualifier.as_deref()))
            .collect();
        assert_eq!(
            calls,
            vec![
                (CallKind::Bare, "helper", None),
                (CallKind::Qualified, "open", Some("Session")),
                (CallKind::Method, "run", None),
                (CallKind::Bare, "Point", None),
            ]
        );
    }

    #[test]
    fn keywords_and_macros_are_not_calls() {
        let fns = parse("fn f() { if (x) { return (1); } while (y) {} vec![1]; println!(\"t\"); }");
        assert!(fns[0].calls.is_empty(), "{:?}", fns[0].calls);
    }

    #[test]
    fn nested_fns_own_their_calls() {
        let fns = parse("fn outer() { fn inner() { deep(); } shallow(); }");
        let outer = fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = fns.iter().find(|f| f.name == "inner").unwrap();
        assert_eq!(
            outer
                .calls
                .iter()
                .map(|c| c.name.as_str())
                .collect::<Vec<_>>(),
            ["shallow"]
        );
        assert_eq!(
            inner
                .calls
                .iter()
                .map(|c| c.name.as_str())
                .collect::<Vec<_>>(),
            ["deep"]
        );
    }

    #[test]
    fn lock_sites_recover_receiver_classes() {
        let fns = parse(
            "fn f(&self) {\n  let g = self.supports.read();\n  let s = state().lock();\n  STORE.lock();\n  file.read(buf);\n}",
        );
        let classes: Vec<&str> = fns[0].locks.iter().map(|l| l.class.as_str()).collect();
        assert_eq!(classes, ["supports", "state", "STORE"]);
        assert_eq!(fns[0].locks[0].line, 2);
    }

    #[test]
    fn trait_method_declarations_have_no_body() {
        let fns = parse("trait T { fn decl(&self) -> u32; fn with_default(&self) -> u32 { 1 } }");
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["with_default"]);
    }

    #[test]
    fn test_regions_mark_fns() {
        let fns = parse("fn live() {}\n#[cfg(test)]\nmod tests { fn t() {} }");
        assert!(!fns.iter().find(|f| f.name == "live").unwrap().is_test);
        assert!(fns.iter().find(|f| f.name == "t").unwrap().is_test);
    }
}
