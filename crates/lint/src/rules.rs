//! The rule engine: project-specific invariants checked over the token
//! stream of every workspace source file.
//!
//! Rules are tuned to invariants PR 1–5 established by hand and review:
//!
//! | rule | invariant it guards |
//! |------|---------------------|
//! | `panic-hygiene` | library crates return typed errors, they don't panic |
//! | `determinism` | result-determining modules are free of hash-iteration order and wall-clock reads (`flipper-results/v1` is byte-pinned) |
//! | `error-hygiene` | no `Result<_, String>` / `Box<dyn Error>` in `pub` signatures |
//! | `concurrency-discipline` | raw `std::thread` only inside `flipper_data::exec`, where shard-invariance is proven |
//! | `unsafe-audit` | every `unsafe` block/impl carries a `// SAFETY:` justification |
//! | `allow-hygiene` | `lint:allow` comments name a real rule and give a reason |
//! | `panic-reachability` | no un-allowed panic sites reachable from the mining/serialization entry points (workspace call graph) |
//! | `layering-discipline` | crate dependencies follow the declared layer DAG and edge allowlist |
//! | `wire-format-registry` | wire schema tags live in flipper-wire only; everyone else uses the constants |
//! | `lock-ordering` | lock classes are acquired in one global order (no deadlock shapes) |
//!
//! The first six are per-file token rules; the last four come from the
//! workspace pass ([`crate::parser`], [`crate::graph`]) that builds the
//! symbol table, call graph and crate graph.
//!
//! Findings can be suppressed with `// lint:allow(<rule>) <reason>` on the
//! same line or the line above — except for `determinism`,
//! `concurrency-discipline` and `unsafe-audit`, which accept no allows:
//! those invariants hold repo-wide today and an escape hatch would silently
//! re-open them. (To *deliberately* regress one, re-bless the baseline —
//! that shows up in review as a changed `LINT_BASELINE.json`.)

use crate::lexer::{Comment, LexOutput, Tok};
use crate::regions::Regions;

/// Static description of one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule name as used in diagnostics, allow comments and the baseline.
    pub name: &'static str,
    /// One-line description for `--list-rules` and reports.
    pub summary: &'static str,
    /// Whether `// lint:allow(<rule>)` comments may suppress findings.
    pub allowable: bool,
}

/// The rule catalog, in report order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "panic-hygiene",
        summary: "no unwrap/expect/panic!/todo!/unimplemented! in non-test library code \
                  of api/core/data/store/taxonomy/measures/guard",
        allowable: true,
    },
    RuleInfo {
        name: "determinism",
        summary: "no HashMap/HashSet and no Instant/SystemTime reads in modules that \
                  determine pinned result bytes; use BTreeMap or an explicit sort",
        allowable: false,
    },
    RuleInfo {
        name: "error-hygiene",
        summary: "no Result<_, String> or Box<dyn Error> in pub signatures outside bins",
        allowable: true,
    },
    RuleInfo {
        name: "concurrency-discipline",
        summary: "no raw std::thread spawn/scope outside flipper_data::exec",
        allowable: false,
    },
    RuleInfo {
        name: "unsafe-audit",
        summary: "every unsafe block or impl carries a // SAFETY: justification",
        allowable: false,
    },
    RuleInfo {
        name: "allow-hygiene",
        summary: "lint:allow comments name a known, allowable rule and give a reason",
        allowable: false,
    },
    RuleInfo {
        name: "panic-reachability",
        summary: "no un-allowed panic sites in functions transitively reachable from \
                  Session::mine/mine_seeded, Sweep::run or JsonWriter; fix the site \
                  or allow it as panic-hygiene with a reason",
        allowable: false,
    },
    RuleInfo {
        name: "layering-discipline",
        summary: "crate dependencies follow the declared layer DAG and edge allowlist \
                  (LAYERS/ALLOWED_EDGES in crates/lint/src/graph.rs)",
        allowable: false,
    },
    RuleInfo {
        name: "wire-format-registry",
        summary: "wire schema tags are spelled as literals only in the flipper-wire \
                  registry; everywhere else use its named constants",
        allowable: false,
    },
    RuleInfo {
        name: "lock-ordering",
        summary: "lock classes are acquired in one global order; conflicting orders \
                  anywhere in the workspace are flagged as deadlock shapes",
        allowable: false,
    },
];

/// Sentinel token index for findings not anchored to a code token
/// (comment-based findings and workspace-graph findings).
pub const NO_TOK: usize = usize::MAX;

/// Look a rule up by name.
pub fn rule_info(name: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.name == name)
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule that fired.
    pub rule: &'static str,
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable message.
    pub message: String,
    /// Suppressed by a valid `lint:allow` comment?
    pub allowed: bool,
    /// Index of the offending token in its file's token stream, or
    /// [`NO_TOK`] for comment/graph findings. Used to locate the enclosing
    /// function for reachability; not serialized.
    pub tok: usize,
    /// Is the finding inside a function transitively reachable from a
    /// mining/serialization entry point? Set by the workspace pass.
    pub reachable: bool,
}

/// A parsed `// lint:allow(<rule>) <reason>` comment.
#[derive(Debug)]
struct Allow {
    rule: String,
    line: u32,
}

// ---- scopes ---------------------------------------------------------------

/// Crates whose library code must not panic.
const PANIC_CRATES: &[&str] = &[
    "api", "core", "data", "store", "taxonomy", "measures", "guard",
];

/// Modules that determine `flipper-results/v1` bytes, plus the flipper-obs
/// hot-path modules the miner calls into (a nondeterministic container or
/// clock read there could perturb recording order or, worse, leak timing
/// into results). `core/src/stats.rs` is deliberately absent: it hosts the
/// one sanctioned wall-clock read ([`Stopwatch`](../../core/src/stats.rs))
/// whose `elapsed` field the JSON writer excludes from result bytes by
/// construction. `obs/src/clock.rs` is absent for the same reason — it is
/// the observability counterpart of `Stopwatch`, the only module in
/// flipper-obs allowed to touch `Instant`, and its readings only ever flow
/// into traces and metrics, never into result bytes.
const DETERMINISM_FILES: &[&str] = &[
    "crates/core/src/miner.rs",
    "crates/core/src/cell.rs",
    "crates/core/src/stability.rs",
    "crates/core/src/topk.rs",
    "crates/core/src/ranking.rs",
    "crates/core/src/results.rs",
    "crates/data/src/cache.rs",
    "crates/api/src/sink.rs",
    "crates/api/src/session.rs",
    "crates/api/src/sweep.rs",
    "crates/obs/src/recorder.rs",
    "crates/obs/src/span.rs",
    "crates/obs/src/metrics.rs",
    "crates/obs/src/trace.rs",
];

/// The one module allowed to touch `std::thread` — shard-invariance of its
/// pool is proven by the equivalence suite.
const EXEC_FILE: &str = "crates/data/src/exec.rs";

/// The one module that may spell wire schema tags as string literals: the
/// flipper-wire constant registry itself.
const WIRE_REGISTRY_FILE: &str = "crates/wire/src/lib.rs";

fn in_panic_scope(rel: &str) -> bool {
    PANIC_CRATES
        .iter()
        .any(|c| rel.starts_with(&format!("crates/{c}/src/")))
}

fn in_determinism_scope(rel: &str) -> bool {
    DETERMINISM_FILES.contains(&rel)
}

fn in_error_scope(rel: &str) -> bool {
    rel.starts_with("crates/")
        && rel.contains("/src/")
        && !rel.starts_with("crates/cli/")
        && !rel.contains("/bin/")
        && !rel.ends_with("/main.rs")
}

fn in_concurrency_scope(rel: &str) -> bool {
    rel != EXEC_FILE
}

// ---- engine ---------------------------------------------------------------

/// Run every rule over one lexed file. `rel` is the workspace-relative
/// path with forward slashes.
pub fn check_file(rel: &str, lx: &LexOutput, rg: &Regions) -> Vec<Finding> {
    let mut findings = Vec::new();
    let allows = parse_allows(rel, &lx.comments, &mut findings);
    let toks = &lx.tokens;

    if in_panic_scope(rel) {
        panic_hygiene(rel, toks, rg, &mut findings);
    }
    if in_determinism_scope(rel) {
        determinism(rel, toks, rg, &mut findings);
    }
    if in_error_scope(rel) {
        error_hygiene(rel, toks, rg, &mut findings);
    }
    if in_concurrency_scope(rel) {
        concurrency_discipline(rel, toks, rg, &mut findings);
    }
    unsafe_audit(rel, toks, &lx.comments, &mut findings);
    if rel != WIRE_REGISTRY_FILE {
        wire_format_registry(rel, toks, rg, &mut findings);
    }

    // Apply allows: a finding is suppressed when a valid allow for its rule
    // sits on the same line or the line directly above.
    for f in &mut findings {
        if rule_info(f.rule).is_some_and(|r| r.allowable)
            && allows
                .iter()
                .any(|a| a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line))
        {
            f.allowed = true;
        }
    }
    findings.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    findings
}

fn push(
    findings: &mut Vec<Finding>,
    rule: &'static str,
    rel: &str,
    t: &Tok,
    tok: usize,
    message: String,
) {
    findings.push(Finding {
        rule,
        file: rel.to_string(),
        line: t.line,
        col: t.col,
        message,
        allowed: false,
        tok,
        reachable: false,
    });
}

fn panic_hygiene(rel: &str, toks: &[Tok], rg: &Regions, findings: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if rg.is_test(i) {
            continue;
        }
        let method_call = |name: &str| {
            t.is_ident(name)
                && i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        };
        let macro_call =
            |name: &str| t.is_ident(name) && toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
        for name in ["unwrap", "expect"] {
            if method_call(name) {
                push(
                    findings,
                    "panic-hygiene",
                    rel,
                    t,
                    i,
                    format!("`.{name}()` in non-test library code; return a typed error"),
                );
            }
        }
        for name in ["panic", "todo", "unimplemented"] {
            if macro_call(name) {
                push(
                    findings,
                    "panic-hygiene",
                    rel,
                    t,
                    i,
                    format!("`{name}!` in non-test library code; return a typed error"),
                );
            }
        }
    }
}

fn determinism(rel: &str, toks: &[Tok], rg: &Regions, findings: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if rg.is_test(i) || t.kind != crate::lexer::TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "HashMap" | "HashSet" => push(
                findings,
                "determinism",
                rel,
                t,
                i,
                format!(
                    "`{}` in a result-determining module: iteration order is \
                     nondeterministic; use BTreeMap/BTreeSet or an explicit sort",
                    t.text
                ),
            ),
            "Instant" | "SystemTime" => push(
                findings,
                "determinism",
                rel,
                t,
                i,
                format!(
                    "`{}` in a result-determining module: wall-clock reads cannot \
                     feed {} bytes; keep timing behind flipper_core::RunStats \
                     (excluded from result bytes)",
                    t.text,
                    flipper_wire::RESULTS_V1
                ),
            ),
            _ => {}
        }
    }
}

fn error_hygiene(rel: &str, toks: &[Tok], rg: &Regions, findings: &mut Vec<Finding>) {
    let mut i = 0;
    while i < toks.len() {
        if rg.is_test(i) || !toks[i].is_ident("pub") {
            i += 1;
            continue;
        }
        // Skip a `(crate)`-style visibility qualifier.
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_punct('(')) {
            while j < toks.len() && !toks[j].is_punct(')') {
                j += 1;
            }
            j += 1;
        }
        // Skip fn qualifiers.
        while toks.get(j).is_some_and(|t| {
            t.is_ident("const")
                || t.is_ident("async")
                || t.is_ident("unsafe")
                || t.is_ident("extern")
        }) || toks
            .get(j)
            .is_some_and(|t| t.kind == crate::lexer::TokKind::StrLit)
        {
            j += 1;
        }
        if !toks.get(j).is_some_and(|t| t.is_ident("fn")) {
            i += 1;
            continue;
        }
        // Signature runs to the body `{` or a trait-method `;`.
        let mut end = j;
        while end < toks.len() && !toks[end].is_punct('{') && !toks[end].is_punct(';') {
            end += 1;
        }
        let sig = &toks[j..end];
        let has_result = sig.iter().any(|t| t.is_ident("Result"));
        for (k, t) in sig.iter().enumerate() {
            if has_result
                && t.is_punct(',')
                && sig.get(k + 1).is_some_and(|n| n.is_ident("String"))
                && sig.get(k + 2).is_some_and(|n| n.is_punct('>'))
            {
                push(
                    findings,
                    "error-hygiene",
                    rel,
                    &sig[k + 1],
                    j + k + 1,
                    "`Result<_, String>` in a pub signature; use a typed error enum".to_string(),
                );
            }
            if t.is_ident("Box")
                && sig.get(k + 1).is_some_and(|n| n.is_punct('<'))
                && sig.get(k + 2).is_some_and(|n| n.is_ident("dyn"))
                && sig[k..].iter().any(|n| n.is_ident("Error"))
            {
                push(
                    findings,
                    "error-hygiene",
                    rel,
                    t,
                    j + k,
                    "`Box<dyn Error>` in a pub signature; use a typed error enum".to_string(),
                );
            }
        }
        i = end.max(i + 1);
    }
}

fn concurrency_discipline(rel: &str, toks: &[Tok], rg: &Regions, findings: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if rg.is_test(i) {
            continue;
        }
        let path_seg = |o: usize, name: &str| toks.get(i + o).is_some_and(|t| t.is_ident(name));
        let double_colon = |o: usize| {
            toks.get(i + o).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + o + 1).is_some_and(|t| t.is_punct(':'))
        };
        if t.is_ident("thread")
            && double_colon(1)
            && (path_seg(3, "spawn") || path_seg(3, "scope") || path_seg(3, "Builder"))
        {
            push(
                findings,
                "concurrency-discipline",
                rel,
                t,
                i,
                "raw `thread::spawn`/`scope` outside flipper_data::exec — route \
                 parallelism through the exec pool so shard-invariance stays proven"
                    .to_string(),
            );
        } else if t.is_ident("std") && double_colon(1) && path_seg(3, "thread") {
            push(
                findings,
                "concurrency-discipline",
                rel,
                t,
                i,
                "`std::thread` outside flipper_data::exec — route parallelism \
                 through the exec pool so shard-invariance stays proven"
                    .to_string(),
            );
        }
    }
}

fn unsafe_audit(rel: &str, toks: &[Tok], comments: &[Comment], findings: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        let starts_block = toks
            .get(i + 1)
            .is_some_and(|n| n.is_punct('{') || n.is_ident("impl") || n.is_ident("trait"));
        if !starts_block {
            continue;
        }
        let documented = comments.iter().any(|c| {
            c.text.contains("SAFETY:") && c.end_line <= t.line && c.end_line + 3 >= t.line
        });
        if !documented {
            push(
                findings,
                "unsafe-audit",
                rel,
                t,
                i,
                "`unsafe` without a `// SAFETY:` comment within the 3 lines above".to_string(),
            );
        }
    }
}

/// The wire-format-registry rule: every `flipper-*/vN` schema tag in a
/// non-test string literal outside the flipper-wire registry is a finding —
/// producers and consumers must reference the named constants so the tag
/// inventory has exactly one home.
fn wire_format_registry(rel: &str, toks: &[Tok], rg: &Regions, findings: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if rg.is_test(i) || t.kind != crate::lexer::TokKind::StrLit {
            continue;
        }
        if let Some(tag) = find_schema_tag(&t.text) {
            push(
                findings,
                "wire-format-registry",
                rel,
                t,
                i,
                format!(
                    "schema tag `{tag}` spelled as a string literal; use the named \
                     constant from the flipper-wire registry"
                ),
            );
        }
    }
}

/// First `flipper-<name>/v<digits>` schema tag inside `s`, if any.
fn find_schema_tag(s: &str) -> Option<&str> {
    let mut from = 0;
    while let Some(pos) = s[from..].find("flipper-") {
        let begin = from + pos;
        let rest = &s[begin + "flipper-".len()..];
        let name_len = rest
            .find(|c: char| !(c.is_ascii_lowercase() || c == '-'))
            .unwrap_or(rest.len());
        let after = &rest[name_len..];
        if name_len > 0 && after.starts_with("/v") {
            let digits = after["/v".len()..]
                .chars()
                .take_while(char::is_ascii_digit)
                .count();
            if digits > 0 {
                let len = "flipper-".len() + name_len + "/v".len() + digits;
                return Some(&s[begin..begin + len]);
            }
        }
        from = begin + "flipper-".len();
    }
    None
}

/// Parse `lint:allow` comments; malformed ones become `allow-hygiene`
/// findings.
fn parse_allows(rel: &str, comments: &[Comment], findings: &mut Vec<Finding>) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in comments {
        // Doc comments (`///` → text starts with `/`, `//!` → `!`) are
        // rendered prose; only plain comments carry directives.
        if c.text.starts_with('/') || c.text.starts_with('!') {
            continue;
        }
        let Some(pos) = c.text.find("lint:allow") else {
            continue;
        };
        let rest = &c.text[pos + "lint:allow".len()..];
        let bad = |findings: &mut Vec<Finding>, msg: String| {
            findings.push(Finding {
                rule: "allow-hygiene",
                file: rel.to_string(),
                line: c.line,
                col: 1,
                message: msg,
                allowed: false,
                tok: NO_TOK,
                reachable: false,
            });
        };
        let Some(rule_and_reason) = rest.strip_prefix('(') else {
            bad(
                findings,
                "malformed allow: expected `lint:allow(<rule>) <reason>`".to_string(),
            );
            continue;
        };
        let Some(close) = rule_and_reason.find(')') else {
            bad(
                findings,
                "malformed allow: missing `)` after rule name".to_string(),
            );
            continue;
        };
        let rule = rule_and_reason[..close].trim();
        let reason = rule_and_reason[close + 1..].trim();
        match rule_info(rule) {
            None => bad(findings, format!("allow names unknown rule `{rule}`")),
            Some(info) if !info.allowable => bad(
                findings,
                format!(
                    "rule `{rule}` accepts no allow comments — fix the finding or \
                     re-bless the baseline deliberately"
                ),
            ),
            Some(info) if reason.is_empty() => bad(
                findings,
                format!(
                    "allow for `{}` must state a reason after the `)`",
                    info.name
                ),
            ),
            Some(info) => allows.push(Allow {
                rule: info.name.to_string(),
                line: c.end_line,
            }),
        }
    }
    allows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::regions::analyze;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let lx = lex(src);
        let rg = analyze(&lx.tokens);
        check_file(rel, &lx, &rg)
    }

    fn live(findings: &[Finding], rule: &str) -> usize {
        findings
            .iter()
            .filter(|f| f.rule == rule && !f.allowed)
            .count()
    }

    #[test]
    fn panic_hygiene_fires_in_library_scope_only() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"n\"); }";
        assert_eq!(
            live(&run("crates/core/src/miner.rs", src), "panic-hygiene"),
            3
        );
        assert_eq!(
            live(&run("crates/cli/src/main.rs", src), "panic-hygiene"),
            0
        );
        assert_eq!(
            live(&run("crates/datagen/src/quest.rs", src), "panic-hygiene"),
            0
        );
    }

    #[test]
    fn panic_hygiene_skips_tests_strings_comments() {
        let src = r#"
            fn lib() { let s = "unwrap() panic!"; } // .unwrap() in a comment
            #[cfg(test)]
            mod tests { fn t() { x.unwrap(); panic!("fine"); } }
        "#;
        assert_eq!(
            live(&run("crates/core/src/miner.rs", src), "panic-hygiene"),
            0
        );
    }

    #[test]
    fn panic_hygiene_allows_with_reason() {
        let src =
            "fn f() {\n    x.unwrap(); // lint:allow(panic-hygiene) invariant: built above\n}";
        let f = run("crates/core/src/miner.rs", src);
        assert_eq!(live(&f, "panic-hygiene"), 0);
        assert_eq!(f.iter().filter(|f| f.allowed).count(), 1);
        // Preceding-line form.
        let src = "fn f() {\n  // lint:allow(panic-hygiene) invariant\n  x.unwrap();\n}";
        assert_eq!(
            live(&run("crates/core/src/miner.rs", src), "panic-hygiene"),
            0
        );
    }

    #[test]
    fn allow_without_reason_or_unknown_rule_is_flagged() {
        let src = "fn f() { x.unwrap() } // lint:allow(panic-hygiene)";
        let f = run("crates/core/src/miner.rs", src);
        assert_eq!(live(&f, "allow-hygiene"), 1);
        assert_eq!(
            live(&f, "panic-hygiene"),
            1,
            "malformed allow suppresses nothing"
        );
        let f = run(
            "crates/core/src/miner.rs",
            "fn f() {} // lint:allow(no-such-rule) why",
        );
        assert_eq!(live(&f, "allow-hygiene"), 1);
    }

    #[test]
    fn determinism_scope_is_the_result_path() {
        let src = "use std::collections::HashMap;\nfn f() { let t = Instant::now(); }";
        let f = run("crates/core/src/miner.rs", src);
        assert_eq!(live(&f, "determinism"), 2);
        // Same tokens outside the result path: no findings.
        assert_eq!(
            live(&run("crates/data/src/counting.rs", src), "determinism"),
            0
        );
        // …and determinism accepts no allows.
        let src = "use std::collections::HashMap; // lint:allow(determinism) please";
        let f = run("crates/core/src/cell.rs", src);
        assert_eq!(live(&f, "determinism"), 1);
        assert_eq!(live(&f, "allow-hygiene"), 1);
    }

    #[test]
    fn determinism_scope_covers_obs_hot_paths_but_not_its_clock() {
        let src = "use std::collections::HashMap;\nfn f() { let t = Instant::now(); }";
        for rel in [
            "crates/obs/src/recorder.rs",
            "crates/obs/src/span.rs",
            "crates/obs/src/metrics.rs",
            "crates/obs/src/trace.rs",
        ] {
            assert_eq!(live(&run(rel, src), "determinism"), 2, "{rel}");
        }
        // The obs clock is the sanctioned timer, like core/src/stats.rs.
        assert_eq!(live(&run("crates/obs/src/clock.rs", src), "determinism"), 0);
    }

    #[test]
    fn error_hygiene_catches_stringly_results() {
        let src = "pub fn f() -> Result<u32, String> { Ok(1) }";
        assert_eq!(
            live(&run("crates/data/src/format.rs", src), "error-hygiene"),
            1
        );
        let src = "pub fn f() -> Result<Vec<String>, FormatError> { Ok(vec![]) }";
        assert_eq!(
            live(&run("crates/data/src/format.rs", src), "error-hygiene"),
            0
        );
        let src = "pub fn f() -> Result<u32, Box<dyn std::error::Error>> { Ok(1) }";
        assert_eq!(
            live(&run("crates/data/src/format.rs", src), "error-hygiene"),
            1
        );
        // Bins may keep stringly mains.
        let src = "pub fn f() -> Result<u32, String> { Ok(1) }";
        assert_eq!(
            live(&run("crates/cli/src/main.rs", src), "error-hygiene"),
            0
        );
        assert_eq!(
            live(&run("crates/bench/src/bin/fig9.rs", src), "error-hygiene"),
            0
        );
    }

    #[test]
    fn concurrency_is_confined_to_exec() {
        let src = "fn f() { std::thread::scope(|s| {}); }";
        assert!(
            live(
                &run("crates/core/src/miner.rs", src),
                "concurrency-discipline"
            ) >= 1
        );
        assert_eq!(
            live(
                &run("crates/data/src/exec.rs", src),
                "concurrency-discipline"
            ),
            0
        );
        let src = "use std::thread;\nfn f() { thread::spawn(|| {}); }";
        assert!(
            live(
                &run("crates/store/src/writer.rs", src),
                "concurrency-discipline"
            ) >= 2
        );
    }

    #[test]
    fn unsafe_audit_requires_safety_comment() {
        let src = "fn f() { unsafe { g() } }";
        assert_eq!(
            live(&run("crates/data/src/bitset.rs", src), "unsafe-audit"),
            1
        );
        let src = "fn f() {\n    // SAFETY: bounds checked above\n    unsafe { g() }\n}";
        assert_eq!(
            live(&run("crates/data/src/bitset.rs", src), "unsafe-audit"),
            0
        );
        // `unsafe` as a fn qualifier is not a block.
        let src = "pub unsafe fn g() {}";
        assert_eq!(
            live(&run("crates/data/src/bitset.rs", src), "unsafe-audit"),
            0
        );
    }

    #[test]
    fn findings_are_sorted_and_positioned() {
        let src = "fn f() {\n    b.unwrap();\n    a.unwrap();\n}";
        let f = run("crates/core/src/miner.rs", src);
        assert_eq!(f.len(), 2);
        assert_eq!((f[0].line, f[0].col), (2, 7));
        assert_eq!((f[1].line, f[1].col), (3, 7));
    }
}
