//! Test-region tracking over the token stream: rules only fire in
//! *library* code, so every token must know whether it sits inside
//! `#[cfg(test)]`-gated items or a `mod tests { … }` block.
//!
//! The tracker is purely token-driven (no parse tree): an attribute
//! `#[cfg(test)]` (or any `cfg`/`cfg_attr` predicate where a `test` atom
//! appears outside of `not(…)`) marks the item that follows it — through
//! its matching closing
//! brace, or to the terminating `;` for brace-less items. A brace-less
//! `#[cfg(test)] mod name;` additionally records `name` so the caller can
//! skip the out-of-line file (`name.rs`) entirely. The conventional
//! `mod tests { … }` is marked even without an attribute.

use crate::lexer::Tok;

/// Per-token test-region classification for one file.
#[derive(Debug)]
pub struct Regions {
    /// `in_test[i]` — is token `i` inside test-only code?
    pub in_test: Vec<bool>,
    /// Module names declared as `#[cfg(test)] mod <name>;` — their
    /// out-of-line files are test-only in their entirety.
    pub cfg_test_mods: Vec<String>,
}

impl Regions {
    /// Whether token `i` is inside a test region.
    pub fn is_test(&self, i: usize) -> bool {
        self.in_test.get(i).copied().unwrap_or(false)
    }
}

/// Classify every token of a file.
pub fn analyze(toks: &[Tok]) -> Regions {
    let mut regions = Regions {
        in_test: vec![false; toks.len()],
        cfg_test_mods: Vec::new(),
    };
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            if let Some(attr_end) = matching(toks, i + 1, '[', ']') {
                if is_cfg_test_attr(&toks[i + 2..attr_end]) {
                    let item_end = mark_item(toks, i, attr_end, &mut regions);
                    i = item_end + 1;
                    continue;
                }
                // Skip over non-test attributes so `#[derive(..)]` contents
                // are never scanned for item starts.
                i = attr_end + 1;
                continue;
            }
        }
        if toks[i].is_ident("mod")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("tests"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('{'))
        {
            if let Some(close) = matching(toks, i + 2, '{', '}') {
                for flag in &mut regions.in_test[i..=close] {
                    *flag = true;
                }
            }
        }
        i += 1;
    }
    regions
}

/// Index of the token closing the bracket opened at `open_idx`.
fn matching(toks: &[Tok], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Does an attribute body (tokens between `[` and `]`) gate on `test`?
///
/// The predicate expression is walked structurally rather than by bag-of-
/// idents: `#[cfg(test)]`, `#[cfg(all(test, …))]`, `#[cfg(any(test, …))]`
/// and `#[cfg_attr(test, …)]` all gate — including with a *nested*
/// `not(…)` alongside, as in `#[cfg(all(test, not(feature = "x")))]` —
/// while anything under a `not(…)` never does, so `#[cfg(not(test))]`
/// stays live library code.
fn is_cfg_test_attr(body: &[Tok]) -> bool {
    if !body
        .first()
        .is_some_and(|t| t.is_ident("cfg") || t.is_ident("cfg_attr"))
    {
        return false;
    }
    // The predicate is the parenthesized expression after cfg/cfg_attr
    // (for cfg_attr, `pred(...)` stops at the top-level comma on its own).
    let mut i = 1;
    if !body.get(i).is_some_and(|t| t.is_punct('(')) {
        return false;
    }
    i += 1;
    pred_gates_on_test(body, &mut i)
}

/// Recursive descent over one cfg predicate starting at `*i`; consumes the
/// predicate and reports whether it gates on `test`. `all(…)`/`any(…)`
/// gate when any operand does; `not(…)` is consumed but never gates.
fn pred_gates_on_test(toks: &[Tok], i: &mut usize) -> bool {
    let Some(t) = toks.get(*i) else { return false };
    if t.kind != crate::lexer::TokKind::Ident {
        *i += 1;
        return false;
    }
    let name = t.text.clone();
    *i += 1;
    match name.as_str() {
        "all" | "any" | "not" if toks.get(*i).is_some_and(|t| t.is_punct('(')) => {
            *i += 1; // consume `(`
            let mut gates = false;
            while *i < toks.len() && !toks[*i].is_punct(')') {
                if toks[*i].is_punct(',') {
                    *i += 1;
                    continue;
                }
                gates |= pred_gates_on_test(toks, i);
            }
            *i += 1; // consume `)`
            gates && name != "not"
        }
        "test" => {
            // Bare `test` (it never takes a `= "value"`).
            true
        }
        _ => {
            // `unix`, `feature = "…"`, `target_os = "…"`, … — skip an
            // optional `= <literal>` value.
            if toks.get(*i).is_some_and(|t| t.is_punct('=')) {
                *i += 2;
            }
            false
        }
    }
}

/// Mark the item following a cfg(test) attribute (which spans
/// `attr_start ..= attr_end`) and return the index of its last token.
fn mark_item(toks: &[Tok], attr_start: usize, attr_end: usize, regions: &mut Regions) -> usize {
    // Skip any further attributes between the cfg attribute and the item.
    let mut j = attr_end + 1;
    while j < toks.len()
        && toks[j].is_punct('#')
        && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
    {
        match matching(toks, j + 1, '[', ']') {
            Some(e) => j = e + 1,
            None => break,
        }
    }
    let item_start = j;
    // The item runs to its first `{ … }` block or, for brace-less items
    // (`use …;`, `mod name;`), to the terminating `;`.
    let mut end = toks.len().saturating_sub(1);
    while j < toks.len() {
        if toks[j].is_punct('{') {
            end = matching(toks, j, '{', '}').unwrap_or(end);
            break;
        }
        if toks[j].is_punct(';') {
            end = j;
            if toks.get(item_start).is_some_and(|t| t.is_ident("mod")) {
                if let Some(name) = toks.get(item_start + 1) {
                    regions.cfg_test_mods.push(name.text.clone());
                }
            }
            break;
        }
        j += 1;
    }
    for flag in &mut regions.in_test[attr_start..=end.min(toks.len().saturating_sub(1))] {
        *flag = true;
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn test_idents(src: &str) -> (Vec<String>, Vec<String>) {
        let out = lex(src);
        let regions = analyze(&out.tokens);
        let mut test = Vec::new();
        let mut live = Vec::new();
        for (i, t) in out.tokens.iter().enumerate() {
            if t.kind == crate::lexer::TokKind::Ident {
                if regions.is_test(i) {
                    test.push(t.text.clone());
                } else {
                    live.push(t.text.clone());
                }
            }
        }
        (test, live)
    }

    #[test]
    fn cfg_test_mod_block_is_test() {
        let (test, live) = test_idents(
            "fn live() { a.unwrap(); }\n\
             #[cfg(test)]\nmod tests {\n  fn t() { b.unwrap(); }\n}\n\
             fn also_live() {}",
        );
        assert!(live.contains(&"live".to_string()));
        assert!(live.contains(&"also_live".to_string()));
        assert!(test.contains(&"b".to_string()));
        assert!(!live.contains(&"b".to_string()));
    }

    #[test]
    fn bare_mod_tests_is_test_by_convention() {
        let (test, live) = test_idents("fn live() {}\nmod tests { fn t() {} }");
        assert!(live.contains(&"live".to_string()));
        assert!(test.contains(&"t".to_string()));
    }

    #[test]
    fn cfg_test_fn_and_inner_items() {
        // Inner items of a gated fn are covered by the outer brace match.
        let (test, live) = test_idents(
            "#[cfg(test)]\nfn helper() { struct Inner; fn nested() { x.unwrap() } }\nfn live() {}",
        );
        assert!(test.contains(&"Inner".to_string()));
        assert!(test.contains(&"nested".to_string()));
        assert!(live.contains(&"live".to_string()));
    }

    #[test]
    fn cfg_test_with_second_attribute() {
        let (test, live) = test_idents(
            "#[cfg(test)]\n#[derive(Debug)]\nstruct OnlyForTests { x: u32 }\nfn live() {}",
        );
        assert!(test.contains(&"OnlyForTests".to_string()));
        assert!(live.contains(&"live".to_string()));
    }

    #[test]
    fn cfg_not_test_is_live() {
        let (test, live) = test_idents("#[cfg(not(test))]\nfn shipping() { x.unwrap() }");
        assert!(test.is_empty());
        assert!(live.contains(&"shipping".to_string()));
    }

    #[test]
    fn out_of_line_test_mod_is_recorded() {
        let out = lex("#[cfg(test)]\nmod miner_proptests;\npub mod live_mod;");
        let regions = analyze(&out.tokens);
        assert_eq!(regions.cfg_test_mods, ["miner_proptests"]);
        let live_mod = out
            .tokens
            .iter()
            .position(|t| t.is_ident("live_mod"))
            .unwrap();
        assert!(!regions.is_test(live_mod));
    }

    #[test]
    fn cfg_all_test_counts_cfg_attr_counts() {
        let (test, live) = test_idents("#[cfg(all(test, unix))]\nfn t() {}");
        assert!(test.contains(&"t".to_string()));
        assert!(live.is_empty());
        let (test, _) = test_idents("#[cfg_attr(test, allow(dead_code))]\nfn gated() {}");
        assert!(test.contains(&"gated".to_string()));
    }

    #[test]
    fn cfg_all_test_with_nested_not_is_test() {
        // The nested not() applies to the feature, not to `test` — the
        // old bag-of-idents check wrongly treated this as live code.
        let (test, live) =
            test_idents("#[cfg(all(test, not(feature = \"x\")))]\nfn gated() { x.unwrap() }");
        assert!(test.contains(&"gated".to_string()));
        assert!(!live.contains(&"gated".to_string()));
    }

    #[test]
    fn cfg_any_test_is_test() {
        let (test, live) = test_idents("#[cfg(any(test, feature = \"bench\"))]\nfn gated() {}");
        assert!(test.contains(&"gated".to_string()));
        assert!(!live.contains(&"gated".to_string()));
    }

    #[test]
    fn cfg_not_all_test_is_live() {
        // `test` under a not() never gates, however deeply nested.
        let (test, live) = test_idents("#[cfg(not(all(test, unix)))]\nfn shipping() {}");
        assert!(test.is_empty());
        assert!(live.contains(&"shipping".to_string()));
    }

    #[test]
    fn cfg_feature_named_test_value_is_live() {
        // `feature = "test"` is a feature name, not the test cfg atom.
        let (test, live) = test_idents("#[cfg(feature = \"test\")]\nfn shipping() {}");
        assert!(test.is_empty());
        assert!(live.contains(&"shipping".to_string()));
    }

    #[test]
    fn derive_attributes_do_not_start_regions() {
        let (test, live) = test_idents("#[derive(Debug, Clone)]\nstruct Live { x: u32 }");
        assert!(test.is_empty());
        assert!(live.contains(&"Live".to_string()));
    }
}
