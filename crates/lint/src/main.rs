//! The `flipper-lint` binary: analyze the workspace, compare against the
//! ratchet baseline, exit nonzero on regressions.
//!
//! ```text
//! flipper-lint [--root DIR] [--baseline FILE] [--json[=FILE]] [--bless]
//!              [--graph dot] [--list-rules]
//! ```
//!
//! Exit codes: `0` every rule at or below baseline, `1` some rule exceeds
//! it, `2` usage or I/O error — mirroring `FlipperError::exit_code`.

use flipper_lint::report::Baseline;
use flipper_lint::rules::RULES;
use flipper_lint::{analyze_workspace_full, find_workspace_root};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    json: Option<Option<PathBuf>>,
    bless: bool,
    graph_dot: bool,
    list_rules: bool,
}

fn usage() -> String {
    format!(
        "usage: flipper-lint [--root DIR] [--baseline FILE] [--json[=FILE]] [--bless] [--graph dot] [--list-rules]\n\
         \n\
         Workspace static analysis with a ratcheting baseline (LINT_BASELINE.json).\n\
         --root DIR        workspace root (default: nearest [workspace] ancestor)\n\
         --baseline FILE   baseline path (default: <root>/LINT_BASELINE.json)\n\
         --json[=FILE]     emit the {} JSON report (stdout or FILE)\n\
         --bless           rewrite the baseline to match the current findings\n\
         --graph dot       print the observed crate dependency graph as Graphviz DOT and exit\n\
         --list-rules      print the rule catalog and exit\n",
        flipper_wire::LINT_V1
    )
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        baseline: None,
        json: None,
        bless: false,
        graph_dot: false,
        list_rules: false,
    };
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        match arg {
            "--root" | "--baseline" => {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("{arg} needs a value\n\n{}", usage()))?;
                let path = PathBuf::from(value);
                if arg == "--root" {
                    opts.root = Some(path);
                } else {
                    opts.baseline = Some(path);
                }
                i += 2;
            }
            "--json" => {
                opts.json = Some(None);
                i += 1;
            }
            "--bless" => {
                opts.bless = true;
                i += 1;
            }
            "--graph" => {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--graph needs a format\n\n{}", usage()))?;
                if value != "dot" {
                    return Err(format!(
                        "unsupported graph format `{value}` (only `dot`)\n\n{}",
                        usage()
                    ));
                }
                opts.graph_dot = true;
                i += 2;
            }
            "--list-rules" => {
                opts.list_rules = true;
                i += 1;
            }
            "--help" | "-h" => return Err(usage()),
            other => {
                if let Some(path) = other.strip_prefix("--json=") {
                    opts.json = Some(Some(PathBuf::from(path)));
                    i += 1;
                } else {
                    return Err(format!("unknown argument `{other}`\n\n{}", usage()));
                }
            }
        }
    }
    Ok(opts)
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args)?;

    if opts.list_rules {
        for r in RULES {
            let allow = if r.allowable {
                "lint:allow accepted"
            } else {
                "no allows"
            };
            println!("{:<24} {} [{}]", r.name, r.summary, allow);
        }
        return Ok(ExitCode::SUCCESS);
    }

    let root = match opts.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
            find_workspace_root(&cwd)
                .ok_or("no [workspace] Cargo.toml above the current directory; pass --root")?
        }
    };
    let baseline_path = opts
        .baseline
        .unwrap_or_else(|| root.join("LINT_BASELINE.json"));

    let analysis = analyze_workspace_full(&root).map_err(|e| e.to_string())?;
    let report = analysis.report;

    if opts.graph_dot {
        print!("{}", analysis.crate_graph.to_dot());
        return Ok(ExitCode::SUCCESS);
    }

    if opts.bless {
        let blessed = Baseline::bless(&report);
        std::fs::write(&baseline_path, blessed.to_json())
            .map_err(|e| format!("write {}: {e}", baseline_path.display()))?;
        println!(
            "blessed {} ({} files scanned)",
            baseline_path.display(),
            report.files_scanned
        );
        return Ok(ExitCode::SUCCESS);
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::parse(&text).map_err(|message| {
            format!("malformed baseline {}: {message}", baseline_path.display())
        })?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            eprintln!(
                "note: no baseline at {} — holding every rule at zero \
                 (run with --bless to record current counts)",
                baseline_path.display()
            );
            Baseline::default()
        }
        Err(e) => return Err(format!("read {}: {e}", baseline_path.display())),
    };

    match &opts.json {
        Some(None) => print!("{}", report.to_json(&baseline)),
        Some(Some(path)) => std::fs::write(path, report.to_json(&baseline))
            .map_err(|e| format!("write {}: {e}", path.display()))?,
        None => {}
    }
    if !matches!(opts.json, Some(None)) {
        print!("{}", report.render_text(&baseline));
    }

    if report.violations(&baseline).is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}
