//! Aggregated analysis report, the `flipper-lint/v1` JSON emission and the
//! ratcheting baseline (`LINT_BASELINE.json`).
//!
//! Ratchet semantics: the committed baseline records, per rule, the number
//! of un-allowed findings the workspace is *permitted* to have — split
//! into entry-point-**reachable** and **unreachable** findings, each
//! ratcheted independently so debt cannot migrate onto the hot path. A
//! run fails as soon as any rule exceeds either permitted count; rules
//! absent from the baseline are held at zero. Counts below baseline are
//! reported as burn-down so the baseline can be re-blessed (`--bless`)
//! and debt can only shrink.
//!
//! The baseline document is `flipper-lint-baseline/v2`; the retired v1
//! shape parses to a descriptive migration error, never a panic.

use crate::rules::{Finding, RULES};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-rule aggregation.
#[derive(Debug, Clone)]
pub struct RuleCount {
    /// Rule name.
    pub rule: &'static str,
    /// Un-allowed findings inside functions transitively reachable from a
    /// mining/serialization entry point.
    pub reachable: u64,
    /// Un-allowed findings outside any entry-point-reachable function.
    pub unreachable: u64,
    /// Findings suppressed by `lint:allow` comments.
    pub allowed: u64,
}

impl RuleCount {
    /// Total un-allowed findings.
    pub fn total(&self) -> u64 {
        self.reachable + self.unreachable
    }
}

/// The permitted (reachable, unreachable) counts for one rule.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Permit {
    /// Permitted entry-point-reachable findings.
    pub reachable: u64,
    /// Permitted unreachable findings.
    pub unreachable: u64,
}

/// The result of analyzing a workspace tree.
#[derive(Debug)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Every finding, sorted by (file, line, col); includes allowed ones
    /// (marked) so reports show the full picture.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Per-rule counts in catalog order.
    pub fn counts(&self) -> Vec<RuleCount> {
        RULES
            .iter()
            .map(|r| {
                let (mut reachable, mut unreachable, mut allowed) = (0, 0, 0);
                for f in self.findings.iter().filter(|f| f.rule == r.name) {
                    if f.allowed {
                        allowed += 1;
                    } else if f.reachable {
                        reachable += 1;
                    } else {
                        unreachable += 1;
                    }
                }
                RuleCount {
                    rule: r.name,
                    reachable,
                    unreachable,
                    allowed,
                }
            })
            .collect()
    }

    /// Rules whose un-allowed counts exceed the baseline on either side of
    /// the reachable/unreachable split.
    pub fn violations(&self, baseline: &Baseline) -> Vec<(RuleCount, Permit)> {
        self.counts()
            .into_iter()
            .filter_map(|c| {
                let p = baseline.permit(c.rule);
                (c.reachable > p.reachable || c.unreachable > p.unreachable).then_some((c, p))
            })
            .collect()
    }

    /// Render the `flipper-lint/v1` JSON document.
    pub fn to_json(&self, baseline: &Baseline) -> String {
        let counts = self.counts();
        let violations = self.violations(baseline);
        let mut s = format!("{{\n  \"schema\": \"{}\",\n", flipper_wire::LINT_V1);
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        s.push_str("  \"rules\": [\n");
        for (i, c) in counts.iter().enumerate() {
            let p = baseline.permit(c.rule);
            let _ = write!(
                s,
                "    {{\"rule\": \"{}\", \"count\": {}, \"reachable\": {}, \
                 \"unreachable\": {}, \"allowed\": {}, \"baseline_reachable\": {}, \
                 \"baseline_unreachable\": {}}}",
                c.rule,
                c.total(),
                c.reachable,
                c.unreachable,
                c.allowed,
                p.reachable,
                p.unreachable
            );
            s.push_str(if i + 1 < counts.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ],\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \
                 \"allowed\": {}, \"reachable\": {}, \"message\": \"{}\"}}",
                f.rule,
                json_escape(&f.file),
                f.line,
                f.col,
                f.allowed,
                f.reachable,
                json_escape(&f.message)
            );
            s.push_str(if i + 1 < self.findings.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n");
        let _ = writeln!(
            s,
            "  \"verdict\": \"{}\"",
            if violations.is_empty() {
                "pass"
            } else {
                "fail"
            }
        );
        s.push_str("}\n");
        s
    }

    /// Human-readable summary: the per-rule table, plus full diagnostics
    /// for every rule over baseline.
    pub fn render_text(&self, baseline: &Baseline) -> String {
        let mut s = String::new();
        let violations = self.violations(baseline);
        let _ = writeln!(s, "flipper-lint: {} files scanned", self.files_scanned);
        for c in self.counts() {
            let p = baseline.permit(c.rule);
            let status = if c.reachable > p.reachable || c.unreachable > p.unreachable {
                "FAIL"
            } else if c.reachable < p.reachable || c.unreachable < p.unreachable {
                "ok (burn-down: re-bless to lock in)"
            } else {
                "ok"
            };
            let _ = writeln!(
                s,
                "  {:<24} {:>4} reachable / {:>4} unreachable (baseline {:>4}/{:<4}, allowed {:>3})  {}",
                c.rule, c.reachable, c.unreachable, p.reachable, p.unreachable, c.allowed, status
            );
        }
        for (c, p) in &violations {
            let _ = writeln!(
                s,
                "\nrule {} exceeds baseline ({}/{} > {}/{} reachable/unreachable):",
                c.rule, c.reachable, c.unreachable, p.reachable, p.unreachable
            );
            for f in self
                .findings
                .iter()
                .filter(|f| f.rule == c.rule && !f.allowed)
            {
                let tag = if f.reachable { " [reachable]" } else { "" };
                let _ = writeln!(s, "  {}:{}:{}:{tag} {}", f.file, f.line, f.col, f.message);
            }
        }
        s
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A malformed baseline document — the lint eats its own error-hygiene
/// dogfood, so even this one-field error is a type, not a `String`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineError {
    /// What the parser objected to.
    pub message: String,
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for BaselineError {}

impl From<String> for BaselineError {
    fn from(message: String) -> Self {
        BaselineError { message }
    }
}

/// The committed per-rule permitted counts.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<String, Permit>,
}

impl Baseline {
    /// Permitted counts for `rule` (absent rules are held at zero/zero).
    pub fn permit(&self, rule: &str) -> Permit {
        self.counts.get(rule).copied().unwrap_or_default()
    }

    /// Baseline matching a report exactly (for `--bless`).
    pub fn bless(report: &Report) -> Baseline {
        Baseline {
            counts: report
                .counts()
                .into_iter()
                .map(|c| {
                    (
                        c.rule.to_string(),
                        Permit {
                            reachable: c.reachable,
                            unreachable: c.unreachable,
                        },
                    )
                })
                .collect(),
        }
    }

    /// Serialize as `flipper-lint-baseline/v2`.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\n  \"schema\": \"{}\",\n  \"counts\": {{\n",
            flipper_wire::LINT_BASELINE_V2
        );
        let n = self.counts.len();
        for (i, (rule, p)) in self.counts.iter().enumerate() {
            let _ = write!(
                s,
                "    \"{}\": {{\"reachable\": {}, \"unreachable\": {}}}",
                json_escape(rule),
                p.reachable,
                p.unreachable
            );
            s.push_str(if i + 1 < n { ",\n" } else { "\n" });
        }
        s.push_str("  }\n}\n");
        s
    }

    /// Parse the baseline document. Accepts exactly the shape `to_json`
    /// writes (whitespace-insensitive); anything else is a descriptive
    /// error, never a panic. The retired v1 shape gets a dedicated
    /// migration message.
    pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
        let mut p = MiniJson::new(text);
        p.expect('{')?;
        let mut counts = BTreeMap::new();
        let mut saw_schema = false;
        loop {
            let key = p.string()?;
            p.expect(':')?;
            match key.as_str() {
                "schema" => {
                    let v = p.string()?;
                    if v == flipper_wire::LINT_BASELINE_V1 {
                        return Err(format!(
                            "baseline schema `{v}` predates the reachable/unreachable \
                             split; run `flipper-lint --bless` to migrate to `{}`",
                            flipper_wire::LINT_BASELINE_V2
                        )
                        .into());
                    }
                    if v != flipper_wire::LINT_BASELINE_V2 {
                        return Err(format!("unsupported baseline schema `{v}`").into());
                    }
                    saw_schema = true;
                }
                "counts" => {
                    p.expect('{')?;
                    if !p.try_expect('}') {
                        loop {
                            let rule = p.string()?;
                            p.expect(':')?;
                            let permit = parse_permit(&mut p)?;
                            counts.insert(rule, permit);
                            if !p.try_expect(',') {
                                break;
                            }
                        }
                        p.expect('}')?;
                    }
                }
                other => return Err(format!("unexpected baseline key `{other}`").into()),
            }
            if !p.try_expect(',') {
                break;
            }
        }
        p.expect('}')?;
        if !saw_schema {
            return Err(BaselineError::from(
                "baseline is missing the `schema` field".to_string(),
            ));
        }
        Ok(Baseline { counts })
    }
}

/// Parse one `{"reachable": N, "unreachable": N}` permit object (keys in
/// either order; both required).
fn parse_permit(p: &mut MiniJson<'_>) -> Result<Permit, BaselineError> {
    p.expect('{')?;
    let (mut reachable, mut unreachable) = (None, None);
    loop {
        let key = p.string()?;
        p.expect(':')?;
        let n = p.number()?;
        match key.as_str() {
            "reachable" => reachable = Some(n),
            "unreachable" => unreachable = Some(n),
            other => return Err(format!("unexpected permit key `{other}`").into()),
        }
        if !p.try_expect(',') {
            break;
        }
    }
    p.expect('}')?;
    match (reachable, unreachable) {
        (Some(reachable), Some(unreachable)) => Ok(Permit {
            reachable,
            unreachable,
        }),
        _ => Err(BaselineError::from(
            "permit object needs both `reachable` and `unreachable`".to_string(),
        )),
    }
}

/// A tiny single-purpose JSON scanner for the baseline document.
struct MiniJson<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> MiniJson<'a> {
    fn new(text: &'a str) -> Self {
        MiniJson {
            chars: text.chars().peekable(),
        }
    }

    fn skip_ws(&mut self) {
        while self.chars.peek().is_some_and(|c| c.is_whitespace()) {
            self.chars.next();
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        match self.chars.next() {
            Some(got) if got == c => Ok(()),
            Some(got) => Err(format!("expected `{c}`, found `{got}`")),
            None => Err(format!("expected `{c}`, found end of input")),
        }
    }

    fn try_expect(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.chars.peek() == Some(&c) {
            self.chars.next();
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut s = String::new();
        loop {
            match self.chars.next() {
                Some('"') => return Ok(s),
                Some('\\') => match self.chars.next() {
                    Some(e) => s.push(e),
                    None => return Err("unterminated escape in string".to_string()),
                },
                Some(c) => s.push(c),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let mut s = String::new();
        while self.chars.peek().is_some_and(|c| c.is_ascii_digit()) {
            s.push(self.chars.next().unwrap_or('0'));
        }
        s.parse::<u64>()
            .map_err(|_| format!("expected a count, found `{s}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(findings: Vec<Finding>) -> Report {
        Report {
            files_scanned: 1,
            findings,
        }
    }

    fn finding(rule: &'static str, allowed: bool, reachable: bool) -> Finding {
        Finding {
            rule,
            file: "crates/x/src/lib.rs".to_string(),
            line: 1,
            col: 1,
            message: "m \"quoted\"".to_string(),
            allowed,
            tok: crate::rules::NO_TOK,
            reachable,
        }
    }

    #[test]
    fn counts_split_allowed_and_reachability() {
        let r = report_with(vec![
            finding("panic-hygiene", false, false),
            finding("panic-hygiene", false, true),
            finding("panic-hygiene", true, true),
        ]);
        let c = &r.counts()[0];
        assert_eq!(
            (c.rule, c.reachable, c.unreachable, c.allowed),
            ("panic-hygiene", 1, 1, 1)
        );
        assert_eq!(c.total(), 2);
    }

    #[test]
    fn baseline_roundtrip_and_ratchet() {
        let r = report_with(vec![finding("panic-hygiene", false, false)]);
        let b = Baseline::bless(&r);
        let parsed = Baseline::parse(&b.to_json()).unwrap();
        assert_eq!(parsed, b);
        assert!(r.violations(&parsed).is_empty(), "blessed baseline passes");
        // One more finding than permitted: violation.
        let worse = report_with(vec![
            finding("panic-hygiene", false, false),
            finding("panic-hygiene", false, false),
        ]);
        let v = worse.violations(&parsed);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].0.unreachable, 2);
        assert_eq!(v[0].1.unreachable, 1);
        // Absent rules are held at zero.
        let zero = Baseline::default();
        assert_eq!(r.violations(&zero).len(), 1);
    }

    #[test]
    fn reachable_debt_cannot_hide_under_unreachable_headroom() {
        // One unreachable finding blessed; the same finding moving onto
        // the reachable side must fail even though the total is unchanged.
        let blessed = Baseline::bless(&report_with(vec![finding("panic-hygiene", false, false)]));
        let moved = report_with(vec![finding("panic-hygiene", false, true)]);
        let v = moved.violations(&blessed);
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].0.reachable, v[0].1.reachable), (1, 0));
    }

    #[test]
    fn baseline_parse_rejects_garbage_and_migrates_v1() {
        assert!(Baseline::parse("").is_err());
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse("{\"schema\": \"other/v9\", \"counts\": {}}").is_err());
        assert!(Baseline::parse(
            "{\"schema\": \"flipper-lint-baseline/v2\", \"counts\": {\"x\": }}"
        )
        .is_err());
        // v1 gets a migration hint, not a generic rejection.
        let err = Baseline::parse("{\"schema\": \"flipper-lint-baseline/v1\", \"counts\": {}}")
            .unwrap_err();
        assert!(err.message.contains("--bless"), "{err}");
        assert!(err.message.contains("flipper-lint-baseline/v2"), "{err}");
        // Permit objects need both sides of the split.
        assert!(Baseline::parse(
            "{\"schema\": \"flipper-lint-baseline/v2\", \"counts\": {\"x\": {\"reachable\": 1}}}"
        )
        .is_err());
    }

    #[test]
    fn json_report_is_escaped_and_versioned() {
        let r = report_with(vec![finding("panic-hygiene", false, true)]);
        let json = r.to_json(&Baseline::default());
        assert!(json.contains(&format!("\"schema\": \"{}\"", flipper_wire::LINT_V1)));
        assert!(json.contains("m \\\"quoted\\\""));
        assert!(json.contains("\"reachable\": true"));
        assert!(json.contains("\"verdict\": \"fail\""));
        let blessed = Baseline::bless(&r);
        assert!(r.to_json(&blessed).contains("\"verdict\": \"pass\""));
    }
}
