//! Aggregated analysis report, the `flipper-lint/v1` JSON emission and the
//! ratcheting baseline (`LINT_BASELINE.json`).
//!
//! Ratchet semantics: the committed baseline records, per rule, the number
//! of un-allowed findings the workspace is *permitted* to have. A run
//! fails as soon as any rule exceeds its baseline count; rules absent from
//! the baseline are held at zero. Counts below baseline are reported as
//! burn-down so the baseline can be re-blessed (`--bless`) and debt can
//! only shrink.

use crate::rules::{Finding, RULES};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-rule aggregation.
#[derive(Debug, Clone)]
pub struct RuleCount {
    /// Rule name.
    pub rule: &'static str,
    /// Un-allowed findings (the ratcheted number).
    pub count: u64,
    /// Findings suppressed by `lint:allow` comments.
    pub allowed: u64,
}

/// The result of analyzing a workspace tree.
#[derive(Debug)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Every finding, sorted by (file, line, col); includes allowed ones
    /// (marked) so reports show the full picture.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Per-rule counts in catalog order.
    pub fn counts(&self) -> Vec<RuleCount> {
        RULES
            .iter()
            .map(|r| {
                let (mut count, mut allowed) = (0, 0);
                for f in self.findings.iter().filter(|f| f.rule == r.name) {
                    if f.allowed {
                        allowed += 1;
                    } else {
                        count += 1;
                    }
                }
                RuleCount {
                    rule: r.name,
                    count,
                    allowed,
                }
            })
            .collect()
    }

    /// Rules whose un-allowed count exceeds the baseline.
    pub fn violations(&self, baseline: &Baseline) -> Vec<(RuleCount, u64)> {
        self.counts()
            .into_iter()
            .filter_map(|c| {
                let permitted = baseline.count(c.rule);
                (c.count > permitted).then_some((c, permitted))
            })
            .collect()
    }

    /// Render the `flipper-lint/v1` JSON document.
    pub fn to_json(&self, baseline: &Baseline) -> String {
        let counts = self.counts();
        let violations = self.violations(baseline);
        let mut s = String::from("{\n  \"schema\": \"flipper-lint/v1\",\n");
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        s.push_str("  \"rules\": [\n");
        for (i, c) in counts.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"rule\": \"{}\", \"count\": {}, \"allowed\": {}, \"baseline\": {}}}",
                c.rule,
                c.count,
                c.allowed,
                baseline.count(c.rule)
            );
            s.push_str(if i + 1 < counts.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ],\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \
                 \"allowed\": {}, \"message\": \"{}\"}}",
                f.rule,
                json_escape(&f.file),
                f.line,
                f.col,
                f.allowed,
                json_escape(&f.message)
            );
            s.push_str(if i + 1 < self.findings.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n");
        let _ = writeln!(
            s,
            "  \"verdict\": \"{}\"",
            if violations.is_empty() {
                "pass"
            } else {
                "fail"
            }
        );
        s.push_str("}\n");
        s
    }

    /// Human-readable summary: the per-rule table, plus full diagnostics
    /// for every rule over baseline.
    pub fn render_text(&self, baseline: &Baseline) -> String {
        let mut s = String::new();
        let violations = self.violations(baseline);
        let _ = writeln!(s, "flipper-lint: {} files scanned", self.files_scanned);
        for c in self.counts() {
            let permitted = baseline.count(c.rule);
            let status = if c.count > permitted {
                "FAIL"
            } else if c.count < permitted {
                "ok (burn-down: re-bless to lock in)"
            } else {
                "ok"
            };
            let _ = writeln!(
                s,
                "  {:<24} {:>5} findings (baseline {:>5}, allowed {:>3})  {}",
                c.rule, c.count, permitted, c.allowed, status
            );
        }
        for (c, permitted) in &violations {
            let _ = writeln!(
                s,
                "\nrule {} exceeds baseline ({} > {}):",
                c.rule, c.count, permitted
            );
            for f in self
                .findings
                .iter()
                .filter(|f| f.rule == c.rule && !f.allowed)
            {
                let _ = writeln!(s, "  {}:{}:{}: {}", f.file, f.line, f.col, f.message);
            }
        }
        s
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A malformed baseline document — the lint eats its own error-hygiene
/// dogfood, so even this one-field error is a type, not a `String`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineError {
    /// What the parser objected to.
    pub message: String,
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for BaselineError {}

impl From<String> for BaselineError {
    fn from(message: String) -> Self {
        BaselineError { message }
    }
}

/// The committed per-rule permitted counts.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<String, u64>,
}

impl Baseline {
    /// Permitted count for `rule` (absent rules are held at zero).
    pub fn count(&self, rule: &str) -> u64 {
        self.counts.get(rule).copied().unwrap_or(0)
    }

    /// Baseline matching a report exactly (for `--bless`).
    pub fn bless(report: &Report) -> Baseline {
        Baseline {
            counts: report
                .counts()
                .into_iter()
                .map(|c| (c.rule.to_string(), c.count))
                .collect(),
        }
    }

    /// Serialize as `flipper-lint-baseline/v1`.
    pub fn to_json(&self) -> String {
        let mut s =
            String::from("{\n  \"schema\": \"flipper-lint-baseline/v1\",\n  \"counts\": {\n");
        let n = self.counts.len();
        for (i, (rule, count)) in self.counts.iter().enumerate() {
            let _ = write!(s, "    \"{}\": {}", json_escape(rule), count);
            s.push_str(if i + 1 < n { ",\n" } else { "\n" });
        }
        s.push_str("  }\n}\n");
        s
    }

    /// Parse the baseline document. Accepts exactly the shape `to_json`
    /// writes (whitespace-insensitive); anything else is a descriptive
    /// error, never a panic.
    pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
        let mut p = MiniJson::new(text);
        p.expect('{')?;
        let mut counts = BTreeMap::new();
        let mut saw_schema = false;
        loop {
            let key = p.string()?;
            p.expect(':')?;
            match key.as_str() {
                "schema" => {
                    let v = p.string()?;
                    if v != "flipper-lint-baseline/v1" {
                        return Err(format!("unsupported baseline schema `{v}`").into());
                    }
                    saw_schema = true;
                }
                "counts" => {
                    p.expect('{')?;
                    if !p.try_expect('}') {
                        loop {
                            let rule = p.string()?;
                            p.expect(':')?;
                            let n = p.number()?;
                            counts.insert(rule, n);
                            if !p.try_expect(',') {
                                break;
                            }
                        }
                        p.expect('}')?;
                    }
                }
                other => return Err(format!("unexpected baseline key `{other}`").into()),
            }
            if !p.try_expect(',') {
                break;
            }
        }
        p.expect('}')?;
        if !saw_schema {
            return Err(BaselineError::from(
                "baseline is missing the `schema` field".to_string(),
            ));
        }
        Ok(Baseline { counts })
    }
}

/// A tiny single-purpose JSON scanner for the baseline document.
struct MiniJson<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> MiniJson<'a> {
    fn new(text: &'a str) -> Self {
        MiniJson {
            chars: text.chars().peekable(),
        }
    }

    fn skip_ws(&mut self) {
        while self.chars.peek().is_some_and(|c| c.is_whitespace()) {
            self.chars.next();
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        match self.chars.next() {
            Some(got) if got == c => Ok(()),
            Some(got) => Err(format!("expected `{c}`, found `{got}`")),
            None => Err(format!("expected `{c}`, found end of input")),
        }
    }

    fn try_expect(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.chars.peek() == Some(&c) {
            self.chars.next();
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut s = String::new();
        loop {
            match self.chars.next() {
                Some('"') => return Ok(s),
                Some('\\') => match self.chars.next() {
                    Some(e) => s.push(e),
                    None => return Err("unterminated escape in string".to_string()),
                },
                Some(c) => s.push(c),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let mut s = String::new();
        while self.chars.peek().is_some_and(|c| c.is_ascii_digit()) {
            s.push(self.chars.next().unwrap_or('0'));
        }
        s.parse::<u64>()
            .map_err(|_| format!("expected a count, found `{s}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(findings: Vec<Finding>) -> Report {
        Report {
            files_scanned: 1,
            findings,
        }
    }

    fn finding(rule: &'static str, allowed: bool) -> Finding {
        Finding {
            rule,
            file: "crates/x/src/lib.rs".to_string(),
            line: 1,
            col: 1,
            message: "m \"quoted\"".to_string(),
            allowed,
        }
    }

    #[test]
    fn counts_split_allowed_from_live() {
        let r = report_with(vec![
            finding("panic-hygiene", false),
            finding("panic-hygiene", true),
        ]);
        let c = &r.counts()[0];
        assert_eq!((c.rule, c.count, c.allowed), ("panic-hygiene", 1, 1));
    }

    #[test]
    fn baseline_roundtrip_and_ratchet() {
        let r = report_with(vec![finding("panic-hygiene", false)]);
        let b = Baseline::bless(&r);
        let parsed = Baseline::parse(&b.to_json()).unwrap();
        assert_eq!(parsed, b);
        assert!(r.violations(&parsed).is_empty(), "blessed baseline passes");
        // One more finding than permitted: violation.
        let worse = report_with(vec![
            finding("panic-hygiene", false),
            finding("panic-hygiene", false),
        ]);
        let v = worse.violations(&parsed);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].0.count, 2);
        assert_eq!(v[0].1, 1);
        // Absent rules are held at zero.
        let zero = Baseline::default();
        assert_eq!(r.violations(&zero).len(), 1);
    }

    #[test]
    fn baseline_parse_rejects_garbage() {
        assert!(Baseline::parse("").is_err());
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse("{\"schema\": \"other/v9\", \"counts\": {}}").is_err());
        assert!(Baseline::parse(
            "{\"schema\": \"flipper-lint-baseline/v1\", \"counts\": {\"x\": }}"
        )
        .is_err());
    }

    #[test]
    fn json_report_is_escaped_and_versioned() {
        let r = report_with(vec![finding("panic-hygiene", false)]);
        let json = r.to_json(&Baseline::default());
        assert!(json.contains("\"schema\": \"flipper-lint/v1\""));
        assert!(json.contains("m \\\"quoted\\\""));
        assert!(json.contains("\"verdict\": \"fail\""));
        let blessed = Baseline::bless(&r);
        assert!(r.to_json(&blessed).contains("\"verdict\": \"pass\""));
    }
}
