//! A small hand-rolled Rust lexer, just deep enough for token-level lint
//! rules: it must never mistake the contents of a string literal, char
//! literal or comment for code.
//!
//! Handled: line comments, arbitrarily nested block comments, plain and
//! byte strings with escapes, raw strings with any hash depth (`r"…"`,
//! `r#"…"#`, `br##"…"##`, `cr#"…"#`), raw identifiers (`r#fn`), char and
//! byte-char literals (including `'"'` and `'/'`), lifetimes, numbers,
//! identifiers and single-character punctuation. Everything positional is
//! 1-based `(line, col)` in characters.
//!
//! The lexer is total: malformed input (say an unterminated string) never
//! panics, it just consumes to end of input.

/// What a token is. Only the distinctions the rules need are kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (text in [`Tok::text`]).
    Ident,
    /// One punctuation character (in [`Tok::punct`]).
    Punct,
    /// Lifetime such as `'a` (text without the quote).
    Lifetime,
    /// String, raw-string, char or byte literal. The raw contents (without
    /// quotes/hashes, escapes unprocessed) are kept in [`Tok::text`] so
    /// content rules (schema-tag detection) can inspect them.
    StrLit,
    /// Numeric literal. Contents are discarded.
    NumLit,
}

/// One lexed token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Identifier / lifetime text (empty for other kinds).
    pub text: String,
    /// Punctuation character (`'\0'` for other kinds).
    pub punct: char,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column, in characters.
    pub col: u32,
}

impl Tok {
    /// Is this the identifier `name`?
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Is this the punctuation character `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.punct == c
    }
}

/// One comment (line or block) with its source span and raw text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line of the first character of the comment marker.
    pub line: u32,
    /// 1-based line of the last character of the comment.
    pub end_line: u32,
    /// Comment text without the `//` / `/* */` markers, untrimmed.
    pub text: String,
}

/// The lexer output: code tokens and comments, in source order.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// Code tokens (comments and whitespace excluded).
    pub tokens: Vec<Tok>,
    /// All comments, for `lint:allow` and `SAFETY:` inspection.
    pub comments: Vec<Comment>,
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn new(src: &str) -> Self {
        Cursor {
            chars: src.chars().collect(),
            i: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn at_end(&self) -> bool {
        self.i >= self.chars.len()
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into tokens and comments.
pub fn lex(src: &str) -> LexOutput {
    let mut cur = Cursor::new(src);
    let mut out = LexOutput::default();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
        } else if c == '/' && cur.peek(1) == Some('/') {
            lex_line_comment(&mut cur, &mut out, line);
        } else if c == '/' && cur.peek(1) == Some('*') {
            lex_block_comment(&mut cur, &mut out, line);
        } else if c == '"' {
            cur.bump();
            let text = consume_escaped_string(&mut cur);
            push_str(&mut out, text, line, col);
        } else if c == '\'' {
            lex_quote(&mut cur, &mut out, line, col);
        } else if let Some(hashes) = raw_string_prefix(&cur, c) {
            // `r"…"`, `r#"…"#`, `br##"…"##`, `cr#"…"#` — consume the prefix
            // letters, the hashes and the opening quote, then scan for the
            // matching `"` + hashes.
            while cur.peek(0) != Some('"') {
                cur.bump();
            }
            cur.bump();
            let text = consume_raw_string(&mut cur, hashes);
            push_str(&mut out, text, line, col);
        } else if c == 'b' && cur.peek(1) == Some('\'') {
            cur.bump(); // `b`
            let (l2, c2) = (cur.line, cur.col);
            lex_quote(&mut cur, &mut out, l2, c2);
            if let Some(last) = out.tokens.last_mut() {
                last.line = line;
                last.col = col;
            }
        } else if c == 'b' && cur.peek(1) == Some('"') {
            cur.bump();
            cur.bump();
            let text = consume_escaped_string(&mut cur);
            push_str(&mut out, text, line, col);
        } else if c == 'r' && cur.peek(1) == Some('#') && cur.peek(2).is_some_and(is_ident_start) {
            // Raw identifier `r#fn`.
            cur.bump();
            cur.bump();
            let text = consume_ident(&mut cur);
            out.tokens.push(Tok {
                kind: TokKind::Ident,
                text,
                punct: '\0',
                line,
                col,
            });
        } else if is_ident_start(c) {
            let text = consume_ident(&mut cur);
            out.tokens.push(Tok {
                kind: TokKind::Ident,
                text,
                punct: '\0',
                line,
                col,
            });
        } else if c.is_ascii_digit() {
            consume_number(&mut cur);
            push_lit(&mut out, TokKind::NumLit, line, col);
        } else {
            cur.bump();
            out.tokens.push(Tok {
                kind: TokKind::Punct,
                text: String::new(),
                punct: c,
                line,
                col,
            });
        }
    }
    out
}

fn push_lit(out: &mut LexOutput, kind: TokKind, line: u32, col: u32) {
    out.tokens.push(Tok {
        kind,
        text: String::new(),
        punct: '\0',
        line,
        col,
    });
}

/// Push a string-class literal keeping its raw contents (escapes are left
/// unprocessed — good enough for substring rules, and never lossy for the
/// escape-free schema tags they look for).
fn push_str(out: &mut LexOutput, text: String, line: u32, col: u32) {
    out.tokens.push(Tok {
        kind: TokKind::StrLit,
        text,
        punct: '\0',
        line,
        col,
    });
}

/// Hash count of a raw-string opener at the cursor, if one starts here.
/// Recognized prefixes: `r`, `br`, `b`, `c`, `cr` — but only when followed
/// by `#*"`; `r#ident` (raw identifier) is rejected by requiring a `"`
/// after the hashes.
fn raw_string_prefix(cur: &Cursor, c: char) -> Option<usize> {
    let skip = match c {
        'r' => 1,
        'c' if matches!(cur.peek(1), Some('"') | Some('#')) => 1,
        'b' | 'c' if cur.peek(1) == Some('r') => 2,
        _ => return None,
    };
    let mut hashes = 0;
    while cur.peek(skip + hashes) == Some('#') {
        hashes += 1;
    }
    (cur.peek(skip + hashes) == Some('"')).then_some(hashes)
}

/// Consume a `"`-terminated string body with `\`-escapes; the opening quote
/// is already consumed. Returns the raw body (escapes unprocessed).
fn consume_escaped_string(cur: &mut Cursor) -> String {
    let mut text = String::new();
    while let Some(c) = cur.bump() {
        if c == '\\' {
            text.push(c);
            if let Some(e) = cur.bump() {
                text.push(e);
            }
        } else if c == '"' {
            break;
        } else {
            text.push(c);
        }
    }
    text
}

/// Consume a raw-string body terminated by `"` + `hashes` hash marks; the
/// opening quote is already consumed. Returns the body text.
fn consume_raw_string(cur: &mut Cursor, hashes: usize) -> String {
    let mut text = String::new();
    while !cur.at_end() {
        if cur.peek(0) == Some('"') && (0..hashes).all(|k| cur.peek(1 + k) == Some('#')) {
            for _ in 0..=hashes {
                cur.bump();
            }
            return text;
        }
        if let Some(c) = cur.bump() {
            text.push(c);
        }
    }
    text
}

/// Lex from a `'`: a char literal (`'x'`, `'\n'`, `'"'`, `'\u{1F600}'`) or
/// a lifetime (`'a`, `'static`).
fn lex_quote(cur: &mut Cursor, out: &mut LexOutput, line: u32, col: u32) {
    cur.bump(); // opening `'`
    match cur.peek(0) {
        Some('\\') => {
            cur.bump();
            if cur.peek(0) == Some('u') {
                cur.bump();
                if cur.peek(0) == Some('{') {
                    while cur.peek(0).is_some_and(|c| c != '}') {
                        cur.bump();
                    }
                    cur.bump();
                }
            } else {
                cur.bump();
            }
            if cur.peek(0) == Some('\'') {
                cur.bump();
            }
            push_lit(out, TokKind::StrLit, line, col);
        }
        Some(c) if cur.peek(1) == Some('\'') => {
            // `'x'` — including `'"'`, `'/'` and other punctuation chars.
            let _ = c;
            cur.bump();
            cur.bump();
            push_lit(out, TokKind::StrLit, line, col);
        }
        Some(c) if is_ident_start(c) => {
            let text = consume_ident(cur);
            out.tokens.push(Tok {
                kind: TokKind::Lifetime,
                text,
                punct: '\0',
                line,
                col,
            });
        }
        _ => {
            // Stray quote (malformed source): emit as punctuation.
            out.tokens.push(Tok {
                kind: TokKind::Punct,
                text: String::new(),
                punct: '\'',
                line,
                col,
            });
        }
    }
}

fn consume_ident(cur: &mut Cursor) -> String {
    let mut s = String::new();
    while let Some(c) = cur.peek(0) {
        if is_ident_continue(c) {
            s.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    s
}

fn consume_number(cur: &mut Cursor) {
    // Digits, type suffixes and `_` separators; a `.` continues the number
    // only when followed by a digit (so `1.max(2)` stays a method call).
    while let Some(c) = cur.peek(0) {
        let continues =
            is_ident_continue(c) || (c == '.' && cur.peek(1).is_some_and(|d| d.is_ascii_digit()));
        if !continues {
            break;
        }
        cur.bump();
    }
}

fn lex_line_comment(cur: &mut Cursor, out: &mut LexOutput, line: u32) {
    cur.bump();
    cur.bump();
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    out.comments.push(Comment {
        line,
        end_line: line,
        text,
    });
}

fn lex_block_comment(cur: &mut Cursor, out: &mut LexOutput, line: u32) {
    cur.bump();
    cur.bump();
    let mut depth = 1usize;
    let mut text = String::new();
    while depth > 0 && !cur.at_end() {
        if cur.peek(0) == Some('/') && cur.peek(1) == Some('*') {
            depth += 1;
            cur.bump();
            cur.bump();
            text.push_str("/*");
        } else if cur.peek(0) == Some('*') && cur.peek(1) == Some('/') {
            depth -= 1;
            cur.bump();
            cur.bump();
            if depth > 0 {
                text.push_str("*/");
            }
        } else if let Some(c) = cur.bump() {
            text.push(c);
        }
    }
    out.comments.push(Comment {
        line,
        end_line: cur.line,
        text,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn plain_tokens_with_positions() {
        let out = lex("let x = foo.bar();\nlet y = 2;");
        let foo = out.tokens.iter().find(|t| t.is_ident("foo")).unwrap();
        assert_eq!((foo.line, foo.col), (1, 9));
        let y = out.tokens.iter().find(|t| t.is_ident("y")).unwrap();
        assert_eq!((y.line, y.col), (2, 5));
    }

    #[test]
    fn string_contents_are_not_code() {
        assert_eq!(idents(r#"let s = "HashMap unwrap // foo";"#), ["let", "s"]);
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        assert_eq!(idents(r##"let s = r"unwrap";"##), ["let", "s"]);
        assert_eq!(idents(r###"let s = r#"un"wrap"#;"###), ["let", "s"]);
        assert_eq!(
            idents("let s = r##\"quote \"# still inside\"##; tail"),
            ["let", "s", "tail"]
        );
        assert_eq!(idents("let b = br#\"bytes\"#;"), ["let", "b"]);
    }

    #[test]
    fn raw_identifier_is_an_identifier_not_a_string() {
        assert_eq!(
            idents("let r#fn = 1; use r#fn;"),
            ["let", "fn", "use", "fn"]
        );
    }

    #[test]
    fn char_literals_with_quote_and_slashes() {
        // `'"'` and `'/'` must not open a string or comment.
        assert_eq!(
            idents(r#"if c == '"' || c == '/' { x } else { unwrap_seen }"#),
            ["if", "c", "c", "x", "else", "unwrap_seen"]
        );
        assert_eq!(
            idents(r"let c = '\''; let d = '\\'; tail"),
            ["let", "c", "let", "d", "tail"]
        );
        assert_eq!(idents(r"let c = '\u{1F600}'; tail"), ["let", "c", "tail"]);
        assert_eq!(idents("let b = b'x'; tail"), ["let", "b", "tail"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let out = lex("fn f<'a>(x: &'a str) -> &'static str { x }");
        let lifetimes: Vec<&str> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["a", "a", "static"]);
    }

    #[test]
    fn nested_block_comments() {
        let out = lex("a /* one /* two /* three */ two */ one */ b");
        assert_eq!(
            out.tokens
                .iter()
                .filter(|t| t.kind == TokKind::Ident)
                .count(),
            2
        );
        assert_eq!(out.comments.len(), 1);
        assert!(out.comments[0].text.contains("three"));
    }

    #[test]
    fn comments_record_text_and_lines() {
        let out = lex("x\n// lint:allow(panic-hygiene) reason here\ny /* block\nspans */ z");
        assert_eq!(out.comments.len(), 2);
        assert_eq!(out.comments[0].line, 2);
        assert!(out.comments[0].text.contains("lint:allow(panic-hygiene)"));
        assert_eq!(out.comments[1].line, 3);
        assert_eq!(out.comments[1].end_line, 4);
    }

    #[test]
    fn comment_markers_inside_strings_are_ignored() {
        let out = lex(r#"let s = "// not a comment /* nor this */"; y"#);
        assert!(out.comments.is_empty());
        assert_eq!(
            out.tokens
                .iter()
                .filter(|t| t.kind == TokKind::Ident)
                .count(),
            3
        );
    }

    #[test]
    fn numbers_do_not_swallow_method_calls() {
        assert_eq!(
            idents("let x = 1.max(2); let y = 1.5e3_f64;"),
            ["let", "x", "max", "let", "y"]
        );
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        lex(r#"let s = "unterminated"#);
        lex("let c = '");
        lex("/* never closed");
        lex("let r = r#\"raw never closed");
    }
}
