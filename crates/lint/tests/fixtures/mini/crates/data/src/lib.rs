//! Fixture: concurrency-discipline rule (this is not `exec.rs`).
pub fn fanout() {
    std::thread::spawn(|| {});
}
