//! Fixture: concurrency-discipline rule (this is not `exec.rs`).
pub fn fanout() {
    std::thread::spawn(|| {});
}

/// Fixture: layering-discipline — `data` (layer 2) importing `api`
/// (layer 4) is a back-edge.
pub fn upward() {
    flipper_api::nope();
}
