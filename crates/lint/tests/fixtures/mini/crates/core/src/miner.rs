//! Fixture: determinism rule (this path is on the result-byte path list).
use std::collections::HashMap;

/// Count distinct values.
pub fn distinct(xs: &[u32]) -> usize {
    let mut seen = HashMap::new();
    for &x in xs {
        seen.insert(x, ());
    }
    seen.len()
}
