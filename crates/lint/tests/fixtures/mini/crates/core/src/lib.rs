//! Fixture: panic-hygiene, allow handling, and test-region skipping.
pub mod miner;

#[cfg(test)]
mod proptests;

pub fn boom(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn fine(x: Option<u32>) -> u32 {
    // lint:allow(panic-hygiene) fixture: justified by construction
    x.expect("fixture invariant")
}

#[cfg(test)]
mod tests {
    pub fn in_tests(x: Option<u32>) -> u32 {
        x.unwrap()
    }
}
