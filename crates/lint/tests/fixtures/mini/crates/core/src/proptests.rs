//! Declared `#[cfg(test)] mod proptests;` by lib.rs — this whole file is
//! test-only and must produce no findings.
pub fn would_be_flagged(x: Option<u32>) -> u32 {
    x.unwrap()
}
