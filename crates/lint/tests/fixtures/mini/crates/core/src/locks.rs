//! Fixture: lock-ordering — `a` and `b` acquire the `m1`/`m2` lock
//! classes in opposite orders, the classic deadlock shape.
use std::sync::Mutex;

pub fn a(m1: &Mutex<u32>, m2: &Mutex<u32>) -> u32 {
    let x = m1.lock();
    let y = m2.lock();
    x.map(|g| *g).unwrap_or(0) + y.map(|g| *g).unwrap_or(0)
}

pub fn b(m1: &Mutex<u32>, m2: &Mutex<u32>) -> u32 {
    let y = m2.lock();
    let x = m1.lock();
    x.map(|g| *g).unwrap_or(0) + y.map(|g| *g).unwrap_or(0)
}
