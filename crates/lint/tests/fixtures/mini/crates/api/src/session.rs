//! Fixture: panic-reachability — `Session::mine` is an entry point and
//! reaches the panic site in `risky`, so that finding is re-ruled from
//! panic-hygiene to the hard-zero panic-reachability.
pub struct Session;

impl Session {
    pub fn mine(&self) -> u32 {
        risky(None)
    }
}

fn risky(x: Option<u32>) -> u32 {
    x.unwrap()
}
