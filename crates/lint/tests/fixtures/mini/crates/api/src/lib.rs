//! Fixture: error-hygiene rule.
pub fn load(path: &str) -> Result<String, String> {
    Err(path.to_string())
}

pub fn run() -> Result<(), Box<dyn std::error::Error>> {
    Ok(())
}

/// Fixture: wire-format-registry — a schema tag spelled as a literal
/// outside the flipper-wire registry module.
pub fn header() -> &'static str {
    "flipper-results/v1"
}
