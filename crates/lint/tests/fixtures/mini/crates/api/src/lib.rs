//! Fixture: error-hygiene rule.
pub fn load(path: &str) -> Result<String, String> {
    Err(path.to_string())
}

pub fn run() -> Result<(), Box<dyn std::error::Error>> {
    Ok(())
}
