//! Fixture: allow-hygiene rule.
// lint:allow(determinism) that rule accepts no allows
pub fn x() {}
// lint:allow(panic-hygiene)
pub fn y() {}
// lint:allow(made-up-rule) no such rule
pub fn z() {}
