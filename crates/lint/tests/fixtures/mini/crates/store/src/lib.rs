//! Fixture: unsafe-audit rule.
pub fn peek(xs: &[u32]) -> u32 {
    unsafe { *xs.as_ptr() }
}

pub fn checked(xs: &[u32]) -> u32 {
    // SAFETY: fixture — the pointer comes from a live slice reference.
    unsafe { *xs.as_ptr() }
}
