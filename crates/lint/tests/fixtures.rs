//! Fixture-tree acceptance tests for `flipper-lint`: a miniature workspace
//! under `tests/fixtures/mini/` carries exactly one arranged violation per
//! rule (plus an allowed finding, a `mod tests` block and an out-of-line
//! `#[cfg(test)]` module that must stay silent), and the analysis must
//! report precisely those diagnostics — same rule, file, line, column —
//! with a byte-stable `flipper-lint/v1` JSON rendering and the documented
//! CLI exit codes.

use flipper_lint::analyze_workspace;
use flipper_lint::report::Baseline;
use std::path::Path;
use std::process::Command;

fn fixture_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/mini"))
}

#[test]
fn fixture_findings_are_exact() {
    let report = analyze_workspace(fixture_root()).expect("fixture tree analyzes");
    assert_eq!(
        report.files_scanned, 6,
        "proptests.rs is skipped as test-only"
    );
    let got: Vec<(&str, &str, u32, u32, bool)> = report
        .findings
        .iter()
        .map(|f| (f.rule, f.file.as_str(), f.line, f.col, f.allowed))
        .collect();
    let want = vec![
        ("error-hygiene", "crates/api/src/lib.rs", 2, 43, false),
        ("error-hygiene", "crates/api/src/lib.rs", 6, 28, false),
        ("panic-hygiene", "crates/core/src/lib.rs", 8, 7, false),
        ("panic-hygiene", "crates/core/src/lib.rs", 13, 7, true),
        ("determinism", "crates/core/src/miner.rs", 2, 23, false),
        ("determinism", "crates/core/src/miner.rs", 6, 20, false),
        (
            "concurrency-discipline",
            "crates/data/src/lib.rs",
            3,
            5,
            false,
        ),
        (
            "concurrency-discipline",
            "crates/data/src/lib.rs",
            3,
            10,
            false,
        ),
        ("allow-hygiene", "crates/measures/src/lib.rs", 2, 1, false),
        ("allow-hygiene", "crates/measures/src/lib.rs", 4, 1, false),
        ("allow-hygiene", "crates/measures/src/lib.rs", 6, 1, false),
        ("unsafe-audit", "crates/store/src/lib.rs", 3, 5, false),
    ];
    assert_eq!(got, want);
}

#[test]
fn json_report_is_byte_stable() {
    let report = analyze_workspace(fixture_root()).expect("fixture tree analyzes");
    let baseline_text = std::fs::read_to_string(fixture_root().join("LINT_BASELINE.json")).unwrap();
    let baseline = Baseline::parse(&baseline_text).unwrap();
    let expected = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/expected.json"
    ))
    .unwrap();
    assert_eq!(
        report.to_json(&baseline),
        expected,
        "flipper-lint/v1 rendering drifted from tests/fixtures/expected.json; \
         regenerate it deliberately if the schema change is intentional"
    );
}

#[test]
fn baseline_round_trips() {
    let report = analyze_workspace(fixture_root()).expect("fixture tree analyzes");
    let blessed = Baseline::bless(&report);
    let reparsed = Baseline::parse(&blessed.to_json()).unwrap();
    assert_eq!(blessed, reparsed);
    assert!(report.violations(&reparsed).is_empty());
}

fn lint_cmd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_flipper-lint"))
}

#[test]
fn cli_exit_codes_follow_the_ratchet() {
    // At-baseline run: the committed fixture baseline matches the findings.
    let ok = lint_cmd()
        .arg("--root")
        .arg(fixture_root())
        .output()
        .expect("spawn flipper-lint");
    assert_eq!(ok.status.code(), Some(0), "at-baseline run must exit 0");

    // Injected regression: against a zero baseline (absent file) every
    // fixture violation exceeds its permitted count.
    let fail = lint_cmd()
        .arg("--root")
        .arg(fixture_root())
        .arg("--baseline")
        .arg(fixture_root().join("no-such-baseline.json"))
        .output()
        .expect("spawn flipper-lint");
    assert_eq!(fail.status.code(), Some(1), "regressions must exit 1");

    // Usage errors exit 2.
    let usage = lint_cmd()
        .arg("--no-such-flag")
        .output()
        .expect("spawn flipper-lint");
    assert_eq!(usage.status.code(), Some(2), "usage errors must exit 2");
}
