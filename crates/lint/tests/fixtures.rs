//! Fixture-tree acceptance tests for `flipper-lint`: a miniature workspace
//! under `tests/fixtures/mini/` carries arranged violations for every rule
//! — including the workspace-pass rules (an entry-point-reachable panic, a
//! layering back-edge, a duplicated schema tag and a lock-order inversion)
//! — plus an allowed finding, a `mod tests` block and an out-of-line
//! `#[cfg(test)]` module that must stay silent. The analysis must report
//! precisely those diagnostics — same rule, file, line, column — with a
//! byte-stable `flipper-lint/v1` JSON rendering and the documented CLI
//! exit codes. A self-lint test then holds `crates/lint` itself
//! finding-free against the real workspace.

use flipper_lint::report::Baseline;
use flipper_lint::{analyze_workspace, analyze_workspace_full};
use std::path::Path;
use std::process::Command;

fn fixture_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/mini"))
}

#[test]
fn fixture_findings_are_exact() {
    let report = analyze_workspace(fixture_root()).expect("fixture tree analyzes");
    assert_eq!(
        report.files_scanned, 8,
        "proptests.rs is skipped as test-only"
    );
    let got: Vec<(&str, &str, u32, u32, bool, bool)> = report
        .findings
        .iter()
        .map(|f| {
            (
                f.rule,
                f.file.as_str(),
                f.line,
                f.col,
                f.allowed,
                f.reachable,
            )
        })
        .collect();
    let want = vec![
        (
            "error-hygiene",
            "crates/api/src/lib.rs",
            2,
            43,
            false,
            false,
        ),
        (
            "error-hygiene",
            "crates/api/src/lib.rs",
            6,
            28,
            false,
            false,
        ),
        (
            "wire-format-registry",
            "crates/api/src/lib.rs",
            13,
            5,
            false,
            false,
        ),
        (
            "panic-reachability",
            "crates/api/src/session.rs",
            13,
            7,
            false,
            true,
        ),
        (
            "panic-hygiene",
            "crates/core/src/lib.rs",
            8,
            7,
            false,
            false,
        ),
        (
            "panic-hygiene",
            "crates/core/src/lib.rs",
            13,
            7,
            true,
            false,
        ),
        (
            "lock-ordering",
            "crates/core/src/locks.rs",
            6,
            16,
            false,
            false,
        ),
        (
            "determinism",
            "crates/core/src/miner.rs",
            2,
            23,
            false,
            false,
        ),
        (
            "determinism",
            "crates/core/src/miner.rs",
            6,
            20,
            false,
            false,
        ),
        (
            "concurrency-discipline",
            "crates/data/src/lib.rs",
            3,
            5,
            false,
            false,
        ),
        (
            "concurrency-discipline",
            "crates/data/src/lib.rs",
            3,
            10,
            false,
            false,
        ),
        (
            "layering-discipline",
            "crates/data/src/lib.rs",
            9,
            5,
            false,
            false,
        ),
        (
            "allow-hygiene",
            "crates/measures/src/lib.rs",
            2,
            1,
            false,
            false,
        ),
        (
            "allow-hygiene",
            "crates/measures/src/lib.rs",
            4,
            1,
            false,
            false,
        ),
        (
            "allow-hygiene",
            "crates/measures/src/lib.rs",
            6,
            1,
            false,
            false,
        ),
        (
            "unsafe-audit",
            "crates/store/src/lib.rs",
            3,
            5,
            false,
            false,
        ),
    ];
    assert_eq!(got, want);
}

#[test]
fn json_report_is_byte_stable() {
    let report = analyze_workspace(fixture_root()).expect("fixture tree analyzes");
    let baseline_text = std::fs::read_to_string(fixture_root().join("LINT_BASELINE.json")).unwrap();
    let baseline = Baseline::parse(&baseline_text).unwrap();
    let expected = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/expected.json"
    ))
    .unwrap();
    assert_eq!(
        report.to_json(&baseline),
        expected,
        "flipper-lint/v1 rendering drifted from tests/fixtures/expected.json; \
         regenerate it deliberately if the schema change is intentional"
    );
}

#[test]
fn baseline_round_trips() {
    let report = analyze_workspace(fixture_root()).expect("fixture tree analyzes");
    let blessed = Baseline::bless(&report);
    let reparsed = Baseline::parse(&blessed.to_json()).unwrap();
    assert_eq!(blessed, reparsed);
    assert!(report.violations(&reparsed).is_empty());
}

#[test]
fn self_lint_is_finding_free() {
    // The linter eats its own dogfood: analyzing the real workspace must
    // produce no un-allowed findings inside crates/lint itself.
    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let analysis = analyze_workspace_full(root).expect("workspace analyzes");
    let own: Vec<String> = analysis
        .report
        .findings
        .iter()
        .filter(|f| f.file.starts_with("crates/lint/") && !f.allowed)
        .map(|f| format!("{}:{}:{} {} {}", f.file, f.line, f.col, f.rule, f.message))
        .collect();
    assert!(own.is_empty(), "lint flags itself: {own:#?}");
}

#[test]
fn crate_graph_covers_fixture_back_edge() {
    let analysis = analyze_workspace_full(fixture_root()).expect("fixture tree analyzes");
    let g = &analysis.crate_graph;
    assert!(g
        .edges
        .contains_key(&("data".to_string(), "api".to_string())));
    let dot = g.to_dot();
    assert!(dot.starts_with("digraph flipper {"), "{dot}");
    assert!(dot.contains("\"api\" -> \"data\";"), "{dot}");
}

fn lint_cmd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_flipper-lint"))
}

#[test]
fn cli_exit_codes_follow_the_ratchet() {
    // At-baseline run: the committed fixture baseline matches the findings.
    let ok = lint_cmd()
        .arg("--root")
        .arg(fixture_root())
        .output()
        .expect("spawn flipper-lint");
    assert_eq!(ok.status.code(), Some(0), "at-baseline run must exit 0");

    // Injected regression: against a zero baseline (absent file) every
    // fixture violation exceeds its permitted count.
    let fail = lint_cmd()
        .arg("--root")
        .arg(fixture_root())
        .arg("--baseline")
        .arg(fixture_root().join("no-such-baseline.json"))
        .output()
        .expect("spawn flipper-lint");
    assert_eq!(fail.status.code(), Some(1), "regressions must exit 1");

    // Usage errors exit 2.
    let usage = lint_cmd()
        .arg("--no-such-flag")
        .output()
        .expect("spawn flipper-lint");
    assert_eq!(usage.status.code(), Some(2), "usage errors must exit 2");
}

#[test]
fn cli_graph_dot_prints_and_exits_zero() {
    let out = lint_cmd()
        .arg("--root")
        .arg(fixture_root())
        .arg("--graph")
        .arg("dot")
        .output()
        .expect("spawn flipper-lint");
    assert_eq!(
        out.status.code(),
        Some(0),
        "--graph dot ignores the ratchet"
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("digraph flipper {"), "{text}");
    assert!(text.contains("\"api\" -> \"data\";"), "{text}");

    // Unknown graph formats are usage errors.
    let bad = lint_cmd()
        .arg("--graph")
        .arg("ascii")
        .output()
        .expect("spawn flipper-lint");
    assert_eq!(bad.status.code(), Some(2));
}
