//! `flipper` — command-line interface for flipping-correlation mining.
//!
//! A thin client of the `flipper-api` session façade: every subcommand
//! parses flags, opens a [`Session`] (or loads a [`Dataset`]) through the
//! façade, and pipes results into its [`ResultSink`]s. Subcommands:
//!
//! * `generate` — produce a dataset (quest / groceries / census / medline /
//!   planted) in the text or FBIN binary format;
//! * `mine` — mine flipping patterns from a dataset file (optionally
//!   writing a machine-readable `flipper-results/v1` report);
//! * `sweep` — run a labeled grid of configurations (γ × ε × pruning
//!   variants × engines) against one ingestion of the dataset;
//! * `convert` — convert a dataset between the text and FBIN formats;
//! * `topk` — threshold-free top-K most-flipping search;
//! * `stats` — print dataset statistics;
//! * `results-diff` — compare two `flipper-results/v1` reports.
//!
//! Every `--input` path is format-sniffed by magic bytes; FBIN inputs are
//! streamed chunk by chunk, never materializing the raw database. Errors
//! print an `error:` line followed by the `caused by:` source chain, and
//! the process exits 2 for usage mistakes, 3 for cancelled or timed-out
//! runs (`--timeout`), 1 for data/I/O/configuration failures — so scripts
//! can tell "you called it wrong" from "it ran out of time" from "the data
//! is bad".

use flipper_api::io::{load_path, write_to, FileFormat};
use flipper_api::{
    emit_runs, threshold_point, CountingEngine, Dataset, FlipperConfig, FlipperError, Generator,
    JsonWriter, Measure, MinSupports, PathSource, PlantedParams, PruningConfig, QuestParams,
    ResultSink, Session, TextReport, Thresholds, TopKConfig,
};
use std::collections::HashMap;
use std::io::{BufWriter, Write};
use std::process::ExitCode;

fn usage() -> String {
    let results = flipper_wire::RESULTS_V1;
    let trace = flipper_wire::TRACE_V1;
    format!(
        "\
flipper — mining flipping correlations from datasets with taxonomies
(Barsky, Kim, Weninger, Han — PVLDB 5(4), 2011)

USAGE:
  flipper generate --kind <quest|groceries|census|medline|planted>
                   [--out FILE] [--format text|fbin] [--seed N]
                   [--transactions N] [--width W] [--scale F]
  flipper mine     --input FILE [--gamma F] [--epsilon F]
                   [--minsup F1,F2,...] [--measure NAME]
                   [--variant basic|flipping|tpg|full]
                   [--engine tidset|scan|bitset|auto] [--top K] [--max-k K]
                   [--threads N]   (0 = all cores, default 1)
                   [--cache-budget BYTES]   (e.g. 4M; 0 disables, default 16M)
                   [--output-json FILE] [--trace FILE] [--timings]
                   [--timeout SECS] [--salvage]
  flipper sweep    --input FILE [--gammas F1,F2,...] [--epsilons F1,F2,...]
                   [--variants v1,v2,...|all] [--engines e1,e2,...|all]
                   [--minsup F1,F2,...] [--measure NAME] [--threads N]
                   [--jobs N] [--cache-budget BYTES] [--seed-supports on|off]
                   [--output-json FILE] [--trace FILE]
                   [--timeout SECS] [--checkpoint FILE [--resume]]
  flipper convert  --input FILE --out FILE [--to text|fbin]
  flipper topk     --input FILE --k N [--minsup F1,F2,...]
  flipper stats    --input FILE
  flipper results-diff FILE_A FILE_B
  flipper help

Input files are auto-detected by magic bytes: FBIN binary datasets (written
by `generate --format fbin` or `convert --to fbin`) and the text interchange
format both work everywhere an `--input` is accepted. `mine` and `sweep`
ingest FBIN inputs chunk-by-chunk (streaming) and FBIN output format
defaults from a `.fbin` extension. `sweep` ingests the dataset ONCE and runs
the whole grid against the cached view; `--jobs` shards the runs themselves
over workers. `--output-json` writes the machine-readable
`{results}` report.

`--cache-budget` caps the per-worker cross-cell prefix cache (suffixes K/M/G;
0 disables it). `--seed-supports` (sweep, default on) answers supports
already counted by earlier grid points from a session-level cache. Sweep
points that differ only in execution knobs (engine, threads) mine once — the
repeats are marked `= <label>` in the table. None of these switches can
change any mined result; they only change how much counting costs.

`--trace FILE` records the run with the flipper-obs recorder and writes a
`{trace}` Chrome trace-event JSON (open it in chrome://tracing or
Perfetto). `--timings` (mine) prints a per-phase timing table plus counter
and cache statistics from the same recorder. Both are observability-only:
mined results and `{results}` bytes are identical with or without
them, at every thread count.

`--timeout SECS` bounds a run cooperatively: the deadline is checked at
cell/point boundaries and an expired run exits 3 with a typed error — never
a partial report. `mine --salvage` opens a damaged FBIN input in salvage
mode: chunks failing their CRC are quarantined (listed on stderr) and the
rest is mined; the JSON report carries an additive \"degraded\" field. `sweep
--checkpoint FILE` journals each completed point; after a kill or timeout,
re-running with `--resume` skips the journaled points (restored as summary
rows) and mines only the remainder. `results-diff` compares two
`{results}` reports: exit 0 when equivalent, 1 when they differ.

EXIT CODES:  0 success · 1 data/I-O/config error · 2 usage error
             · 3 cancelled or timed out

EXAMPLES:
  flipper generate --kind groceries --out groceries.txt
  flipper convert --input groceries.txt --out groceries.fbin
  flipper mine --input groceries.fbin --gamma 0.15 --epsilon 0.10 \\
               --minsup 0.001,0.0005,0.0002 --output-json results.json
  flipper sweep --input groceries.fbin --gammas 0.2,0.15 \\
               --epsilons 0.1,0.05 --variants all
"
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("{}", e.render_chain());
            if matches!(e, FlipperError::Usage(_)) {
                eprintln!("run `flipper help` for usage");
            }
            ExitCode::from(e.exit_code())
        }
    }
}

/// Dispatch and return the process exit code for the success path (`0`
/// everywhere except `results-diff`, which exits `1` when the documents
/// differ — the `diff`/`cmp` convention).
fn run(args: &[String]) -> Result<u8, FlipperError> {
    let ok = |()| 0u8;
    match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&parse_flags(&args[1..])?).map(ok),
        Some("mine") => cmd_mine(&parse_flags(&args[1..])?).map(ok),
        Some("sweep") => cmd_sweep(&parse_flags(&args[1..])?).map(ok),
        Some("convert") => cmd_convert(&parse_flags(&args[1..])?).map(ok),
        Some("topk") => cmd_topk(&parse_flags(&args[1..])?).map(ok),
        Some("stats") => cmd_stats(&parse_flags(&args[1..])?).map(ok),
        Some("results-diff") => cmd_results_diff(&args[1..]),
        Some("help") | None => {
            print!("{}", usage());
            Ok(0)
        }
        Some(other) => Err(FlipperError::usage(format!("unknown subcommand {other:?}"))),
    }
}

// ------------------------------------------------------------ flag parsing

type Flags = HashMap<String, String>;

/// Flags that take no value (presence means "on").
const BOOL_FLAGS: &[&str] = &["timings", "salvage", "resume"];

/// Parse `--key value` pairs (and bare [`BOOL_FLAGS`]) after the
/// subcommand.
fn parse_flags(args: &[String]) -> Result<Flags, FlipperError> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| FlipperError::usage(format!("expected --flag, got {:?}", args[i])))?;
        if BOOL_FLAGS.contains(&key) {
            flags.insert(key.to_string(), "on".to_string());
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| FlipperError::usage(format!("flag --{key} needs a value")))?
            .clone();
        flags.insert(key.to_string(), value);
        i += 2;
    }
    Ok(flags)
}

fn get_f64(flags: &Flags, key: &str, default: f64) -> Result<f64, FlipperError> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| FlipperError::usage(format!("--{key} expects a number, got {v:?}"))),
    }
}

fn get_usize(flags: &Flags, key: &str, default: usize) -> Result<usize, FlipperError> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| FlipperError::usage(format!("--{key} expects an integer, got {v:?}"))),
    }
}

/// Parse a comma-separated float list flag.
fn get_f64_list(flags: &Flags, key: &str) -> Result<Option<Vec<f64>>, FlipperError> {
    match flags.get(key) {
        None => Ok(None),
        Some(spec) => spec
            .split(',')
            .map(|s| {
                s.trim().parse().map_err(|_| {
                    FlipperError::usage(format!("bad --{key} {spec:?}: {s:?} is not a number"))
                })
            })
            .collect::<Result<Vec<f64>, _>>()
            .map(Some),
    }
}

/// Parse a byte-size flag: a plain integer with an optional `K`/`M`/`G`
/// suffix (powers of 1024, case-insensitive), e.g. `--cache-budget 4M`.
fn get_bytes(flags: &Flags, key: &str, default: usize) -> Result<usize, FlipperError> {
    let Some(v) = flags.get(key) else {
        return Ok(default);
    };
    let bad = || FlipperError::usage(format!("--{key} expects BYTES like 65536 or 4M, got {v:?}"));
    let (digits, shift) = match v.trim_end().chars().last() {
        Some('k') | Some('K') => (&v[..v.len() - 1], 10),
        Some('m') | Some('M') => (&v[..v.len() - 1], 20),
        Some('g') | Some('G') => (&v[..v.len() - 1], 30),
        _ => (v.as_str(), 0),
    };
    let n: usize = digits.trim().parse().map_err(|_| bad())?;
    n.checked_mul(1usize << shift).ok_or_else(bad)
}

fn input_path(flags: &Flags) -> Result<&String, FlipperError> {
    flags
        .get("input")
        .ok_or_else(|| FlipperError::usage("missing --input FILE"))
}

/// Build the `--timeout` cancel token: the run checks the deadline at
/// cell/point boundaries and exits 3 once it passes.
fn parse_timeout(flags: &Flags) -> Result<Option<flipper_api::CancelToken>, FlipperError> {
    match flags.get("timeout") {
        None => Ok(None),
        Some(v) => {
            let secs: f64 = v
                .parse()
                .ok()
                .filter(|s: &f64| *s > 0.0 && s.is_finite())
                .ok_or_else(|| {
                    FlipperError::usage(format!(
                        "--timeout expects a positive number of seconds, got {v:?}"
                    ))
                })?;
            Ok(Some(flipper_api::CancelToken::with_timeout(
                std::time::Duration::from_secs_f64(secs),
            )))
        }
    }
}

fn parse_minsup(flags: &Flags) -> Result<MinSupports, FlipperError> {
    match get_f64_list(flags, "minsup")? {
        None => Ok(MinSupports::default()),
        Some(fractions) => Ok(MinSupports::Fractions(fractions)),
    }
}

fn parse_measure(flags: &Flags) -> Result<Measure, FlipperError> {
    match flags.get("measure") {
        None => Ok(Measure::Kulczynski),
        Some(name) => Measure::parse(name)
            .ok_or_else(|| FlipperError::usage(format!("unknown measure {name:?}"))),
    }
}

fn parse_variant(name: &str) -> Result<PruningConfig, FlipperError> {
    match name {
        // Short CLI spellings plus the PruningConfig::name() forms emitted
        // in sweep labels and flipper-results/v1 reports, so a label read
        // from a report can be pasted back into --variant.
        "full" | "flipping+tpg+sibp" => Ok(PruningConfig::FULL),
        "basic" => Ok(PruningConfig::BASIC),
        "flipping" => Ok(PruningConfig::FLIPPING),
        "tpg" | "flipping+tpg" => Ok(PruningConfig::FLIPPING_TPG),
        other => Err(FlipperError::usage(format!("unknown variant {other:?}"))),
    }
}

fn parse_engine(name: &str) -> Result<CountingEngine, FlipperError> {
    CountingEngine::parse(name)
        .ok_or_else(|| FlipperError::usage(format!("unknown engine {name:?}")))
}

/// Resolve the output format: an explicit `--<flag> text|fbin` wins,
/// otherwise a `.fbin` output extension selects FBIN, otherwise text.
fn output_format(
    flags: &Flags,
    flag: &str,
    out: Option<&String>,
) -> Result<FileFormat, FlipperError> {
    match flags.get(flag) {
        Some(name) => FileFormat::parse(name).ok_or_else(|| {
            FlipperError::usage(format!("--{flag} expects text or fbin, got {name:?}"))
        }),
        None => Ok(match out {
            Some(path) => FileFormat::from_extension(std::path::Path::new(path)),
            None => FileFormat::Text,
        }),
    }
}

// ------------------------------------------------------------- subcommands

/// Write `ds` to `out` (or stdout) in `format`.
fn write_output(
    ds: &Dataset,
    out: Option<&String>,
    format: FileFormat,
) -> Result<(), FlipperError> {
    match out {
        Some(path) => flipper_api::io::write_path(path, ds, format)?,
        None => {
            let stdout = std::io::stdout();
            let mut w = BufWriter::new(stdout.lock());
            write_to(&mut w, ds, format)?;
            w.flush().map_err(|e| FlipperError::io("write stdout", e))?;
        }
    }
    if let Some(path) = out {
        eprintln!(
            "wrote {} transactions / {} taxonomy nodes to {path} ({})",
            ds.db.len(),
            ds.taxonomy.node_count(),
            format.name()
        );
    }
    Ok(())
}

fn cmd_generate(flags: &Flags) -> Result<(), FlipperError> {
    let kind = flags
        .get("kind")
        .ok_or_else(|| FlipperError::usage("generate requires --kind"))?;
    let seed = get_usize(flags, "seed", 42)? as u64;
    let generator = match kind.as_str() {
        "quest" => Generator::Quest(
            QuestParams::default()
                .with_transactions(get_usize(flags, "transactions", 100_000)?)
                .with_width(get_f64(flags, "width", 5.0)?)
                .with_seed(seed),
        ),
        "groceries" => Generator::Groceries { seed },
        "census" => Generator::Census { seed },
        "medline" => Generator::Medline {
            scale: get_f64(flags, "scale", 0.1)?,
            seed,
        },
        "planted" => Generator::Planted(PlantedParams {
            seed,
            ..Default::default()
        }),
        other => {
            return Err(FlipperError::usage(format!(
                "unknown dataset kind {other:?}"
            )))
        }
    };
    let ds = generator.dataset();
    let out = flags.get("out");
    let format = output_format(flags, "format", out)?;
    write_output(&ds, out, format)
}

fn cmd_convert(flags: &Flags) -> Result<(), FlipperError> {
    let out = Some(
        flags
            .get("out")
            .ok_or_else(|| FlipperError::usage("convert requires --out FILE"))?,
    );
    let format = output_format(flags, "to", out)?;
    let ds = load_path(input_path(flags)?)?;
    write_output(&ds, out, format)
}

/// Assemble the base mining configuration shared by `mine` and `sweep`.
/// Configuration invariants are checked once, by [`FlipperConfig::validate`];
/// violations coming from flags are the caller's mistake, so they map to
/// usage errors (exit 2).
fn base_config(flags: &Flags) -> Result<FlipperConfig, FlipperError> {
    let gamma = get_f64(flags, "gamma", 0.3)?;
    let epsilon = get_f64(flags, "epsilon", 0.1)?;
    let mut cfg = FlipperConfig {
        thresholds: Thresholds { gamma, epsilon },
        min_support: parse_minsup(flags)?,
        measure: parse_measure(flags)?,
        threads: get_usize(flags, "threads", 1)?,
        cache_budget: get_bytes(flags, "cache-budget", flipper_api::DEFAULT_CACHE_BUDGET)?,
        ..Default::default()
    };
    if let Some(name) = flags.get("variant") {
        cfg.pruning = parse_variant(name)?;
    }
    if let Some(name) = flags.get("engine") {
        cfg.engine = parse_engine(name)?;
    }
    if let Some(mk) = flags.get("max-k") {
        let max_k: usize = mk
            .parse()
            .map_err(|_| FlipperError::usage(format!("bad --max-k {mk:?}")))?;
        cfg.max_k = Some(max_k);
    }
    cfg.validate()
        .map_err(|e| FlipperError::usage(e.to_string()))?;
    Ok(cfg)
}

/// Open a mining session on `--input`, streaming FBIN files.
fn open_session(flags: &Flags, threads: usize) -> Result<Session, FlipperError> {
    Session::open_with_threads(PathSource::new(input_path(flags)?), threads)
}

/// An opened `--output-json` sink and the path it writes to.
type JsonOutput<'f> = (JsonWriter<BufWriter<std::fs::File>>, &'f String);

/// Open `--output-json` for writing, if requested — called before mining so
/// an unwritable path fails fast instead of after the whole run.
fn open_json_output(flags: &Flags) -> Result<Option<JsonOutput<'_>>, FlipperError> {
    match flags.get("output-json") {
        None => Ok(None),
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| FlipperError::io(format!("create {path}"), e))?;
            Ok(Some((JsonWriter::new(BufWriter::new(file)), path)))
        }
    }
}

/// Enable the flipper-obs recorder (clearing any stale capture) when
/// `--trace` or `--timings` asks for one.
fn start_recorder(record: bool) {
    if record {
        flipper_obs::enable();
        let _ = flipper_obs::drain();
    }
}

/// Stop recording and write the `flipper-trace/v1` file, if requested.
fn finish_recorder(
    record: bool,
    trace_out: Option<&String>,
) -> Result<Option<flipper_obs::Capture>, FlipperError> {
    if !record {
        return Ok(None);
    }
    let capture = flipper_obs::drain();
    flipper_obs::disable();
    if let Some(path) = trace_out {
        std::fs::write(path, capture.render_trace())
            .map_err(|e| FlipperError::io(format!("write {path}"), e))?;
        let tag = flipper_wire::TRACE_V1;
        eprintln!(
            "wrote {tag} trace ({} events) to {path}",
            capture.events.len()
        );
    }
    Ok(Some(capture))
}

/// Print the `--timings` per-phase summary sourced from the recorder plus
/// the run statistics that `flipper-results/v1` deliberately leaves out
/// (timings, counter and cache counters are execution facts, not results).
fn print_timings(capture: &flipper_obs::Capture, stats: &flipper_api::RunStats) {
    println!();
    println!(
        "{:<16} {:>8} {:>12} {:>12}",
        "phase", "calls", "total(ms)", "mean(us)"
    );
    for row in capture.phase_rows() {
        let total_ms = row.total_ns as f64 / 1e6;
        let mean_us = row.total_ns as f64 / 1e3 / row.calls as f64;
        println!(
            "{:<16} {:>8} {:>12.2} {:>12.1}",
            row.name, row.calls, total_ms, mean_us
        );
    }
    println!("run:     {}", stats.summary());
    let c = &stats.counter;
    println!(
        "counter: db_scans={} subset_tests={} intersections={} counted={} prefix_reuses={}",
        c.db_scans, c.subset_tests, c.intersections, c.candidates_counted, c.prefix_reuses
    );
    let k = &stats.cache;
    println!(
        "cache:   lookups={} exact={} parent={} hit_rate={:.1}% insertions={} evicted_cells={} \
         resident={}B seed_lookups={} seed_hits={}",
        k.lookups,
        k.exact_hits,
        k.parent_hits,
        k.hit_rate() * 100.0,
        k.insertions,
        k.evicted_cells,
        k.bytes_resident,
        k.seed_lookups,
        k.seed_hits
    );
    if stats.seeded_supports > 0 {
        println!(
            "seeded:  {} supports answered without counting",
            stats.seeded_supports
        );
    }
}

fn cmd_mine(flags: &Flags) -> Result<(), FlipperError> {
    let cfg = base_config(flags)?;
    let trace_out = flags.get("trace");
    let timings = flags.contains_key("timings");
    let record = trace_out.is_some() || timings;
    let token = parse_timeout(flags)?;
    let json_out = open_json_output(flags)?;
    start_recorder(record);
    let session = if flags.contains_key("salvage") {
        Session::open_salvage_path_with_threads(input_path(flags)?, cfg.threads)?
    } else {
        open_session(flags, cfg.threads)?
    };
    if let Some(report) = session.salvage_report() {
        if report.is_degraded() {
            eprintln!("degraded input ({}):", report.summary());
            for q in &report.quarantined {
                eprintln!(
                    "  quarantined chunk {} at byte {}: {}",
                    q.index, q.byte_offset, q.reason
                );
            }
            eprintln!("  results below were mined from the readable remainder");
        } else {
            eprintln!("salvage: input is intact ({})", report.summary());
        }
    }
    let result = match &token {
        Some(t) => session.mine_guarded(&cfg, t)?,
        None => session.mine(&cfg)?,
    };
    let capture = finish_recorder(record, trace_out)?;

    let top = get_usize(flags, "top", usize::MAX)?;
    let stdout = std::io::stdout();
    let mut report = TextReport::new(stdout.lock()).with_top(top);
    report.consume("mine", session.taxonomy(), &cfg, &result)?;
    report.finish()?;
    if let (Some(capture), true) = (&capture, timings) {
        print_timings(capture, &result.stats);
    }

    if let Some((json, path)) = json_out {
        let mut json = match session.salvage_report().filter(|r| r.is_degraded()) {
            Some(report) => json.with_degraded(report.summary()),
            None => json,
        };
        json.consume("mine", session.taxonomy(), &cfg, &result)?;
        json.finish()?;
        let tag = flipper_wire::RESULTS_V1;
        eprintln!("wrote {tag} report to {path}");
    }
    Ok(())
}

fn cmd_sweep(flags: &Flags) -> Result<(), FlipperError> {
    let base = base_config(flags)?;
    let gammas = get_f64_list(flags, "gammas")?.unwrap_or_else(|| vec![base.thresholds.gamma]);
    let epsilons =
        get_f64_list(flags, "epsilons")?.unwrap_or_else(|| vec![base.thresholds.epsilon]);
    let variants: Vec<PruningConfig> = match flags.get("variants").map(String::as_str) {
        None => vec![base.pruning],
        Some("all") => PruningConfig::VARIANTS.to_vec(),
        Some(spec) => spec
            .split(',')
            .map(|s| parse_variant(s.trim()))
            .collect::<Result<_, _>>()?,
    };
    let engines: Vec<CountingEngine> = match flags.get("engines").map(String::as_str) {
        None => vec![base.engine],
        Some("all") => CountingEngine::CONCRETE
            .into_iter()
            .chain([CountingEngine::Auto])
            .collect(),
        Some(spec) => spec
            .split(',')
            .map(|s| parse_engine(s.trim()))
            .collect::<Result<_, _>>()?,
    };
    let jobs = get_usize(flags, "jobs", 1)?;
    let seed_supports = match flags.get("seed-supports").map(String::as_str) {
        None | Some("on") => true,
        Some("off") => false,
        Some(other) => {
            return Err(FlipperError::usage(format!(
                "--seed-supports expects on or off, got {other:?}"
            )))
        }
    };

    // Build the whole labeled grid from the flags alone, so an empty grid
    // is reported before the (possibly expensive) ingestion starts.
    let mut points: Vec<(String, FlipperConfig)> = Vec::new();
    for &gamma in &gammas {
        for &epsilon in &epsilons {
            // The γ/ε skip rule and point label are shared with
            // Sweep::thresholds_grid so library and CLI labels agree.
            let Some((point_label, thresholds)) = threshold_point(gamma, epsilon) else {
                continue;
            };
            for &pruning in &variants {
                for &engine in &engines {
                    let mut cfg = base.clone();
                    cfg.thresholds = thresholds;
                    cfg.pruning = pruning;
                    cfg.engine = engine;
                    let mut label = point_label.clone();
                    if variants.len() > 1 {
                        label.push_str(&format!("/{}", pruning.name()));
                    }
                    if engines.len() > 1 {
                        label.push_str(&format!("/{}", engine.name()));
                    }
                    points.push((label, cfg));
                }
            }
        }
    }
    if points.is_empty() {
        return Err(FlipperError::usage(
            "the sweep grid is empty: every (gamma, epsilon) pair violates epsilon < gamma",
        ));
    }
    // Flag-built grid values can still be out of range (e.g. --gammas 1.5);
    // reject them here, before ingestion, under the usage policy.
    for (label, cfg) in &points {
        cfg.validate()
            .map_err(|e| FlipperError::usage(format!("sweep point {label}: {e}")))?;
    }
    let n_runs = points.len();
    let token = parse_timeout(flags)?;
    let resume = flags.contains_key("resume");
    let checkpoint = flags.get("checkpoint");
    if resume && checkpoint.is_none() {
        return Err(FlipperError::usage("--resume requires --checkpoint FILE"));
    }
    if let Some(path) = checkpoint {
        if std::path::Path::new(path).exists() && !resume {
            return Err(FlipperError::usage(format!(
                "checkpoint journal {path} already exists; pass --resume to \
                 continue it, or remove the file to start over"
            )));
        }
    }
    let json_out = open_json_output(flags)?;
    let trace_out = flags.get("trace");
    start_recorder(trace_out.is_some());

    let session = open_session(flags, base.threads)?;
    let journal = checkpoint
        .map(|path| flipper_api::SweepJournal::open(path, &session))
        .transpose()?;
    let mut sweep = session.sweep().with_jobs(jobs).with_seeding(seed_supports);
    if let Some(t) = &token {
        sweep = sweep.with_token(t);
    }
    for (label, cfg) in points {
        sweep = sweep.add(label, cfg);
    }
    eprintln!(
        "sweeping {n_runs} configurations over one ingestion of {} ({} transactions)",
        session.origin(),
        session.num_transactions()
    );
    let (runs, restored) = match &journal {
        Some(journal) => {
            let outcome = sweep.run_checkpointed(journal)?;
            (outcome.runs, outcome.restored)
        }
        None => (sweep.run()?, Vec::new()),
    };
    finish_recorder(trace_out.is_some(), trace_out)?;

    println!(
        "{:<32} {:>8} {:>6} {:>6} {:>12} {:>10}  note",
        "label", "flips", "pos", "neg", "candidates", "time(ms)"
    );
    for row in &restored {
        println!(
            "{:<32} {:>8} {:>6} {:>6} {:>12} {:>10}  (restored)",
            row.label, row.patterns, row.positive, row.negative, row.candidates, "-"
        );
    }
    if !restored.is_empty() {
        eprintln!(
            "{} of {n_runs} points restored from the checkpoint journal as \
             summaries only; rerun without --resume for their full results",
            restored.len()
        );
    }
    let mut skipped = 0usize;
    for run in &runs {
        let note = match &run.duplicate_of {
            Some(orig) => {
                skipped += 1;
                format!("= {orig}")
            }
            None => String::new(),
        };
        println!(
            "{:<32} {:>8} {:>6} {:>6} {:>12} {:>10.1}  {note}",
            run.label,
            run.result.patterns.len(),
            run.result.total_positive(),
            run.result.total_negative(),
            run.result.stats.candidates_generated,
            run.result.stats.elapsed.as_secs_f64() * 1e3,
        );
    }
    if skipped > 0 {
        eprintln!(
            "{skipped} of {n_runs} points matched an earlier point on every \
             result-determining field and reused its result (marked `= <label>`)"
        );
    }

    if let Some((mut json, path)) = json_out {
        emit_runs(&mut json, session.taxonomy(), &runs)?;
        let tag = flipper_wire::RESULTS_V1;
        eprintln!("wrote {tag} report ({} runs) to {path}", runs.len());
    }
    Ok(())
}

fn cmd_topk(flags: &Flags) -> Result<(), FlipperError> {
    let cfg = TopKConfig {
        k: get_usize(flags, "k", 10)?,
        base: FlipperConfig {
            min_support: parse_minsup(flags)?,
            ..Default::default()
        },
        ..Default::default()
    };
    // Flag-caused violations are the caller's mistake → usage (exit 2),
    // same policy as base_config.
    cfg.base
        .validate()
        .map_err(|e| FlipperError::usage(e.to_string()))?;
    cfg.validate()
        .map_err(|e| FlipperError::usage(e.to_string()))?;
    let session = open_session(flags, 1)?;
    let r = session.top_k(&cfg)?;
    println!(
        "top-{} most flipping patterns at auto-selected (γ, ε) = ({}, {}) after {} runs:",
        r.patterns.len(),
        r.thresholds.gamma,
        r.thresholds.epsilon,
        r.runs
    );
    for p in &r.patterns {
        println!("gap {:.3}:", p.flip_gap());
        println!("{}\n", p.display(session.taxonomy()));
    }
    Ok(())
}

fn cmd_stats(flags: &Flags) -> Result<(), FlipperError> {
    let ds = load_path(input_path(flags)?)?;
    println!("{}", flipper_api::stats::DbStats::compute(&ds.db).report());
    println!(
        "taxonomy: {} nodes, height {}",
        ds.taxonomy.node_count(),
        ds.taxonomy.height()
    );
    for ls in flipper_api::stats::level_stats(&ds.db, &ds.taxonomy) {
        println!(
            "  level {}: {} nodes, mean rel support {:.5}, max {:.5}",
            ls.level, ls.distinct_nodes, ls.mean_rel_support, ls.max_rel_support
        );
    }
    Ok(())
}

// ---------------------------------------------------------- results-diff

/// Compare two `flipper-results/v1` reports: exit 0 when byte-identical or
/// JSON-equivalent, 1 when they differ (label-level differences listed),
/// 2 when either file is not a results report — the `diff`/`cmp`
/// convention that "trouble" is distinct from "files differ".
fn cmd_results_diff(args: &[String]) -> Result<u8, FlipperError> {
    let [path_a, path_b] = args else {
        return Err(FlipperError::usage(
            "results-diff expects exactly two FILE arguments",
        ));
    };
    let read = |path: &str| {
        std::fs::read_to_string(path)
            .map_err(|e| FlipperError::io(format!("results file {path}"), e))
    };
    let text_a = read(path_a)?;
    let text_b = read(path_b)?;
    if text_a == text_b {
        println!("identical: {path_a} and {path_b} are byte-for-byte equal");
        return Ok(0);
    }
    let doc_a = parse_results(path_a, &text_a)?;
    let doc_b = parse_results(path_b, &text_b)?;
    if doc_a == doc_b {
        println!("equivalent: {path_a} and {path_b} differ only in formatting");
        return Ok(0);
    }
    let runs_a = runs_by_label(path_a, &doc_a)?;
    let runs_b = runs_by_label(path_b, &doc_b)?;
    let mut differences = 0usize;
    for (label, run_a) in &runs_a {
        match runs_b.get(label) {
            None => {
                println!("- run {label:?} only in {path_a}");
                differences += 1;
            }
            Some(run_b) if run_a != run_b => {
                println!("! run {label:?} differs between the reports");
                differences += 1;
            }
            Some(_) => {}
        }
    }
    for label in runs_b.keys() {
        if !runs_a.contains_key(label) {
            println!("+ run {label:?} only in {path_b}");
            differences += 1;
        }
    }
    if differences == 0 {
        // Run-for-run equal, so the difference lives outside the runs
        // array — e.g. one report carries the salvage "degraded" stamp.
        println!("! reports differ outside the runs (e.g. a degraded stamp)");
        differences = 1;
    }
    println!("{differences} difference(s)");
    Ok(1)
}

/// Parse one report and verify its schema line; not-a-report is a usage
/// error (exit 2), keeping exit 1 unambiguous for "the reports differ".
fn parse_results(path: &str, text: &str) -> Result<flipper_obs::Json, FlipperError> {
    use flipper_obs::Json;
    let doc = flipper_obs::parse_json(text)
        .map_err(|e| FlipperError::usage(format!("{path} is not valid JSON: {e}")))?;
    let schema_ok = match &doc {
        Json::Obj(map) => {
            matches!(map.get("schema"), Some(Json::Str(s)) if s == flipper_wire::RESULTS_V1)
        }
        _ => false,
    };
    if !schema_ok {
        let tag = flipper_wire::RESULTS_V1;
        return Err(FlipperError::usage(format!(
            "{path} is not a {tag} report (missing or wrong \"schema\" field)"
        )));
    }
    Ok(doc)
}

/// Index a report's runs by label for the label-level diff.
fn runs_by_label<'a>(
    path: &str,
    doc: &'a flipper_obs::Json,
) -> Result<std::collections::BTreeMap<&'a str, &'a flipper_obs::Json>, FlipperError> {
    use flipper_obs::Json;
    let bad = || {
        FlipperError::usage(format!(
            "{path} has no \"runs\" array of labeled run objects"
        ))
    };
    let Json::Obj(map) = doc else {
        return Err(bad());
    };
    let Some(Json::Arr(runs)) = map.get("runs") else {
        return Err(bad());
    };
    let mut by_label = std::collections::BTreeMap::new();
    for run in runs {
        let Json::Obj(fields) = run else {
            return Err(bad());
        };
        let Some(Json::Str(label)) = fields.get("label") else {
            return Err(bad());
        };
        by_label.insert(label.as_str(), run);
    }
    Ok(by_label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flipper_api::io::detect_format;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_flags_happy_path() {
        let f = parse_flags(&strs(&["--kind", "quest", "--seed", "7"])).unwrap();
        assert_eq!(f["kind"], "quest");
        assert_eq!(f["seed"], "7");
    }

    #[test]
    fn parse_flags_rejects_bare_values() {
        let err = parse_flags(&strs(&["kind", "quest"])).unwrap_err();
        assert!(matches!(err, FlipperError::Usage(_)));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn parse_flags_rejects_missing_value() {
        let err = parse_flags(&strs(&["--kind"])).unwrap_err();
        assert!(matches!(err, FlipperError::Usage(_)));
    }

    #[test]
    fn unknown_subcommand_is_a_usage_error() {
        let err = run(&strs(&["frobnicate"])).unwrap_err();
        assert!(matches!(err, FlipperError::Usage(_)));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn help_succeeds() {
        assert!(run(&strs(&["help"])).is_ok());
        assert!(run(&[]).is_ok());
    }

    #[test]
    fn generate_mine_sweep_roundtrip() {
        let dir = std::env::temp_dir().join(format!("flipper-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("planted.txt").to_string_lossy().to_string();
        let json = dir.join("results.json").to_string_lossy().to_string();
        run(&strs(&["generate", "--kind", "planted", "--out", &path])).unwrap();
        run(&strs(&[
            "mine",
            "--input",
            &path,
            "--gamma",
            "0.6",
            "--epsilon",
            "0.35",
            "--minsup",
            "0.001",
            "--top",
            "3",
            "--output-json",
            &json,
        ]))
        .unwrap();
        let doc = std::fs::read_to_string(&json).unwrap();
        assert!(doc.contains("\"schema\": \"flipper-results/v1\""));
        assert!(doc.contains("{\"label\":\"mine\""));
        // The execution-layer flags: auto engine selection + sharding, with
        // the prefix cache disabled (results are identical either way).
        run(&strs(&[
            "mine",
            "--input",
            &path,
            "--engine",
            "auto",
            "--threads",
            "2",
            "--cache-budget",
            "0",
            "--top",
            "1",
        ]))
        .unwrap();
        // A sweep over one ingestion: γ × variants grid, parallel jobs.
        let sweep_json = dir.join("sweep.json").to_string_lossy().to_string();
        run(&strs(&[
            "sweep",
            "--input",
            &path,
            "--gammas",
            "0.6,0.5",
            "--epsilons",
            "0.35",
            "--variants",
            "all",
            "--jobs",
            "2",
            "--cache-budget",
            "1M",
            "--seed-supports",
            "on",
            "--output-json",
            &sweep_json,
        ]))
        .unwrap();
        let doc = std::fs::read_to_string(&sweep_json).unwrap();
        assert_eq!(doc.matches("{\"label\":").count(), 8);
        assert!(doc.contains("\"label\":\"g0.6/e0.35/basic\""));
        run(&strs(&["stats", "--input", &path])).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fbin_generate_convert_mine_roundtrip() {
        let dir = std::env::temp_dir().join(format!("flipper-cli-fbin-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let fbin = dir.join("planted.fbin").to_string_lossy().to_string();
        let text = dir.join("planted.txt").to_string_lossy().to_string();
        let fbin2 = dir.join("back.fbin").to_string_lossy().to_string();
        // generate picks FBIN from the extension.
        run(&strs(&["generate", "--kind", "planted", "--out", &fbin])).unwrap();
        let bytes = std::fs::read(&fbin).unwrap();
        assert_eq!(detect_format(&fbin).unwrap(), FileFormat::Fbin);
        // convert fbin -> text -> fbin round-trips the exact bytes.
        run(&strs(&["convert", "--input", &fbin, "--out", &text])).unwrap();
        assert_eq!(detect_format(&text).unwrap(), FileFormat::Text);
        run(&strs(&["convert", "--input", &text, "--out", &fbin2])).unwrap();
        assert_eq!(bytes, std::fs::read(&fbin2).unwrap());
        // mine and stats accept the binary input transparently (mine takes
        // the streaming path).
        run(&strs(&[
            "mine",
            "--input",
            &fbin,
            "--threads",
            "2",
            "--top",
            "1",
        ]))
        .unwrap();
        run(&strs(&["stats", "--input", &fbin])).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_and_timings_do_not_change_results() {
        let dir = std::env::temp_dir().join(format!("flipper-cli-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("planted.txt").to_string_lossy().to_string();
        let base_json = dir.join("base.json").to_string_lossy().to_string();
        let traced_json = dir.join("traced.json").to_string_lossy().to_string();
        let trace = dir.join("t.json").to_string_lossy().to_string();
        run(&strs(&["generate", "--kind", "planted", "--out", &path])).unwrap();
        let mine = |extra: &[&str]| {
            let mut args = strs(&["mine", "--input", &path, "--threads", "2", "--top", "1"]);
            args.extend(strs(extra));
            run(&args).unwrap();
        };
        mine(&["--output-json", &base_json]);
        mine(&[
            "--output-json",
            &traced_json,
            "--trace",
            &trace,
            "--timings",
        ]);
        // The hard invariant: recording must not perturb result bytes.
        assert_eq!(
            std::fs::read(&base_json).unwrap(),
            std::fs::read(&traced_json).unwrap(),
            "flipper-results/v1 bytes must be identical with --trace on/off"
        );
        // The emitted trace is a valid flipper-trace/v1 document covering
        // the pipeline phases.
        let doc = std::fs::read_to_string(&trace).unwrap();
        let stats = flipper_obs::validate_trace(&doc).expect("trace must parse and nest");
        for name in [
            "session.ingest",
            "view.build",
            "mine.run",
            "mine.cell",
            "mine.count",
            "cache.cell",
            "exec.shard",
        ] {
            assert!(stats.names.contains(name), "trace is missing span {name}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn timings_flag_is_boolean() {
        let f = parse_flags(&strs(&["--timings", "--top", "3"])).unwrap();
        assert_eq!(f["timings"], "on");
        assert_eq!(f["top"], "3");
    }

    #[test]
    fn convert_rejects_bad_target_format() {
        let err = run(&strs(&[
            "convert", "--input", "x", "--out", "y", "--to", "parquet",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("expects text or fbin"));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn mine_rejects_unknown_engine_before_touching_the_file() {
        let err = run(&strs(&[
            "mine",
            "--input",
            "/nonexistent",
            "--engine",
            "warpdrive",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("unknown engine"));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn missing_input_is_a_data_error_not_usage() {
        let err = run(&strs(&["mine", "--input", "/nonexistent"])).unwrap_err();
        assert!(matches!(err, FlipperError::Io { .. }));
        assert!(err.to_string().contains("open"));
        assert_eq!(err.exit_code(), 1);
    }

    #[test]
    fn generate_rejects_unknown_kind() {
        let err = run(&strs(&["generate", "--kind", "nope"])).unwrap_err();
        assert!(err.to_string().contains("unknown dataset kind"));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn cache_budget_parses_sizes_and_suffixes() {
        let parse = |v: &str| {
            let mut f = Flags::new();
            f.insert("cache-budget".to_string(), v.to_string());
            get_bytes(&f, "cache-budget", 7)
        };
        assert_eq!(get_bytes(&Flags::new(), "cache-budget", 7).unwrap(), 7);
        assert_eq!(parse("0").unwrap(), 0);
        assert_eq!(parse("65536").unwrap(), 65536);
        assert_eq!(parse("4K").unwrap(), 4 << 10);
        assert_eq!(parse("4m").unwrap(), 4 << 20);
        assert_eq!(parse("2G").unwrap(), 2 << 30);
        for bad in ["", "M", "4.5M", "1T", "99999999999999999999G"] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn sweep_rejects_bad_seed_supports_value() {
        let err = run(&strs(&[
            "sweep",
            "--input",
            "/nonexistent",
            "--seed-supports",
            "maybe",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("on or off"));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn report_variant_names_parse_back() {
        // Labels/config values emitted in flipper-results/v1 reports can be
        // pasted back into --variant.
        assert_eq!(
            parse_variant("flipping+tpg").unwrap(),
            PruningConfig::FLIPPING_TPG
        );
        assert_eq!(
            parse_variant("flipping+tpg+sibp").unwrap(),
            PruningConfig::FULL
        );
        for v in PruningConfig::VARIANTS {
            assert_eq!(parse_variant(v.name()).unwrap(), v);
        }
    }

    #[test]
    fn unwritable_output_json_fails_before_mining() {
        let dir = std::env::temp_dir().join(format!("flipper-cli-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.txt").to_string_lossy().to_string();
        run(&strs(&["generate", "--kind", "planted", "--out", &path])).unwrap();
        let err = run(&strs(&[
            "mine",
            "--input",
            &path,
            "--output-json",
            "/nonexistent-dir/r.json",
        ]))
        .unwrap_err();
        assert!(matches!(err, FlipperError::Io { .. }));
        assert!(err.to_string().contains("create"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_thresholds_are_usage_errors() {
        let err = run(&strs(&[
            "mine",
            "--input",
            "/nonexistent",
            "--gamma",
            "0.1",
            "--epsilon",
            "0.4",
        ]))
        .unwrap_err();
        assert!(matches!(err, FlipperError::Usage(_)));
        assert!(err.to_string().contains("epsilon < gamma"));
    }

    #[test]
    fn empty_sweep_grid_is_rejected() {
        let dir = std::env::temp_dir().join(format!("flipper-cli-sweep-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.txt").to_string_lossy().to_string();
        run(&strs(&["generate", "--kind", "planted", "--out", &path])).unwrap();
        let err = run(&strs(&[
            "sweep",
            "--input",
            &path,
            "--gammas",
            "0.2",
            "--epsilons",
            "0.3",
        ]))
        .unwrap_err();
        assert!(matches!(err, FlipperError::Usage(_)));
        assert!(err.to_string().contains("empty"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn text_parser_names_fbin_mixups_through_the_facade() {
        // Feeding FBIN bytes to the text source must name the problem, not
        // report a baffling line-1 parse error.
        let ds = Generator::Planted(PlantedParams::default()).dataset();
        let mut bytes = Vec::new();
        write_to(&mut bytes, &ds, FileFormat::Fbin).unwrap();
        let err = Session::open(flipper_api::TextSource::new(&bytes[..])).unwrap_err();
        assert!(matches!(err, FlipperError::Parse { line: 1, .. }));
        assert!(
            err.to_string().contains("FBIN"),
            "error should name the binary format: {err}"
        );
    }

    #[test]
    fn timeout_flag_validates_then_expires_with_exit_3() {
        // Zero, negative and non-numeric timeouts are usage errors, caught
        // before the input file is touched.
        for bad in ["0", "-1", "soon", "inf", "nan"] {
            let err = run(&strs(&[
                "mine",
                "--input",
                "/nonexistent",
                "--timeout",
                bad,
            ]))
            .unwrap_err();
            assert!(matches!(err, FlipperError::Usage(_)), "{bad:?}: {err}");
            assert_eq!(err.exit_code(), 2);
        }
        // A timeout that expires before the first deadline check surfaces
        // as the typed Timeout error and the dedicated exit code 3.
        let dir = std::env::temp_dir().join(format!("flipper-cli-timeout-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.txt").to_string_lossy().to_string();
        run(&strs(&["generate", "--kind", "planted", "--out", &path])).unwrap();
        let err = run(&strs(&[
            "mine",
            "--input",
            &path,
            "--timeout",
            "0.000000001",
        ]))
        .unwrap_err();
        assert!(matches!(err, FlipperError::Timeout), "{err}");
        assert_eq!(err.exit_code(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn salvage_mines_damaged_fbin_and_stamps_the_report() {
        let dir = std::env::temp_dir().join(format!("flipper-cli-salvage-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let fbin = dir.join("p.fbin").to_string_lossy().to_string();
        let damaged = dir.join("damaged.fbin").to_string_lossy().to_string();
        run(&strs(&["generate", "--kind", "planted", "--out", &fbin])).unwrap();
        // Corrupt the file's final byte: the end section's CRC.
        let mut bytes = std::fs::read(&fbin).unwrap();
        *bytes.last_mut().unwrap() ^= 0xff;
        std::fs::write(&damaged, &bytes).unwrap();
        // Strict mining refuses the damaged file (data error, exit 1)…
        let err = run(&strs(&["mine", "--input", &damaged, "--top", "1"])).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        // …salvage mode mines it and stamps the JSON report as degraded.
        let degraded_json = dir.join("degraded.json").to_string_lossy().to_string();
        run(&strs(&[
            "mine",
            "--input",
            &damaged,
            "--salvage",
            "--top",
            "1",
            "--output-json",
            &degraded_json,
        ]))
        .unwrap();
        let doc = std::fs::read_to_string(&degraded_json).unwrap();
        assert!(doc.contains("\n  \"degraded\": \""), "{doc}");
        assert!(doc.contains("checksum"), "{doc}");
        // Salvage of an intact file is byte-identical to a strict run: the
        // degraded stamp is strictly additive.
        let strict_json = dir.join("strict.json").to_string_lossy().to_string();
        let intact_json = dir.join("intact.json").to_string_lossy().to_string();
        run(&strs(&[
            "mine",
            "--input",
            &fbin,
            "--top",
            "1",
            "--output-json",
            &strict_json,
        ]))
        .unwrap();
        run(&strs(&[
            "mine",
            "--input",
            &fbin,
            "--salvage",
            "--top",
            "1",
            "--output-json",
            &intact_json,
        ]))
        .unwrap();
        assert_eq!(
            std::fs::read(&strict_json).unwrap(),
            std::fs::read(&intact_json).unwrap(),
            "salvage of an intact file must not perturb result bytes"
        );
        // Salvage only applies to the FBIN container.
        let text = dir.join("p.txt").to_string_lossy().to_string();
        run(&strs(&["convert", "--input", &fbin, "--out", &text])).unwrap();
        let err = run(&strs(&["mine", "--input", &text, "--salvage"])).unwrap_err();
        assert!(matches!(err, FlipperError::Usage(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_checkpoint_flags_gate_and_resume_restores() {
        let err = run(&strs(&["sweep", "--input", "/nonexistent", "--resume"])).unwrap_err();
        assert!(err.to_string().contains("--resume requires"), "{err}");
        assert_eq!(err.exit_code(), 2);

        let dir = std::env::temp_dir().join(format!("flipper-cli-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.txt").to_string_lossy().to_string();
        let ckpt = dir.join("sweep.ckpt").to_string_lossy().to_string();
        run(&strs(&["generate", "--kind", "planted", "--out", &path])).unwrap();
        let sweep = |extra: &[&str]| {
            let mut args = strs(&[
                "sweep",
                "--input",
                &path,
                "--gammas",
                "0.6,0.5",
                "--epsilons",
                "0.35",
            ]);
            args.extend(strs(extra));
            run(&args)
        };
        sweep(&["--checkpoint", &ckpt]).unwrap();
        assert!(std::fs::read_to_string(&ckpt)
            .unwrap()
            .starts_with("flipper-sweep-ckpt/v1\n"));
        // Re-running against an existing journal without --resume is
        // refused before ingestion, so a finished sweep isn't clobbered.
        let err = sweep(&["--checkpoint", &ckpt]).unwrap_err();
        assert!(err.to_string().contains("already exists"), "{err}");
        assert_eq!(err.exit_code(), 2);
        // --resume restores every completed point instead of re-mining.
        sweep(&["--checkpoint", &ckpt, "--resume"]).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn results_diff_distinguishes_identical_equivalent_and_different() {
        let dir = std::env::temp_dir().join(format!("flipper-cli-diff-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.txt").to_string_lossy().to_string();
        run(&strs(&["generate", "--kind", "planted", "--out", &path])).unwrap();
        let mine = |gamma: &str, out: &str| {
            run(&strs(&[
                "mine",
                "--input",
                &path,
                "--gamma",
                gamma,
                "--epsilon",
                "0.35",
                "--minsup",
                "0.001",
                "--top",
                "1",
                "--output-json",
                out,
            ]))
            .unwrap();
        };
        let a = dir.join("a.json").to_string_lossy().to_string();
        let b = dir.join("b.json").to_string_lossy().to_string();
        let c = dir.join("c.json").to_string_lossy().to_string();
        mine("0.6", &a);
        mine("0.6", &b);
        mine("0.5", &c);
        // Byte-identical reports: exit 0.
        assert_eq!(run(&strs(&["results-diff", &a, &b])).unwrap(), 0);
        // Formatting-only difference (trailing newline): still exit 0.
        let mut padded = std::fs::read(&b).unwrap();
        padded.extend_from_slice(b"\n");
        std::fs::write(&b, &padded).unwrap();
        assert_eq!(run(&strs(&["results-diff", &a, &b])).unwrap(), 0);
        // Different mining configuration: the runs differ, exit 1.
        assert_eq!(run(&strs(&["results-diff", &a, &c])).unwrap(), 1);
        // Trouble is not a diff: missing file is I/O (exit 1 via error),
        // non-report input and wrong arity are usage (exit 2).
        let err = run(&strs(&["results-diff", &a, "/nonexistent"])).unwrap_err();
        assert!(matches!(err, FlipperError::Io { .. }), "{err}");
        let err = run(&strs(&["results-diff", &a, &path])).unwrap_err();
        assert!(matches!(err, FlipperError::Usage(_)), "{err}");
        assert_eq!(err.exit_code(), 2);
        let err = run(&strs(&["results-diff", &a])).unwrap_err();
        assert!(matches!(err, FlipperError::Usage(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
