//! `flipper` — command-line interface for flipping-correlation mining.
//!
//! Subcommands:
//!
//! * `generate` — produce a dataset (quest / groceries / census / medline /
//!   planted) in the text or FBIN binary format;
//! * `mine` — mine flipping patterns from a dataset file;
//! * `convert` — convert a dataset between the text and FBIN formats;
//! * `stats` — print dataset statistics.
//!
//! Every `--input` path is format-sniffed by magic bytes: FBIN files are
//! read through the `flipper-store` binary reader (the `mine` subcommand
//! streams them chunk by chunk, never materializing the raw database), text
//! files through the line parser. Run `flipper help` for the full usage
//! text.

use flipper_core::{mine, mine_with_view, FlipperConfig, MinSupports, PruningConfig};
use flipper_data::format::{read_dataset, write_dataset, Dataset};
use flipper_data::CountingEngine;
use flipper_measures::{Measure, Thresholds};
use flipper_store::{stream_view, write_fbin, FbinReader};
use flipper_taxonomy::RebalancePolicy;
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Read, Write};
use std::process::ExitCode;

const USAGE: &str = "\
flipper — mining flipping correlations from datasets with taxonomies
(Barsky, Kim, Weninger, Han — PVLDB 5(4), 2011)

USAGE:
  flipper generate --kind <quest|groceries|census|medline|planted>
                   [--out FILE] [--format text|fbin] [--seed N]
                   [--transactions N] [--width W] [--scale F]
  flipper mine     --input FILE [--gamma F] [--epsilon F]
                   [--minsup F1,F2,...] [--measure NAME]
                   [--variant basic|flipping|tpg|full]
                   [--engine tidset|scan|bitset|auto] [--top K] [--max-k K]
                   [--threads N]   (0 = all cores, default 1)
  flipper convert  --input FILE --out FILE [--to text|fbin]
  flipper topk     --input FILE --k N [--minsup F1,F2,...]
  flipper stats    --input FILE
  flipper help

Input files are auto-detected by magic bytes: FBIN binary datasets (written
by `generate --format fbin` or `convert --to fbin`) and the text interchange
format both work everywhere an `--input` is accepted. `generate` and
`convert` pick the output format from `--format`/`--to`, defaulting by the
`.fbin` extension. `mine` ingests FBIN inputs chunk-by-chunk (streaming).

EXAMPLES:
  flipper generate --kind groceries --out groceries.txt
  flipper convert --input groceries.txt --out groceries.fbin
  flipper mine --input groceries.fbin --gamma 0.15 --epsilon 0.10 \\
               --minsup 0.001,0.0005,0.0002
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `flipper help` for usage");
            ExitCode::FAILURE
        }
    }
}

/// Parse `--key value` pairs after the subcommand.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {:?}", args[i]))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("flag --{key} needs a value"))?
            .clone();
        flags.insert(key.to_string(), value);
        i += 2;
    }
    Ok(flags)
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&parse_flags(&args[1..])?),
        Some("mine") => cmd_mine(&parse_flags(&args[1..])?),
        Some("convert") => cmd_convert(&parse_flags(&args[1..])?),
        Some("topk") => cmd_topk(&parse_flags(&args[1..])?),
        Some("stats") => cmd_stats(&parse_flags(&args[1..])?),
        Some("help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand {other:?}")),
    }
}

fn get_f64(flags: &HashMap<String, String>, key: &str, default: f64) -> Result<f64, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} expects a number, got {v:?}")),
    }
}

fn get_usize(flags: &HashMap<String, String>, key: &str, default: usize) -> Result<usize, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} expects an integer, got {v:?}")),
    }
}

/// Output formats the writers understand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FileFormat {
    Text,
    Fbin,
}

/// Resolve the output format: an explicit `--<flag> text|fbin` wins,
/// otherwise a `.fbin` output extension selects FBIN, otherwise text.
fn output_format(
    flags: &HashMap<String, String>,
    flag: &str,
    out: Option<&String>,
) -> Result<FileFormat, String> {
    match flags.get(flag).map(String::as_str) {
        Some("text") => Ok(FileFormat::Text),
        Some("fbin") => Ok(FileFormat::Fbin),
        Some(other) => Err(format!("--{flag} expects text or fbin, got {other:?}")),
        None => Ok(match out {
            Some(path) if path.ends_with(".fbin") => FileFormat::Fbin,
            _ => FileFormat::Text,
        }),
    }
}

/// Write `ds` to `out` (or stdout) in `format`.
fn write_output(ds: &Dataset, out: Option<&String>, format: FileFormat) -> Result<(), String> {
    let sink: Box<dyn Write> = match out {
        Some(path) => {
            Box::new(std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?)
        }
        None => Box::new(std::io::stdout().lock()),
    };
    let mut w = BufWriter::new(sink);
    match format {
        FileFormat::Text => write_dataset(&mut w, ds).map_err(|e| e.to_string())?,
        FileFormat::Fbin => write_fbin(&mut w, ds).map_err(|e| e.to_string())?,
    }
    w.flush().map_err(|e| e.to_string())?;
    if let Some(path) = out {
        eprintln!(
            "wrote {} transactions / {} taxonomy nodes to {path} ({})",
            ds.db.len(),
            ds.taxonomy.node_count(),
            match format {
                FileFormat::Text => "text",
                FileFormat::Fbin => "fbin",
            }
        );
    }
    Ok(())
}

fn cmd_generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let kind = flags.get("kind").ok_or("generate requires --kind")?;
    let seed = get_usize(flags, "seed", 42)? as u64;
    let ds: Dataset = match kind.as_str() {
        "quest" => {
            let params = flipper_datagen::quest::QuestParams::default()
                .with_transactions(get_usize(flags, "transactions", 100_000)?)
                .with_width(get_f64(flags, "width", 5.0)?)
                .with_seed(seed);
            flipper_datagen::quest::generate(&params).into_dataset()
        }
        "groceries" => flipper_datagen::surrogate::groceries(seed).into_dataset(),
        "census" => flipper_datagen::surrogate::census(seed).into_dataset(),
        "medline" => {
            let scale = get_f64(flags, "scale", 0.1)?;
            flipper_datagen::surrogate::medline(scale, seed).into_dataset()
        }
        "planted" => flipper_datagen::planted::generate(&flipper_datagen::planted::PlantedParams {
            seed,
            ..Default::default()
        })
        .into_dataset(),
        other => return Err(format!("unknown dataset kind {other:?}")),
    };
    let out = flags.get("out");
    let format = output_format(flags, "format", out)?;
    write_output(&ds, out, format)
}

/// Sniff a dataset file's format by its magic bytes.
fn detect_format(path: &str) -> Result<FileFormat, String> {
    let mut file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match file.read(&mut prefix[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) => return Err(format!("read {path}: {e}")),
        }
    }
    Ok(if flipper_store::is_fbin(&prefix[..filled]) {
        FileFormat::Fbin
    } else {
        FileFormat::Text
    })
}

fn input_path(flags: &HashMap<String, String>) -> Result<&String, String> {
    flags
        .get("input")
        .ok_or_else(|| "missing --input FILE".to_string())
}

/// Load a full dataset from `path` as `format`.
fn load_path(path: &str, format: FileFormat) -> Result<Dataset, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let reader = BufReader::new(file);
    match format {
        FileFormat::Fbin => flipper_store::read_fbin(reader).map_err(|e| e.to_string()),
        FileFormat::Text => {
            read_dataset(reader, RebalancePolicy::LeafCopy).map_err(|e| e.to_string())
        }
    }
}

/// Load a full dataset from `--input`, auto-detecting text vs FBIN by magic
/// bytes — so a binary file handed to a text-era script still loads instead
/// of dying with a line-1 parse error (and vice versa).
fn load(flags: &HashMap<String, String>) -> Result<Dataset, String> {
    let path = input_path(flags)?;
    load_path(path, detect_format(path)?)
}

fn cmd_convert(flags: &HashMap<String, String>) -> Result<(), String> {
    let out = Some(flags.get("out").ok_or("convert requires --out FILE")?);
    let format = output_format(flags, "to", out)?;
    let ds = load(flags)?;
    write_output(&ds, out, format)
}

fn cmd_mine(flags: &HashMap<String, String>) -> Result<(), String> {
    let gamma = get_f64(flags, "gamma", 0.3)?;
    let epsilon = get_f64(flags, "epsilon", 0.1)?;
    let minsup = match flags.get("minsup") {
        None => MinSupports::default(),
        Some(spec) => {
            let fractions: Result<Vec<f64>, _> = spec.split(',').map(str::parse).collect();
            MinSupports::Fractions(fractions.map_err(|_| format!("bad --minsup {spec:?}"))?)
        }
    };
    let measure = match flags.get("measure") {
        None => Measure::Kulczynski,
        Some(name) => Measure::parse(name).ok_or_else(|| format!("unknown measure {name:?}"))?,
    };
    let pruning = match flags.get("variant").map(String::as_str) {
        None | Some("full") => PruningConfig::FULL,
        Some("basic") => PruningConfig::BASIC,
        Some("flipping") => PruningConfig::FLIPPING,
        Some("tpg") => PruningConfig::FLIPPING_TPG,
        Some(other) => return Err(format!("unknown variant {other:?}")),
    };
    let engine = match flags.get("engine") {
        None => CountingEngine::Tidset,
        Some(name) => {
            CountingEngine::parse(name).ok_or_else(|| format!("unknown engine {name:?}"))?
        }
    };
    let threads = get_usize(flags, "threads", 1)?;
    let mut cfg = FlipperConfig::new(Thresholds::new(gamma, epsilon), minsup)
        .with_measure(measure)
        .with_pruning(pruning)
        .with_engine(engine)
        .with_threads(threads);
    if let Some(mk) = flags.get("max-k") {
        cfg = cfg.with_max_k(mk.parse().map_err(|_| format!("bad --max-k {mk:?}"))?);
    }

    let path = input_path(flags)?;
    let (taxonomy, result) = match detect_format(path)? {
        FileFormat::Fbin => {
            // Streaming ingestion: decode chunk by chunk into the sharded
            // multi-level projector; the raw database never materializes.
            // Results are bit-identical to the full-load path.
            let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
            let reader = FbinReader::new(BufReader::new(file)).map_err(|e| e.to_string())?;
            let (tax, view) = stream_view(reader, threads).map_err(|e| e.to_string())?;
            let result = mine_with_view(&tax, &view, &cfg);
            (tax, result)
        }
        FileFormat::Text => {
            let ds = load_path(path, FileFormat::Text)?;
            let result = mine(&ds.taxonomy, &ds.db, &cfg);
            (ds.taxonomy, result)
        }
    };
    let top = get_usize(flags, "top", usize::MAX)?;
    println!(
        "{} flipping patterns (showing {})",
        result.patterns.len(),
        top.min(result.patterns.len())
    );
    for p in result.top_k_by_gap(top) {
        println!("gap {:.3}:", p.flip_gap());
        println!("{}\n", p.display(&taxonomy));
    }
    println!(
        "pos={} neg={}",
        result.total_positive(),
        result.total_negative()
    );
    println!("stats: {}", result.stats.summary());
    Ok(())
}

fn cmd_topk(flags: &HashMap<String, String>) -> Result<(), String> {
    let ds = load(flags)?;
    let k = get_usize(flags, "k", 10)?;
    let minsup = match flags.get("minsup") {
        None => MinSupports::default(),
        Some(spec) => {
            let fractions: Result<Vec<f64>, _> = spec.split(',').map(str::parse).collect();
            MinSupports::Fractions(fractions.map_err(|_| format!("bad --minsup {spec:?}"))?)
        }
    };
    let cfg = flipper_core::topk::TopKConfig {
        k,
        base: FlipperConfig {
            min_support: minsup,
            ..Default::default()
        },
        ..Default::default()
    };
    let r = flipper_core::topk::top_k(&ds.taxonomy, &ds.db, &cfg);
    println!(
        "top-{} most flipping patterns at auto-selected (γ, ε) = ({}, {}) after {} runs:",
        r.patterns.len(),
        r.thresholds.gamma,
        r.thresholds.epsilon,
        r.runs
    );
    for p in &r.patterns {
        println!("gap {:.3}:", p.flip_gap());
        println!("{}\n", p.display(&ds.taxonomy));
    }
    Ok(())
}

fn cmd_stats(flags: &HashMap<String, String>) -> Result<(), String> {
    let ds = load(flags)?;
    println!("{}", flipper_data::stats::DbStats::compute(&ds.db).report());
    println!(
        "taxonomy: {} nodes, height {}",
        ds.taxonomy.node_count(),
        ds.taxonomy.height()
    );
    for ls in flipper_data::stats::level_stats(&ds.db, &ds.taxonomy) {
        println!(
            "  level {}: {} nodes, mean rel support {:.5}, max {:.5}",
            ls.level, ls.distinct_nodes, ls.mean_rel_support, ls.max_rel_support
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_flags_happy_path() {
        let args: Vec<String> = ["--kind", "quest", "--seed", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(f["kind"], "quest");
        assert_eq!(f["seed"], "7");
    }

    #[test]
    fn parse_flags_rejects_bare_values() {
        let args: Vec<String> = ["kind", "quest"].iter().map(|s| s.to_string()).collect();
        assert!(parse_flags(&args).is_err());
    }

    #[test]
    fn parse_flags_rejects_missing_value() {
        let args: Vec<String> = ["--kind"].iter().map(|s| s.to_string()).collect();
        assert!(parse_flags(&args).is_err());
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(run(&["frobnicate".to_string()]).is_err());
    }

    #[test]
    fn help_succeeds() {
        assert!(run(&["help".to_string()]).is_ok());
        assert!(run(&[]).is_ok());
    }

    #[test]
    fn generate_and_mine_roundtrip() {
        let dir = std::env::temp_dir().join(format!("flipper-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("planted.txt").to_string_lossy().to_string();
        run(&[
            "generate".into(),
            "--kind".into(),
            "planted".into(),
            "--out".into(),
            path.clone(),
        ])
        .unwrap();
        run(&[
            "mine".into(),
            "--input".into(),
            path.clone(),
            "--gamma".into(),
            "0.6".into(),
            "--epsilon".into(),
            "0.35".into(),
            "--minsup".into(),
            "0.001".into(),
            "--top".into(),
            "3".into(),
        ])
        .unwrap();
        // The execution-layer flags: auto engine selection + sharding.
        run(&[
            "mine".into(),
            "--input".into(),
            path.clone(),
            "--engine".into(),
            "auto".into(),
            "--threads".into(),
            "2".into(),
            "--top".into(),
            "1".into(),
        ])
        .unwrap();
        run(&["stats".into(), "--input".into(), path]).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fbin_generate_convert_mine_roundtrip() {
        let dir = std::env::temp_dir().join(format!("flipper-cli-fbin-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let fbin = dir.join("planted.fbin").to_string_lossy().to_string();
        let text = dir.join("planted.txt").to_string_lossy().to_string();
        let fbin2 = dir.join("back.fbin").to_string_lossy().to_string();
        // generate picks FBIN from the extension.
        run(&[
            "generate".into(),
            "--kind".into(),
            "planted".into(),
            "--out".into(),
            fbin.clone(),
        ])
        .unwrap();
        let bytes = std::fs::read(&fbin).unwrap();
        assert!(flipper_store::is_fbin(&bytes));
        // convert fbin -> text -> fbin round-trips the exact bytes.
        run(&[
            "convert".into(),
            "--input".into(),
            fbin.clone(),
            "--out".into(),
            text.clone(),
        ])
        .unwrap();
        assert!(!flipper_store::is_fbin(&std::fs::read(&text).unwrap()));
        run(&[
            "convert".into(),
            "--input".into(),
            text.clone(),
            "--out".into(),
            fbin2.clone(),
        ])
        .unwrap();
        assert_eq!(bytes, std::fs::read(&fbin2).unwrap());
        // mine and stats accept the binary input transparently (mine takes
        // the streaming path).
        run(&[
            "mine".into(),
            "--input".into(),
            fbin.clone(),
            "--threads".into(),
            "2".into(),
            "--top".into(),
            "1".into(),
        ])
        .unwrap();
        run(&["stats".into(), "--input".into(), fbin]).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn convert_rejects_bad_target_format() {
        let err = run(&[
            "convert".into(),
            "--input".into(),
            "x".into(),
            "--out".into(),
            "y".into(),
            "--to".into(),
            "parquet".into(),
        ])
        .unwrap_err();
        assert!(err.contains("expects text or fbin"));
    }

    #[test]
    fn text_parser_names_fbin_mixups() {
        // Feeding FBIN bytes to the text parser directly (bypassing the
        // CLI's auto-detection) must name the problem, not report a
        // baffling line-1 parse error.
        let d = flipper_datagen::planted::generate(&Default::default());
        let bytes = flipper_store::to_fbin_bytes(&d.into_dataset()).unwrap();
        let err =
            read_dataset(std::io::Cursor::new(&bytes[..]), RebalancePolicy::LeafCopy).unwrap_err();
        assert!(
            err.to_string().contains("FBIN"),
            "error should name the binary format: {err}"
        );
    }

    #[test]
    fn mine_rejects_unknown_engine() {
        let dir = std::env::temp_dir().join(format!("flipper-cli-eng-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.txt").to_string_lossy().to_string();
        run(&[
            "generate".into(),
            "--kind".into(),
            "planted".into(),
            "--out".into(),
            path.clone(),
        ])
        .unwrap();
        let err = run(&[
            "mine".into(),
            "--input".into(),
            path,
            "--engine".into(),
            "warpdrive".into(),
        ])
        .unwrap_err();
        assert!(err.contains("unknown engine"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mine_rejects_missing_input() {
        let err = run(&["mine".into(), "--input".into(), "/nonexistent".into()]).unwrap_err();
        assert!(err.contains("open"));
    }

    #[test]
    fn generate_rejects_unknown_kind() {
        let err = run(&["generate".into(), "--kind".into(), "nope".into()]).unwrap_err();
        assert!(err.contains("unknown dataset kind"));
    }
}
