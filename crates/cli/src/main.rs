//! `flipper` — command-line interface for flipping-correlation mining.
//!
//! Subcommands:
//!
//! * `generate` — produce a dataset (quest / groceries / census / medline /
//!   planted) in the text interchange format;
//! * `mine` — mine flipping patterns from a dataset file;
//! * `stats` — print dataset statistics.
//!
//! Run `flipper help` for the full usage text.

use flipper_core::{mine, FlipperConfig, MinSupports, PruningConfig};
use flipper_data::format::{read_dataset, write_dataset, Dataset};
use flipper_data::CountingEngine;
use flipper_measures::{Measure, Thresholds};
use flipper_taxonomy::RebalancePolicy;
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::process::ExitCode;

const USAGE: &str = "\
flipper — mining flipping correlations from datasets with taxonomies
(Barsky, Kim, Weninger, Han — PVLDB 5(4), 2011)

USAGE:
  flipper generate --kind <quest|groceries|census|medline|planted>
                   [--out FILE] [--seed N] [--transactions N] [--width W]
                   [--scale F]
  flipper mine     --input FILE [--gamma F] [--epsilon F]
                   [--minsup F1,F2,...] [--measure NAME]
                   [--variant basic|flipping|tpg|full]
                   [--engine tidset|scan|bitset|auto] [--top K] [--max-k K]
                   [--threads N]   (0 = all cores, default 1)
  flipper topk     --input FILE --k N [--minsup F1,F2,...]
  flipper stats    --input FILE
  flipper help

EXAMPLES:
  flipper generate --kind groceries --out groceries.txt
  flipper mine --input groceries.txt --gamma 0.15 --epsilon 0.10 \\
               --minsup 0.001,0.0005,0.0002
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `flipper help` for usage");
            ExitCode::FAILURE
        }
    }
}

/// Parse `--key value` pairs after the subcommand.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {:?}", args[i]))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("flag --{key} needs a value"))?
            .clone();
        flags.insert(key.to_string(), value);
        i += 2;
    }
    Ok(flags)
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&parse_flags(&args[1..])?),
        Some("mine") => cmd_mine(&parse_flags(&args[1..])?),
        Some("topk") => cmd_topk(&parse_flags(&args[1..])?),
        Some("stats") => cmd_stats(&parse_flags(&args[1..])?),
        Some("help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand {other:?}")),
    }
}

fn get_f64(flags: &HashMap<String, String>, key: &str, default: f64) -> Result<f64, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} expects a number, got {v:?}")),
    }
}

fn get_usize(flags: &HashMap<String, String>, key: &str, default: usize) -> Result<usize, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} expects an integer, got {v:?}")),
    }
}

fn cmd_generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let kind = flags.get("kind").ok_or("generate requires --kind")?;
    let seed = get_usize(flags, "seed", 42)? as u64;
    let ds: Dataset = match kind.as_str() {
        "quest" => {
            let params = flipper_datagen::quest::QuestParams::default()
                .with_transactions(get_usize(flags, "transactions", 100_000)?)
                .with_width(get_f64(flags, "width", 5.0)?)
                .with_seed(seed);
            let d = flipper_datagen::quest::generate(&params);
            Dataset {
                taxonomy: d.taxonomy,
                db: d.db,
            }
        }
        "groceries" => {
            let d = flipper_datagen::surrogate::groceries(seed);
            Dataset {
                taxonomy: d.taxonomy,
                db: d.db,
            }
        }
        "census" => {
            let d = flipper_datagen::surrogate::census(seed);
            Dataset {
                taxonomy: d.taxonomy,
                db: d.db,
            }
        }
        "medline" => {
            let scale = get_f64(flags, "scale", 0.1)?;
            let d = flipper_datagen::surrogate::medline(scale, seed);
            Dataset {
                taxonomy: d.taxonomy,
                db: d.db,
            }
        }
        "planted" => {
            let d = flipper_datagen::planted::generate(&flipper_datagen::planted::PlantedParams {
                seed,
                ..Default::default()
            });
            Dataset {
                taxonomy: d.taxonomy,
                db: d.db,
            }
        }
        other => return Err(format!("unknown dataset kind {other:?}")),
    };
    match flags.get("out") {
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
            let mut w = BufWriter::new(file);
            write_dataset(&mut w, &ds).map_err(|e| e.to_string())?;
            w.flush().map_err(|e| e.to_string())?;
            eprintln!(
                "wrote {} transactions / {} taxonomy nodes to {path}",
                ds.db.len(),
                ds.taxonomy.node_count()
            );
        }
        None => {
            let stdout = std::io::stdout();
            let mut w = BufWriter::new(stdout.lock());
            write_dataset(&mut w, &ds).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn load(flags: &HashMap<String, String>) -> Result<Dataset, String> {
    let path = flags.get("input").ok_or("missing --input FILE")?;
    let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    read_dataset(BufReader::new(file), RebalancePolicy::LeafCopy).map_err(|e| e.to_string())
}

fn cmd_mine(flags: &HashMap<String, String>) -> Result<(), String> {
    let ds = load(flags)?;
    let gamma = get_f64(flags, "gamma", 0.3)?;
    let epsilon = get_f64(flags, "epsilon", 0.1)?;
    let minsup = match flags.get("minsup") {
        None => MinSupports::default(),
        Some(spec) => {
            let fractions: Result<Vec<f64>, _> = spec.split(',').map(str::parse).collect();
            MinSupports::Fractions(fractions.map_err(|_| format!("bad --minsup {spec:?}"))?)
        }
    };
    let measure = match flags.get("measure") {
        None => Measure::Kulczynski,
        Some(name) => Measure::parse(name).ok_or_else(|| format!("unknown measure {name:?}"))?,
    };
    let pruning = match flags.get("variant").map(String::as_str) {
        None | Some("full") => PruningConfig::FULL,
        Some("basic") => PruningConfig::BASIC,
        Some("flipping") => PruningConfig::FLIPPING,
        Some("tpg") => PruningConfig::FLIPPING_TPG,
        Some(other) => return Err(format!("unknown variant {other:?}")),
    };
    let engine = match flags.get("engine") {
        None => CountingEngine::Tidset,
        Some(name) => {
            CountingEngine::parse(name).ok_or_else(|| format!("unknown engine {name:?}"))?
        }
    };
    let threads = get_usize(flags, "threads", 1)?;
    let mut cfg = FlipperConfig::new(Thresholds::new(gamma, epsilon), minsup)
        .with_measure(measure)
        .with_pruning(pruning)
        .with_engine(engine)
        .with_threads(threads);
    if let Some(mk) = flags.get("max-k") {
        cfg = cfg.with_max_k(mk.parse().map_err(|_| format!("bad --max-k {mk:?}"))?);
    }

    let result = mine(&ds.taxonomy, &ds.db, &cfg);
    let top = get_usize(flags, "top", usize::MAX)?;
    println!(
        "{} flipping patterns (showing {})",
        result.patterns.len(),
        top.min(result.patterns.len())
    );
    for p in result.top_k_by_gap(top) {
        println!("gap {:.3}:", p.flip_gap());
        println!("{}\n", p.display(&ds.taxonomy));
    }
    println!(
        "pos={} neg={}",
        result.total_positive(),
        result.total_negative()
    );
    println!("stats: {}", result.stats.summary());
    Ok(())
}

fn cmd_topk(flags: &HashMap<String, String>) -> Result<(), String> {
    let ds = load(flags)?;
    let k = get_usize(flags, "k", 10)?;
    let minsup = match flags.get("minsup") {
        None => MinSupports::default(),
        Some(spec) => {
            let fractions: Result<Vec<f64>, _> = spec.split(',').map(str::parse).collect();
            MinSupports::Fractions(fractions.map_err(|_| format!("bad --minsup {spec:?}"))?)
        }
    };
    let cfg = flipper_core::topk::TopKConfig {
        k,
        base: FlipperConfig {
            min_support: minsup,
            ..Default::default()
        },
        ..Default::default()
    };
    let r = flipper_core::topk::top_k(&ds.taxonomy, &ds.db, &cfg);
    println!(
        "top-{} most flipping patterns at auto-selected (γ, ε) = ({}, {}) after {} runs:",
        r.patterns.len(),
        r.thresholds.gamma,
        r.thresholds.epsilon,
        r.runs
    );
    for p in &r.patterns {
        println!("gap {:.3}:", p.flip_gap());
        println!("{}\n", p.display(&ds.taxonomy));
    }
    Ok(())
}

fn cmd_stats(flags: &HashMap<String, String>) -> Result<(), String> {
    let ds = load(flags)?;
    println!("{}", flipper_data::stats::DbStats::compute(&ds.db).report());
    println!(
        "taxonomy: {} nodes, height {}",
        ds.taxonomy.node_count(),
        ds.taxonomy.height()
    );
    for ls in flipper_data::stats::level_stats(&ds.db, &ds.taxonomy) {
        println!(
            "  level {}: {} nodes, mean rel support {:.5}, max {:.5}",
            ls.level, ls.distinct_nodes, ls.mean_rel_support, ls.max_rel_support
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_flags_happy_path() {
        let args: Vec<String> = ["--kind", "quest", "--seed", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(f["kind"], "quest");
        assert_eq!(f["seed"], "7");
    }

    #[test]
    fn parse_flags_rejects_bare_values() {
        let args: Vec<String> = ["kind", "quest"].iter().map(|s| s.to_string()).collect();
        assert!(parse_flags(&args).is_err());
    }

    #[test]
    fn parse_flags_rejects_missing_value() {
        let args: Vec<String> = ["--kind"].iter().map(|s| s.to_string()).collect();
        assert!(parse_flags(&args).is_err());
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(run(&["frobnicate".to_string()]).is_err());
    }

    #[test]
    fn help_succeeds() {
        assert!(run(&["help".to_string()]).is_ok());
        assert!(run(&[]).is_ok());
    }

    #[test]
    fn generate_and_mine_roundtrip() {
        let dir = std::env::temp_dir().join(format!("flipper-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("planted.txt").to_string_lossy().to_string();
        run(&[
            "generate".into(),
            "--kind".into(),
            "planted".into(),
            "--out".into(),
            path.clone(),
        ])
        .unwrap();
        run(&[
            "mine".into(),
            "--input".into(),
            path.clone(),
            "--gamma".into(),
            "0.6".into(),
            "--epsilon".into(),
            "0.35".into(),
            "--minsup".into(),
            "0.001".into(),
            "--top".into(),
            "3".into(),
        ])
        .unwrap();
        // The execution-layer flags: auto engine selection + sharding.
        run(&[
            "mine".into(),
            "--input".into(),
            path.clone(),
            "--engine".into(),
            "auto".into(),
            "--threads".into(),
            "2".into(),
            "--top".into(),
            "1".into(),
        ])
        .unwrap();
        run(&["stats".into(), "--input".into(), path]).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mine_rejects_unknown_engine() {
        let dir = std::env::temp_dir().join(format!("flipper-cli-eng-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.txt").to_string_lossy().to_string();
        run(&[
            "generate".into(),
            "--kind".into(),
            "planted".into(),
            "--out".into(),
            path.clone(),
        ])
        .unwrap();
        let err = run(&[
            "mine".into(),
            "--input".into(),
            path,
            "--engine".into(),
            "warpdrive".into(),
        ])
        .unwrap_err();
        assert!(err.contains("unknown engine"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mine_rejects_missing_input() {
        let err = run(&["mine".into(), "--input".into(), "/nonexistent".into()]).unwrap_err();
        assert!(err.contains("open"));
    }

    #[test]
    fn generate_rejects_unknown_kind() {
        let err = run(&["generate".into(), "--kind".into(), "nope".into()]).unwrap_err();
        assert!(err.contains("unknown dataset kind"));
    }
}
