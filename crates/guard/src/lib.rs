//! # flipper-guard
//!
//! The robustness substrate threaded through storage, the exec pool, the
//! miner and sweeps: a long-lived `flipperd` serving sessions cannot
//! afford one bit-rotted chunk, one runaway sweep or one panicking worker
//! taking the process down. Three primitives, all dependency-free:
//!
//! * [`CancelToken`] — a cloneable cooperative-cancellation handle (atomic
//!   flag + optional deadline) checked at cell/chunk boundaries. Checking
//!   an inert token is one relaxed atomic load, so guarded and unguarded
//!   runs produce byte-identical `flipper-results/v1` output and the
//!   quickbench `guard` rows prove the overhead is under 1%.
//! * [`trap`] — run a closure under `catch_unwind` and convert a panic
//!   into a typed [`GuardError::Panicked`] instead of aborting the caller.
//!   The exec pool joins every worker before the first panic propagates,
//!   so flipper-obs thread-local sheets always flush; `trap` then turns
//!   the resumed panic into an error the session facade can surface.
//! * [`fault`] — deterministic fault injection: a seeded [`FaultPlan`]
//!   armed process-globally injects I/O errors, payload bit-flips,
//!   truncations, worker panics and latency at named sites
//!   (`store.read.section`, `store.write.section`, `exec.chunk`). Every
//!   failure path the release-gated `fault_injection` suite exercises is
//!   reproducible from the plan's seed. Disarmed cost: one relaxed atomic
//!   load per site visit.
//!
//! This crate reads the wall clock ([`std::time::Instant`]) for deadlines —
//! like `flipper_core::stats::Stopwatch` and `flipper_obs::clock` it is a
//! sanctioned timer outside the `flipper-lint` determinism scope; nothing
//! here ever flows into result bytes.
//!
//! ```
//! use flipper_guard::{CancelToken, GuardError};
//!
//! let token = CancelToken::new();
//! assert!(token.check().is_ok());
//! token.cancel();
//! assert_eq!(token.check(), Err(GuardError::Cancelled));
//! ```

pub mod cancel;
pub mod fault;

pub use cancel::{CancelToken, GuardError};
pub use fault::{ArmedPlan, Fault, FaultKind, FaultPlan};

/// Run `f` trapping panics: a panic unwinding out of `f` becomes a typed
/// [`GuardError::Panicked`] carrying `site` and the panic message, instead
/// of unwinding into (and aborting) the caller's pool or server loop.
pub fn trap<T>(site: &str, f: impl FnOnce() -> T) -> Result<T, GuardError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(|payload| {
        GuardError::Panicked {
            site: site.to_string(),
            message: panic_message(payload.as_ref()),
        }
    })
}

/// Best-effort extraction of a panic payload's message (`&str` and `String`
/// payloads cover `panic!`/`assert!`; anything else is opaque).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trap_passes_values_through() {
        assert_eq!(trap("t", || 41 + 1), Ok(42));
    }

    #[test]
    fn trap_converts_panics_to_typed_errors() {
        let err = trap("mine", || -> u32 { panic!("boom {}", 7) }).unwrap_err();
        match err {
            GuardError::Panicked { site, message } => {
                assert_eq!(site, "mine");
                assert_eq!(message, "boom 7");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn trap_reports_opaque_payloads() {
        let err = trap("x", || std::panic::panic_any(17u64)).unwrap_err();
        match err {
            GuardError::Panicked { message, .. } => {
                assert_eq!(message, "non-string panic payload");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }
}
