//! Deterministic fault injection.
//!
//! A [`FaultPlan`] names *sites* (string labels compiled into the store
//! and exec layers), picks which visit of each site fires, and derives
//! every fault parameter (which byte flips, where a payload is cut, how
//! long an injected stall spins) from the plan's seed via `flipper-rng` —
//! so a failing fault-injection run reproduces from `(seed, plan)` alone.
//!
//! Plans are **armed process-globally** ([`arm`]): instrumented sites call
//! [`injected`], which costs one relaxed atomic load while disarmed. The
//! returned [`ArmedPlan`] guard disarms on drop and holds a global lock,
//! so concurrent tests arming plans serialize instead of interfering.
//!
//! ## Site catalog
//!
//! | site | layer | faults honoured |
//! |------|-------|-----------------|
//! | `store.read.section`  | FBIN section reads (frame + payload + CRC) | `Io`, `BitFlip`, `Truncate`, `Latency` |
//! | `store.write.section` | FBIN section writes | `Io`, `Latency` |
//! | `exec.chunk`          | exec pool worker chunks | `Panic`, `Latency` |
//!
//! Sites ignore fault kinds they don't honour (an injected `Panic` at a
//! store site is treated as `Io`): the storage layer must never panic, so
//! not even the fault injector may make it.

use flipper_rng::{Rng, Xoshiro256pp};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// The FBIN section-read site (see the module-level catalog).
pub const SITE_STORE_READ: &str = "store.read.section";
/// The FBIN section-write site.
pub const SITE_STORE_WRITE: &str = "store.write.section";
/// The exec-pool worker-chunk site.
pub const SITE_EXEC_CHUNK: &str = "exec.chunk";

/// The kind of fault a plan injects at a site (parameters are derived from
/// the seed at fire time — see [`Fault`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A synthetic I/O error.
    Io,
    /// One payload byte XORed with a seed-derived mask.
    BitFlip,
    /// The payload cut short at a seed-derived offset.
    Truncate,
    /// A worker panic (honoured at exec sites only).
    Panic,
    /// A bounded seed-derived busy-wait stall.
    Latency,
}

impl FaultKind {
    /// Stable name for reports and assertions.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Io => "io",
            FaultKind::BitFlip => "bit-flip",
            FaultKind::Truncate => "truncate",
            FaultKind::Panic => "panic",
            FaultKind::Latency => "latency",
        }
    }
}

/// A concrete fault, parameters resolved from the plan seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Fail with a synthetic I/O error.
    Io,
    /// XOR byte `byte % payload_len` with `mask` (never zero).
    BitFlip {
        /// Seed-derived byte position (call sites reduce modulo length).
        byte: usize,
        /// Seed-derived XOR mask, guaranteed non-zero.
        mask: u8,
    },
    /// Truncate the payload to `keep % payload_len` bytes.
    Truncate {
        /// Seed-derived keep length (call sites reduce modulo length).
        keep: usize,
    },
    /// Panic the worker (exec sites only).
    Panic,
    /// Busy-wait for `spins` spin-loop hints.
    Latency {
        /// Seed-derived spin count, bounded at plan derivation.
        spins: u32,
    },
}

#[derive(Debug, Clone)]
struct Trigger {
    site: String,
    /// 1-based visit ordinal that fires this trigger.
    at_hit: u64,
    kind: FaultKind,
}

/// A seeded, site-addressed fault schedule. Build with [`FaultPlan::new`]
/// and [`FaultPlan::inject`], then [`arm`] it.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    triggers: Vec<Trigger>,
}

impl FaultPlan {
    /// An empty plan deriving all fault parameters from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            triggers: Vec::new(),
        }
    }

    /// Fire `kind` on the `at_hit`-th visit (1-based; 0 is treated as 1)
    /// of `site`.
    pub fn inject(mut self, site: &str, at_hit: u64, kind: FaultKind) -> Self {
        self.triggers.push(Trigger {
            site: site.to_string(),
            at_hit: at_hit.max(1),
            kind,
        });
        self
    }

    /// Resolve the concrete [`Fault`] for a trigger: parameters come from a
    /// PRNG seeded by `(plan seed, site, hit ordinal)`, so the same plan
    /// injects the same bytes every run.
    fn resolve(&self, t: &Trigger) -> Fault {
        let mut rng = Xoshiro256pp::seed_from_u64(self.seed ^ fnv1a(&t.site) ^ t.at_hit);
        match t.kind {
            FaultKind::Io => Fault::Io,
            FaultKind::BitFlip => Fault::BitFlip {
                byte: rng.next_u64() as usize,
                mask: (1u8 << (rng.next_u64() % 8)).max(1),
            },
            FaultKind::Truncate => Fault::Truncate {
                keep: rng.next_u64() as usize,
            },
            FaultKind::Panic => Fault::Panic,
            FaultKind::Latency => Fault::Latency {
                spins: 1_000 + (rng.next_u64() % 50_000) as u32,
            },
        }
    }
}

/// FNV-1a over a site name — a stable, dependency-free site fingerprint
/// for seeding.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct PlanState {
    plan: FaultPlan,
    /// Visits per site since arming.
    hits: BTreeMap<String, u64>,
    /// Faults that actually fired: `(site, hit ordinal, kind name)`.
    fired: Vec<(String, u64, &'static str)>,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);

fn state() -> &'static Mutex<Option<PlanState>> {
    static STATE: OnceLock<Mutex<Option<PlanState>>> = OnceLock::new();
    STATE.get_or_init(Mutex::default)
}

fn arm_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
}

/// Guard over an armed plan: the plan stays active until this drops.
/// Arming is exclusive — a second [`arm`] blocks until the first guard
/// drops, so fault-injection tests serialize automatically.
pub struct ArmedPlan {
    _exclusive: MutexGuard<'static, ()>,
}

impl ArmedPlan {
    /// The faults that have fired so far: `(site, hit ordinal, kind name)`.
    pub fn fired(&self) -> Vec<(String, u64, &'static str)> {
        state()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .map(|s| s.fired.clone())
            .unwrap_or_default()
    }
}

impl Drop for ArmedPlan {
    fn drop(&mut self) {
        ACTIVE.store(false, Ordering::Relaxed);
        *state().lock().unwrap_or_else(PoisonError::into_inner) = None;
    }
}

/// Arm `plan` process-globally. Sites start reporting injected faults via
/// [`injected`] until the returned guard drops.
pub fn arm(plan: FaultPlan) -> ArmedPlan {
    let exclusive = arm_lock().lock().unwrap_or_else(PoisonError::into_inner);
    *state().lock().unwrap_or_else(PoisonError::into_inner) = Some(PlanState {
        plan,
        hits: BTreeMap::new(),
        fired: Vec::new(),
    });
    ACTIVE.store(true, Ordering::Relaxed);
    ArmedPlan {
        _exclusive: exclusive,
    }
}

/// Site probe: does the armed plan (if any) inject a fault at this visit
/// of `site`? Disarmed cost is one relaxed atomic load.
#[inline]
pub fn injected(site: &str) -> Option<Fault> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    injected_slow(site)
}

#[cold]
fn injected_slow(site: &str) -> Option<Fault> {
    let mut guard = state().lock().unwrap_or_else(PoisonError::into_inner);
    let st = guard.as_mut()?;
    let hit = st.hits.entry(site.to_string()).or_insert(0);
    *hit += 1;
    let ordinal = *hit;
    let trigger = st
        .plan
        .triggers
        .iter()
        .find(|t| t.site == site && t.at_hit == ordinal)?
        .clone();
    let fault = st.plan.resolve(&trigger);
    st.fired
        .push((site.to_string(), ordinal, trigger.kind.name()));
    Some(fault)
}

/// Bounded busy-wait used to realize [`Fault::Latency`] without
/// `std::thread::sleep` (which is reserved to the exec module by the
/// concurrency-discipline lint).
pub fn spin(spins: u32) {
    for _ in 0..spins {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_sites_inject_nothing() {
        assert_eq!(injected("store.read.section"), None);
    }

    #[test]
    fn armed_plan_fires_at_the_named_hit_only() {
        let armed = arm(FaultPlan::new(7)
            .inject(SITE_STORE_READ, 2, FaultKind::Io)
            .inject(SITE_EXEC_CHUNK, 1, FaultKind::Panic));
        assert_eq!(injected(SITE_STORE_READ), None); // hit 1
        assert_eq!(injected(SITE_STORE_READ), Some(Fault::Io)); // hit 2
        assert_eq!(injected(SITE_STORE_READ), None); // hit 3
        assert_eq!(injected(SITE_EXEC_CHUNK), Some(Fault::Panic));
        assert_eq!(
            armed.fired(),
            vec![
                (SITE_STORE_READ.to_string(), 2, "io"),
                (SITE_EXEC_CHUNK.to_string(), 1, "panic"),
            ]
        );
        drop(armed);
        assert_eq!(injected(SITE_STORE_READ), None);
    }

    #[test]
    fn fault_parameters_are_seed_deterministic() {
        let probe = |seed: u64| {
            let _armed = arm(FaultPlan::new(seed).inject("s", 1, FaultKind::BitFlip));
            injected("s")
        };
        let a = probe(42);
        let b = probe(42);
        let c = probe(43);
        assert_eq!(a, b, "same seed, same fault");
        assert!(a.is_some());
        assert_ne!(a, c, "different seed should perturb the parameters");
        match a {
            Some(Fault::BitFlip { mask, .. }) => assert_ne!(mask, 0),
            other => panic!("expected BitFlip, got {other:?}"),
        }
    }

    #[test]
    fn latency_spins_are_bounded() {
        let _armed = arm(FaultPlan::new(1).inject("s", 1, FaultKind::Latency));
        match injected("s") {
            Some(Fault::Latency { spins }) => {
                assert!((1_000..=51_000).contains(&spins));
                spin(spins); // must return promptly
            }
            other => panic!("expected Latency, got {other:?}"),
        }
    }

    #[test]
    fn rearming_resets_hit_counters() {
        {
            let _armed = arm(FaultPlan::new(5).inject("s", 1, FaultKind::Io));
            assert_eq!(injected("s"), Some(Fault::Io));
        }
        {
            let _armed = arm(FaultPlan::new(5).inject("s", 1, FaultKind::Io));
            assert_eq!(injected("s"), Some(Fault::Io), "hit counter restarted");
        }
    }
}
