//! Cooperative cancellation: [`CancelToken`] and the [`GuardError`] it
//! (and [`crate::trap`]) surface.
//!
//! A token is checked at coarse boundaries — miner cells, exec chunks,
//! sweep grid points — never per candidate, so the live-token fast path
//! (one relaxed atomic load) is unmeasurable next to the work it bounds.
//! Deadlines read [`Instant`]; tokens therefore never influence *what* a
//! run computes, only *whether it finishes* — results from a completed
//! guarded run are byte-identical to an unguarded one.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a guarded operation stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuardError {
    /// [`CancelToken::cancel`] was called.
    Cancelled,
    /// The token's deadline passed.
    TimedOut,
    /// A panic was trapped by [`crate::trap`] and converted.
    Panicked {
        /// The trap site (e.g. `"mine"`, `"sweep"`).
        site: String,
        /// The panic payload's message.
        message: String,
    },
}

impl fmt::Display for GuardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardError::Cancelled => write!(f, "operation cancelled"),
            GuardError::TimedOut => write!(f, "operation deadline exceeded"),
            GuardError::Panicked { site, message } => {
                write!(f, "panic trapped at {site}: {message}")
            }
        }
    }
}

impl std::error::Error for GuardError {}

const LIVE: u8 = 0;
const CANCELLED: u8 = 1;
const TIMED_OUT: u8 = 2;

struct Inner {
    state: AtomicU8,
    deadline: Option<Instant>,
    /// Test tooling: remaining [`CancelToken::check`] calls before the
    /// token cancels itself (deterministic mid-run cancellation).
    budget: Option<AtomicU64>,
}

/// Cloneable cooperative-cancellation handle: an atomic flag plus an
/// optional deadline. All clones share one state — cancelling any clone
/// interrupts every holder at its next [`CancelToken::check`].
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CancelToken")
            .field("state", &self.inner.state.load(Ordering::Relaxed))
            .field("deadline", &self.inner.deadline)
            .finish()
    }
}

impl CancelToken {
    fn with_inner(deadline: Option<Instant>, budget: Option<u64>) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                state: AtomicU8::new(LIVE),
                deadline,
                budget: budget.map(AtomicU64::new),
            }),
        }
    }

    /// A live token with no deadline; interrupts only via
    /// [`CancelToken::cancel`].
    pub fn new() -> Self {
        Self::with_inner(None, None)
    }

    /// A token that times out `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        Self::with_inner(Instant::now().checked_add(timeout), None)
    }

    /// Test tooling: a token that cancels itself on its `checks`-th
    /// [`CancelToken::check`] call — deterministic mid-run cancellation
    /// without clocks or races (run single-threaded for a reproducible
    /// interruption point).
    pub fn cancel_after(checks: u64) -> Self {
        Self::with_inner(None, Some(checks))
    }

    /// Cancel: every subsequent [`CancelToken::check`] on any clone fails
    /// with [`GuardError::Cancelled`]. Idempotent; never upgrades an
    /// already-timed-out token back to plain cancellation.
    pub fn cancel(&self) {
        let _ = self.inner.state.compare_exchange(
            LIVE,
            CANCELLED,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Has the token been cancelled or timed out? (Does not probe the
    /// deadline; only [`CancelToken::check`] does.)
    pub fn is_interrupted(&self) -> bool {
        self.inner.state.load(Ordering::Relaxed) != LIVE
    }

    /// The boundary check: `Ok(())` while live, [`GuardError::Cancelled`] /
    /// [`GuardError::TimedOut`] once interrupted. The live fast path is one
    /// relaxed atomic load (plus one `Instant` read when a deadline is
    /// set).
    pub fn check(&self) -> Result<(), GuardError> {
        match self.inner.state.load(Ordering::Relaxed) {
            CANCELLED => return Err(GuardError::Cancelled),
            TIMED_OUT => return Err(GuardError::TimedOut),
            _ => {}
        }
        if let Some(budget) = &self.inner.budget {
            // Saturating countdown: the transition to zero cancels.
            let before = budget
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                    Some(v.saturating_sub(1))
                })
                .unwrap_or(0);
            if before <= 1 {
                self.inner.state.store(CANCELLED, Ordering::Relaxed);
                return Err(GuardError::Cancelled);
            }
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                self.inner.state.store(TIMED_OUT, Ordering::Relaxed);
                return Err(GuardError::TimedOut);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_token_checks_ok() {
        let t = CancelToken::new();
        for _ in 0..1000 {
            assert!(t.check().is_ok());
        }
        assert!(!t.is_interrupted());
    }

    #[test]
    fn cancel_interrupts_every_clone() {
        let t = CancelToken::new();
        let clone = t.clone();
        t.cancel();
        assert_eq!(clone.check(), Err(GuardError::Cancelled));
        assert!(t.is_interrupted());
        // Idempotent.
        t.cancel();
        assert_eq!(t.check(), Err(GuardError::Cancelled));
    }

    #[test]
    fn deadline_times_out() {
        let t = CancelToken::with_timeout(Duration::from_nanos(1));
        // The deadline is in the past by the time we check.
        std::hint::spin_loop();
        while t.check().is_ok() {}
        assert_eq!(t.check(), Err(GuardError::TimedOut));
        // Cancelling after a timeout keeps the timeout verdict.
        t.cancel();
        assert_eq!(t.check(), Err(GuardError::TimedOut));
    }

    #[test]
    fn generous_deadline_stays_live() {
        let t = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(t.check().is_ok());
    }

    #[test]
    fn cancel_after_counts_checks() {
        let t = CancelToken::cancel_after(3);
        assert!(t.check().is_ok());
        assert!(t.check().is_ok());
        assert_eq!(t.check(), Err(GuardError::Cancelled));
        assert_eq!(t.check(), Err(GuardError::Cancelled));
    }

    #[test]
    fn errors_render() {
        assert_eq!(GuardError::Cancelled.to_string(), "operation cancelled");
        assert_eq!(
            GuardError::TimedOut.to_string(),
            "operation deadline exceeded"
        );
        let p = GuardError::Panicked {
            site: "mine".into(),
            message: "boom".into(),
        };
        assert_eq!(p.to_string(), "panic trapped at mine: boom");
    }
}
