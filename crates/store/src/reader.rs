//! The FBIN reader: full-load and chunk-streaming paths.
//!
//! [`FbinReader::new`] parses the header and dictionary and rebuilds the
//! taxonomy; from there either [`FbinReader::read_dataset`] materializes the
//! whole database (bit-identical to parsing the text format), or
//! [`FbinReader::chunks`] iterates transaction chunks one at a time so
//! ingestion can run with bounded memory.

use crate::crc32::crc32;
use crate::error::StoreError;
use crate::varint::PayloadCursor;
use crate::{SectionTag, FBIN_MAGIC, FBIN_VERSION};
use flipper_data::format::{deepest_copy, Dataset};
use flipper_data::TransactionDb;
use flipper_taxonomy::{NodeId, RebalancePolicy, Taxonomy, TaxonomyBuilder};
use std::io::Read;

/// Upper bound on a single section payload. A corrupt length field fails
/// here instead of attempting a multi-gigabyte allocation.
const MAX_SECTION_BYTES: usize = 1 << 30;

/// Reader over an FBIN stream: header + dictionary are parsed eagerly, the
/// transaction chunks lazily.
pub struct FbinReader<R: Read> {
    taxonomy: Taxonomy,
    chunks: ChunkReader<R>,
}

impl<R: Read> FbinReader<R> {
    /// Open an FBIN stream, rebalancing the dictionary's taxonomy with
    /// [`RebalancePolicy::LeafCopy`] (the CLI default, matching the text
    /// reader).
    pub fn new(r: R) -> Result<Self, StoreError> {
        Self::with_policy(r, RebalancePolicy::LeafCopy)
    }

    /// Open an FBIN stream with an explicit rebalancing policy.
    pub fn with_policy(mut r: R, policy: RebalancePolicy) -> Result<Self, StoreError> {
        let mut magic = [0u8; 4];
        read_exact(&mut r, &mut magic, "header")?;
        if magic != FBIN_MAGIC {
            return Err(StoreError::BadMagic(magic));
        }
        let mut word = [0u8; 2];
        read_exact(&mut r, &mut word, "header")?;
        let version = u16::from_le_bytes(word);
        if version == 0 || version > FBIN_VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        read_exact(&mut r, &mut word, "header")?;
        if u16::from_le_bytes(word) != 0 {
            return Err(StoreError::Corrupt {
                context: "header",
                message: format!("unknown header flags {:#06x}", u16::from_le_bytes(word)),
            });
        }
        let (tag, payload) = read_section(&mut r)?;
        if tag != SectionTag::Dict {
            return Err(StoreError::Corrupt {
                context: "dictionary",
                message: format!("expected the dictionary section first, found {tag:?}"),
            });
        }
        let (taxonomy, node_of) = decode_dict(&payload, policy)?;
        Ok(FbinReader {
            taxonomy,
            chunks: ChunkReader {
                r,
                node_of,
                state: ChunkState::Reading,
                txns_seen: 0,
                chunks_seen: 0,
            },
        })
    }

    /// The taxonomy reconstructed from the dictionary section.
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    /// Iterate over transaction chunks without materializing the database.
    /// Each item is one chunk's transactions as leaf node ids of
    /// [`FbinReader::taxonomy`] (per-transaction canonicalization — sorting,
    /// deduplication — is left to the consumer, e.g.
    /// [`TransactionDb::new`] or `MultiLevelViewBuilder`).
    pub fn chunks(&mut self) -> &mut ChunkReader<R> {
        &mut self.chunks
    }

    /// Split into the taxonomy and the chunk stream, for streaming consumers
    /// that need to own both.
    pub fn into_parts(self) -> (Taxonomy, ChunkReader<R>) {
        (self.taxonomy, self.chunks)
    }

    /// Full-load path: materialize the whole dataset. The result is
    /// bit-identical to parsing the equivalent text-format file.
    pub fn read_dataset(mut self) -> Result<Dataset, StoreError> {
        let mut rows: Vec<Vec<NodeId>> = Vec::new();
        for chunk in self.chunks() {
            rows.extend(chunk?);
        }
        let db = TransactionDb::new(rows)?;
        db.validate_against(&self.taxonomy)?;
        Ok(Dataset {
            taxonomy: self.taxonomy,
            db,
        })
    }
}

enum ChunkState {
    /// Expecting chunk or end sections.
    Reading,
    /// End section consumed and verified; the stream is exhausted.
    Done,
    /// An error was yielded; the stream stays terminated.
    Failed,
}

/// Streaming iterator over the transaction chunks of an FBIN file. Yields
/// `Err` once on the first structural problem, then terminates. The end
/// section's totals are verified before the iterator reports exhaustion, so
/// a truncated file can never silently look complete.
pub struct ChunkReader<R: Read> {
    r: R,
    /// Dictionary index → leaf node (deepest synthetic copy, matching how
    /// the text reader maps item names after rebalancing).
    node_of: Vec<NodeId>,
    state: ChunkState,
    txns_seen: u64,
    chunks_seen: u64,
}

impl<R: Read> ChunkReader<R> {
    /// Transactions decoded so far.
    pub fn transactions_seen(&self) -> u64 {
        self.txns_seen
    }

    fn next_chunk(&mut self) -> Option<Result<Vec<Vec<NodeId>>, StoreError>> {
        match self.state {
            ChunkState::Reading => {}
            ChunkState::Done | ChunkState::Failed => return None,
        }
        match self.advance() {
            Ok(Some(rows)) => Some(Ok(rows)),
            Ok(None) => {
                self.state = ChunkState::Done;
                None
            }
            Err(e) => {
                self.state = ChunkState::Failed;
                Some(Err(e))
            }
        }
    }

    fn advance(&mut self) -> Result<Option<Vec<Vec<NodeId>>>, StoreError> {
        let (tag, payload) = read_section(&mut self.r)?;
        match tag {
            SectionTag::Chunk => {
                let rows = decode_chunk(&payload, &self.node_of)?;
                self.txns_seen += rows.len() as u64;
                self.chunks_seen += 1;
                Ok(Some(rows))
            }
            SectionTag::End => {
                let mut c = PayloadCursor::new(&payload, "end section");
                let total_txns = c.read_varint()?;
                let total_chunks = c.read_varint()?;
                if !c.is_exhausted() {
                    return Err(StoreError::Corrupt {
                        context: "end section",
                        message: format!("{} trailing bytes", c.remaining()),
                    });
                }
                if total_txns != self.txns_seen || total_chunks != self.chunks_seen {
                    return Err(StoreError::Corrupt {
                        context: "end section",
                        message: format!(
                            "totals mismatch: file claims {total_txns} transactions in \
                             {total_chunks} chunks, decoded {} in {}",
                            self.txns_seen, self.chunks_seen
                        ),
                    });
                }
                let mut probe = [0u8; 1];
                if self.r.read(&mut probe)? != 0 {
                    return Err(StoreError::Corrupt {
                        context: "end section",
                        message: "trailing data after the end section".to_string(),
                    });
                }
                Ok(None)
            }
            SectionTag::Dict => Err(StoreError::Corrupt {
                context: "chunk stream",
                message: "duplicate dictionary section".to_string(),
            }),
        }
    }
}

impl<R: Read> Iterator for ChunkReader<R> {
    type Item = Result<Vec<Vec<NodeId>>, StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_chunk()
    }
}

/// `read_exact` with a typed truncation error carrying `context`.
fn read_exact<R: Read>(r: &mut R, buf: &mut [u8], context: &'static str) -> Result<(), StoreError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Truncated { context }
        } else {
            StoreError::Io(e)
        }
    })
}

/// Read one framed section: tag, length, payload, CRC-32 — verifying the
/// checksum before the payload is handed to any decoder.
fn read_section<R: Read>(r: &mut R) -> Result<(SectionTag, Vec<u8>), StoreError> {
    let mut tag_byte = [0u8; 1];
    read_exact(r, &mut tag_byte, "section frame")?;
    let tag = SectionTag::from_byte(tag_byte[0]).ok_or_else(|| StoreError::Corrupt {
        context: "section frame",
        message: format!("unknown section tag {:#04x}", tag_byte[0]),
    })?;
    let mut len_bytes = [0u8; 4];
    read_exact(r, &mut len_bytes, tag.name())?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_SECTION_BYTES {
        return Err(StoreError::Corrupt {
            context: tag.name(),
            message: format!("section length {len} exceeds the {MAX_SECTION_BYTES}-byte cap"),
        });
    }
    let mut payload = vec![0u8; len];
    read_exact(r, &mut payload, tag.name())?;
    let mut crc_bytes = [0u8; 4];
    read_exact(r, &mut crc_bytes, tag.name())?;
    let expected = u32::from_le_bytes(crc_bytes);
    let actual = crc32(&payload);
    if expected != actual {
        return Err(StoreError::ChecksumMismatch {
            section: tag.name(),
            expected,
            actual,
        });
    }
    Ok((tag, payload))
}

/// Decode the dictionary payload and precompute the dictionary-index →
/// leaf-node map.
///
/// Dictionaries are written level-ordered, so the hot path is
/// [`Taxonomy::from_balanced_level_order`] — a single arena-building pass
/// with no rebalancing machinery, under which entry `i` is node `i + 1` and
/// the node map is the identity. When that fails (an unbalanced dictionary
/// that genuinely needs `policy`, e.g. leaf-copy padding), fall back to
/// replaying the entries through [`TaxonomyBuilder`] — the exact code path
/// the text reader uses, entry for entry, which is what keeps the two
/// formats bit-identical.
fn decode_dict(
    payload: &[u8],
    policy: RebalancePolicy,
) -> Result<(Taxonomy, Vec<NodeId>), StoreError> {
    let mut c = PayloadCursor::new(payload, "dictionary");
    let count = c.read_len()?;
    // Names borrow the payload — no per-entry allocation on this pass.
    let mut entries: Vec<(&str, u32)> = Vec::with_capacity(count.min(payload.len()));
    for i in 0..count {
        let name_len = c.read_len()?;
        let name =
            std::str::from_utf8(c.read_bytes(name_len)?).map_err(|_| StoreError::Corrupt {
                context: "dictionary",
                message: format!("entry {i} name is not valid UTF-8"),
            })?;
        let parent_code = c.read_len()?;
        if parent_code > i {
            return Err(StoreError::Corrupt {
                context: "dictionary",
                message: format!(
                    "entry {i} references parent {}, which is not an earlier entry",
                    parent_code - 1
                ),
            });
        }
        // The parent code is exactly the parent's node id under level-order
        // reconstruction (0 = root, else 1 + parent entry index).
        entries.push((name, parent_code as u32));
    }
    if !c.is_exhausted() {
        return Err(StoreError::Corrupt {
            context: "dictionary",
            message: format!("{} trailing bytes", c.remaining()),
        });
    }
    if let Ok(taxonomy) = Taxonomy::from_balanced_level_order(&entries) {
        // Balanced: no synthetic copies exist, so entry i maps to node i+1.
        let node_of = (1..=entries.len()).map(NodeId::from_index).collect();
        return Ok((taxonomy, node_of));
    }
    let mut builder = TaxonomyBuilder::new();
    for (i, (name, parent)) in entries.iter().enumerate() {
        if *parent == 0 {
            builder.add_root_child(name)?;
        } else {
            let parent_idx = *parent as usize - 1;
            debug_assert!(parent_idx < i);
            builder.add_child(name, entries[parent_idx].0)?;
        }
    }
    let taxonomy = builder.build(policy)?;
    let mut node_of = Vec::with_capacity(entries.len());
    for (name, _) in &entries {
        let node = taxonomy
            .node_by_name(name)
            .ok_or_else(|| StoreError::Corrupt {
                context: "dictionary",
                message: format!("entry {name:?} vanished during rebalancing"),
            })?;
        node_of.push(deepest_copy(&taxonomy, node));
    }
    Ok((taxonomy, node_of))
}

/// Decode one chunk payload into transactions of leaf node ids.
fn decode_chunk(payload: &[u8], node_of: &[NodeId]) -> Result<Vec<Vec<NodeId>>, StoreError> {
    let mut c = PayloadCursor::new(payload, "chunk");
    let txn_count = c.read_len()?;
    // A transaction takes at least two payload bytes, so this reserve is
    // bounded by the (already checksummed) payload size even if corrupt.
    let mut rows: Vec<Vec<NodeId>> = Vec::with_capacity(txn_count.min(payload.len()));
    for t in 0..txn_count {
        let width = c.read_len()?;
        if width == 0 {
            return Err(StoreError::Corrupt {
                context: "chunk",
                message: format!("transaction {t} is empty"),
            });
        }
        let mut row = Vec::with_capacity(width.min(c.remaining() + 1));
        let mut id = c.read_varint()?;
        row.push(map_item(id, node_of)?);
        for _ in 1..width {
            let gap = c.read_varint()?;
            if gap == 0 {
                return Err(StoreError::Corrupt {
                    context: "chunk",
                    message: format!("transaction {t} has a non-increasing item id"),
                });
            }
            id = id.checked_add(gap).ok_or(StoreError::Corrupt {
                context: "chunk",
                message: "item id overflows u64".to_string(),
            })?;
            row.push(map_item(id, node_of)?);
        }
        rows.push(row);
    }
    if !c.is_exhausted() {
        return Err(StoreError::Corrupt {
            context: "chunk",
            message: format!("{} trailing bytes", c.remaining()),
        });
    }
    Ok(rows)
}

fn map_item(id: u64, node_of: &[NodeId]) -> Result<NodeId, StoreError> {
    usize::try_from(id)
        .ok()
        .and_then(|i| node_of.get(i).copied())
        .ok_or_else(|| StoreError::Corrupt {
            context: "chunk",
            message: format!(
                "item id {id} out of range for a {}-entry dictionary",
                node_of.len()
            ),
        })
}

/// Read a whole FBIN dataset (the full-load path) with the default
/// [`RebalancePolicy::LeafCopy`].
pub fn read_fbin<R: Read>(r: R) -> Result<Dataset, StoreError> {
    FbinReader::new(r)?.read_dataset()
}

/// Read a whole FBIN dataset with an explicit rebalancing policy.
pub fn read_fbin_with_policy<R: Read>(
    r: R,
    policy: RebalancePolicy,
) -> Result<Dataset, StoreError> {
    FbinReader::with_policy(r, policy)?.read_dataset()
}
