//! The FBIN reader: full-load, chunk-streaming, and salvage paths.
//!
//! [`FbinReader::new`] parses the header and dictionary and rebuilds the
//! taxonomy; from there either [`FbinReader::read_dataset`] materializes the
//! whole database (bit-identical to parsing the text format), or
//! [`FbinReader::chunks`] iterates transaction chunks one at a time so
//! ingestion can run with bounded memory.
//!
//! [`FbinReader::salvage`] opens the same stream in **salvage mode**: chunk
//! sections whose checksum or decode fails are quarantined — recorded in a
//! [`SalvageReport`] with their index, byte offset and reason — instead of
//! failing the read, and a truncated tail ends the stream gracefully with a
//! note. Header and dictionary corruption stay fatal (without a dictionary
//! there is nothing to salvage), and real I/O errors are never masked.
//!
//! Section reads are a `flipper_guard` fault-injection site
//! ([`flipper_guard::fault::SITE_STORE_READ`]): an armed plan can fail a
//! read with a synthetic I/O error, corrupt or truncate a payload *after*
//! it left the stream (so framing stays aligned and the CRC must catch it),
//! or stall it. Disarmed cost is one relaxed atomic load per section.

use crate::crc32::crc32;
use crate::error::StoreError;
use crate::varint::PayloadCursor;
use crate::{SectionTag, FBIN_MAGIC, FBIN_VERSION};
use flipper_data::format::{deepest_copy, Dataset};
use flipper_data::TransactionDb;
use flipper_guard::fault::SITE_STORE_READ;
use flipper_guard::Fault;
use flipper_taxonomy::{NodeId, RebalancePolicy, Taxonomy, TaxonomyBuilder};
use std::io::Read;

/// Upper bound on a single section payload. A corrupt length field fails
/// here instead of attempting a multi-gigabyte allocation.
const MAX_SECTION_BYTES: usize = 1 << 30;

/// Byte size of the fixed FBIN header (magic + version + flags).
const HEADER_BYTES: u64 = 8;

/// Reader over an FBIN stream: header + dictionary are parsed eagerly, the
/// transaction chunks lazily.
pub struct FbinReader<R: Read> {
    taxonomy: Taxonomy,
    chunks: ChunkReader<R>,
}

impl<R: Read> FbinReader<R> {
    /// Open an FBIN stream, rebalancing the dictionary's taxonomy with
    /// [`RebalancePolicy::LeafCopy`] (the CLI default, matching the text
    /// reader).
    pub fn new(r: R) -> Result<Self, StoreError> {
        Self::open(r, RebalancePolicy::LeafCopy, false)
    }

    /// Open an FBIN stream with an explicit rebalancing policy.
    pub fn with_policy(r: R, policy: RebalancePolicy) -> Result<Self, StoreError> {
        Self::open(r, policy, false)
    }

    /// Open an FBIN stream in **salvage mode** with the default
    /// [`RebalancePolicy::LeafCopy`]: damaged chunk sections are quarantined
    /// instead of failing the read. Inspect
    /// [`ChunkReader::salvage_report`] after draining the chunks — a
    /// degraded report means the decoded data is a strict subset of the
    /// file's contents.
    pub fn salvage(r: R) -> Result<Self, StoreError> {
        Self::open(r, RebalancePolicy::LeafCopy, true)
    }

    /// Salvage mode with an explicit rebalancing policy.
    pub fn salvage_with_policy(r: R, policy: RebalancePolicy) -> Result<Self, StoreError> {
        Self::open(r, policy, true)
    }

    fn open(mut r: R, policy: RebalancePolicy, salvage: bool) -> Result<Self, StoreError> {
        let mut magic = [0u8; 4];
        read_exact(&mut r, &mut magic, "header")?;
        if magic != FBIN_MAGIC {
            return Err(StoreError::BadMagic(magic));
        }
        let mut word = [0u8; 2];
        read_exact(&mut r, &mut word, "header")?;
        let version = u16::from_le_bytes(word);
        if version == 0 || version > FBIN_VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        read_exact(&mut r, &mut word, "header")?;
        if u16::from_le_bytes(word) != 0 {
            return Err(StoreError::Corrupt {
                context: "header",
                message: format!("unknown header flags {:#06x}", u16::from_le_bytes(word)),
            });
        }
        let mut offset = HEADER_BYTES;
        let (tag, payload) = read_section(&mut r, &mut offset)?;
        if tag != SectionTag::Dict {
            return Err(StoreError::Corrupt {
                context: "dictionary",
                message: format!("expected the dictionary section first, found {tag:?}"),
            });
        }
        let (taxonomy, node_of) = decode_dict(&payload, policy)?;
        Ok(FbinReader {
            taxonomy,
            chunks: ChunkReader {
                r,
                node_of,
                state: ChunkState::Reading,
                txns_seen: 0,
                chunks_seen: 0,
                offset,
                salvage: salvage.then(SalvageReport::default),
            },
        })
    }

    /// The taxonomy reconstructed from the dictionary section.
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    /// Iterate over transaction chunks without materializing the database.
    /// Each item is one chunk's transactions as leaf node ids of
    /// [`FbinReader::taxonomy`] (per-transaction canonicalization — sorting,
    /// deduplication — is left to the consumer, e.g.
    /// [`TransactionDb::new`] or `MultiLevelViewBuilder`).
    pub fn chunks(&mut self) -> &mut ChunkReader<R> {
        &mut self.chunks
    }

    /// Split into the taxonomy and the chunk stream, for streaming consumers
    /// that need to own both.
    pub fn into_parts(self) -> (Taxonomy, ChunkReader<R>) {
        (self.taxonomy, self.chunks)
    }

    /// Full-load path: materialize the whole dataset. The result is
    /// bit-identical to parsing the equivalent text-format file.
    pub fn read_dataset(mut self) -> Result<Dataset, StoreError> {
        let mut rows: Vec<Vec<NodeId>> = Vec::new();
        for chunk in self.chunks() {
            rows.extend(chunk?);
        }
        let db = TransactionDb::new(rows)?;
        db.validate_against(&self.taxonomy)?;
        Ok(Dataset {
            taxonomy: self.taxonomy,
            db,
        })
    }
}

/// One chunk section a salvage read set aside instead of decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedChunk {
    /// 0-based index among the file's chunk sections (kept + quarantined,
    /// in stream order).
    pub index: u64,
    /// Byte offset of the section's tag byte in the stream.
    pub byte_offset: u64,
    /// Why the chunk was set aside (checksum mismatch, decode error, …).
    pub reason: String,
}

/// What a salvage read recovered and what it had to leave behind.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SalvageReport {
    /// Chunk sections set aside, in stream order.
    pub quarantined: Vec<QuarantinedChunk>,
    /// Chunk sections decoded successfully.
    pub chunks_kept: u64,
    /// Transactions decoded successfully.
    pub txns_kept: u64,
    /// Structural anomalies that ended or degraded the stream without
    /// pointing at one specific chunk (truncated tail, totals mismatch,
    /// trailing data, …).
    pub notes: Vec<String>,
}

impl SalvageReport {
    /// Did the read lose or distrust anything? `false` means the salvage
    /// read saw a fully intact file and decoded exactly what a strict read
    /// would have.
    pub fn is_degraded(&self) -> bool {
        !self.quarantined.is_empty() || !self.notes.is_empty()
    }

    /// One-line human-readable degradation summary.
    pub fn summary(&self) -> String {
        if !self.is_degraded() {
            return format!(
                "intact: {} chunks, {} transactions",
                self.chunks_kept, self.txns_kept
            );
        }
        let mut parts = vec![format!(
            "kept {} chunks / {} transactions",
            self.chunks_kept, self.txns_kept
        )];
        if !self.quarantined.is_empty() {
            parts.push(format!("quarantined {} chunks", self.quarantined.len()));
        }
        parts.extend(self.notes.iter().cloned());
        parts.join("; ")
    }
}

enum ChunkState {
    /// Expecting chunk or end sections.
    Reading,
    /// End section consumed and verified; the stream is exhausted.
    Done,
    /// An error was yielded; the stream stays terminated.
    Failed,
}

/// Streaming iterator over the transaction chunks of an FBIN file. Yields
/// `Err` once on the first structural problem, then terminates. The end
/// section's totals are verified before the iterator reports exhaustion, so
/// a truncated file can never silently look complete.
///
/// In salvage mode (see [`FbinReader::salvage`]) structural problems inside
/// chunk sections are quarantined into the [`SalvageReport`] instead, and
/// only real I/O errors or pre-chunk corruption still yield `Err`.
pub struct ChunkReader<R: Read> {
    r: R,
    /// Dictionary index → leaf node (deepest synthetic copy, matching how
    /// the text reader maps item names after rebalancing).
    node_of: Vec<NodeId>,
    state: ChunkState,
    txns_seen: u64,
    chunks_seen: u64,
    /// Byte offset of the next section's tag byte.
    offset: u64,
    /// `Some` iff this reader salvages; accumulates the degradation record.
    salvage: Option<SalvageReport>,
}

impl<R: Read> ChunkReader<R> {
    /// Transactions decoded so far.
    pub fn transactions_seen(&self) -> u64 {
        self.txns_seen
    }

    /// The salvage record so far (`None` unless the reader was opened via
    /// [`FbinReader::salvage`]). Complete once the iterator is drained.
    pub fn salvage_report(&self) -> Option<&SalvageReport> {
        self.salvage.as_ref()
    }

    /// Consume the reader and take the salvage record (`None` unless opened
    /// in salvage mode).
    pub fn into_salvage_report(self) -> Option<SalvageReport> {
        self.salvage
    }

    fn next_chunk(&mut self) -> Option<Result<Vec<Vec<NodeId>>, StoreError>> {
        match self.state {
            ChunkState::Reading => {}
            ChunkState::Done | ChunkState::Failed => return None,
        }
        match self.advance() {
            Ok(Some(rows)) => Some(Ok(rows)),
            Ok(None) => {
                self.state = ChunkState::Done;
                None
            }
            Err(e) => {
                self.state = ChunkState::Failed;
                Some(Err(e))
            }
        }
    }

    fn advance(&mut self) -> Result<Option<Vec<Vec<NodeId>>>, StoreError> {
        loop {
            let frame = match read_frame(&mut self.r, &mut self.offset) {
                Ok(f) => f,
                // Real I/O failures are never salvaged away.
                Err(e @ StoreError::Io(_)) => return Err(e),
                // A broken frame (truncation, bad tag, absurd length) cannot
                // be resynced past: salvage keeps what it has and notes why
                // the stream ended early.
                Err(e) => match &mut self.salvage {
                    Some(report) => {
                        report.notes.push(format!("stream ends early: {e}"));
                        return Ok(None);
                    }
                    None => return Err(e),
                },
            };
            if let Some(crc_err) = frame.crc_error {
                match (&mut self.salvage, frame.tag) {
                    (Some(report), SectionTag::Chunk) => {
                        let index = self.chunks_seen + report.quarantined.len() as u64;
                        report.quarantined.push(QuarantinedChunk {
                            index,
                            byte_offset: frame.start,
                            reason: crc_err.to_string(),
                        });
                        continue;
                    }
                    (Some(report), tag) => {
                        report
                            .notes
                            .push(format!("{} section failed its checksum", tag.name()));
                        return Ok(None);
                    }
                    (None, _) => return Err(crc_err),
                }
            }
            match frame.tag {
                SectionTag::Chunk => match decode_chunk(&frame.payload, &self.node_of) {
                    Ok(rows) => {
                        self.txns_seen += rows.len() as u64;
                        self.chunks_seen += 1;
                        if let Some(report) = &mut self.salvage {
                            report.chunks_kept = self.chunks_seen;
                            report.txns_kept = self.txns_seen;
                        }
                        return Ok(Some(rows));
                    }
                    Err(e) => match &mut self.salvage {
                        Some(report) => {
                            let index = self.chunks_seen + report.quarantined.len() as u64;
                            report.quarantined.push(QuarantinedChunk {
                                index,
                                byte_offset: frame.start,
                                reason: e.to_string(),
                            });
                            continue;
                        }
                        None => return Err(e),
                    },
                },
                SectionTag::End => return self.finish_end(&frame.payload),
                SectionTag::Dict => match &mut self.salvage {
                    Some(report) => {
                        report
                            .notes
                            .push("duplicate dictionary section skipped".to_string());
                        continue;
                    }
                    None => {
                        return Err(StoreError::Corrupt {
                            context: "chunk stream",
                            message: "duplicate dictionary section".to_string(),
                        })
                    }
                },
            }
        }
    }

    /// Verify the end-section totals and the absence of trailing data —
    /// fatally in strict mode, as report notes in salvage mode (where a
    /// totals shortfall explained by quarantined chunks is expected).
    fn finish_end(&mut self, payload: &[u8]) -> Result<Option<Vec<Vec<NodeId>>>, StoreError> {
        let mut c = PayloadCursor::new(payload, "end section");
        let parsed = c.read_varint().and_then(|total_txns| {
            let total_chunks = c.read_varint()?;
            if !c.is_exhausted() {
                return Err(StoreError::Corrupt {
                    context: "end section",
                    message: format!("{} trailing bytes", c.remaining()),
                });
            }
            Ok((total_txns, total_chunks))
        });
        let (total_txns, total_chunks) = match parsed {
            Ok(totals) => totals,
            Err(e) => match &mut self.salvage {
                Some(report) => {
                    report.notes.push(format!("end section unreadable: {e}"));
                    return Ok(None);
                }
                None => return Err(e),
            },
        };
        if total_txns != self.txns_seen || total_chunks != self.chunks_seen {
            let quarantined = self
                .salvage
                .as_ref()
                .map_or(0, |r| r.quarantined.len() as u64);
            match &mut self.salvage {
                Some(report) => {
                    if total_chunks == self.chunks_seen + quarantined
                        && total_txns >= self.txns_seen
                    {
                        report.notes.push(format!(
                            "{} of {total_txns} transactions lost to quarantined chunks",
                            total_txns - self.txns_seen
                        ));
                    } else {
                        report.notes.push(format!(
                            "end section totals mismatch: file claims {total_txns} transactions \
                             in {total_chunks} chunks, decoded {} in {} \
                             (plus {quarantined} quarantined)",
                            self.txns_seen, self.chunks_seen
                        ));
                    }
                }
                None => {
                    return Err(StoreError::Corrupt {
                        context: "end section",
                        message: format!(
                            "totals mismatch: file claims {total_txns} transactions in \
                             {total_chunks} chunks, decoded {} in {}",
                            self.txns_seen, self.chunks_seen
                        ),
                    })
                }
            }
        }
        let mut probe = [0u8; 1];
        if self.r.read(&mut probe)? != 0 {
            match &mut self.salvage {
                Some(report) => {
                    report
                        .notes
                        .push("trailing data after the end section".to_string());
                }
                None => {
                    return Err(StoreError::Corrupt {
                        context: "end section",
                        message: "trailing data after the end section".to_string(),
                    })
                }
            }
        }
        Ok(None)
    }
}

impl<R: Read> Iterator for ChunkReader<R> {
    type Item = Result<Vec<Vec<NodeId>>, StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_chunk()
    }
}

/// `read_exact` with a typed truncation error carrying `context`.
fn read_exact<R: Read>(r: &mut R, buf: &mut [u8], context: &'static str) -> Result<(), StoreError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Truncated { context }
        } else {
            StoreError::Io(e)
        }
    })
}

/// One framed section read off the stream, CRC verdict included. `start` is
/// the byte offset of the section's tag byte; `crc_error` is `Some` when
/// the payload does not match its stored checksum — salvage mode can then
/// skip the section, because the frame itself was intact and the stream is
/// still aligned on the next section.
struct Frame {
    tag: SectionTag,
    payload: Vec<u8>,
    crc_error: Option<StoreError>,
    start: u64,
}

/// Read one framed section: tag, length, payload, CRC-32. Advances
/// `offset` past the section. This is the `store.read.section` fault site.
fn read_frame<R: Read>(r: &mut R, offset: &mut u64) -> Result<Frame, StoreError> {
    let fault = flipper_guard::fault::injected(SITE_STORE_READ);
    match fault {
        // The storage layer must never panic, not even under injection:
        // unhonoured kinds degrade to the synthetic I/O error.
        Some(Fault::Io) | Some(Fault::Panic) => {
            return Err(StoreError::Io(std::io::Error::other(
                "injected fault: read i/o error",
            )))
        }
        Some(Fault::Latency { spins }) => flipper_guard::fault::spin(spins),
        _ => {}
    }
    let start = *offset;
    let mut tag_byte = [0u8; 1];
    read_exact(r, &mut tag_byte, "section frame")?;
    let tag = SectionTag::from_byte(tag_byte[0]).ok_or_else(|| StoreError::Corrupt {
        context: "section frame",
        message: format!("unknown section tag {:#04x}", tag_byte[0]),
    })?;
    let mut len_bytes = [0u8; 4];
    read_exact(r, &mut len_bytes, tag.name())?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_SECTION_BYTES {
        return Err(StoreError::Corrupt {
            context: tag.name(),
            message: format!("section length {len} exceeds the {MAX_SECTION_BYTES}-byte cap"),
        });
    }
    let mut payload = vec![0u8; len];
    read_exact(r, &mut payload, tag.name())?;
    // Injected payload corruption happens after the bytes left the stream,
    // so framing stays aligned and the CRC check below must catch it.
    match fault {
        Some(Fault::BitFlip { byte, mask }) if !payload.is_empty() => {
            let at = byte % payload.len();
            payload[at] ^= mask;
        }
        Some(Fault::Truncate { keep }) if !payload.is_empty() => {
            payload.truncate(keep % payload.len());
        }
        _ => {}
    }
    let mut crc_bytes = [0u8; 4];
    read_exact(r, &mut crc_bytes, tag.name())?;
    let expected = u32::from_le_bytes(crc_bytes);
    let actual = crc32(&payload);
    *offset = start + 1 + 4 + len as u64 + 4;
    let crc_error = (expected != actual).then(|| StoreError::ChecksumMismatch {
        section: tag.name(),
        expected,
        actual,
    });
    Ok(Frame {
        tag,
        payload,
        crc_error,
        start,
    })
}

/// Strict section read: a checksum mismatch is an error. Salvage callers
/// use [`read_frame`] directly and decide per tag.
fn read_section<R: Read>(r: &mut R, offset: &mut u64) -> Result<(SectionTag, Vec<u8>), StoreError> {
    let frame = read_frame(r, offset)?;
    match frame.crc_error {
        Some(e) => Err(e),
        None => Ok((frame.tag, frame.payload)),
    }
}

/// Decode the dictionary payload and precompute the dictionary-index →
/// leaf-node map.
///
/// Dictionaries are written level-ordered, so the hot path is
/// [`Taxonomy::from_balanced_level_order`] — a single arena-building pass
/// with no rebalancing machinery, under which entry `i` is node `i + 1` and
/// the node map is the identity. When that fails (an unbalanced dictionary
/// that genuinely needs `policy`, e.g. leaf-copy padding), fall back to
/// replaying the entries through [`TaxonomyBuilder`] — the exact code path
/// the text reader uses, entry for entry, which is what keeps the two
/// formats bit-identical.
fn decode_dict(
    payload: &[u8],
    policy: RebalancePolicy,
) -> Result<(Taxonomy, Vec<NodeId>), StoreError> {
    let mut c = PayloadCursor::new(payload, "dictionary");
    let count = c.read_len()?;
    // Names borrow the payload — no per-entry allocation on this pass.
    let mut entries: Vec<(&str, u32)> = Vec::with_capacity(count.min(payload.len()));
    for i in 0..count {
        let name_len = c.read_len()?;
        let name =
            std::str::from_utf8(c.read_bytes(name_len)?).map_err(|_| StoreError::Corrupt {
                context: "dictionary",
                message: format!("entry {i} name is not valid UTF-8"),
            })?;
        let parent_code = c.read_len()?;
        if parent_code > i {
            return Err(StoreError::Corrupt {
                context: "dictionary",
                message: format!(
                    "entry {i} references parent {}, which is not an earlier entry",
                    parent_code - 1
                ),
            });
        }
        // The parent code is exactly the parent's node id under level-order
        // reconstruction (0 = root, else 1 + parent entry index).
        entries.push((name, parent_code as u32));
    }
    if !c.is_exhausted() {
        return Err(StoreError::Corrupt {
            context: "dictionary",
            message: format!("{} trailing bytes", c.remaining()),
        });
    }
    if let Ok(taxonomy) = Taxonomy::from_balanced_level_order(&entries) {
        // Balanced: no synthetic copies exist, so entry i maps to node i+1.
        let node_of = (1..=entries.len()).map(NodeId::from_index).collect();
        return Ok((taxonomy, node_of));
    }
    let mut builder = TaxonomyBuilder::new();
    for (i, (name, parent)) in entries.iter().enumerate() {
        if *parent == 0 {
            builder.add_root_child(name)?;
        } else {
            let parent_idx = *parent as usize - 1;
            debug_assert!(parent_idx < i);
            builder.add_child(name, entries[parent_idx].0)?;
        }
    }
    let taxonomy = builder.build(policy)?;
    let mut node_of = Vec::with_capacity(entries.len());
    for (name, _) in &entries {
        let node = taxonomy
            .node_by_name(name)
            .ok_or_else(|| StoreError::Corrupt {
                context: "dictionary",
                message: format!("entry {name:?} vanished during rebalancing"),
            })?;
        node_of.push(deepest_copy(&taxonomy, node));
    }
    Ok((taxonomy, node_of))
}

/// Decode one chunk payload into transactions of leaf node ids.
fn decode_chunk(payload: &[u8], node_of: &[NodeId]) -> Result<Vec<Vec<NodeId>>, StoreError> {
    let mut c = PayloadCursor::new(payload, "chunk");
    let txn_count = c.read_len()?;
    // A transaction takes at least two payload bytes, so this reserve is
    // bounded by the (already checksummed) payload size even if corrupt.
    let mut rows: Vec<Vec<NodeId>> = Vec::with_capacity(txn_count.min(payload.len()));
    for t in 0..txn_count {
        let width = c.read_len()?;
        if width == 0 {
            return Err(StoreError::Corrupt {
                context: "chunk",
                message: format!("transaction {t} is empty"),
            });
        }
        let mut row = Vec::with_capacity(width.min(c.remaining() + 1));
        let mut id = c.read_varint()?;
        row.push(map_item(id, node_of)?);
        for _ in 1..width {
            let gap = c.read_varint()?;
            if gap == 0 {
                return Err(StoreError::Corrupt {
                    context: "chunk",
                    message: format!("transaction {t} has a non-increasing item id"),
                });
            }
            id = id.checked_add(gap).ok_or(StoreError::Corrupt {
                context: "chunk",
                message: "item id overflows u64".to_string(),
            })?;
            row.push(map_item(id, node_of)?);
        }
        rows.push(row);
    }
    if !c.is_exhausted() {
        return Err(StoreError::Corrupt {
            context: "chunk",
            message: format!("{} trailing bytes", c.remaining()),
        });
    }
    Ok(rows)
}

fn map_item(id: u64, node_of: &[NodeId]) -> Result<NodeId, StoreError> {
    usize::try_from(id)
        .ok()
        .and_then(|i| node_of.get(i).copied())
        .ok_or_else(|| StoreError::Corrupt {
            context: "chunk",
            message: format!(
                "item id {id} out of range for a {}-entry dictionary",
                node_of.len()
            ),
        })
}

/// Read a whole FBIN dataset (the full-load path) with the default
/// [`RebalancePolicy::LeafCopy`].
pub fn read_fbin<R: Read>(r: R) -> Result<Dataset, StoreError> {
    FbinReader::new(r)?.read_dataset()
}

/// Read a whole FBIN dataset with an explicit rebalancing policy.
pub fn read_fbin_with_policy<R: Read>(
    r: R,
    policy: RebalancePolicy,
) -> Result<Dataset, StoreError> {
    FbinReader::with_policy(r, policy)?.read_dataset()
}
