//! LEB128 variable-length integers and a bounds-checked payload cursor.
//!
//! FBIN encodes every count, dictionary index and item-id delta as an
//! unsigned LEB128 varint: 7 value bits per byte, high bit = continuation.
//! Small values (the overwhelmingly common case for delta-encoded sorted
//! item ids) take one byte.

use crate::error::StoreError;

/// Append `v` to `buf` as an unsigned LEB128 varint (1–10 bytes).
pub fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// A cursor over one section payload, with typed truncation/corruption
/// errors instead of panics.
pub struct PayloadCursor<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Section name, used as error context.
    context: &'static str,
}

impl<'a> PayloadCursor<'a> {
    /// Cursor over `buf`, reporting errors against `context`.
    pub fn new(buf: &'a [u8], context: &'static str) -> Self {
        PayloadCursor {
            buf,
            pos: 0,
            context,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Read one LEB128 varint.
    pub fn read_varint(&mut self) -> Result<u64, StoreError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let Some(&byte) = self.buf.get(self.pos) else {
                return Err(StoreError::Truncated {
                    context: self.context,
                });
            };
            self.pos += 1;
            // 10 bytes (shift 63) is the maximum for a u64; a continuation
            // past that or overflowing payload bits is corruption, not EOF.
            if shift == 63 && byte > 1 {
                return Err(StoreError::Corrupt {
                    context: self.context,
                    message: "varint overflows u64".to_string(),
                });
            }
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(StoreError::Corrupt {
                    context: self.context,
                    message: "varint longer than 10 bytes".to_string(),
                });
            }
        }
    }

    /// Read a varint and narrow it to `usize`.
    pub fn read_len(&mut self) -> Result<usize, StoreError> {
        let v = self.read_varint()?;
        usize::try_from(v).map_err(|_| StoreError::Corrupt {
            context: self.context,
            message: format!("length {v} exceeds the address space"),
        })
    }

    /// Read exactly `n` raw bytes.
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Truncated {
                context: self.context,
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_across_magnitudes() {
        let values = [
            0u64,
            1,
            127,
            128,
            255,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut buf = Vec::new();
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut c = PayloadCursor::new(&buf, "test");
        for &v in &values {
            assert_eq!(c.read_varint().unwrap(), v);
        }
        assert!(c.is_exhausted());
    }

    #[test]
    fn single_byte_for_small_values() {
        for v in 0..128u64 {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert_eq!(buf, vec![v as u8]);
        }
    }

    #[test]
    fn truncated_varint_is_typed() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 1_000_000);
        buf.pop();
        let mut c = PayloadCursor::new(&buf, "test");
        assert!(matches!(
            c.read_varint().unwrap_err(),
            StoreError::Truncated { .. }
        ));
    }

    #[test]
    fn overlong_varint_is_corrupt() {
        // 11 continuation bytes can never be a valid u64.
        let buf = [0x80u8; 11];
        let mut c = PayloadCursor::new(&buf, "test");
        assert!(matches!(
            c.read_varint().unwrap_err(),
            StoreError::Corrupt { .. }
        ));
        // 10 bytes whose top byte carries bits beyond 2^64.
        let buf = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F];
        let mut c = PayloadCursor::new(&buf, "test");
        assert!(matches!(
            c.read_varint().unwrap_err(),
            StoreError::Corrupt { .. }
        ));
    }

    #[test]
    fn read_bytes_bounds_checked() {
        let mut c = PayloadCursor::new(b"abc", "test");
        assert_eq!(c.read_bytes(2).unwrap(), b"ab");
        assert!(matches!(
            c.read_bytes(2).unwrap_err(),
            StoreError::Truncated { .. }
        ));
    }
}
