//! Typed errors for the FBIN storage format.
//!
//! Every structural failure mode — truncation, bit rot, format confusion —
//! maps to a distinct variant so callers (and tests) can distinguish "file
//! cut short" from "file altered" from "not an FBIN file at all" without
//! string matching.

use flipper_data::DataError;
use flipper_taxonomy::{NodeId, TaxonomyError};

/// Errors raised while reading or writing FBIN files.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with the `FBIN` magic bytes.
    BadMagic([u8; 4]),
    /// The file's format version is newer than this reader understands.
    UnsupportedVersion(u16),
    /// The file ended in the middle of a structure (a cut-short download or
    /// an interrupted writer that never reached [`crate::FbinWriter::finish`]).
    Truncated {
        /// What was being read when the data ran out.
        context: &'static str,
    },
    /// A section payload does not match its stored CRC-32.
    ChecksumMismatch {
        /// Which section failed.
        section: &'static str,
        /// Checksum recorded in the file.
        expected: u32,
        /// Checksum of the bytes actually read.
        actual: u32,
    },
    /// Structurally invalid content (bad varint, out-of-range dictionary
    /// index, sections out of order, trailing garbage, …).
    Corrupt {
        /// Where in the file the problem sits.
        context: &'static str,
        /// What went wrong.
        message: String,
    },
    /// A transaction handed to the writer references a node the dictionary
    /// cannot express (out of range, or the taxonomy root).
    UnknownItem {
        /// Zero-based index of the offending transaction.
        txn: u64,
        /// The offending node.
        item: NodeId,
    },
    /// Rebuilding the taxonomy from the dictionary failed.
    Taxonomy(TaxonomyError),
    /// Rebuilding the transaction database failed.
    Data(DataError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadMagic(got) => write!(
                f,
                "not an FBIN file: expected magic {:?}, found {:?}",
                crate::FBIN_MAGIC,
                got
            ),
            StoreError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported FBIN version {v} (this reader understands up to {})",
                    crate::FBIN_VERSION
                )
            }
            StoreError::Truncated { context } => {
                write!(f, "truncated FBIN file: unexpected end of data in {context}")
            }
            StoreError::ChecksumMismatch {
                section,
                expected,
                actual,
            } => write!(
                f,
                "corrupt FBIN {section} section: checksum {actual:#010x} != recorded {expected:#010x}"
            ),
            StoreError::Corrupt { context, message } => {
                write!(f, "corrupt FBIN file ({context}): {message}")
            }
            StoreError::UnknownItem { txn, item } => {
                write!(f, "transaction {txn} contains item {item} not expressible in the dictionary")
            }
            StoreError::Taxonomy(e) => write!(f, "taxonomy error: {e}"),
            StoreError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Truncated {
                context: "section frame",
            }
        } else {
            StoreError::Io(e)
        }
    }
}

impl From<TaxonomyError> for StoreError {
    fn from(e: TaxonomyError) -> Self {
        StoreError::Taxonomy(e)
    }
}

impl From<DataError> for StoreError {
    fn from(e: DataError) -> Self {
        StoreError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(StoreError::BadMagic(*b"abcd").to_string().contains("FBIN"));
        assert!(StoreError::UnsupportedVersion(99)
            .to_string()
            .contains("99"));
        assert!(StoreError::Truncated { context: "dict" }
            .to_string()
            .contains("dict"));
        let e = StoreError::ChecksumMismatch {
            section: "chunk",
            expected: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("chunk"));
        let e = StoreError::Corrupt {
            context: "header",
            message: "bad".into(),
        };
        assert!(e.to_string().contains("header"));
        let io: StoreError = std::io::Error::other("disk").into();
        assert!(io.to_string().contains("disk"));
    }

    #[test]
    fn eof_io_errors_become_truncated() {
        let eof = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        assert!(matches!(
            StoreError::from(eof),
            StoreError::Truncated { .. }
        ));
    }
}
