//! # flipper-store
//!
//! **FBIN**, the chunked columnar binary storage format for flipper datasets,
//! plus streaming ingestion into the mining stack.
//!
//! The text interchange format (`flipper_data::format`) is convenient but
//! slow at scale: every load re-parses names line by line and the whole file
//! must sit in memory. FBIN stores the same information — a taxonomy and its
//! transactions — dictionary-encoded and chunked:
//!
//! ```text
//! file   := magic version flags section*
//! magic  := "FBIN"                     (4 bytes)
//! version:= u16 LE (currently 1)       flags := u16 LE (must be 0)
//!
//! section        := tag(u8) payload_len(u32 LE) payload crc32(u32 LE)
//! tag            := 0x01 dictionary | 0x02 chunk | 0x03 end
//! sections order := dictionary, chunk*, end      (nothing after end)
//!
//! dictionary payload := varint entry_count, then per entry (taxonomy nodes
//!     in id order, synthetic rebalancing copies omitted):
//!     varint name_len, name bytes (UTF-8),
//!     varint parent_code           (0 = level-1 category,
//!                                   else 1 + parent's entry index)
//! chunk payload := varint txn_count, then per transaction:
//!     varint item_count,
//!     varint first item id, then item_count-1 varint gaps (sorted strictly
//!     increasing dictionary indices, delta-encoded)
//! end payload   := varint total_txn_count, varint chunk_count
//! ```
//!
//! All varints are unsigned LEB128. Every section payload is guarded by a
//! CRC-32 (IEEE), and the end section's totals let the reader distinguish a
//! complete file from one cut short — truncation and bit rot both surface as
//! typed [`StoreError`]s, never as garbage data.
//!
//! Two read paths:
//!
//! * [`read_fbin`] / [`FbinReader::read_dataset`] — materialize a
//!   [`Dataset`], **bit-identical** to parsing the equivalent text file
//!   (the dictionary carries exactly the information of the text
//!   `[taxonomy]` section, in the same order, and is replayed through the
//!   same [`TaxonomyBuilder`](flipper_taxonomy::TaxonomyBuilder) path);
//! * [`FbinReader::chunks`] — iterate transaction chunks with bounded
//!   memory; [`stream_view`] pipes them straight into
//!   [`MultiLevelViewBuilder`], whose per-chunk projection is sharded over
//!   `flipper_data::exec` workers, so mining can start from a file without
//!   the raw database ever existing in memory.
//!
//! [`FbinWriter`] is the streaming producer: it accepts transactions
//! incrementally and flushes a chunk section whenever [`TARGET_CHUNK_BYTES`]
//! of encoded transactions accumulate.
//!
//! A third read path, [`FbinReader::salvage`] / [`salvage_view`], trades
//! completeness for availability: damaged chunk sections are quarantined
//! into a [`SalvageReport`] and mining proceeds on what survived — always
//! flagged, never silent. Section reads and writes are also
//! `flipper-guard` fault-injection sites, so the whole failure surface is
//! exercised deterministically in tests.

mod crc32;
mod error;
mod reader;
mod varint;
mod writer;

pub use error::StoreError;
pub use reader::{
    read_fbin, read_fbin_with_policy, ChunkReader, FbinReader, QuarantinedChunk, SalvageReport,
};
pub use writer::{write_fbin, FbinWriter, TARGET_CHUNK_BYTES};

use flipper_data::format::Dataset;
use flipper_data::{MultiLevelView, MultiLevelViewBuilder};
use flipper_taxonomy::Taxonomy;
use std::io::Read;

/// The four magic bytes every FBIN file starts with.
pub const FBIN_MAGIC: [u8; 4] = *b"FBIN";

/// Current format version, written to (and accepted from) the header.
pub const FBIN_VERSION: u16 = 1;

/// Section tags of the FBIN framing layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum SectionTag {
    /// String dictionary + taxonomy structure.
    Dict = 0x01,
    /// A batch of delta-encoded transactions.
    Chunk = 0x02,
    /// Totals trailer; must be the last section.
    End = 0x03,
}

impl SectionTag {
    pub(crate) fn from_byte(b: u8) -> Option<Self> {
        match b {
            0x01 => Some(SectionTag::Dict),
            0x02 => Some(SectionTag::Chunk),
            0x03 => Some(SectionTag::End),
            _ => None,
        }
    }

    pub(crate) fn name(self) -> &'static str {
        match self {
            SectionTag::Dict => "dictionary",
            SectionTag::Chunk => "chunk",
            SectionTag::End => "end",
        }
    }
}

/// Whether `prefix` (the first bytes of a file) identifies an FBIN stream.
/// Used by CLIs to auto-detect the input format by magic bytes.
pub fn is_fbin(prefix: &[u8]) -> bool {
    prefix.len() >= FBIN_MAGIC.len() && prefix[..FBIN_MAGIC.len()] == FBIN_MAGIC
}

/// Streamed ingestion: consume every chunk of `reader` into a mining-ready
/// [`MultiLevelView`] without ever materializing the raw transaction
/// database. Each chunk's projection is sharded over `threads` scoped
/// workers (`0` = auto-detect, `1` = sequential); the resulting view — and
/// therefore any `mine_with_view`-style run over it — is bit-identical to
/// building the view from a fully loaded database, at every thread count.
pub fn stream_view<R: Read>(
    reader: FbinReader<R>,
    threads: usize,
) -> Result<(Taxonomy, MultiLevelView), StoreError> {
    let (taxonomy, mut chunks) = reader.into_parts();
    let build_span = flipper_obs::span("view.build");
    let mut builder = MultiLevelViewBuilder::new(&taxonomy, threads);
    for chunk in chunks.by_ref() {
        let span = flipper_obs::span("store.chunk");
        let chunk = chunk?;
        builder.push_chunk(&chunk)?;
        drop(span.arg("rows", chunk.len() as u64));
    }
    let view = builder.finish()?;
    drop(build_span.arg("rows", chunks.transactions_seen()));
    Ok((taxonomy, view))
}

/// Salvage ingestion: like [`stream_view`], but opened via
/// [`FbinReader::salvage`] — chunk sections that fail their checksum or
/// decode are quarantined instead of failing the read, and a truncated tail
/// ends the stream gracefully. Returns the [`SalvageReport`] alongside the
/// view; callers **must** surface [`SalvageReport::is_degraded`], because a
/// degraded view mines only what survived. On an intact file the view (and
/// any mining result over it) is byte-identical to [`stream_view`]'s.
pub fn salvage_view<R: Read>(
    r: R,
    threads: usize,
) -> Result<(Taxonomy, MultiLevelView, SalvageReport), StoreError> {
    let reader = FbinReader::salvage(r)?;
    let (taxonomy, mut chunks) = reader.into_parts();
    let build_span = flipper_obs::span("view.build");
    let mut builder = MultiLevelViewBuilder::new(&taxonomy, threads);
    for chunk in chunks.by_ref() {
        let span = flipper_obs::span("store.chunk");
        let chunk = chunk?;
        builder.push_chunk(&chunk)?;
        drop(span.arg("rows", chunk.len() as u64));
    }
    let view = builder.finish()?;
    drop(build_span.arg("rows", chunks.transactions_seen()));
    let report = chunks.into_salvage_report().unwrap_or_default();
    Ok((taxonomy, view, report))
}

/// Serialize a dataset to FBIN bytes in memory. Convenience for tests and
/// the CLI `convert` subcommand; streams through [`write_fbin`].
pub fn to_fbin_bytes(ds: &Dataset) -> Result<Vec<u8>, StoreError> {
    let mut out = Vec::new();
    write_fbin(&mut out, ds)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flipper_data::format::{read_dataset, write_dataset};
    use flipper_data::TransactionDb;
    use flipper_taxonomy::{NodeId, RebalancePolicy};
    use std::io::Cursor;

    fn toy_dataset() -> Dataset {
        let tax = Taxonomy::from_edges(
            [
                ("drinks", ""),
                ("food", ""),
                ("beer", "drinks"),
                ("soda", "drinks"),
                ("bread", "food"),
                ("cheese", "food"),
            ],
            RebalancePolicy::RequireBalanced,
        )
        .unwrap();
        let g = |s: &str| tax.node_by_name(s).unwrap();
        let db = TransactionDb::new(vec![
            vec![g("beer"), g("bread")],
            vec![g("beer"), g("cheese")],
            vec![g("soda"), g("bread"), g("cheese")],
        ])
        .unwrap();
        Dataset { taxonomy: tax, db }
    }

    #[test]
    fn roundtrip_toy() {
        let ds = toy_dataset();
        let bytes = to_fbin_bytes(&ds).unwrap();
        assert!(is_fbin(&bytes));
        let back = read_fbin(&bytes[..]).unwrap();
        assert_eq!(ds.taxonomy, back.taxonomy);
        assert_eq!(ds.db, back.db);
    }

    #[test]
    fn matches_text_path_exactly() {
        let ds = toy_dataset();
        let mut text = Vec::new();
        write_dataset(&mut text, &ds).unwrap();
        let via_text = read_dataset(Cursor::new(&text[..]), RebalancePolicy::LeafCopy).unwrap();
        let via_fbin = read_fbin(&to_fbin_bytes(&ds).unwrap()[..]).unwrap();
        assert_eq!(via_text.taxonomy, via_fbin.taxonomy);
        assert_eq!(via_text.db, via_fbin.db);
    }

    #[test]
    fn unbalanced_taxonomy_roundtrips_through_padding() {
        // A shallow leaf gets a synthetic copy under LeafCopy; the dict
        // stores the original name and the reader re-pads and re-maps.
        let tax = Taxonomy::from_edges(
            [("drinks", ""), ("snacks", ""), ("beer", "drinks")],
            RebalancePolicy::LeafCopy,
        )
        .unwrap();
        let beer = tax.node_by_name("beer").unwrap();
        let padded = tax.node_by_name("snacks#1").unwrap();
        assert!(tax.is_synthetic(padded));
        let db = TransactionDb::new(vec![vec![beer, padded]]).unwrap();
        let ds = Dataset { taxonomy: tax, db };
        let back = read_fbin(&to_fbin_bytes(&ds).unwrap()[..]).unwrap();
        assert_eq!(ds.taxonomy, back.taxonomy);
        assert_eq!(ds.db, back.db);
    }

    #[test]
    fn small_chunks_split_and_recombine() {
        let ds = toy_dataset();
        let mut out = Vec::new();
        // 1-byte target: every transaction flushes its own chunk.
        let mut w = FbinWriter::with_chunk_size(&mut out, &ds.taxonomy, 1).unwrap();
        for txn in ds.db.iter() {
            w.write_transaction(txn).unwrap();
        }
        assert_eq!(w.transactions_written(), 3);
        w.finish().unwrap();
        let mut reader = FbinReader::new(&out[..]).unwrap();
        let chunks: Vec<_> = reader.chunks().collect::<Result<Vec<_>, _>>().unwrap();
        assert_eq!(chunks.len(), 3, "one chunk per transaction");
        assert_eq!(reader.chunks().transactions_seen(), 3);
        let back = FbinReader::new(&out[..]).unwrap().read_dataset().unwrap();
        assert_eq!(ds.db, back.db);
    }

    #[test]
    fn writer_rejects_bad_transactions() {
        let ds = toy_dataset();
        let mut w = FbinWriter::new(Vec::new(), &ds.taxonomy).unwrap();
        assert!(matches!(
            w.write_transaction(&[]).unwrap_err(),
            StoreError::Data(flipper_data::DataError::EmptyTransaction { .. })
        ));
        let drinks = ds.taxonomy.node_by_name("drinks").unwrap();
        assert!(matches!(
            w.write_transaction(&[drinks]).unwrap_err(),
            StoreError::Data(flipper_data::DataError::NonLeafItem { .. })
        ));
        assert!(matches!(
            w.write_transaction(&[NodeId::from_index(999)]).unwrap_err(),
            StoreError::UnknownItem { .. }
        ));
        assert!(matches!(
            w.write_transaction(&[NodeId::ROOT]).unwrap_err(),
            StoreError::UnknownItem { .. }
        ));
    }

    #[test]
    fn duplicate_items_are_deduplicated() {
        let ds = toy_dataset();
        let beer = ds.taxonomy.node_by_name("beer").unwrap();
        let bread = ds.taxonomy.node_by_name("bread").unwrap();
        let mut w = FbinWriter::new(Vec::new(), &ds.taxonomy).unwrap();
        w.write_transaction(&[bread, beer, bread, beer]).unwrap();
        let out = w.finish().unwrap();
        let back = read_fbin(&out[..]).unwrap();
        assert_eq!(back.db.transaction(0).len(), 2);
    }

    #[test]
    fn empty_database_is_rejected_on_read() {
        let ds = toy_dataset();
        let w = FbinWriter::new(Vec::new(), &ds.taxonomy).unwrap();
        let out = w.finish().unwrap();
        assert!(matches!(
            read_fbin(&out[..]).unwrap_err(),
            StoreError::Data(flipper_data::DataError::EmptyDatabase)
        ));
    }

    #[test]
    fn bad_magic_is_typed() {
        let err = read_fbin(&b"NOPE"[..]).unwrap_err();
        assert!(matches!(err, StoreError::BadMagic(m) if &m == b"NOPE"));
        assert!(!is_fbin(b"NO"));
        assert!(!is_fbin(b""));
    }

    #[test]
    fn future_version_is_rejected() {
        let ds = toy_dataset();
        let mut bytes = to_fbin_bytes(&ds).unwrap();
        bytes[4] = 0xFF; // version low byte
        assert!(matches!(
            read_fbin(&bytes[..]).unwrap_err(),
            StoreError::UnsupportedVersion(_)
        ));
        bytes[4] = 0; // version 0 is also invalid
        assert!(matches!(
            read_fbin(&bytes[..]).unwrap_err(),
            StoreError::UnsupportedVersion(0)
        ));
    }

    #[test]
    fn nonzero_flags_are_rejected() {
        let ds = toy_dataset();
        let mut bytes = to_fbin_bytes(&ds).unwrap();
        bytes[6] = 1;
        assert!(matches!(
            read_fbin(&bytes[..]).unwrap_err(),
            StoreError::Corrupt {
                context: "header",
                ..
            }
        ));
    }

    #[test]
    fn every_truncation_fails_typed_never_panics() {
        let ds = toy_dataset();
        let bytes = to_fbin_bytes(&ds).unwrap();
        for cut in 0..bytes.len() {
            let err = read_fbin(&bytes[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes must not parse");
        }
    }

    #[test]
    fn flipped_payload_byte_fails_checksum() {
        let ds = toy_dataset();
        let bytes = to_fbin_bytes(&ds).unwrap();
        // Flip one byte inside the dictionary payload (header is 8 bytes,
        // section frame is 5, so offset 14 sits inside the payload).
        let mut corrupt = bytes.clone();
        corrupt[14] ^= 0x40;
        assert!(matches!(
            read_fbin(&corrupt[..]).unwrap_err(),
            StoreError::ChecksumMismatch { .. }
        ));
        // Any flipped bit anywhere in the file must fail one way or another
        // (checksum, frame structure, or totals) — never parse silently.
        for i in 8..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x10;
            assert!(read_fbin(&corrupt[..]).is_err(), "flip at byte {i}");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let ds = toy_dataset();
        let mut bytes = to_fbin_bytes(&ds).unwrap();
        bytes.push(0xAA);
        assert!(matches!(
            read_fbin(&bytes[..]).unwrap_err(),
            StoreError::Corrupt {
                context: "end section",
                ..
            }
        ));
    }

    /// `(tag, start, end)` byte spans of every section in an FBIN file,
    /// walked off the frame headers. Test-side ground truth for picking
    /// corruption targets.
    fn section_spans(bytes: &[u8]) -> Vec<(u8, usize, usize)> {
        let mut spans = Vec::new();
        let mut i = 8; // header
        while i < bytes.len() {
            let tag = bytes[i];
            let len = u32::from_le_bytes(bytes[i + 1..i + 5].try_into().unwrap()) as usize;
            let end = i + 5 + len + 4;
            spans.push((tag, i, end));
            i = end;
        }
        spans
    }

    /// A 3-transaction file written with a 1-byte chunk target, so every
    /// transaction lands in its own chunk section.
    fn three_chunk_file() -> (Dataset, Vec<u8>) {
        let ds = toy_dataset();
        let mut out = Vec::new();
        let mut w = FbinWriter::with_chunk_size(&mut out, &ds.taxonomy, 1).unwrap();
        for txn in ds.db.iter() {
            w.write_transaction(txn).unwrap();
        }
        w.finish().unwrap();
        (ds, out)
    }

    #[test]
    fn salvage_on_intact_file_matches_strict_read() {
        let (ds, bytes) = three_chunk_file();
        let mut reader = FbinReader::salvage(&bytes[..]).unwrap();
        let rows: Vec<_> = reader
            .chunks()
            .collect::<Result<Vec<_>, _>>()
            .unwrap()
            .into_iter()
            .flatten()
            .collect();
        let report = reader.into_parts().1.into_salvage_report().unwrap();
        assert!(!report.is_degraded(), "intact file: {}", report.summary());
        assert_eq!(report.chunks_kept, 3);
        assert_eq!(report.txns_kept, 3);
        assert_eq!(rows.len(), ds.db.len());
        assert!(report.summary().starts_with("intact"));
    }

    #[test]
    fn salvage_quarantines_exactly_the_damaged_chunk() {
        let (ds, bytes) = three_chunk_file();
        let chunks: Vec<_> = section_spans(&bytes)
            .into_iter()
            .filter(|(tag, _, _)| *tag == 0x02)
            .collect();
        assert_eq!(chunks.len(), 3);
        // Corrupt the middle chunk's payload (skip the 5-byte frame head).
        let (_, start, _) = chunks[1];
        let mut corrupt = bytes.clone();
        corrupt[start + 5] ^= 0x40;
        // Strict mode still fails typed.
        assert!(matches!(
            read_fbin(&corrupt[..]).unwrap_err(),
            StoreError::ChecksumMismatch {
                section: "chunk",
                ..
            }
        ));
        // Salvage keeps chunks 0 and 2 and quarantines exactly chunk 1.
        let mut reader = FbinReader::salvage(&corrupt[..]).unwrap();
        let rows: Vec<_> = reader
            .chunks()
            .collect::<Result<Vec<_>, _>>()
            .unwrap()
            .into_iter()
            .flatten()
            .collect();
        let report = reader.into_parts().1.into_salvage_report().unwrap();
        assert!(report.is_degraded());
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].index, 1);
        assert_eq!(report.quarantined[0].byte_offset, start as u64);
        assert!(report.quarantined[0].reason.contains("checksum"));
        assert_eq!(report.chunks_kept, 2);
        assert_eq!(report.txns_kept, 2);
        assert_eq!(rows[0], ds.db.transaction(0));
        assert_eq!(rows[1], ds.db.transaction(2));
        // The lost transaction is accounted for in the notes.
        assert!(report
            .notes
            .iter()
            .any(|n| n.contains("1 of 3 transactions lost")));
    }

    #[test]
    fn salvage_survives_mid_chunk_truncation() {
        let (ds, bytes) = three_chunk_file();
        let chunks: Vec<_> = section_spans(&bytes)
            .into_iter()
            .filter(|(tag, _, _)| *tag == 0x02)
            .collect();
        // Cut mid-way through the second chunk section.
        let (_, start, end) = chunks[1];
        let cut = start + (end - start) / 2;
        // Strict mode: typed error, never a panic.
        assert!(read_fbin(&bytes[..cut]).is_err());
        // Salvage mode: the intact prefix survives, the tail becomes a note.
        let mut reader = FbinReader::salvage(&bytes[..cut]).unwrap();
        let rows: Vec<_> = reader
            .chunks()
            .collect::<Result<Vec<_>, _>>()
            .unwrap()
            .into_iter()
            .flatten()
            .collect();
        let report = reader.into_parts().1.into_salvage_report().unwrap();
        assert_eq!(report.chunks_kept, 1);
        assert_eq!(rows, vec![ds.db.transaction(0).to_vec()]);
        assert!(report.is_degraded());
        assert!(
            report.notes.iter().any(|n| n.contains("stream ends early")),
            "notes: {:?}",
            report.notes
        );
    }

    #[test]
    fn every_bitflip_is_typed_in_strict_and_flagged_in_salvage() {
        let (ds, bytes) = three_chunk_file();
        let originals: Vec<Vec<_>> = ds.db.iter().map(<[_]>::to_vec).collect();
        for i in 8..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x10;
            // Strict: any flip anywhere must fail typed (also covered for
            // the default chunking by flipped_payload_byte_fails_checksum).
            assert!(read_fbin(&corrupt[..]).is_err(), "strict flip at byte {i}");
            // Salvage: either a typed error (pre-chunk corruption) or a
            // result that is flagged degraded — never a silent difference,
            // and every surviving transaction is genuine.
            let Ok(mut reader) = FbinReader::salvage(&corrupt[..]) else {
                continue;
            };
            let mut rows: Vec<Vec<_>> = Vec::new();
            let mut failed = false;
            for chunk in reader.chunks().by_ref() {
                match chunk {
                    Ok(c) => rows.extend(c),
                    Err(_) => failed = true,
                }
            }
            if failed {
                continue; // typed error is an acceptable outcome
            }
            let report = reader.into_parts().1.into_salvage_report().unwrap();
            assert!(
                report.is_degraded(),
                "flip at byte {i} salvaged without a degradation flag"
            );
            for row in &rows {
                assert!(
                    originals.contains(row),
                    "flip at byte {i} fabricated transaction {row:?}"
                );
            }
        }
    }

    #[test]
    fn injected_read_faults_surface_typed_or_quarantined() {
        use flipper_guard::fault::{self, FaultKind, FaultPlan, SITE_STORE_READ};
        let (ds, bytes) = three_chunk_file();
        // Hit 1 is the dictionary; hit 3 is the second chunk section.
        for kind in [FaultKind::Io, FaultKind::BitFlip, FaultKind::Truncate] {
            let armed = fault::arm(FaultPlan::new(0xF1F0).inject(SITE_STORE_READ, 3, kind));
            let err = read_fbin(&bytes[..]).unwrap_err();
            assert!(
                matches!(err, StoreError::Io(_) | StoreError::ChecksumMismatch { .. }),
                "{kind:?} surfaced as {err}"
            );
            assert_eq!(armed.fired().len(), 1, "{kind:?} did not fire");
            drop(armed);
            // Salvage turns the payload corruptions into quarantine.
            if matches!(kind, FaultKind::BitFlip | FaultKind::Truncate) {
                let _armed = fault::arm(FaultPlan::new(0xF1F0).inject(SITE_STORE_READ, 3, kind));
                let mut reader = FbinReader::salvage(&bytes[..]).unwrap();
                let rows: Vec<_> = reader
                    .chunks()
                    .collect::<Result<Vec<_>, _>>()
                    .unwrap()
                    .into_iter()
                    .flatten()
                    .collect();
                let report = reader.into_parts().1.into_salvage_report().unwrap();
                assert_eq!(report.quarantined.len(), 1, "{kind:?}");
                assert_eq!(report.quarantined[0].index, 1);
                assert_eq!(rows.len(), 2);
            }
        }
        // An injected latency stalls but changes nothing.
        let _armed = fault::arm(FaultPlan::new(1).inject(SITE_STORE_READ, 2, FaultKind::Latency));
        let back = read_fbin(&bytes[..]).unwrap();
        assert_eq!(back.db, ds.db);
    }

    #[test]
    fn injected_write_faults_surface_typed() {
        use flipper_guard::fault::{self, FaultKind, FaultPlan, SITE_STORE_WRITE};
        let ds = toy_dataset();
        // Hit 1 is the dictionary section: the writer fails to open.
        {
            let _armed = fault::arm(FaultPlan::new(9).inject(SITE_STORE_WRITE, 1, FaultKind::Io));
            let Err(err) = FbinWriter::new(Vec::new(), &ds.taxonomy) else {
                panic!("injected write fault should fail the writer");
            };
            assert!(matches!(err, StoreError::Io(_)));
        }
        // A panic kind degrades to the same typed I/O error — the store
        // layer never panics, not even under injection.
        {
            let _armed =
                fault::arm(FaultPlan::new(9).inject(SITE_STORE_WRITE, 2, FaultKind::Panic));
            let mut w = FbinWriter::with_chunk_size(Vec::new(), &ds.taxonomy, 1).unwrap();
            let err = ds
                .db
                .iter()
                .try_for_each(|txn| w.write_transaction(txn))
                .unwrap_err();
            assert!(matches!(err, StoreError::Io(_)));
        }
        // Latency stalls but the file still round-trips bit-identically.
        {
            let _armed =
                fault::arm(FaultPlan::new(9).inject(SITE_STORE_WRITE, 1, FaultKind::Latency));
            let delayed = to_fbin_bytes(&ds).unwrap();
            drop(_armed);
            assert_eq!(delayed, to_fbin_bytes(&ds).unwrap());
        }
    }

    #[test]
    fn salvage_view_flags_degradation_and_mines_survivors() {
        let (ds, bytes) = three_chunk_file();
        // Intact: identical to stream_view, not degraded.
        let (tax, view, report) = salvage_view(&bytes[..], 1).unwrap();
        let (tax2, view2) = stream_view(FbinReader::new(&bytes[..]).unwrap(), 1).unwrap();
        assert_eq!(tax, tax2);
        assert_eq!(view, view2);
        assert!(!report.is_degraded());
        // Damaged: the surviving two chunks still build a view.
        let chunks: Vec<_> = section_spans(&bytes)
            .into_iter()
            .filter(|(tag, _, _)| *tag == 0x02)
            .collect();
        let mut corrupt = bytes.clone();
        corrupt[chunks[0].1 + 5] ^= 0x01;
        let (_, view, report) = salvage_view(&corrupt[..], 1).unwrap();
        assert!(report.is_degraded());
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.txns_kept, 2);
        let full = MultiLevelView::build(&ds.db, &ds.taxonomy);
        assert_ne!(view, full, "a degraded view must differ from the full one");
    }

    #[test]
    fn stream_view_matches_full_load_view() {
        let ds = toy_dataset();
        let mut out = Vec::new();
        let mut w = FbinWriter::with_chunk_size(&mut out, &ds.taxonomy, 4).unwrap();
        for txn in ds.db.iter() {
            w.write_transaction(txn).unwrap();
        }
        w.finish().unwrap();
        let full = MultiLevelView::build(&ds.db, &ds.taxonomy);
        for threads in [1usize, 4] {
            let (tax, view) = stream_view(FbinReader::new(&out[..]).unwrap(), threads).unwrap();
            assert_eq!(tax, ds.taxonomy);
            assert_eq!(view, full, "threads={threads}");
        }
    }
}

#[cfg(test)]
mod profile {
    use super::*;
    use std::time::Instant;

    #[test]
    #[ignore]
    fn where_does_load_time_go() {
        let ds = flipper_datagen::quest::generate(
            &flipper_datagen::quest::QuestParams::default().with_transactions(1000),
        )
        .into_dataset();
        let mut text = Vec::new();
        flipper_data::format::write_dataset(&mut text, &ds).unwrap();
        let fbin = to_fbin_bytes(&ds).unwrap();
        let reps = 50;
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(
                flipper_data::format::read_dataset(
                    std::io::Cursor::new(&text[..]),
                    flipper_taxonomy::RebalancePolicy::LeafCopy,
                )
                .unwrap(),
            );
        }
        let t_text = t0.elapsed() / reps;
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(read_fbin(&fbin[..]).unwrap());
        }
        let t_full = t0.elapsed() / reps;
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(FbinReader::new(&fbin[..]).unwrap());
        }
        let t_dict = t0.elapsed() / reps;
        let t0 = Instant::now();
        for _ in 0..reps {
            let mut r = FbinReader::new(&fbin[..]).unwrap();
            for c in r.chunks() {
                std::hint::black_box(c.unwrap());
            }
        }
        let t_chunks = t0.elapsed() / reps;
        let t0 = Instant::now();
        for _ in 0..reps {
            let tax = flipper_taxonomy::Taxonomy::uniform(10, 5, 4).unwrap();
            std::hint::black_box(tax);
        }
        let t_uniform = t0.elapsed() / reps;
        println!("text-parse      {t_text:?}");
        println!("fbin full load  {t_full:?}");
        println!("fbin dict only  {t_dict:?}");
        println!("fbin dict+chunks{t_chunks:?}");
        println!("taxonomy uniform{t_uniform:?}");
    }
}
