//! # flipper-store
//!
//! **FBIN**, the chunked columnar binary storage format for flipper datasets,
//! plus streaming ingestion into the mining stack.
//!
//! The text interchange format (`flipper_data::format`) is convenient but
//! slow at scale: every load re-parses names line by line and the whole file
//! must sit in memory. FBIN stores the same information — a taxonomy and its
//! transactions — dictionary-encoded and chunked:
//!
//! ```text
//! file   := magic version flags section*
//! magic  := "FBIN"                     (4 bytes)
//! version:= u16 LE (currently 1)       flags := u16 LE (must be 0)
//!
//! section        := tag(u8) payload_len(u32 LE) payload crc32(u32 LE)
//! tag            := 0x01 dictionary | 0x02 chunk | 0x03 end
//! sections order := dictionary, chunk*, end      (nothing after end)
//!
//! dictionary payload := varint entry_count, then per entry (taxonomy nodes
//!     in id order, synthetic rebalancing copies omitted):
//!     varint name_len, name bytes (UTF-8),
//!     varint parent_code           (0 = level-1 category,
//!                                   else 1 + parent's entry index)
//! chunk payload := varint txn_count, then per transaction:
//!     varint item_count,
//!     varint first item id, then item_count-1 varint gaps (sorted strictly
//!     increasing dictionary indices, delta-encoded)
//! end payload   := varint total_txn_count, varint chunk_count
//! ```
//!
//! All varints are unsigned LEB128. Every section payload is guarded by a
//! CRC-32 (IEEE), and the end section's totals let the reader distinguish a
//! complete file from one cut short — truncation and bit rot both surface as
//! typed [`StoreError`]s, never as garbage data.
//!
//! Two read paths:
//!
//! * [`read_fbin`] / [`FbinReader::read_dataset`] — materialize a
//!   [`Dataset`], **bit-identical** to parsing the equivalent text file
//!   (the dictionary carries exactly the information of the text
//!   `[taxonomy]` section, in the same order, and is replayed through the
//!   same [`TaxonomyBuilder`](flipper_taxonomy::TaxonomyBuilder) path);
//! * [`FbinReader::chunks`] — iterate transaction chunks with bounded
//!   memory; [`stream_view`] pipes them straight into
//!   [`MultiLevelViewBuilder`], whose per-chunk projection is sharded over
//!   `flipper_data::exec` workers, so mining can start from a file without
//!   the raw database ever existing in memory.
//!
//! [`FbinWriter`] is the streaming producer: it accepts transactions
//! incrementally and flushes a chunk section whenever [`TARGET_CHUNK_BYTES`]
//! of encoded transactions accumulate.

mod crc32;
mod error;
mod reader;
mod varint;
mod writer;

pub use error::StoreError;
pub use reader::{read_fbin, read_fbin_with_policy, ChunkReader, FbinReader};
pub use writer::{write_fbin, FbinWriter, TARGET_CHUNK_BYTES};

use flipper_data::format::Dataset;
use flipper_data::{MultiLevelView, MultiLevelViewBuilder};
use flipper_taxonomy::Taxonomy;
use std::io::Read;

/// The four magic bytes every FBIN file starts with.
pub const FBIN_MAGIC: [u8; 4] = *b"FBIN";

/// Current format version, written to (and accepted from) the header.
pub const FBIN_VERSION: u16 = 1;

/// Section tags of the FBIN framing layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum SectionTag {
    /// String dictionary + taxonomy structure.
    Dict = 0x01,
    /// A batch of delta-encoded transactions.
    Chunk = 0x02,
    /// Totals trailer; must be the last section.
    End = 0x03,
}

impl SectionTag {
    pub(crate) fn from_byte(b: u8) -> Option<Self> {
        match b {
            0x01 => Some(SectionTag::Dict),
            0x02 => Some(SectionTag::Chunk),
            0x03 => Some(SectionTag::End),
            _ => None,
        }
    }

    pub(crate) fn name(self) -> &'static str {
        match self {
            SectionTag::Dict => "dictionary",
            SectionTag::Chunk => "chunk",
            SectionTag::End => "end",
        }
    }
}

/// Whether `prefix` (the first bytes of a file) identifies an FBIN stream.
/// Used by CLIs to auto-detect the input format by magic bytes.
pub fn is_fbin(prefix: &[u8]) -> bool {
    prefix.len() >= FBIN_MAGIC.len() && prefix[..FBIN_MAGIC.len()] == FBIN_MAGIC
}

/// Streamed ingestion: consume every chunk of `reader` into a mining-ready
/// [`MultiLevelView`] without ever materializing the raw transaction
/// database. Each chunk's projection is sharded over `threads` scoped
/// workers (`0` = auto-detect, `1` = sequential); the resulting view — and
/// therefore any `mine_with_view`-style run over it — is bit-identical to
/// building the view from a fully loaded database, at every thread count.
pub fn stream_view<R: Read>(
    reader: FbinReader<R>,
    threads: usize,
) -> Result<(Taxonomy, MultiLevelView), StoreError> {
    let (taxonomy, mut chunks) = reader.into_parts();
    let build_span = flipper_obs::span("view.build");
    let mut builder = MultiLevelViewBuilder::new(&taxonomy, threads);
    for chunk in chunks.by_ref() {
        let span = flipper_obs::span("store.chunk");
        let chunk = chunk?;
        builder.push_chunk(&chunk)?;
        drop(span.arg("rows", chunk.len() as u64));
    }
    let view = builder.finish()?;
    drop(build_span.arg("rows", chunks.transactions_seen()));
    Ok((taxonomy, view))
}

/// Serialize a dataset to FBIN bytes in memory. Convenience for tests and
/// the CLI `convert` subcommand; streams through [`write_fbin`].
pub fn to_fbin_bytes(ds: &Dataset) -> Result<Vec<u8>, StoreError> {
    let mut out = Vec::new();
    write_fbin(&mut out, ds)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flipper_data::format::{read_dataset, write_dataset};
    use flipper_data::TransactionDb;
    use flipper_taxonomy::{NodeId, RebalancePolicy};
    use std::io::Cursor;

    fn toy_dataset() -> Dataset {
        let tax = Taxonomy::from_edges(
            [
                ("drinks", ""),
                ("food", ""),
                ("beer", "drinks"),
                ("soda", "drinks"),
                ("bread", "food"),
                ("cheese", "food"),
            ],
            RebalancePolicy::RequireBalanced,
        )
        .unwrap();
        let g = |s: &str| tax.node_by_name(s).unwrap();
        let db = TransactionDb::new(vec![
            vec![g("beer"), g("bread")],
            vec![g("beer"), g("cheese")],
            vec![g("soda"), g("bread"), g("cheese")],
        ])
        .unwrap();
        Dataset { taxonomy: tax, db }
    }

    #[test]
    fn roundtrip_toy() {
        let ds = toy_dataset();
        let bytes = to_fbin_bytes(&ds).unwrap();
        assert!(is_fbin(&bytes));
        let back = read_fbin(&bytes[..]).unwrap();
        assert_eq!(ds.taxonomy, back.taxonomy);
        assert_eq!(ds.db, back.db);
    }

    #[test]
    fn matches_text_path_exactly() {
        let ds = toy_dataset();
        let mut text = Vec::new();
        write_dataset(&mut text, &ds).unwrap();
        let via_text = read_dataset(Cursor::new(&text[..]), RebalancePolicy::LeafCopy).unwrap();
        let via_fbin = read_fbin(&to_fbin_bytes(&ds).unwrap()[..]).unwrap();
        assert_eq!(via_text.taxonomy, via_fbin.taxonomy);
        assert_eq!(via_text.db, via_fbin.db);
    }

    #[test]
    fn unbalanced_taxonomy_roundtrips_through_padding() {
        // A shallow leaf gets a synthetic copy under LeafCopy; the dict
        // stores the original name and the reader re-pads and re-maps.
        let tax = Taxonomy::from_edges(
            [("drinks", ""), ("snacks", ""), ("beer", "drinks")],
            RebalancePolicy::LeafCopy,
        )
        .unwrap();
        let beer = tax.node_by_name("beer").unwrap();
        let padded = tax.node_by_name("snacks#1").unwrap();
        assert!(tax.is_synthetic(padded));
        let db = TransactionDb::new(vec![vec![beer, padded]]).unwrap();
        let ds = Dataset { taxonomy: tax, db };
        let back = read_fbin(&to_fbin_bytes(&ds).unwrap()[..]).unwrap();
        assert_eq!(ds.taxonomy, back.taxonomy);
        assert_eq!(ds.db, back.db);
    }

    #[test]
    fn small_chunks_split_and_recombine() {
        let ds = toy_dataset();
        let mut out = Vec::new();
        // 1-byte target: every transaction flushes its own chunk.
        let mut w = FbinWriter::with_chunk_size(&mut out, &ds.taxonomy, 1).unwrap();
        for txn in ds.db.iter() {
            w.write_transaction(txn).unwrap();
        }
        assert_eq!(w.transactions_written(), 3);
        w.finish().unwrap();
        let mut reader = FbinReader::new(&out[..]).unwrap();
        let chunks: Vec<_> = reader.chunks().collect::<Result<Vec<_>, _>>().unwrap();
        assert_eq!(chunks.len(), 3, "one chunk per transaction");
        assert_eq!(reader.chunks().transactions_seen(), 3);
        let back = FbinReader::new(&out[..]).unwrap().read_dataset().unwrap();
        assert_eq!(ds.db, back.db);
    }

    #[test]
    fn writer_rejects_bad_transactions() {
        let ds = toy_dataset();
        let mut w = FbinWriter::new(Vec::new(), &ds.taxonomy).unwrap();
        assert!(matches!(
            w.write_transaction(&[]).unwrap_err(),
            StoreError::Data(flipper_data::DataError::EmptyTransaction { .. })
        ));
        let drinks = ds.taxonomy.node_by_name("drinks").unwrap();
        assert!(matches!(
            w.write_transaction(&[drinks]).unwrap_err(),
            StoreError::Data(flipper_data::DataError::NonLeafItem { .. })
        ));
        assert!(matches!(
            w.write_transaction(&[NodeId::from_index(999)]).unwrap_err(),
            StoreError::UnknownItem { .. }
        ));
        assert!(matches!(
            w.write_transaction(&[NodeId::ROOT]).unwrap_err(),
            StoreError::UnknownItem { .. }
        ));
    }

    #[test]
    fn duplicate_items_are_deduplicated() {
        let ds = toy_dataset();
        let beer = ds.taxonomy.node_by_name("beer").unwrap();
        let bread = ds.taxonomy.node_by_name("bread").unwrap();
        let mut w = FbinWriter::new(Vec::new(), &ds.taxonomy).unwrap();
        w.write_transaction(&[bread, beer, bread, beer]).unwrap();
        let out = w.finish().unwrap();
        let back = read_fbin(&out[..]).unwrap();
        assert_eq!(back.db.transaction(0).len(), 2);
    }

    #[test]
    fn empty_database_is_rejected_on_read() {
        let ds = toy_dataset();
        let w = FbinWriter::new(Vec::new(), &ds.taxonomy).unwrap();
        let out = w.finish().unwrap();
        assert!(matches!(
            read_fbin(&out[..]).unwrap_err(),
            StoreError::Data(flipper_data::DataError::EmptyDatabase)
        ));
    }

    #[test]
    fn bad_magic_is_typed() {
        let err = read_fbin(&b"NOPE"[..]).unwrap_err();
        assert!(matches!(err, StoreError::BadMagic(m) if &m == b"NOPE"));
        assert!(!is_fbin(b"NO"));
        assert!(!is_fbin(b""));
    }

    #[test]
    fn future_version_is_rejected() {
        let ds = toy_dataset();
        let mut bytes = to_fbin_bytes(&ds).unwrap();
        bytes[4] = 0xFF; // version low byte
        assert!(matches!(
            read_fbin(&bytes[..]).unwrap_err(),
            StoreError::UnsupportedVersion(_)
        ));
        bytes[4] = 0; // version 0 is also invalid
        assert!(matches!(
            read_fbin(&bytes[..]).unwrap_err(),
            StoreError::UnsupportedVersion(0)
        ));
    }

    #[test]
    fn nonzero_flags_are_rejected() {
        let ds = toy_dataset();
        let mut bytes = to_fbin_bytes(&ds).unwrap();
        bytes[6] = 1;
        assert!(matches!(
            read_fbin(&bytes[..]).unwrap_err(),
            StoreError::Corrupt {
                context: "header",
                ..
            }
        ));
    }

    #[test]
    fn every_truncation_fails_typed_never_panics() {
        let ds = toy_dataset();
        let bytes = to_fbin_bytes(&ds).unwrap();
        for cut in 0..bytes.len() {
            let err = read_fbin(&bytes[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes must not parse");
        }
    }

    #[test]
    fn flipped_payload_byte_fails_checksum() {
        let ds = toy_dataset();
        let bytes = to_fbin_bytes(&ds).unwrap();
        // Flip one byte inside the dictionary payload (header is 8 bytes,
        // section frame is 5, so offset 14 sits inside the payload).
        let mut corrupt = bytes.clone();
        corrupt[14] ^= 0x40;
        assert!(matches!(
            read_fbin(&corrupt[..]).unwrap_err(),
            StoreError::ChecksumMismatch { .. }
        ));
        // Any flipped bit anywhere in the file must fail one way or another
        // (checksum, frame structure, or totals) — never parse silently.
        for i in 8..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x10;
            assert!(read_fbin(&corrupt[..]).is_err(), "flip at byte {i}");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let ds = toy_dataset();
        let mut bytes = to_fbin_bytes(&ds).unwrap();
        bytes.push(0xAA);
        assert!(matches!(
            read_fbin(&bytes[..]).unwrap_err(),
            StoreError::Corrupt {
                context: "end section",
                ..
            }
        ));
    }

    #[test]
    fn stream_view_matches_full_load_view() {
        let ds = toy_dataset();
        let mut out = Vec::new();
        let mut w = FbinWriter::with_chunk_size(&mut out, &ds.taxonomy, 4).unwrap();
        for txn in ds.db.iter() {
            w.write_transaction(txn).unwrap();
        }
        w.finish().unwrap();
        let full = MultiLevelView::build(&ds.db, &ds.taxonomy);
        for threads in [1usize, 4] {
            let (tax, view) = stream_view(FbinReader::new(&out[..]).unwrap(), threads).unwrap();
            assert_eq!(tax, ds.taxonomy);
            assert_eq!(view, full, "threads={threads}");
        }
    }
}

#[cfg(test)]
mod profile {
    use super::*;
    use std::time::Instant;

    #[test]
    #[ignore]
    fn where_does_load_time_go() {
        let ds = flipper_datagen::quest::generate(
            &flipper_datagen::quest::QuestParams::default().with_transactions(1000),
        )
        .into_dataset();
        let mut text = Vec::new();
        flipper_data::format::write_dataset(&mut text, &ds).unwrap();
        let fbin = to_fbin_bytes(&ds).unwrap();
        let reps = 50;
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(
                flipper_data::format::read_dataset(
                    std::io::Cursor::new(&text[..]),
                    flipper_taxonomy::RebalancePolicy::LeafCopy,
                )
                .unwrap(),
            );
        }
        let t_text = t0.elapsed() / reps;
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(read_fbin(&fbin[..]).unwrap());
        }
        let t_full = t0.elapsed() / reps;
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(FbinReader::new(&fbin[..]).unwrap());
        }
        let t_dict = t0.elapsed() / reps;
        let t0 = Instant::now();
        for _ in 0..reps {
            let mut r = FbinReader::new(&fbin[..]).unwrap();
            for c in r.chunks() {
                std::hint::black_box(c.unwrap());
            }
        }
        let t_chunks = t0.elapsed() / reps;
        let t0 = Instant::now();
        for _ in 0..reps {
            let tax = flipper_taxonomy::Taxonomy::uniform(10, 5, 4).unwrap();
            std::hint::black_box(tax);
        }
        let t_uniform = t0.elapsed() / reps;
        println!("text-parse      {t_text:?}");
        println!("fbin full load  {t_full:?}");
        println!("fbin dict only  {t_dict:?}");
        println!("fbin dict+chunks{t_chunks:?}");
        println!("taxonomy uniform{t_uniform:?}");
    }
}
