//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the checksum
//! guarding every FBIN section payload.
//!
//! Implemented locally because the workspace builds offline with zero
//! external crates. The table is computed at compile time, so the runtime
//! cost is the classic one-table-lookup-per-byte loop.

/// The 256-entry lookup table for the reflected IEEE polynomial.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `data` (IEEE, as used by zip/png/ethernet).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value of CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"flipper");
        let mut data = *b"flipper";
        for i in 0..data.len() {
            for bit in 0..8u8 {
                data[i] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip at byte {i} bit {bit}");
                data[i] ^= 1 << bit;
            }
        }
    }
}
