//! The streaming FBIN writer.
//!
//! [`FbinWriter`] accepts transactions **incrementally** and never holds more
//! than one encoded chunk in memory, so arbitrarily large datasets can be
//! serialized with bounded peak memory. The taxonomy (the dictionary) must
//! be known up front — it is written as the first section — but the
//! transaction stream can be produced lazily.

use crate::crc32::crc32;
use crate::error::StoreError;
use crate::varint::write_varint;
use crate::{SectionTag, FBIN_MAGIC, FBIN_VERSION};
use flipper_data::format::Dataset;
use flipper_data::DataError;
use flipper_taxonomy::{NodeId, Taxonomy};
use std::io::Write;

/// Default target size of one encoded transaction chunk. Chunks are flushed
/// once their encoded body reaches this size, so readers can process a file
/// with ~this much transaction memory in flight.
pub const TARGET_CHUNK_BYTES: usize = 64 * 1024;

/// Streaming writer for the FBIN format.
///
/// ```
/// use flipper_store::{FbinWriter, read_fbin};
/// use flipper_taxonomy::{Taxonomy, RebalancePolicy};
///
/// let tax = Taxonomy::from_edges(
///     [("drinks", ""), ("food", ""), ("beer", "drinks"), ("bread", "food")],
///     RebalancePolicy::RequireBalanced).unwrap();
/// let beer = tax.node_by_name("beer").unwrap();
/// let bread = tax.node_by_name("bread").unwrap();
///
/// let mut out = Vec::new();
/// let mut w = FbinWriter::new(&mut out, &tax).unwrap();
/// w.write_transaction(&[beer, bread]).unwrap();
/// w.write_transaction(&[beer]).unwrap();
/// w.finish().unwrap();
///
/// let ds = read_fbin(&out[..]).unwrap();
/// assert_eq!(ds.db.len(), 2);
/// ```
pub struct FbinWriter<W: Write> {
    w: W,
    /// Node id → dictionary index. Synthetic rebalancing copies map to their
    /// nearest non-synthetic ancestor (which is what the text format writes
    /// too); the root maps to the `u32::MAX` sentinel.
    dict_of: Vec<u32>,
    /// Whether each node may appear in a transaction (leaf at tree height).
    is_valid_item: Vec<bool>,
    /// Encoded transactions of the pending chunk.
    chunk_body: Vec<u8>,
    chunk_txns: u64,
    total_txns: u64,
    chunk_count: u64,
    target_chunk_bytes: usize,
    /// Reusable per-transaction dictionary-index buffer.
    scratch: Vec<u32>,
}

impl<W: Write> FbinWriter<W> {
    /// Start an FBIN file on `w` for transactions over `tax`, with the
    /// default [`TARGET_CHUNK_BYTES`] chunking. Writes the header and the
    /// dictionary section immediately.
    pub fn new(w: W, tax: &Taxonomy) -> Result<Self, StoreError> {
        Self::with_chunk_size(w, tax, TARGET_CHUNK_BYTES)
    }

    /// Like [`FbinWriter::new`] with an explicit chunk-size target (clamped
    /// to at least 1; mainly useful for tests that want many small chunks).
    pub fn with_chunk_size(
        mut w: W,
        tax: &Taxonomy,
        target_chunk_bytes: usize,
    ) -> Result<Self, StoreError> {
        let (dict_of, is_valid_item, dict_payload) = build_dict(tax);
        w.write_all(&FBIN_MAGIC)?;
        w.write_all(&FBIN_VERSION.to_le_bytes())?;
        w.write_all(&0u16.to_le_bytes())?; // reserved flags
        write_section(&mut w, SectionTag::Dict, &dict_payload)?;
        Ok(FbinWriter {
            w,
            dict_of,
            is_valid_item,
            chunk_body: Vec::with_capacity(target_chunk_bytes.max(1)),
            chunk_txns: 0,
            total_txns: 0,
            chunk_count: 0,
            target_chunk_bytes: target_chunk_bytes.max(1),
            scratch: Vec::new(),
        })
    }

    /// Append one transaction (leaf items of the writer's taxonomy, in any
    /// order; duplicates are removed). Flushes a chunk section whenever the
    /// pending chunk reaches the target size.
    pub fn write_transaction(&mut self, items: &[NodeId]) -> Result<(), StoreError> {
        if items.is_empty() {
            return Err(StoreError::Data(DataError::EmptyTransaction {
                txn: self.total_txns as usize,
            }));
        }
        self.scratch.clear();
        for &item in items {
            let idx = item.index();
            if idx >= self.dict_of.len() || self.dict_of[idx] == u32::MAX {
                return Err(StoreError::UnknownItem {
                    txn: self.total_txns,
                    item,
                });
            }
            if !self.is_valid_item[idx] {
                return Err(StoreError::Data(DataError::NonLeafItem {
                    txn: self.total_txns as usize,
                    item,
                }));
            }
            self.scratch.push(self.dict_of[idx]);
        }
        self.scratch.sort_unstable();
        self.scratch.dedup();

        write_varint(&mut self.chunk_body, self.scratch.len() as u64);
        let mut prev = 0u64;
        for (i, &id) in self.scratch.iter().enumerate() {
            let id = u64::from(id);
            // First item absolute, the rest as strictly positive gaps from
            // the sorted predecessor.
            let delta = if i == 0 { id } else { id - prev };
            write_varint(&mut self.chunk_body, delta);
            prev = id;
        }
        self.chunk_txns += 1;
        self.total_txns += 1;
        if self.chunk_body.len() >= self.target_chunk_bytes {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Transactions written so far.
    pub fn transactions_written(&self) -> u64 {
        self.total_txns
    }

    fn flush_chunk(&mut self) -> Result<(), StoreError> {
        if self.chunk_txns == 0 {
            return Ok(());
        }
        let mut payload = Vec::with_capacity(self.chunk_body.len() + 4);
        write_varint(&mut payload, self.chunk_txns);
        payload.extend_from_slice(&self.chunk_body);
        write_section(&mut self.w, SectionTag::Chunk, &payload)?;
        self.chunk_body.clear();
        self.chunk_txns = 0;
        self.chunk_count += 1;
        Ok(())
    }

    /// Flush the pending chunk, write the end section (total transaction and
    /// chunk counts, so readers can detect a cut-short file) and return the
    /// underlying writer. A file is only valid once `finish` has run.
    pub fn finish(mut self) -> Result<W, StoreError> {
        self.flush_chunk()?;
        let mut payload = Vec::with_capacity(12);
        write_varint(&mut payload, self.total_txns);
        write_varint(&mut payload, self.chunk_count);
        write_section(&mut self.w, SectionTag::End, &payload)?;
        self.w.flush()?;
        Ok(self.w)
    }
}

/// Write one framed section: tag, little-endian payload length, payload,
/// CRC-32 of the payload. This is the `store.write.section` fault site
/// ([`flipper_guard::fault::SITE_STORE_WRITE`]): an armed plan can fail a
/// write with a synthetic I/O error or stall it; other fault kinds degrade
/// to the I/O error, because the writer must never panic or emit corrupt
/// frames — a write either completes or fails typed.
fn write_section<W: Write>(w: &mut W, tag: SectionTag, payload: &[u8]) -> Result<(), StoreError> {
    match flipper_guard::fault::injected(flipper_guard::fault::SITE_STORE_WRITE) {
        None => {}
        Some(flipper_guard::Fault::Latency { spins }) => flipper_guard::fault::spin(spins),
        Some(_) => {
            return Err(StoreError::Io(std::io::Error::other(
                "injected fault: write i/o error",
            )))
        }
    }
    let len = u32::try_from(payload.len()).map_err(|_| StoreError::Corrupt {
        context: "writer",
        message: format!("section payload of {} bytes exceeds u32", payload.len()),
    })?;
    w.write_all(&[tag as u8])?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    Ok(())
}

/// Build the node-id → dictionary-index map and the encoded dictionary
/// payload. Dictionary entries are the non-synthetic nodes in node-id order
/// (so parents always precede children), each as `name` plus a parent code
/// (`0` = level-1 category, else `1 +` the parent's dictionary index) —
/// exactly the information the text format's `[taxonomy]` section carries,
/// which is what makes text↔FBIN round-trips bit-identical.
fn build_dict(tax: &Taxonomy) -> (Vec<u32>, Vec<bool>, Vec<u8>) {
    let n = tax.node_count();
    let mut dict_of = vec![u32::MAX; n];
    let mut is_valid_item = vec![false; n];
    let mut entries: Vec<NodeId> = Vec::with_capacity(n - 1);
    for node in tax.node_ids().skip(1) {
        if tax.is_synthetic(node) {
            // Written under the original name, like the text format: the
            // reader re-pads and re-maps to the deepest copy.
            // lint:allow(panic-hygiene) taxonomy invariant: synthetic padding nodes are never roots
            let parent = tax.parent(node).expect("synthetic nodes are not roots");
            dict_of[node.index()] = dict_of[parent.index()];
        } else {
            dict_of[node.index()] = entries.len() as u32;
            entries.push(node);
        }
        is_valid_item[node.index()] = tax.is_leaf(node) && tax.level_of(node) == tax.height();
    }
    let mut payload = Vec::new();
    write_varint(&mut payload, entries.len() as u64);
    for &node in &entries {
        let name = tax.name(node).as_bytes();
        write_varint(&mut payload, name.len() as u64);
        payload.extend_from_slice(name);
        // lint:allow(panic-hygiene) node_ids().skip(1) iterates non-root nodes only
        let parent = tax.parent(node).expect("non-root");
        let code = if parent.is_root() {
            0
        } else {
            u64::from(dict_of[parent.index()]) + 1
        };
        write_varint(&mut payload, code);
    }
    (dict_of, is_valid_item, payload)
}

/// Serialize a whole in-memory dataset to FBIN. Streams the transactions
/// through [`FbinWriter`], so this is also the reference for how the
/// streaming API is meant to be used.
pub fn write_fbin<W: Write>(w: W, ds: &Dataset) -> Result<(), StoreError> {
    let mut writer = FbinWriter::new(w, &ds.taxonomy)?;
    for txn in ds.db.iter() {
        writer.write_transaction(txn)?;
    }
    writer.finish()?;
    Ok(())
}
