//! `flipper-trace/v1`: Chrome trace-event JSON export and validation.
//!
//! The export is the Chrome trace-event format (the JSON Array-of-events
//! object form loadable in `chrome://tracing` / Perfetto): one `"X"`
//! (complete) event per span with microsecond `ts`/`dur`, plus exact
//! nanosecond `tsNs`/`durNs` fields that Chrome ignores but the validator
//! uses to check nesting without rounding artifacts. The top-level object
//! carries `"schema": "flipper-trace/v1"`.
//!
//! [`validate_trace`] re-parses an emitted document with the hand-rolled
//! parser in this module (zero-dependency round-trip) and checks that the
//! schema tag is present, every event is well-formed, and events within
//! each lane are properly nested (disjoint or contained, never
//! partially overlapping).

use crate::span::SpanEvent;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Schema tag written into (and required from) every trace document —
/// re-exported from the flipper-wire registry so the tag is defined once.
pub const TRACE_SCHEMA: &str = flipper_wire::TRACE_V1;

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render events as a `flipper-trace/v1` Chrome trace document.
///
/// Spans become `ph:"X"` complete events, instants (duration 0) become
/// `ph:"i"` events; every recording lane is a `tid` under one `pid`.
pub fn render_chrome_trace(events: &[SpanEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 120 + 128);
    out.push_str("{\"schema\":\"");
    out.push_str(TRACE_SCHEMA);
    out.push_str("\",\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let instant = ev.dur_ns == 0;
        out.push_str("{\"name\":\"");
        out.push_str(&escape_json(ev.name));
        out.push_str("\",\"ph\":\"");
        out.push_str(if instant { "i" } else { "X" });
        out.push_str("\",\"pid\":1,\"tid\":");
        out.push_str(&ev.lane.to_string());
        out.push_str(",\"ts\":");
        out.push_str(&(ev.start_ns / 1_000).to_string());
        if !instant {
            out.push_str(",\"dur\":");
            out.push_str(&(ev.dur_ns / 1_000).to_string());
        } else {
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(",\"tsNs\":");
        out.push_str(&ev.start_ns.to_string());
        out.push_str(",\"durNs\":");
        out.push_str(&ev.dur_ns.to_string());
        let has_args = ev.label.is_some() || !ev.args.is_empty();
        if has_args {
            out.push_str(",\"args\":{");
            let mut first = true;
            if let Some(label) = &ev.label {
                out.push_str("\"label\":\"");
                out.push_str(&escape_json(label));
                out.push('"');
                first = false;
            }
            for (k, v) in &ev.args {
                if !first {
                    out.push(',');
                }
                out.push('"');
                out.push_str(&escape_json(k));
                out.push_str("\":");
                out.push_str(&v.to_string());
                first = false;
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Errors from parsing or validating a trace document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The document is not syntactically valid JSON.
    Parse {
        /// Byte offset of the failure.
        offset: usize,
        /// What the parser expected or found.
        message: String,
    },
    /// The document parsed but is not a `flipper-trace/v1` object.
    Schema(String),
    /// An event is missing a field or has one of the wrong type.
    Event {
        /// Index of the offending event in `traceEvents`.
        index: usize,
        /// What is wrong with it.
        message: String,
    },
    /// Two events in one lane partially overlap.
    Nesting {
        /// Lane (`tid`) where the overlap occurs.
        lane: u64,
        /// Names of the two overlapping events.
        names: (String, String),
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Parse { offset, message } => {
                write!(f, "JSON parse error at byte {offset}: {message}")
            }
            TraceError::Schema(msg) => write!(f, "not a {TRACE_SCHEMA} document: {msg}"),
            TraceError::Event { index, message } => {
                write!(f, "bad trace event #{index}: {message}")
            }
            TraceError::Nesting { lane, names } => write!(
                f,
                "events '{}' and '{}' partially overlap in lane {lane}",
                names.0, names.1
            ),
        }
    }
}

impl std::error::Error for TraceError {}

/// A parsed JSON value (minimal model: numbers are `f64`, which is exact
/// for the integer nanosecond fields up to 2^53 — about 104 days).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys sorted.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, TraceError> {
        Err(TraceError::Parse {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), TraceError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn parse_value(&mut self) -> Result<Json, TraceError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Json::Bool(true)),
            Some(b'f') => self.parse_lit("false", Json::Bool(false)),
            Some(b'n') => self.parse_lit("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(c) => self.err(format!("unexpected '{}'", c as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Json) -> Result<Json, TraceError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            self.err(format!("expected '{lit}'"))
        }
    }

    fn parse_number(&mut self) -> Result<Json, TraceError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| TraceError::Parse {
                offset: start,
                message: "non-utf8 number".into(),
            })?;
        match text.parse::<f64>() {
            Ok(n) => Ok(Json::Num(n)),
            Err(_) => self.err(format!("bad number '{text}'")),
        }
    }

    fn parse_string(&mut self) -> Result<String, TraceError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a run of plain UTF-8 bytes verbatim.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..self.pos]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return self.err("invalid utf-8 in string"),
                    }
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, TraceError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, TraceError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parse a JSON document with the built-in zero-dependency parser.
pub fn parse_json(text: &str) -> Result<Json, TraceError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing data after document");
    }
    Ok(value)
}

/// Summary of a validated trace, for gates and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStats {
    /// Total number of events.
    pub events: usize,
    /// Number of distinct lanes (`tid`s).
    pub lanes: usize,
    /// Distinct event names present.
    pub names: BTreeSet<String>,
}

/// Parse and validate a `flipper-trace/v1` document.
///
/// Checks: valid JSON, `schema` tag, `traceEvents` is an array of events
/// each carrying `name`/`ph`/`pid`/`tid`/`ts` (+ `dur` for `"X"`), and
/// within each lane the `"X"` events are properly nested — any two are
/// either disjoint or one contains the other (checked on the exact
/// `tsNs`/`durNs` fields).
pub fn validate_trace(text: &str) -> Result<TraceStats, TraceError> {
    let doc = parse_json(text)?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(TRACE_SCHEMA) => {}
        Some(other) => return Err(TraceError::Schema(format!("schema is '{other}'"))),
        None => return Err(TraceError::Schema("missing 'schema' tag".into())),
    }
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        _ => return Err(TraceError::Schema("missing 'traceEvents' array".into())),
    };

    // (lane, start, end, name) for all complete events.
    let mut lanes: BTreeMap<u64, Vec<(u64, u64, String)>> = BTreeMap::new();
    let mut names = BTreeSet::new();
    for (index, ev) in events.iter().enumerate() {
        let field = |key: &str| {
            ev.get(key).ok_or(TraceError::Event {
                index,
                message: format!("missing '{key}'"),
            })
        };
        let name = field("name")?.as_str().ok_or(TraceError::Event {
            index,
            message: "'name' is not a string".into(),
        })?;
        let ph = field("ph")?.as_str().ok_or(TraceError::Event {
            index,
            message: "'ph' is not a string".into(),
        })?;
        field("pid")?;
        let tid = field("tid")?.as_u64().ok_or(TraceError::Event {
            index,
            message: "'tid' is not an integer".into(),
        })?;
        field("ts")?.as_u64().ok_or(TraceError::Event {
            index,
            message: "'ts' is not an integer".into(),
        })?;
        let ts_ns = field("tsNs")?.as_u64().ok_or(TraceError::Event {
            index,
            message: "'tsNs' is not an integer".into(),
        })?;
        let dur_ns = field("durNs")?.as_u64().ok_or(TraceError::Event {
            index,
            message: "'durNs' is not an integer".into(),
        })?;
        names.insert(name.to_string());
        match ph {
            "X" => {
                field("dur")?.as_u64().ok_or(TraceError::Event {
                    index,
                    message: "'dur' is not an integer".into(),
                })?;
                lanes
                    .entry(tid)
                    .or_default()
                    .push((ts_ns, ts_ns + dur_ns, name.to_string()));
            }
            "i" => {}
            other => {
                return Err(TraceError::Event {
                    index,
                    message: format!("unsupported ph '{other}'"),
                })
            }
        }
    }

    let lane_count = lanes.len();
    for (lane, mut spans) in lanes {
        // Sort by start; for equal starts the longer (outer) span first.
        spans.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let mut stack: Vec<(u64, u64, String)> = Vec::new();
        for (start, end, name) in spans {
            while let Some(top) = stack.last() {
                if start >= top.1 {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(top) = stack.last() {
                // start < top.end here, so containment requires end <= top.end.
                if end > top.1 {
                    return Err(TraceError::Nesting {
                        lane,
                        names: (top.2.clone(), name),
                    });
                }
            }
            stack.push((start, end, name));
        }
    }

    Ok(TraceStats {
        events: events.len(),
        lanes: lane_count,
        names,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, lane: u32, start_ns: u64, dur_ns: u64) -> SpanEvent {
        SpanEvent {
            name,
            label: None,
            lane,
            start_ns,
            dur_ns,
            args: Vec::new(),
        }
    }

    #[test]
    fn render_roundtrips_through_validator() {
        let mut e = ev("mine.run", 0, 1_000, 9_000_000);
        e.label = Some("quest \"deep\"".into());
        e.args.push(("cells", 12));
        let events = vec![
            e,
            ev("mine.cell", 0, 2_000, 1_000_000),
            ev("mine.count", 0, 10_000, 500_000),
            ev("cache.evict", 1, 5_000, 0),
            ev("exec.shard", 1, 4_000, 2_000_000),
        ];
        let text = render_chrome_trace(&events);
        let stats = validate_trace(&text).expect("valid trace");
        assert_eq!(stats.events, 5);
        assert_eq!(stats.lanes, 2);
        assert!(stats.names.contains("mine.run"));
        assert!(stats.names.contains("cache.evict"));
    }

    #[test]
    fn nested_and_disjoint_spans_validate() {
        let events = vec![
            ev("outer", 0, 0, 100),
            ev("inner", 0, 10, 20),
            ev("inner2", 0, 40, 60), // touches outer's end: contained
            ev("later", 0, 200, 50),
        ];
        validate_trace(&render_chrome_trace(&events)).expect("nested ok");
    }

    #[test]
    fn partial_overlap_is_rejected() {
        let events = vec![ev("a", 0, 0, 100), ev("b", 0, 50, 100)];
        let err = validate_trace(&render_chrome_trace(&events)).unwrap_err();
        assert!(matches!(err, TraceError::Nesting { lane: 0, .. }), "{err}");
    }

    #[test]
    fn overlap_in_different_lanes_is_fine() {
        let events = vec![ev("a", 0, 0, 100), ev("b", 1, 50, 100)];
        validate_trace(&render_chrome_trace(&events)).expect("lanes independent");
    }

    #[test]
    fn parser_handles_escapes_numbers_and_nesting() {
        let doc =
            parse_json(r#"{"s":"a\"b\\c\ndA","n":-12.5e1,"a":[1,2,{"x":null,"y":true}]}"#).unwrap();
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("a\"b\\c\ndA"));
        assert_eq!(doc.get("n"), Some(&Json::Num(-125.0)));
        match doc.get("a") {
            Some(Json::Arr(items)) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[2].get("y"), Some(&Json::Bool(true)));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "{} trailing",
        ] {
            assert!(
                matches!(parse_json(bad), Err(TraceError::Parse { .. })),
                "{bad}"
            );
        }
    }

    #[test]
    fn schema_tag_is_required() {
        let err = validate_trace(r#"{"traceEvents":[]}"#).unwrap_err();
        assert!(matches!(err, TraceError::Schema(_)));
        let err = validate_trace(r#"{"schema":"other/v9","traceEvents":[]}"#).unwrap_err();
        assert!(matches!(err, TraceError::Schema(_)));
    }

    #[test]
    fn missing_event_fields_are_reported() {
        let text = format!(
            r#"{{"schema":"{TRACE_SCHEMA}","traceEvents":[{{"name":"x","ph":"X","pid":1,"tid":0,"ts":0}}]}}"#
        );
        let err = validate_trace(&text).unwrap_err();
        assert!(matches!(err, TraceError::Event { index: 0, .. }), "{err}");
    }
}
