//! The global recorder: runtime toggle, event store and metric entry
//! points.
//!
//! The recorder is a process-wide singleton. When disabled (the default)
//! every entry point reduces to one relaxed atomic load and a branch —
//! nothing is measured, allocated or locked, which is what lets the
//! instrumented binary prove byte-identical `flipper-results/v1` output
//! with tracing on or off. When enabled, spans accumulate in thread-local
//! sheets (see [`mod@crate::span`]) and metrics go through a mutex that is
//! only touched at batch granularity (per counting batch, per cell, per
//! sweep point — never per candidate).

use crate::metrics::MetricsRegistry;
use crate::span::{self, SpanEvent};
use crate::{clock, trace};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

static ENABLED: AtomicBool = AtomicBool::new(false);
static STORE: Mutex<Store> = Mutex::new(Store {
    events: Vec::new(),
    metrics: None,
});

struct Store {
    events: Vec<SpanEvent>,
    // Boxed lazily so the static initializer stays const.
    metrics: Option<Box<MetricsRegistry>>,
}

fn store() -> MutexGuard<'static, Store> {
    // A panic while holding this lock cannot leave the store logically
    // corrupt (it only ever appends), so poisoning is ignored.
    STORE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Is the recorder currently enabled? One relaxed load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enable the recorder. Pins the clock epoch on first use and claims the
/// first span lane for the calling thread.
pub fn enable() {
    clock::init_epoch();
    span::touch_current_thread();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Disable the recorder. Events already sitting in thread-local sheets
/// stay there and are picked up by the next [`drain`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Merge a batch of events from a dying thread sheet into the store.
pub(crate) fn merge_events(events: Vec<SpanEvent>) {
    let mut s = store();
    s.events.extend(events);
}

/// Add `v` to the global counter `name` (no-op while disabled).
pub fn counter_add(name: &'static str, v: u64) {
    if !enabled() {
        return;
    }
    store()
        .metrics
        .get_or_insert_with(Default::default)
        .counter_add(name, v);
}

/// Set the global gauge `name` to `v` (no-op while disabled).
pub fn gauge_set(name: &'static str, v: i64) {
    if !enabled() {
        return;
    }
    store()
        .metrics
        .get_or_insert_with(Default::default)
        .gauge_set(name, v);
}

/// Record `v` in the global histogram `name` (no-op while disabled).
pub fn observe(name: &'static str, v: u64) {
    if !enabled() {
        return;
    }
    store()
        .metrics
        .get_or_insert_with(Default::default)
        .observe(name, v);
}

/// Everything the recorder captured since the last drain.
///
/// Events are sorted by start time (ties: longer span first, then lane,
/// then name) so parents precede children within a lane.
#[derive(Debug, Default, Clone)]
pub struct Capture {
    /// Completed span and instant events.
    pub events: Vec<SpanEvent>,
    /// Metrics snapshot.
    pub metrics: MetricsRegistry,
}

/// One row of the per-phase summary: an event name with call count and
/// total duration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseRow {
    /// Event name (`mine.count`, `exec.shard`, …).
    pub name: String,
    /// Number of events with this name.
    pub calls: u64,
    /// Summed duration in nanoseconds.
    pub total_ns: u64,
}

impl Capture {
    /// Render the capture as `flipper-trace/v1` Chrome trace-event JSON.
    pub fn render_trace(&self) -> String {
        trace::render_chrome_trace(&self.events)
    }

    /// Render the metrics snapshot as `flipper-metrics/v1` text.
    pub fn render_metrics(&self) -> String {
        self.metrics.render()
    }

    /// Aggregate events by name into per-phase totals, longest first
    /// (ties broken by name so the order is reproducible).
    pub fn phase_rows(&self) -> Vec<PhaseRow> {
        let mut by_name: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        for ev in &self.events {
            let slot = by_name.entry(ev.name).or_insert((0, 0));
            slot.0 += 1;
            slot.1 += ev.dur_ns;
        }
        let mut rows: Vec<PhaseRow> = by_name
            .into_iter()
            .map(|(name, (calls, total_ns))| PhaseRow {
                name: name.to_string(),
                calls,
                total_ns,
            })
            .collect();
        rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
        rows
    }
}

/// Take everything recorded so far, leaving the recorder empty (but still
/// enabled if it was enabled).
///
/// Flushes the calling thread's sheet first; worker threads spawned by
/// `flipper_data::exec` have already merged their sheets when their scope
/// exited, so after the pipeline joins its workers this sees every event.
pub fn drain() -> Capture {
    span::flush_current_thread();
    let mut s = store();
    let mut events = std::mem::take(&mut s.events);
    let metrics = s.metrics.take().map(|b| *b).unwrap_or_default();
    drop(s);
    events.sort_by(|a, b| {
        a.start_ns
            .cmp(&b.start_ns)
            .then(b.dur_ns.cmp(&a.dur_ns))
            .then(a.lane.cmp(&b.lane))
            .then(a.name.cmp(b.name))
    });
    Capture { events, metrics }
}
