//! Named counters, gauges and log-bucketed histograms.
//!
//! The registry is deliberately minimal: metric names are `&'static str`
//! (call sites name their metrics at compile time), values are integers,
//! and histograms use fixed power-of-two buckets so the record path is a
//! couple of integer ops — no floats, no allocation after first touch.
//!
//! [`MetricsRegistry::render`] produces the `flipper-metrics/v1` text
//! exposition: a Prometheus-style body that a future `flipperd /metrics`
//! endpoint can serve verbatim.

use std::collections::BTreeMap;

/// Number of histogram buckets: bucket `i < 64` holds values `v` with
/// `v <= 2^i`; bucket 64 is the overflow (`+Inf`) bucket.
pub const HIST_BUCKETS: usize = 65;

/// A fixed log-bucketed integer histogram.
///
/// Bucket `i` (for `i < 64`) counts observations `v` with `v <= 2^i`,
/// i.e. upper bounds `1, 2, 4, 8, …`; the last bucket catches everything
/// above `2^63`. Recording is branch-free integer arithmetic on top of a
/// `leading_zeros`, keeping it safe for hot paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Box<[u64; HIST_BUCKETS]>,
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: Box::new([0; HIST_BUCKETS]),
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// Index of the bucket that holds `v`: the smallest `i` with
    /// `v <= 2^i`, clamped to the overflow bucket.
    pub fn bucket_index(v: u64) -> usize {
        if v <= 1 {
            0
        } else {
            // ceil(log2(v)) = 64 - lz(v - 1) for v >= 2.
            (64 - (v - 1).leading_zeros()) as usize
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Per-bucket counts, low bucket first.
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += *o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

/// A registry of named counters, gauges and histograms.
///
/// Names are expected to follow Prometheus conventions
/// (`flipper_candidates_counted_total`, …); the registry itself does not
/// enforce them. Iteration order is the `BTreeMap` name order, which makes
/// [`render`](MetricsRegistry::render) output stable across runs.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// New empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Add `v` to the counter `name`, creating it at zero first.
    pub fn counter_add(&mut self, name: &'static str, v: u64) {
        *self.counters.entry(name).or_insert(0) += v;
    }

    /// Set the gauge `name` to `v`.
    pub fn gauge_set(&mut self, name: &'static str, v: i64) {
        self.gauges.insert(name, v);
    }

    /// Record `v` in the histogram `name`, creating it empty first.
    pub fn observe(&mut self, name: &'static str, v: u64) {
        self.histograms.entry(name).or_default().observe(v);
    }

    /// Current value of a counter, if it has been touched.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Current value of a gauge, if it has been set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// A histogram by name, if it has observations.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Fold another registry into this one (counters and histogram buckets
    /// add; a gauge present in `other` overwrites the local value).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, v) in &other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name, *v);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name).or_default().merge(h);
        }
    }

    /// Render the `flipper-metrics/v1` text exposition.
    ///
    /// The body is Prometheus text format prefixed with a schema comment:
    /// `# TYPE` lines, one sample line per counter/gauge, and cumulative
    /// `_bucket{le="…"}`/`_sum`/`_count` lines per histogram. Buckets
    /// above the highest populated one are elided (besides `+Inf`).
    pub fn render(&self) -> String {
        let mut out = format!("# {}\n", flipper_wire::METRICS_V1);
        for (name, v) in &self.counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let top = h
                .buckets
                .iter()
                .rposition(|&c| c != 0)
                .unwrap_or(0)
                .min(HIST_BUCKETS - 2);
            let mut cumulative = 0u64;
            for i in 0..=top {
                cumulative += h.buckets[i];
                out.push_str(&format!(
                    "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                    1u64 << i
                ));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{name}_sum {}\n", h.sum));
            out.push_str(&format!("{name}_count {}\n", h.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // Bucket i holds v <= 2^i, so the boundary values land exactly.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(5), 3);
        assert_eq!(Histogram::bucket_index(8), 3);
        assert_eq!(Histogram::bucket_index(9), 4);
        for i in 1..63u32 {
            let b = 1u64 << i;
            assert_eq!(Histogram::bucket_index(b), i as usize, "at 2^{i}");
            assert_eq!(Histogram::bucket_index(b + 1), i as usize + 1, "past 2^{i}");
        }
        assert_eq!(Histogram::bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_counts_and_sums() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 100] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.buckets()[0], 2); // 0 and 1
        assert_eq!(h.buckets()[1], 1); // 2
        assert_eq!(h.buckets()[2], 1); // 3
        assert_eq!(h.buckets()[7], 1); // 100 <= 128
    }

    #[test]
    fn registry_render_is_stable_and_cumulative() {
        let mut m = MetricsRegistry::new();
        m.counter_add("flipper_b_total", 2);
        m.counter_add("flipper_a_total", 1);
        m.gauge_set("flipper_resident", -3);
        m.observe("flipper_lat", 1);
        m.observe("flipper_lat", 3);
        let text = m.render();
        assert!(text.starts_with("# flipper-metrics/v1\n"));
        // Counters sorted by name.
        let a = text.find("flipper_a_total 1").unwrap();
        let b = text.find("flipper_b_total 2").unwrap();
        assert!(a < b);
        assert!(text.contains("flipper_resident -3"));
        // Cumulative buckets: le=1 has 1, le=2 has 1, le=4 has 2.
        assert!(text.contains("flipper_lat_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("flipper_lat_bucket{le=\"2\"} 1\n"));
        assert!(text.contains("flipper_lat_bucket{le=\"4\"} 2\n"));
        assert!(text.contains("flipper_lat_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("flipper_lat_sum 4\n"));
        assert!(text.contains("flipper_lat_count 2\n"));
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.counter_add("c", 1);
        b.counter_add("c", 2);
        a.observe("h", 4);
        b.observe("h", 4);
        b.gauge_set("g", 7);
        a.merge(&b);
        assert_eq!(a.counter("c"), Some(3));
        assert_eq!(a.gauge("g"), Some(7));
        assert_eq!(a.histogram("h").unwrap().count(), 2);
    }
}
