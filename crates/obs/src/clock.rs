//! The recorder's monotonic clock.
//!
//! This is the **only** module in `flipper-obs` allowed to touch
//! `std::time::Instant`, mirroring `flipper_core::stats::Stopwatch`: both
//! are sanctioned timers that live outside the determinism lint scope
//! because they measure work without ever feeding back into mining
//! results. Every other `flipper-obs` module is covered by the
//! `determinism` rule in `flipper-lint` and must route timestamps through
//! [`now_ns`].
//!
//! Timestamps are nanoseconds since a process-wide epoch captured the
//! first time the clock is touched (normally when the recorder is
//! enabled). Using a single epoch keeps every span in one trace on one
//! timeline regardless of which thread recorded it.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Pin the process-wide epoch, if it has not been pinned yet.
///
/// Called by `Recorder::enable` so that trace timestamps start near zero
/// for the traced run instead of at process start.
pub fn init_epoch() {
    let _ = EPOCH.get_or_init(Instant::now);
}

/// Nanoseconds elapsed since the recorder epoch.
///
/// The first call pins the epoch, so the very first timestamp is 0. The
/// value is monotonic and saturates at `u64::MAX` (~584 years), which is
/// unreachable in practice.
pub fn now_ns() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    let nanos = epoch.elapsed().as_nanos();
    u64::try_from(nanos).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        init_epoch();
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
