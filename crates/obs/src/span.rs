//! Structured spans with thread-local event sheets.
//!
//! Each thread that records spans owns a private *sheet* — an append-only
//! event buffer plus its lane id — so the hot path never takes a lock:
//! opening a span is one relaxed atomic load (is the recorder enabled?)
//! and one clock read; closing it is a second clock read and a push onto
//! the thread-local sheet. Sheets merge into the global recorder store
//! when their thread exits, which for the scoped worker threads spawned
//! by `flipper_data::exec` means at scope exit — the same worker-slot
//! lifetime the `CellCache` shard slots key off. The calling thread's
//! sheet is flushed explicitly by [`crate::recorder::drain`].
//!
//! Lanes: every recording thread gets a unique lane id from a global
//! counter (the thread that enables the recorder — normally `main` —
//! claims lane 0). Because a thread executes sequentially, spans within a
//! lane are properly nested by construction, which is what the trace
//! validator checks. Worker closures run under [`with_shard`], which tags
//! every span they record with the exec worker slot.

use crate::clock;
use crate::recorder;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, Ordering};

/// One completed span or instant event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Static event name, e.g. `mine.count`.
    pub name: &'static str,
    /// Optional dynamic label (sweep grid point, dataset name, …).
    pub label: Option<String>,
    /// Lane (Chrome trace `tid`): unique per recording thread.
    pub lane: u32,
    /// Start timestamp, nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds; 0 for instant events.
    pub dur_ns: u64,
    /// Small integer arguments (`shard`, `queue_ns`, counts, …).
    pub args: Vec<(&'static str, u64)>,
}

static NEXT_LANE: AtomicU32 = AtomicU32::new(0);

struct LocalSheet {
    lane: u32,
    shard: Option<u32>,
    events: Vec<SpanEvent>,
}

impl Drop for LocalSheet {
    fn drop(&mut self) {
        if !self.events.is_empty() {
            recorder::merge_events(std::mem::take(&mut self.events));
        }
    }
}

thread_local! {
    static SHEET: RefCell<LocalSheet> = RefCell::new(LocalSheet {
        lane: NEXT_LANE.fetch_add(1, Ordering::Relaxed),
        shard: None,
        events: Vec::new(),
    });
}

/// Claim a lane for the calling thread (called from `enable` so the
/// enabling thread gets the first lane).
pub(crate) fn touch_current_thread() {
    SHEET.with(|s| {
        let _ = s.borrow().lane;
    });
}

/// Flush the calling thread's sheet into the global store.
pub(crate) fn flush_current_thread() {
    SHEET.with(|s| {
        let mut sheet = s.borrow_mut();
        if !sheet.events.is_empty() {
            recorder::merge_events(std::mem::take(&mut sheet.events));
        }
    });
}

fn push_event(mut ev: SpanEvent) {
    // TLS destructors may have already run during thread shutdown; in that
    // case `with` panics, so use `try_with` and drop the event instead.
    let _ = SHEET.try_with(|s| {
        if let Ok(mut sheet) = s.try_borrow_mut() {
            ev.lane = sheet.lane;
            if let Some(shard) = sheet.shard {
                ev.args.push(("shard", u64::from(shard)));
            }
            sheet.events.push(ev);
        }
    });
}

/// An RAII span guard: records a complete event from creation to drop.
///
/// Obtained from [`span`] or [`span_labeled`]. When the recorder is
/// disabled the guard is inert — no clock reads, no allocation, no event.
#[must_use = "a span measures the scope it is alive in"]
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    label: Option<String>,
    start_ns: u64,
    args: Vec<(&'static str, u64)>,
    armed: bool,
}

impl Span {
    /// Attach a small integer argument to the span (no-op when inert).
    pub fn arg(mut self, key: &'static str, value: u64) -> Span {
        if self.armed {
            self.args.push((key, value));
        }
        self
    }

    /// Attach a small integer argument through a mutable reference.
    pub fn add_arg(&mut self, key: &'static str, value: u64) {
        if self.armed {
            self.args.push((key, value));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let end = clock::now_ns();
        push_event(SpanEvent {
            name: self.name,
            label: self.label.take(),
            lane: 0,
            start_ns: self.start_ns,
            dur_ns: end.saturating_sub(self.start_ns),
            args: std::mem::take(&mut self.args),
        });
    }
}

fn open(name: &'static str, label: Option<String>) -> Span {
    if !recorder::enabled() {
        return Span {
            name,
            label: None,
            start_ns: 0,
            args: Vec::new(),
            armed: false,
        };
    }
    Span {
        name,
        label,
        start_ns: clock::now_ns(),
        args: Vec::new(),
        armed: true,
    }
}

/// Open a span named `name`; it closes (and records) when dropped.
pub fn span(name: &'static str) -> Span {
    open(name, None)
}

/// Open a span with a dynamic label. The label is only cloned when the
/// recorder is enabled.
pub fn span_labeled(name: &'static str, label: &str) -> Span {
    if !recorder::enabled() {
        return open(name, None);
    }
    open(name, Some(label.to_string()))
}

/// Record an instant event (duration 0), e.g. a cache eviction.
pub fn event(name: &'static str, args: &[(&'static str, u64)]) {
    if !recorder::enabled() {
        return;
    }
    let now = clock::now_ns();
    push_event(SpanEvent {
        name,
        label: None,
        lane: 0,
        start_ns: now,
        dur_ns: 0,
        args: args.to_vec(),
    });
}

/// A timestamp for queue-wait measurement: nanoseconds since the epoch
/// when the recorder is enabled, 0 otherwise. Capture one before handing
/// work to a pool, then pass it to [`shard_span`] inside the worker.
pub fn stamp() -> u64 {
    if recorder::enabled() {
        clock::now_ns()
    } else {
        0
    }
}

/// Open an `exec.shard` span for worker slot `slot`.
///
/// `spawn_stamp` is a [`stamp`] captured just before the work was queued;
/// the difference to the span's start is recorded as `queue_ns` (the time
/// the chunk waited for its worker to start running).
pub fn shard_span(slot: u64, spawn_stamp: u64) -> Span {
    let mut sp = open("exec.shard", None);
    if sp.armed {
        sp.args.push(("slot", slot));
        if spawn_stamp != 0 {
            sp.args
                .push(("queue_ns", sp.start_ns.saturating_sub(spawn_stamp)));
        }
    }
    sp
}

/// Run `f` with all spans recorded by this thread tagged with exec worker
/// slot `slot` (a `shard` argument on every event). Restores the previous
/// tag on exit, so nested exec pools keep their own slots.
pub fn with_shard<T>(slot: u32, f: impl FnOnce() -> T) -> T {
    let prev = SHEET
        .try_with(|s| {
            if let Ok(mut sheet) = s.try_borrow_mut() {
                let prev = sheet.shard;
                sheet.shard = Some(slot);
                prev
            } else {
                None
            }
        })
        .unwrap_or(None);
    let out = f();
    let _ = SHEET.try_with(|s| {
        if let Ok(mut sheet) = s.try_borrow_mut() {
            sheet.shard = prev;
        }
    });
    out
}
