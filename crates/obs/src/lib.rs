//! # flipper-obs
//!
//! Zero-dependency observability substrate for the flipper mining
//! pipeline: a runtime-toggleable recorder with structured **spans**
//! (thread-local sheets, merged lock-free when exec worker scopes exit)
//! and a **metrics registry** (named counters, gauges and log-bucketed
//! integer histograms), with two exporters:
//!
//! * `flipper-trace/v1` — Chrome trace-event JSON (load in
//!   `chrome://tracing` or Perfetto), rendered by
//!   [`Capture::render_trace`] and validated by [`validate_trace`];
//! * `flipper-metrics/v1` — Prometheus-style text exposition, rendered by
//!   [`Capture::render_metrics`] (the future `flipperd /metrics` body).
//!
//! The recorder is **off by default**. Every instrumentation entry point
//! starts with one relaxed atomic load, so the disabled cost is a branch;
//! the determinism suite proves `flipper-results/v1` bytes are identical
//! with the recorder on or off at every thread count. The only module
//! allowed to read wall-clock time is [`mod@clock`], which joins
//! `flipper_core::stats::Stopwatch` as a sanctioned timer outside the
//! `flipper-lint` determinism scope; everything else in this crate is
//! inside that scope.
//!
//! ```
//! flipper_obs::enable();
//! {
//!     let _run = flipper_obs::span("demo.run").arg("items", 3);
//!     let _inner = flipper_obs::span("demo.step");
//!     flipper_obs::counter_add("demo_steps_total", 1);
//! }
//! let capture = flipper_obs::drain();
//! flipper_obs::disable();
//! assert_eq!(capture.events.len(), 2);
//! let trace = capture.render_trace();
//! flipper_obs::validate_trace(&trace).unwrap();
//! ```

pub mod clock;
pub mod metrics;
pub mod recorder;
pub mod span;
pub mod trace;

pub use metrics::{Histogram, MetricsRegistry, HIST_BUCKETS};
pub use recorder::{
    counter_add, disable, drain, enable, enabled, gauge_set, observe, Capture, PhaseRow,
};
pub use span::{event, shard_span, span, span_labeled, stamp, with_shard, Span, SpanEvent};
pub use trace::{
    parse_json, render_chrome_trace, validate_trace, Json, TraceError, TraceStats, TRACE_SCHEMA,
};

#[cfg(test)]
mod tests {
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// The recorder is process-global, so tests that toggle it must not
    /// interleave.
    pub fn recorder_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(Mutex::default)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let _guard = recorder_lock();
        crate::disable();
        let _ = crate::drain();
        {
            let _sp = crate::span("x");
            crate::counter_add("c", 1);
            crate::observe("h", 2);
            crate::event("e", &[]);
        }
        let capture = crate::drain();
        assert!(capture.events.is_empty());
        assert!(capture.metrics.is_empty());
    }

    #[test]
    fn spans_nest_and_drain_in_start_order() {
        let _guard = recorder_lock();
        crate::enable();
        let _ = crate::drain();
        {
            let _outer = crate::span("outer");
            {
                let _inner = crate::span_labeled("inner", "first");
            }
            {
                let _inner = crate::span("inner");
            }
        }
        crate::event("mark", &[("k", 7)]);
        let capture = crate::drain();
        crate::disable();
        assert_eq!(capture.events.len(), 4);
        // Sorted by start: outer first even though it closed last.
        assert_eq!(capture.events[0].name, "outer");
        assert_eq!(capture.events[1].name, "inner");
        assert_eq!(capture.events[1].label.as_deref(), Some("first"));
        let outer = &capture.events[0];
        for inner in &capture.events[1..3] {
            assert!(inner.start_ns >= outer.start_ns);
            assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
        }
        assert_eq!(capture.events[3].name, "mark");
        assert_eq!(capture.events[3].dur_ns, 0);
        // And the rendered trace passes its own validator.
        crate::validate_trace(&capture.render_trace()).unwrap();
    }

    #[test]
    fn with_shard_tags_spans_and_restores() {
        let _guard = recorder_lock();
        crate::enable();
        let _ = crate::drain();
        crate::with_shard(3, || {
            let _sp = crate::span("work");
        });
        {
            let _sp = crate::span("after");
        }
        let capture = crate::drain();
        crate::disable();
        let work = capture.events.iter().find(|e| e.name == "work").unwrap();
        assert!(work.args.contains(&("shard", 3)));
        let after = capture.events.iter().find(|e| e.name == "after").unwrap();
        assert!(after.args.iter().all(|(k, _)| *k != "shard"));
    }

    #[test]
    fn spans_survive_a_caught_panic_and_keep_recording() {
        let _guard = recorder_lock();
        crate::enable();
        let _ = crate::drain();
        // flipper-guard traps worker panics with catch_unwind; any spans
        // open at the panic site must close during the unwind and leave the
        // thread's sheet usable afterwards.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _outer = crate::span("guarded");
            let _inner = crate::span_labeled("doomed", "unwinds");
            panic!("injected worker panic");
        }));
        assert!(caught.is_err());
        {
            let _sp = crate::span("after");
        }
        let capture = crate::drain();
        crate::disable();
        let names: Vec<&str> = capture.events.iter().map(|e| e.name).collect();
        for name in ["guarded", "doomed", "after"] {
            assert!(names.contains(&name), "missing span {name}: {names:?}");
        }
        // The unwound spans still nest properly in the rendered trace.
        crate::validate_trace(&capture.render_trace()).unwrap();
    }

    #[test]
    fn metrics_flow_through_drain() {
        let _guard = recorder_lock();
        crate::enable();
        let _ = crate::drain();
        crate::counter_add("flipper_demo_total", 2);
        crate::counter_add("flipper_demo_total", 3);
        crate::gauge_set("flipper_demo_gauge", -1);
        crate::observe("flipper_demo_hist", 9);
        let capture = crate::drain();
        crate::disable();
        assert_eq!(capture.metrics.counter("flipper_demo_total"), Some(5));
        assert_eq!(capture.metrics.gauge("flipper_demo_gauge"), Some(-1));
        assert_eq!(
            capture
                .metrics
                .histogram("flipper_demo_hist")
                .unwrap()
                .count(),
            1
        );
        let text = capture.render_metrics();
        assert!(text.starts_with("# flipper-metrics/v1\n"));
        assert!(text.contains("flipper_demo_total 5"));
        // Drain resets.
        assert!(crate::drain().metrics.is_empty());
    }

    #[test]
    fn phase_rows_aggregate_by_name() {
        let _guard = recorder_lock();
        crate::enable();
        let _ = crate::drain();
        for _ in 0..3 {
            let _sp = crate::span("phase.a");
        }
        {
            let _sp = crate::span("phase.b");
        }
        let capture = crate::drain();
        crate::disable();
        let rows = capture.phase_rows();
        assert_eq!(rows.len(), 2);
        let a = rows.iter().find(|r| r.name == "phase.a").unwrap();
        assert_eq!(a.calls, 3);
    }

    #[test]
    fn shard_span_records_queue_wait() {
        let _guard = recorder_lock();
        crate::enable();
        let _ = crate::drain();
        let stamp = crate::stamp();
        {
            let _sp = crate::shard_span(2, stamp);
        }
        let capture = crate::drain();
        crate::disable();
        let ev = &capture.events[0];
        assert_eq!(ev.name, "exec.shard");
        assert!(ev.args.iter().any(|(k, _)| *k == "slot"));
        assert!(ev.args.iter().any(|(k, _)| *k == "queue_ns"));
    }
}
