//! Validate a `flipper-trace/v1` file: parses the JSON with the built-in
//! parser, checks per-lane span nesting, and optionally asserts that a
//! set of span names is present.
//!
//! ```text
//! cargo run -p flipper-obs --example validate_trace -- TRACE.json [--expect name1,name2,...]
//! ```
//!
//! Exit code 0 when the trace is valid (and all expected names are
//! present), 1 otherwise. Used by `scripts/verify.sh` on the trace
//! emitted by a smoke `flipper mine --trace`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut expect: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--expect" => {
                if i + 1 >= args.len() {
                    eprintln!("--expect needs a comma-separated name list");
                    return ExitCode::FAILURE;
                }
                expect.extend(args[i + 1].split(',').map(|s| s.trim().to_string()));
                i += 2;
            }
            other => {
                if path.replace(other.to_string()).is_some() {
                    eprintln!("usage: validate_trace TRACE.json [--expect a,b,c]");
                    return ExitCode::FAILURE;
                }
                i += 1;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: validate_trace TRACE.json [--expect a,b,c]");
        return ExitCode::FAILURE;
    };

    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("validate_trace: cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let stats = match flipper_obs::validate_trace(&text) {
        Ok(stats) => stats,
        Err(err) => {
            eprintln!("validate_trace: {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let missing: Vec<&String> = expect
        .iter()
        .filter(|n| !stats.names.contains(n.as_str()))
        .collect();
    if !missing.is_empty() {
        eprintln!(
            "validate_trace: {path}: missing expected span names: {}",
            missing
                .iter()
                .map(|s| s.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::FAILURE;
    }
    println!(
        "validate_trace: {path}: OK ({} events, {} lanes, {} span names)",
        stats.events,
        stats.lanes,
        stats.names.len()
    );
    ExitCode::SUCCESS
}
