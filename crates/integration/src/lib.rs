//! Cross-crate integration tests and the repository's runnable examples.
//!
//! This crate intentionally exports nothing: its value is in `tests/`
//! (differential, planted-ground-truth and surrogate checks) and in the
//! `examples/` directory at the repository root, which its manifest wires
//! into Cargo example targets.
