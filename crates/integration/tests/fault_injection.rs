//! Release-gated deterministic fault-injection suite.
//!
//! `scripts/verify.sh` re-runs this suite under `--release`. It arms seeded
//! [`flipper_guard::fault::FaultPlan`]s at every instrumented site —
//! `store.read.section`, `store.write.section`, `exec.chunk` — across the
//! concrete counting engines × threads {1, 4}, and proves the robustness
//! invariant end to end:
//!
//! * every injected fault surfaces as a **typed error** or a
//!   **quarantine-flagged degraded result** — never a panic escaping the
//!   library, never silent corruption;
//! * with the guard machinery engaged but inert (armed plan whose triggers
//!   never fire, live cancel token), `flipper-results/v1` bytes on
//!   undamaged data are **byte-identical** to an unguarded run.
//!
//! Fault parameters derive from the plan seed, so any failure here
//! reproduces from the `(seed, site, hit, kind)` tuple in the assertion
//! message alone.

use flipper_api::{
    CancelToken, FlipperConfig, FlipperError, JsonWriter, MinSupports, ResultSink, Session,
    Thresholds,
};
use flipper_core::MiningResult;
use flipper_data::CountingEngine;
use flipper_datagen::planted::PlantedParams;
use flipper_guard::fault::{
    arm, FaultKind, FaultPlan, SITE_EXEC_CHUNK, SITE_STORE_READ, SITE_STORE_WRITE,
};
use flipper_store::{salvage_view, stream_view, write_fbin, FbinReader, FbinWriter, StoreError};
use flipper_taxonomy::Taxonomy;
use std::io::Cursor;
use std::panic::{catch_unwind, AssertUnwindSafe};

const SEED: u64 = 0xFA17_1A6E;
const THREADS: [usize; 2] = [1, 4];

fn planted() -> flipper_data::format::Dataset {
    flipper_api::Generator::Planted(PlantedParams::default()).dataset()
}

fn fbin_bytes() -> Vec<u8> {
    let ds = planted();
    let mut out = Vec::new();
    write_fbin(&mut out, &ds).expect("serialize planted dataset");
    out
}

/// The planted dataset as a *multi-chunk* FBIN file, so quarantining one
/// chunk section still leaves a mineable remainder.
fn fbin_bytes_chunked() -> Vec<u8> {
    let ds = planted();
    let mut out = Vec::new();
    let mut w = FbinWriter::with_chunk_size(&mut out, &ds.taxonomy, 512).expect("writer");
    for row in ds.db.iter() {
        w.write_transaction(row).expect("write transaction");
    }
    w.finish().expect("finish");
    out
}

/// The planted calibration the façade tests mine with.
fn cfg(engine: CountingEngine, threads: usize) -> FlipperConfig {
    FlipperConfig {
        thresholds: Thresholds::new(0.6, 0.35),
        min_support: MinSupports::Counts(vec![5]),
        engine,
        threads,
        ..Default::default()
    }
}

/// Render one result as `flipper-results/v1` bytes — the byte-identity
/// currency of the whole suite.
fn report_bytes(tax: &Taxonomy, config: &FlipperConfig, result: &MiningResult) -> Vec<u8> {
    let mut sink = JsonWriter::new(Vec::new());
    sink.consume("mine", tax, config, result).expect("consume");
    sink.finish().expect("finish");
    sink.into_inner()
}

/// Strict FBIN ingestion of in-memory bytes.
fn read_strict(
    bytes: &[u8],
    threads: usize,
) -> Result<(Taxonomy, flipper_data::MultiLevelView), StoreError> {
    let reader = FbinReader::new(Cursor::new(bytes))?;
    stream_view(reader, threads)
}

/// Every store-read fault, strict and salvage, across thread counts: typed
/// error or degraded-flagged result, never a panic, never silent loss.
#[test]
fn store_read_faults_are_typed_or_quarantined_never_silent() {
    let bytes = fbin_bytes_chunked();
    let baseline = read_strict(&bytes, 1).expect("intact file reads");
    // Section hit 3 is the second chunk section of the multi-chunk file:
    // dict = 1, chunks = 2.., end last. Quarantining it leaves a remainder.
    let kinds = [
        FaultKind::Io,
        FaultKind::BitFlip,
        FaultKind::Truncate,
        FaultKind::Panic, // store sites demote Panic to Io: storage never panics
    ];
    for threads in THREADS {
        for kind in kinds {
            let label = format!(
                "site=store.read hit=3 kind={} threads={threads}",
                kind.name()
            );
            // Strict reads refuse the fault with a typed StoreError.
            let strict = catch_unwind(AssertUnwindSafe(|| {
                let _armed = arm(FaultPlan::new(SEED).inject(SITE_STORE_READ, 3, kind));
                read_strict(&bytes, threads)
            }))
            .unwrap_or_else(|_| panic!("{label}: strict read panicked"));
            assert!(strict.is_err(), "{label}: strict read must fail typed");

            // Salvage reads either quarantine (corruption) or still fail
            // typed (I/O faults are never salvaged away) — and whatever
            // survives must be flagged degraded, not passed off as whole.
            let salvage = catch_unwind(AssertUnwindSafe(|| {
                let _armed = arm(FaultPlan::new(SEED).inject(SITE_STORE_READ, 3, kind));
                salvage_view(Cursor::new(&bytes[..]), threads)
            }))
            .unwrap_or_else(|_| panic!("{label}: salvage read panicked"));
            match (kind, salvage) {
                (FaultKind::Io | FaultKind::Panic, Err(StoreError::Io(_))) => {}
                (FaultKind::Io | FaultKind::Panic, other) => {
                    panic!("{label}: salvage must surface injected I/O, got {other:?}")
                }
                (_, Ok((_, view, report))) => {
                    assert!(
                        report.is_degraded(),
                        "{label}: salvage of corrupted bytes must be flagged: {report:?}"
                    );
                    assert!(
                        view.num_transactions() < baseline.1.num_transactions(),
                        "{label}: the quarantined chunk's rows must be dropped, not invented"
                    );
                }
                (_, Err(e)) => panic!("{label}: salvage should quarantine, got {e}"),
            }
        }

        // Latency stalls but corrupts nothing: bytes decode identically.
        let _armed = arm(FaultPlan::new(SEED).inject(SITE_STORE_READ, 3, FaultKind::Latency));
        let (tax, view) = read_strict(&bytes, threads).expect("latency fault is benign");
        assert_eq!(tax, baseline.0, "latency must not perturb the taxonomy");
        assert_eq!(
            view.num_transactions(),
            baseline.1.num_transactions(),
            "latency must not perturb the view"
        );
    }
}

/// Every store-write fault: typed error (or, for latency, byte-identical
/// output), never a panic, never a silently short file.
#[test]
fn store_write_faults_fail_typed() {
    let ds = planted();
    let clean = fbin_bytes();
    for kind in [FaultKind::Io, FaultKind::Panic] {
        for hit in [1u64, 2] {
            let label = format!("site=store.write hit={hit} kind={}", kind.name());
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let _armed = arm(FaultPlan::new(SEED).inject(SITE_STORE_WRITE, hit, kind));
                let mut out = Vec::new();
                write_fbin(&mut out, &ds)
            }))
            .unwrap_or_else(|_| panic!("{label}: writer panicked"));
            assert!(
                matches!(outcome, Err(StoreError::Io(_))),
                "{label}: write must fail with a typed I/O error, got {outcome:?}"
            );
        }
    }
    let _armed = arm(FaultPlan::new(SEED).inject(SITE_STORE_WRITE, 1, FaultKind::Latency));
    let mut out = Vec::new();
    write_fbin(&mut out, &ds).expect("latency fault is benign");
    assert_eq!(out, clean, "latency must not perturb written bytes");
}

/// Injected worker panics at the exec.chunk site surface as
/// `FlipperError::Panicked` through the guarded mining path — for every
/// concrete engine at 1 and 4 threads — and latency faults change nothing.
/// Combinations that never shard (sequential runs, sub-threshold batches)
/// legitimately never visit the site; they must then produce bytes
/// identical to the unguarded baseline, proven via the plan's fire log.
#[test]
fn exec_chunk_faults_surface_typed_across_engines_and_threads() {
    let session = Session::open(flipper_api::Generator::Planted(PlantedParams::default()))
        .expect("open planted session");
    let token = CancelToken::new();
    let mut fired_somewhere = false;
    for engine in CountingEngine::CONCRETE {
        for threads in THREADS {
            let config = cfg(engine, threads);
            let label = format!("site=exec.chunk engine={} threads={threads}", engine.name());
            let baseline = session.mine(&config).expect("unguarded baseline");
            let baseline_bytes = report_bytes(session.taxonomy(), &config, &baseline);

            // A panic on the first worker chunk becomes a typed error; the
            // pool joins every shard before the panic is rethrown, so the
            // trap at the API boundary is the only place it surfaces.
            let armed = arm(FaultPlan::new(SEED).inject(SITE_EXEC_CHUNK, 1, FaultKind::Panic));
            let outcome = catch_unwind(AssertUnwindSafe(|| session.mine_guarded(&config, &token)))
                .unwrap_or_else(|_| panic!("{label}: panic escaped the guard"));
            let fired = !armed.fired().is_empty();
            drop(armed);
            fired_somewhere |= fired;
            match outcome {
                Err(FlipperError::Panicked { message, .. }) => {
                    assert!(fired, "{label}: Panicked surfaced without a fired fault");
                    assert!(
                        message.contains("injected fault"),
                        "{label}: panic message should carry the injection label: {message:?}"
                    );
                }
                Ok(result) => {
                    assert!(
                        !fired,
                        "{label}: the injected panic fired yet mining succeeded"
                    );
                    assert_eq!(
                        report_bytes(session.taxonomy(), &config, &result),
                        baseline_bytes,
                        "{label}: unfired guard must be byte-invisible"
                    );
                }
                Err(other) => panic!("{label}: expected Panicked, got {other}"),
            }

            // A latency stall at the same site perturbs nothing: the
            // guarded run's report bytes match the unguarded baseline.
            let _armed = arm(FaultPlan::new(SEED).inject(SITE_EXEC_CHUNK, 1, FaultKind::Latency));
            let stalled = session
                .mine_guarded(&config, &token)
                .expect("latency fault is benign");
            assert_eq!(
                report_bytes(session.taxonomy(), &config, &stalled),
                baseline_bytes,
                "{label}: latency fault must not perturb result bytes"
            );
        }
    }
    assert!(
        fired_somewhere,
        "no engine × thread combination ever visited exec.chunk — the site is dead"
    );
}

/// The whole guard apparatus engaged but inert — armed plan whose triggers
/// never fire, live cancel token, salvage-capable reader on an intact file
/// — produces `flipper-results/v1` bytes identical to a plain run.
#[test]
fn inert_guard_is_byte_invisible() {
    let bytes = fbin_bytes();
    let token = CancelToken::new();
    for threads in THREADS {
        let config = cfg(CountingEngine::Auto, threads);

        // Plain path: strict read, unguarded mine.
        let (tax, view) = read_strict(&bytes, threads).expect("strict read");
        let plain = flipper_core::mine_with_view(&tax, &view, &config);
        let plain_bytes = report_bytes(&tax, &config, &plain);

        // Guarded path: salvage read of the intact file, armed-but-inert
        // plan, live token.
        let _armed = arm(FaultPlan::new(SEED)
            .inject(SITE_STORE_READ, u64::MAX, FaultKind::Io)
            .inject(SITE_EXEC_CHUNK, u64::MAX, FaultKind::Panic));
        let (gtax, gview, report) =
            salvage_view(Cursor::new(&bytes[..]), threads).expect("salvage read");
        assert!(
            !report.is_degraded(),
            "intact file must not be flagged: {report:?}"
        );
        let guarded = flipper_core::mine_with_view_guarded(&gtax, &gview, &config, &token)
            .expect("guarded mine");
        assert_eq!(
            report_bytes(&gtax, &config, &guarded),
            plain_bytes,
            "threads={threads}: inert guard must be byte-invisible in flipper-results/v1"
        );
    }
}
