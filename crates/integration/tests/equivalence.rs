//! Differential tests: every pruning variant of Flipper must produce
//! exactly the brute-force set of flipping patterns.
//!
//! This is the strongest correctness guarantee in the repository: the
//! paper's pruning theorems are exercised against exhaustive enumeration on
//! randomized databases, taxonomy shapes, thresholds and measures.

use flipper_core::{mine, verify::brute_force, FlipperConfig, MinSupports, PruningConfig};
use flipper_data::rng::{Rng, Xoshiro256pp};
use flipper_data::TransactionDb;
use flipper_measures::{Measure, Thresholds};
use flipper_taxonomy::{NodeId, Taxonomy};

/// Random database over a uniform taxonomy.
fn random_db(tax: &Taxonomy, n: usize, max_w: usize, seed: u64) -> TransactionDb {
    let leaves = tax.leaves();
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let rows: Vec<Vec<NodeId>> = (0..n)
        .map(|_| {
            let w = rng.gen_range(1..=max_w);
            (0..w)
                .map(|_| leaves[rng.gen_range(0..leaves.len())])
                .collect()
        })
        .collect();
    TransactionDb::new(rows).expect("rows non-empty")
}

fn leaf_sets(patterns: &[flipper_core::FlippingPattern]) -> Vec<String> {
    let mut v: Vec<String> = patterns
        .iter()
        .map(|p| format!("{}", p.leaf_itemset))
        .collect();
    v.sort();
    v
}

fn check_all_variants(tax: &Taxonomy, db: &TransactionDb, cfg: &FlipperConfig) {
    let expected = leaf_sets(&brute_force(tax, db, cfg));
    for pruning in PruningConfig::VARIANTS {
        let got = leaf_sets(&mine(tax, db, &cfg.clone().with_pruning(pruning)).patterns);
        assert_eq!(
            got,
            expected,
            "variant {} disagrees with brute force (measure {:?}, γ={}, ε={})",
            pruning.name(),
            cfg.measure,
            cfg.thresholds.gamma,
            cfg.thresholds.epsilon,
        );
    }
}

#[test]
fn equivalence_small_grid() {
    // A deterministic grid of shapes × thresholds; fast enough for CI.
    for (roots, fanout, height) in [(2usize, 2usize, 2usize), (3, 2, 3), (2, 3, 2)] {
        let tax = Taxonomy::uniform(roots, fanout, height).unwrap();
        for seed in 0..4u64 {
            let db = random_db(&tax, 60, 4, seed);
            for (gamma, eps) in [(0.5, 0.2), (0.7, 0.4), (0.3, 0.1)] {
                let cfg = FlipperConfig::new(
                    Thresholds::new(gamma, eps),
                    MinSupports::Counts(vec![2, 1, 1]),
                );
                check_all_variants(&tax, &db, &cfg);
            }
        }
    }
}

#[test]
fn equivalence_all_measures() {
    let tax = Taxonomy::uniform(3, 2, 3).unwrap();
    let db = random_db(&tax, 80, 5, 99);
    for measure in Measure::ALL {
        let cfg = FlipperConfig::new(
            Thresholds::new(0.55, 0.25),
            MinSupports::Counts(vec![2, 1, 1]),
        )
        .with_measure(measure);
        check_all_variants(&tax, &db, &cfg);
    }
}

#[test]
fn equivalence_with_scan_engine() {
    let tax = Taxonomy::uniform(3, 2, 2).unwrap();
    let db = random_db(&tax, 70, 4, 7);
    let cfg = FlipperConfig::new(Thresholds::new(0.5, 0.2), MinSupports::Counts(vec![1]))
        .with_engine(flipper_data::CountingEngine::Scan);
    check_all_variants(&tax, &db, &cfg);
}

#[test]
fn equivalence_with_higher_min_support() {
    let tax = Taxonomy::uniform(3, 2, 3).unwrap();
    for seed in 0..3u64 {
        let db = random_db(&tax, 120, 5, 1000 + seed);
        let cfg = FlipperConfig::new(
            Thresholds::new(0.6, 0.3),
            MinSupports::Fractions(vec![0.2, 0.1, 0.05]),
        );
        check_all_variants(&tax, &db, &cfg);
    }
}

/// Randomized equivalence: shapes, sizes, thresholds and seeds drawn by a
/// fixed meta-RNG (ported from a 48-case proptest); every variant must match
/// brute force exactly.
#[test]
fn equivalence_randomized() {
    let mut meta = Xoshiro256pp::seed_from_u64(0xE901_44A7);
    let mut cases = 0;
    while cases < 48 {
        let roots = meta.gen_range(2usize..4);
        let fanout = meta.gen_range(1usize..3);
        let height = meta.gen_range(2usize..4);
        let n = meta.gen_range(20usize..100);
        let max_w = meta.gen_range(2usize..6);
        let seed = meta.gen_range(0u64..10_000);
        let gamma_pct = meta.gen_range(35u32..85);
        let eps_gap_pct = meta.gen_range(5u32..30);
        let theta = meta.gen_range(1u64..4);
        let gamma = gamma_pct as f64 / 100.0;
        let eps = gamma - (eps_gap_pct as f64 / 100.0);
        if eps < 0.0 {
            continue;
        }
        cases += 1;
        let tax = Taxonomy::uniform(roots, fanout, height).unwrap();
        let db = random_db(&tax, n, max_w, seed);
        let cfg = FlipperConfig::new(
            Thresholds::new(gamma, eps),
            MinSupports::Counts(vec![theta * 2, theta, 1]),
        );
        let expected = leaf_sets(&brute_force(&tax, &db, &cfg));
        for pruning in PruningConfig::VARIANTS {
            let got = leaf_sets(&mine(&tax, &db, &cfg.clone().with_pruning(pruning)).patterns);
            assert_eq!(
                got,
                expected,
                "variant {} diverged (roots={}, fanout={}, height={}, seed={})",
                pruning.name(),
                roots,
                fanout,
                height,
                seed
            );
        }
    }
}

/// Execution-layer differential sweep: `Auto`, `Tidset`, `Bitset` and
/// `Scan`, each at 1 and 4 worker threads, must produce `MiningResult`s
/// identical to the sequential tidset baseline — same patterns, same
/// per-cell summaries, same run statistics — on both sparse and dense
/// seeded datasets. Engine-independent counters must match exactly; the
/// counting-engine stats themselves must additionally be thread-invariant
/// within each engine.
#[test]
fn equivalence_engines_and_threads() {
    use flipper_data::CountingEngine;
    // (name, taxonomy, transactions, max width): a sparse shape (narrow
    // txns over many leaves) and a dense one (wide txns over few leaves).
    let sparse_tax = Taxonomy::uniform(3, 3, 3).unwrap();
    let dense_tax = Taxonomy::uniform(2, 2, 2).unwrap();
    let cases = [
        ("sparse", &sparse_tax, 300usize, 3usize, 0x5EED_0001u64),
        ("dense", &dense_tax, 200, 6, 0x5EED_0002u64),
    ];
    for (name, tax, n, max_w, seed) in cases {
        let db = random_db(tax, n, max_w, seed);
        let cfg = FlipperConfig::new(
            Thresholds::new(0.5, 0.25),
            MinSupports::Counts(vec![4, 2, 1]),
        );
        let baseline = mine(tax, &db, &cfg); // sequential tidset
        for engine in [
            CountingEngine::Auto,
            CountingEngine::Tidset,
            CountingEngine::Bitset,
            CountingEngine::Scan,
        ] {
            let mut engine_counter_stats = None;
            for threads in [1usize, 4] {
                let r = mine(
                    tax,
                    &db,
                    &cfg.clone().with_engine(engine).with_threads(threads),
                );
                let ctx = format!("{name} {engine:?} threads={threads}");
                assert_eq!(r.patterns, baseline.patterns, "{ctx}: patterns");
                assert_eq!(r.cells, baseline.cells, "{ctx}: cell summaries");
                let (s, b) = (&r.stats, &baseline.stats);
                assert_eq!(s.candidates_generated, b.candidates_generated, "{ctx}");
                assert_eq!(s.frequent_found, b.frequent_found, "{ctx}");
                assert_eq!(s.positive_found, b.positive_found, "{ctx}");
                assert_eq!(s.negative_found, b.negative_found, "{ctx}");
                assert_eq!(s.pruned_by_sibp, b.pruned_by_sibp, "{ctx}");
                assert_eq!(s.pruned_by_support, b.pruned_by_support, "{ctx}");
                assert_eq!(s.cells_evaluated, b.cells_evaluated, "{ctx}");
                assert_eq!(s.tpg_cap, b.tpg_cap, "{ctx}");
                assert_eq!(s.peak_resident_itemsets, b.peak_resident_itemsets, "{ctx}");
                assert_eq!(
                    s.counter.candidates_counted, b.counter.candidates_counted,
                    "{ctx}"
                );
                // Counting-engine work stats are engine-specific but must
                // not depend on the thread count.
                match engine_counter_stats {
                    None => engine_counter_stats = Some(s.counter),
                    Some(expect) => {
                        assert_eq!(s.counter, expect, "{ctx}: counter stats");
                    }
                }
                if engine == CountingEngine::Tidset {
                    assert_eq!(s.counter, b.counter, "{ctx}: tidset counter stats");
                }
            }
        }
    }
}

/// Chains reported by the miner carry the exact supports and
/// correlations a direct recount produces.
#[test]
fn reported_chains_are_exact() {
    for seed in 0..64u64 {
        let tax = Taxonomy::uniform(2, 2, 3).unwrap();
        let db = random_db(&tax, 50, 4, seed);
        let cfg = FlipperConfig::new(Thresholds::new(0.5, 0.25), MinSupports::Counts(vec![1]));
        let result = mine(&tax, &db, &cfg);
        let view = flipper_data::MultiLevelView::build(&db, &tax);
        for p in &result.patterns {
            assert_eq!(p.validate(), Ok(()), "seed {seed}");
            for lv in &p.chain {
                let recount = view
                    .level(lv.level)
                    .transactions()
                    .filter(|t| lv.itemset.items().iter().all(|it| t.contains(it)))
                    .count() as u64;
                assert_eq!(lv.support, recount, "seed {seed}");
            }
        }
    }
}
