//! Façade acceptance tests: the `flipper-api` session surface must be a
//! zero-cost relabeling of the single-shot mining paths, and its
//! machine-readable output must be byte-stable.
//!
//! * `session_equals_single_shot_paths` — `Session::mine` ==
//!   `mine_with_view` == `mine` (patterns, cell summaries, deterministic
//!   statistics) on quest + planted datasets, for every pruning variant ×
//!   engine × thread count.
//! * `sweep_points_equal_solo_runs` — every labeled sweep point equals the
//!   same configuration run alone, at every job count.
//! * `results_v1_golden` — the `flipper-results/v1` JSON document is
//!   byte-identical across thread counts {1, 4} and matches the committed
//!   golden file (set `UPDATE_GOLDEN=1` to re-bless after an intentional
//!   schema change).

use flipper_api::{
    Dataset, FlipperConfig, Generator, JsonWriter, MinSupports, PruningConfig, ResultSink, Session,
    Thresholds,
};
use flipper_core::{mine, mine_with_view, MiningResult};
use flipper_data::{CountingEngine, MultiLevelView};
use flipper_datagen::planted::PlantedParams;
use flipper_datagen::quest::QuestParams;
use flipper_taxonomy::{RebalancePolicy, Taxonomy};

/// Equality of everything deterministic in a result (elapsed wall-clock is
/// the one legitimately varying field).
fn assert_results_equal(a: &MiningResult, b: &MiningResult, ctx: &str) {
    assert_eq!(a.patterns, b.patterns, "{ctx}: patterns");
    assert_eq!(a.cells, b.cells, "{ctx}: cell summaries");
    assert_eq!(
        a.stats.candidates_generated, b.stats.candidates_generated,
        "{ctx}: candidates"
    );
    assert_eq!(
        a.stats.frequent_found, b.stats.frequent_found,
        "{ctx}: frequent"
    );
    assert_eq!(
        a.stats.peak_resident_itemsets, b.stats.peak_resident_itemsets,
        "{ctx}: memory proxy"
    );
    assert_eq!(a.stats.counter, b.stats.counter, "{ctx}: counter stats");
}

fn cases() -> Vec<(&'static str, Dataset, FlipperConfig)> {
    let quest =
        Generator::Quest(QuestParams::default().with_transactions(300).with_seed(11)).dataset();
    let planted = Generator::Planted(PlantedParams::default()).dataset();
    vec![
        (
            "quest",
            quest,
            FlipperConfig::new(
                Thresholds::new(0.5, 0.25),
                MinSupports::Counts(vec![6, 3, 2, 1]),
            ),
        ),
        (
            "planted",
            planted,
            FlipperConfig::new(Thresholds::new(0.6, 0.35), MinSupports::Counts(vec![5])),
        ),
    ]
}

#[test]
fn session_equals_single_shot_paths() {
    for (name, ds, base) in cases() {
        let session = Session::open(&ds).unwrap();
        let view = MultiLevelView::build(&ds.db, &ds.taxonomy);
        for pruning in PruningConfig::VARIANTS {
            for engine in [
                CountingEngine::Tidset,
                CountingEngine::Bitset,
                CountingEngine::Auto,
            ] {
                for threads in [1usize, 4] {
                    let cfg = base
                        .clone()
                        .with_pruning(pruning)
                        .with_engine(engine)
                        .with_threads(threads);
                    let ctx = format!("{name} {} {engine:?} threads={threads}", pruning.name());
                    let via_session = session.mine(&cfg).unwrap();
                    let via_view = mine_with_view(&ds.taxonomy, &view, &cfg);
                    let via_mine = mine(&ds.taxonomy, &ds.db, &cfg);
                    assert_results_equal(&via_session, &via_view, &ctx);
                    assert_results_equal(&via_session, &via_mine, &ctx);
                }
            }
        }
    }
}

#[test]
fn sweep_points_equal_solo_runs() {
    for (name, ds, base) in cases() {
        let session = Session::open(&ds).unwrap();
        for jobs in [1usize, 4] {
            // Unseeded, duplicate-free sweep: every deterministic statistic
            // (including engine counters) matches the solo run exactly.
            let strict = session
                .sweep()
                .with_jobs(jobs)
                .with_seeding(false)
                .pruning_variants(&base)
                .run()
                .unwrap();
            assert_eq!(strict.len(), 4);
            for run in &strict {
                assert_eq!(run.duplicate_of, None, "{name}: distinct configs");
                let solo = session.mine(&run.config).unwrap();
                assert_results_equal(
                    &run.result,
                    &solo,
                    &format!("{name} jobs={jobs} {}", run.label),
                );
            }
            // Seeded sweep with an engine × thread tail: those points only
            // differ in execution knobs, so they are served as duplicates —
            // and every point's *results* still equal the solo run (seeding
            // and dedup change counting cost, never patterns or cells).
            let runs = session
                .sweep()
                .with_jobs(jobs)
                .pruning_variants(&base)
                .engine_threads(&base, &[CountingEngine::Auto], &[1, 2])
                .run()
                .unwrap();
            assert_eq!(runs.len(), 6);
            for run in &runs[4..] {
                assert_eq!(
                    run.duplicate_of.as_deref(),
                    Some(base.pruning.name()),
                    "{name}: engine/threads points repeat the base config"
                );
            }
            for run in &runs {
                let solo = session.mine(&run.config).unwrap();
                let ctx = format!("{name} jobs={jobs} {}", run.label);
                assert_eq!(run.result.patterns, solo.patterns, "{ctx}: patterns");
                assert_eq!(run.result.cells, solo.cells, "{ctx}: cell summaries");
            }
        }
    }
}

/// The Fig. 4 toy dataset of the paper — ten transactions, fully
/// deterministic, small enough for a readable golden file.
fn fig4_dataset() -> Dataset {
    let taxonomy = Taxonomy::from_edges(
        [
            ("a", ""),
            ("b", ""),
            ("a1", "a"),
            ("a2", "a"),
            ("b1", "b"),
            ("b2", "b"),
            ("a11", "a1"),
            ("a12", "a1"),
            ("a21", "a2"),
            ("a22", "a2"),
            ("b11", "b1"),
            ("b12", "b1"),
            ("b21", "b2"),
            ("b22", "b2"),
        ],
        RebalancePolicy::RequireBalanced,
    )
    .unwrap();
    let g = |s: &str| taxonomy.node_by_name(s).unwrap();
    let db = flipper_data::TransactionDb::new(vec![
        vec![g("a11"), g("a22"), g("b11"), g("b22")],
        vec![g("a11"), g("a21"), g("b11")],
        vec![g("a12"), g("a21")],
        vec![g("a12"), g("a22"), g("b21")],
        vec![g("a12"), g("a22"), g("b21")],
        vec![g("a12"), g("a21"), g("b22")],
        vec![g("a21"), g("b12")],
        vec![g("b12"), g("b21"), g("b22")],
        vec![g("b12"), g("b21")],
        vec![g("a22"), g("b12"), g("b22")],
    ])
    .unwrap();
    Dataset { taxonomy, db }
}

/// Render the two-run (full + basic pruning) report at a given thread
/// count.
fn render_fig4_report(threads: usize) -> Vec<u8> {
    let session = Session::open(fig4_dataset()).unwrap();
    let base = FlipperConfig::new(Thresholds::new(0.6, 0.35), MinSupports::Counts(vec![1]))
        .with_threads(threads);
    let mut json = JsonWriter::new(Vec::new());
    for pruning in [PruningConfig::FULL, PruningConfig::BASIC] {
        let cfg = base.clone().with_pruning(pruning);
        let result = session.mine(&cfg).unwrap();
        json.consume(pruning.name(), session.taxonomy(), &cfg, &result)
            .unwrap();
    }
    json.finish().unwrap();
    json.into_inner()
}

#[test]
fn results_v1_golden() {
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/results_v1.json");
    let rendered = render_fig4_report(1);

    // Byte-identical across thread counts: the schema excludes execution
    // knobs and timings by design.
    assert_eq!(
        rendered,
        render_fig4_report(4),
        "flipper-results/v1 must not depend on the thread count"
    );

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read(golden_path).unwrap_or_else(|e| {
        panic!("golden file missing ({e}); run with UPDATE_GOLDEN=1 to create it")
    });
    assert_eq!(
        String::from_utf8(rendered).unwrap(),
        String::from_utf8(golden).unwrap(),
        "flipper-results/v1 output drifted from the golden file; if the \
         change is intentional, re-bless with UPDATE_GOLDEN=1"
    );
}

#[test]
fn streamed_session_mines_identically_to_loaded() {
    let ds = Generator::Planted(PlantedParams::default()).dataset();
    let fbin = flipper_store::to_fbin_bytes(&ds).unwrap();
    let loaded = Session::open(&ds).unwrap();
    let cfg = FlipperConfig::new(Thresholds::new(0.6, 0.35), MinSupports::Counts(vec![5]));
    let want = loaded.mine(&cfg).unwrap();
    for threads in [1usize, 4] {
        let streamed =
            Session::open_with_threads(flipper_api::FbinSource::new(&fbin[..]), threads).unwrap();
        assert!(streamed.database().is_none());
        let got = streamed.mine(&cfg).unwrap();
        assert_results_equal(&got, &want, &format!("streamed threads={threads}"));
    }
}

/// Repeated-run determinism: the same configuration rendered five times at
/// each thread count must produce byte-identical `flipper-results/v1`
/// documents — the end-to-end guarantee behind `flipper-lint`'s
/// `determinism` rule (no hash-ordered iteration anywhere on the result
/// path).
#[test]
fn results_v1_bytes_identical_across_repeated_runs() {
    for (name, ds, base) in cases() {
        let session = Session::open(&ds).unwrap();
        let mut reference: Option<Vec<u8>> = None;
        for threads in [1usize, 4] {
            let cfg = base.clone().with_threads(threads);
            for run in 0..5 {
                let result = session.mine(&cfg).unwrap();
                let mut json = JsonWriter::new(Vec::new());
                json.consume("repeat", session.taxonomy(), &cfg, &result)
                    .unwrap();
                json.finish().unwrap();
                let bytes = json.into_inner();
                match &reference {
                    None => reference = Some(bytes),
                    Some(want) => assert_eq!(
                        String::from_utf8_lossy(&bytes),
                        String::from_utf8_lossy(want),
                        "{name} threads={threads} run={run}: result bytes drifted"
                    ),
                }
            }
        }
    }
}
