//! End-to-end interchange test: every generator's output survives a
//! write → read round-trip through the text format, and mining the re-read
//! dataset yields identical patterns.

use flipper_core::{mine, FlipperConfig, MinSupports};
use flipper_data::format::{read_dataset, write_dataset, Dataset};
use flipper_datagen::{planted, quest, surrogate};
use flipper_measures::Thresholds;
use flipper_taxonomy::RebalancePolicy;
use std::io::Cursor;

fn roundtrip(ds: &Dataset) -> Dataset {
    let mut buf = Vec::new();
    write_dataset(&mut buf, ds).expect("serialization succeeds");
    read_dataset(Cursor::new(&buf[..]), RebalancePolicy::LeafCopy).expect("parse succeeds")
}

fn mine_names(ds: &Dataset, cfg: &FlipperConfig) -> Vec<Vec<String>> {
    mine(&ds.taxonomy, &ds.db, cfg)
        .patterns
        .iter()
        .map(|p| {
            p.leaf_itemset
                .items()
                .iter()
                .map(|&i| ds.taxonomy.name(i).to_string())
                .collect()
        })
        .collect()
}

#[test]
fn planted_roundtrip_preserves_mining() {
    let d = planted::generate(&planted::PlantedParams::default());
    let ds = Dataset {
        taxonomy: d.taxonomy,
        db: d.db,
    };
    let back = roundtrip(&ds);
    assert_eq!(ds.taxonomy, back.taxonomy);
    assert_eq!(ds.db, back.db);
    let (g, e) = planted::recommended_thresholds();
    let cfg = FlipperConfig::new(Thresholds::new(g, e), MinSupports::Counts(vec![5]));
    assert_eq!(mine_names(&ds, &cfg), mine_names(&back, &cfg));
}

#[test]
fn quest_roundtrip_is_lossless() {
    let q = quest::generate(&quest::QuestParams {
        num_transactions: 500,
        roots: 3,
        fanout: 2,
        levels: 3,
        num_patterns: 20,
        ..Default::default()
    });
    let ds = Dataset {
        taxonomy: q.taxonomy,
        db: q.db,
    };
    let back = roundtrip(&ds);
    assert_eq!(ds.taxonomy, back.taxonomy);
    assert_eq!(ds.db, back.db);
}

#[test]
fn census_roundtrip_preserves_padded_leaves() {
    // The census taxonomy contains leaf-copy padding; the format writes
    // original names and the reader re-pads — the dataset must survive.
    let d = surrogate::census(9);
    let ds = Dataset {
        taxonomy: d.taxonomy.clone(),
        db: d.db.clone(),
    };
    let back = roundtrip(&ds);
    assert_eq!(ds.taxonomy, back.taxonomy);
    assert_eq!(ds.db, back.db);
    let cfg = FlipperConfig::new(
        Thresholds::new(d.thresholds.0, d.thresholds.1),
        MinSupports::Fractions(d.min_support.clone()),
    );
    let names = mine_names(&back, &cfg);
    assert!(
        names
            .iter()
            .any(|p| p.contains(&"occ:craft-repair+edu:bachelor".to_string())),
        "paper pattern survives the round-trip: {names:?}"
    );
}

#[test]
fn groceries_roundtrip_preserves_mining() {
    let d = surrogate::groceries(3);
    let ds = Dataset {
        taxonomy: d.taxonomy,
        db: d.db,
    };
    let back = roundtrip(&ds);
    let cfg = FlipperConfig::new(
        Thresholds::new(0.15, 0.10),
        MinSupports::Fractions(vec![0.001, 0.0005, 0.0002]),
    );
    assert_eq!(mine_names(&ds, &cfg), mine_names(&back, &cfg));
}
