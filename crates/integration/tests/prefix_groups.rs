//! Seeded property sweep for the prefix-cached counting kernels: grouped
//! counting must be **bit-identical** — counts *and* stats — to the naive
//! per-candidate reference and to itself at every thread count, for every
//! engine, on random dense and sparse databases, including batches with
//! degenerate group shapes (all-same-prefix, all-distinct-prefix, k = 2).
//!
//! `scripts/verify.sh` re-runs this suite under `--release`, where the
//! optimizer has historically surfaced bugs debug builds miss.

use flipper_core::{mine, FlipperConfig, MinSupports, PruningConfig};
use flipper_data::rng::{Rng, Xoshiro256pp};
use flipper_data::{naive_tidset_counts, CountingEngine, Itemset, MultiLevelView, TransactionDb};
use flipper_measures::Thresholds;
use flipper_taxonomy::{NodeId, Taxonomy};

/// Random database over `tax`: `n` transactions of width `1..=max_w`.
fn random_db(tax: &Taxonomy, n: usize, max_w: usize, seed: u64) -> TransactionDb {
    let leaves = tax.leaves().to_vec();
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let rows: Vec<Vec<NodeId>> = (0..n)
        .map(|_| {
            let w = rng.gen_range(1..=max_w);
            (0..w)
                .map(|_| leaves[rng.gen_range(0..leaves.len())])
                .collect()
        })
        .collect();
    TransactionDb::new(rows).expect("rows non-empty")
}

/// Dense setup: few leaves, wide transactions (bitset territory); sparse
/// setup: many leaves, narrow transactions (tidset territory).
fn setups(seed: u64) -> Vec<(&'static str, Taxonomy, TransactionDb)> {
    let dense_tax = Taxonomy::uniform(2, 2, 2).unwrap();
    let dense_db = random_db(&dense_tax, 220, 6, seed);
    let sparse_tax = Taxonomy::uniform(3, 4, 3).unwrap();
    let sparse_db = random_db(&sparse_tax, 400, 3, seed ^ 0xD15EA5E);
    vec![
        ("dense", dense_tax, dense_db),
        ("sparse", sparse_tax, sparse_db),
    ]
}

/// Candidate batches covering the group shapes the kernels special-case:
/// one giant all-same-prefix group, all-distinct prefixes, pure k = 2, and
/// a sorted mix of all of them (the miner's real batch shape).
fn batches(tax: &Taxonomy, h: usize) -> Vec<(&'static str, Vec<Itemset>)> {
    let nodes = tax.nodes_at_level(h).unwrap().to_vec();
    assert!(nodes.len() >= 4, "level {h} too small for batch shapes");
    let same_prefix: Vec<Itemset> = nodes[2..]
        .iter()
        .map(|&x| Itemset::new(vec![nodes[0], nodes[1], x]))
        .collect();
    let distinct_prefix: Vec<Itemset> = (0..nodes.len() - 2)
        .map(|i| Itemset::new(vec![nodes[i], nodes[i + 1], nodes[i + 2]]))
        .collect();
    let mut pairs: Vec<Itemset> = Vec::new();
    for (i, &x) in nodes.iter().enumerate() {
        for &y in &nodes[i + 1..] {
            pairs.push(Itemset::pair(x, y));
        }
    }
    let mut mixed: Vec<Itemset> = Vec::new();
    mixed.extend(nodes.iter().map(|&x| Itemset::single(x)));
    mixed.extend(pairs.iter().cloned());
    mixed.extend(same_prefix.iter().cloned());
    mixed.extend(distinct_prefix.iter().cloned());
    mixed.sort_unstable();
    mixed.dedup();
    // Repeat the mixed batch well past the sharding cutoff so the
    // group-boundary chunker actually engages at threads > 1.
    let mut big = mixed.clone();
    while big.len() < 4 * flipper_data::MIN_SHARD_CANDIDATES {
        big.extend(mixed.iter().cloned());
    }
    vec![
        ("all-same-prefix", same_prefix),
        ("all-distinct-prefix", distinct_prefix),
        ("k2", pairs),
        ("mixed-large", big),
    ]
}

/// Counts match the naive per-candidate reference for every engine, and
/// counts *and stats* are identical at threads {1, 2, 7} for every engine
/// and batch shape.
#[test]
fn grouped_counting_is_bit_identical_to_naive() {
    for seed in [3u64, 1117] {
        for (setup, tax, db) in setups(seed) {
            let view = MultiLevelView::build(&db, &tax);
            for h in 1..=tax.height() {
                if tax.nodes_at_level(h).unwrap().len() < 4 {
                    continue;
                }
                for (shape, batch) in batches(&tax, h) {
                    let reference = naive_tidset_counts(&view, h, &batch);
                    for engine in [
                        CountingEngine::Tidset,
                        CountingEngine::Bitset,
                        CountingEngine::Scan,
                        CountingEngine::Auto,
                    ] {
                        let mut seq = engine.make(&view);
                        let counts = seq.count_batch(h, &batch);
                        let ctx = format!(
                            "{setup} seed={seed} h={h} {shape} engine={}",
                            seq.engine_name()
                        );
                        assert_eq!(counts, reference, "{ctx}: counts vs naive");
                        for threads in [1usize, 2, 7] {
                            let mut par = engine.make(&view);
                            let got = par.count_batch_sharded(h, &batch, threads);
                            assert_eq!(got, reference, "{ctx} threads={threads}: counts");
                            assert_eq!(par.stats(), seq.stats(), "{ctx} threads={threads}: stats");
                        }
                    }
                }
            }
        }
    }
}

/// End-to-end: full mining runs produce identical patterns and cell
/// summaries across every engine, and fully bit-identical results
/// (counter stats included) across thread counts {1, 2, 4, 7} per engine.
#[test]
fn mining_results_invariant_across_engines_and_threads() {
    for seed in [7u64, 4242] {
        for (setup, tax, db) in setups(seed) {
            let cfg = FlipperConfig::new(
                Thresholds::new(0.45, 0.2),
                MinSupports::Counts(vec![2, 1, 1]),
            )
            .with_pruning(PruningConfig::FULL);
            let baseline = mine(&tax, &db, &cfg);
            for engine in [
                CountingEngine::Tidset,
                CountingEngine::Bitset,
                CountingEngine::Scan,
                CountingEngine::Auto,
            ] {
                let mut per_engine_stats = None;
                for threads in [1usize, 2, 4, 7] {
                    let r = mine(
                        &tax,
                        &db,
                        &cfg.clone().with_engine(engine).with_threads(threads),
                    );
                    let ctx = format!("{setup} seed={seed} {engine:?} threads={threads}");
                    assert_eq!(r.patterns, baseline.patterns, "{ctx}: patterns");
                    assert_eq!(r.cells, baseline.cells, "{ctx}: cell summaries");
                    assert_eq!(
                        r.stats.counter.candidates_counted,
                        baseline.stats.counter.candidates_counted,
                        "{ctx}: candidates counted"
                    );
                    // Engine-specific work stats must not depend on the
                    // thread count — prefix groups are never torn apart.
                    match per_engine_stats {
                        None => per_engine_stats = Some(r.stats.counter),
                        Some(expect) => {
                            assert_eq!(r.stats.counter, expect, "{ctx}: counter stats")
                        }
                    }
                }
            }
        }
    }
}
