//! FBIN storage gates: text↔FBIN round-trip idempotence, full-load and
//! chunk-streamed mining equivalence, and corruption/truncation behavior.
//!
//! These are the cross-crate acceptance tests for the `flipper-store`
//! subsystem: a dataset must survive any composition of the two formats with
//! **bit-identical** content, mining an FBIN input — loaded or streamed, at
//! any thread count — must produce exactly the text path's `MiningResult`,
//! and damaged files must fail with typed errors rather than panics or
//! silently wrong data.

use flipper_core::{mine, mine_with_view, FlipperConfig, MinSupports, MiningResult};
use flipper_data::format::{read_dataset, write_dataset, Dataset};
use flipper_datagen::{planted, quest, surrogate};
use flipper_measures::Thresholds;
use flipper_store::{read_fbin, stream_view, to_fbin_bytes, FbinReader, FbinWriter, StoreError};
use flipper_taxonomy::RebalancePolicy;
use std::io::Cursor;

fn quest_dataset() -> Dataset {
    quest::generate(&quest::QuestParams {
        num_transactions: 500,
        roots: 3,
        fanout: 2,
        levels: 3,
        num_patterns: 20,
        ..Default::default()
    })
    .into_dataset()
}

fn text_bytes(ds: &Dataset) -> Vec<u8> {
    let mut out = Vec::new();
    write_dataset(&mut out, ds).expect("text serialization succeeds");
    out
}

/// Assert two mining results agree on everything the paper reports:
/// patterns (itemsets, labels, per-level supports and correlations), cell
/// summaries and run statistics (all but wall-clock time).
fn assert_results_identical(a: &MiningResult, b: &MiningResult, ctx: &str) {
    assert_eq!(a.patterns, b.patterns, "{ctx}: patterns");
    assert_eq!(a.cells, b.cells, "{ctx}: cell summaries");
    let (s, t) = (&a.stats, &b.stats);
    assert_eq!(s.candidates_generated, t.candidates_generated, "{ctx}");
    assert_eq!(s.frequent_found, t.frequent_found, "{ctx}");
    assert_eq!(s.positive_found, t.positive_found, "{ctx}");
    assert_eq!(s.negative_found, t.negative_found, "{ctx}");
    assert_eq!(s.pruned_by_sibp, t.pruned_by_sibp, "{ctx}");
    assert_eq!(s.pruned_by_support, t.pruned_by_support, "{ctx}");
    assert_eq!(s.cells_evaluated, t.cells_evaluated, "{ctx}");
    assert_eq!(s.tpg_cap, t.tpg_cap, "{ctx}");
    assert_eq!(s.peak_resident_itemsets, t.peak_resident_itemsets, "{ctx}");
    assert_eq!(s.counter, t.counter, "{ctx}: counter stats");
}

/// text → fbin → text is the identity on the serialized text bytes, for
/// both generator families the paper's experiments use.
#[test]
fn text_fbin_text_is_idempotent() {
    let cases = [
        ("quest", quest_dataset()),
        (
            "planted",
            planted::generate(&planted::PlantedParams::default()).into_dataset(),
        ),
    ];
    for (name, ds) in cases {
        let text1 = text_bytes(&ds);
        let via_text = read_dataset(Cursor::new(&text1[..]), RebalancePolicy::LeafCopy).unwrap();
        let fbin = to_fbin_bytes(&via_text).unwrap();
        let via_fbin = read_fbin(&fbin[..]).unwrap();
        assert_eq!(via_text.taxonomy, via_fbin.taxonomy, "{name}");
        assert_eq!(via_text.db, via_fbin.db, "{name}");
        let text2 = text_bytes(&via_fbin);
        assert_eq!(text1, text2, "{name}: text→fbin→text must be the identity");
        // And fbin → fbin is stable too.
        assert_eq!(fbin, to_fbin_bytes(&via_fbin).unwrap(), "{name}");
    }
}

/// The census surrogate carries leaf-copy padding (synthetic nodes): the
/// round-trip through the dictionary (which stores original names only)
/// must re-pad identically.
#[test]
fn padded_taxonomy_roundtrips() {
    let ds = surrogate::census(9).into_dataset();
    let back = read_fbin(&to_fbin_bytes(&ds).unwrap()[..]).unwrap();
    assert_eq!(ds.taxonomy, back.taxonomy);
    assert_eq!(ds.db, back.db);
}

/// Acceptance gate: mining an FBIN input through BOTH the full-load path
/// and the `chunks()` streaming path yields bit-identical `MiningResult`s
/// (patterns, labels, counts, stats) to the text path, at 1 and 4 worker
/// threads.
#[test]
fn fbin_mining_matches_text_mining_loaded_and_streamed() {
    let ds = quest_dataset();
    let text = text_bytes(&ds);
    let fbin = to_fbin_bytes(&ds).unwrap();

    let base = FlipperConfig::new(
        Thresholds::new(0.4, 0.2),
        MinSupports::Fractions(vec![0.05, 0.01, 0.005]),
    );
    for threads in [1usize, 4] {
        let cfg = base.clone().with_threads(threads);
        let text_ds = read_dataset(Cursor::new(&text[..]), RebalancePolicy::LeafCopy).unwrap();
        let baseline = mine(&text_ds.taxonomy, &text_ds.db, &cfg);
        assert!(
            baseline.stats.candidates_generated > 0,
            "config must exercise the miner"
        );

        let loaded = read_fbin(&fbin[..]).unwrap();
        assert_eq!(loaded.taxonomy, text_ds.taxonomy);
        assert_eq!(loaded.db, text_ds.db);
        let loaded_result = mine(&loaded.taxonomy, &loaded.db, &cfg);
        assert_results_identical(
            &loaded_result,
            &baseline,
            &format!("fbin full-load, threads={threads}"),
        );

        let (tax, view) = stream_view(FbinReader::new(&fbin[..]).unwrap(), threads).unwrap();
        assert_eq!(tax, text_ds.taxonomy);
        let streamed_result = mine_with_view(&tax, &view, &cfg);
        assert_results_identical(
            &streamed_result,
            &baseline,
            &format!("fbin streamed, threads={threads}"),
        );
    }
}

/// Streaming with many small chunks must agree with one big chunk — the
/// chunk boundaries carry no information.
#[test]
fn chunk_size_does_not_affect_results() {
    let ds = quest_dataset();
    let mut tiny_chunks = Vec::new();
    let mut w = FbinWriter::with_chunk_size(&mut tiny_chunks, &ds.taxonomy, 64).unwrap();
    for txn in ds.db.iter() {
        w.write_transaction(txn).unwrap();
    }
    w.finish().unwrap();
    let big = to_fbin_bytes(&ds).unwrap();
    let (tax_a, view_a) = stream_view(FbinReader::new(&tiny_chunks[..]).unwrap(), 2).unwrap();
    let (tax_b, view_b) = stream_view(FbinReader::new(&big[..]).unwrap(), 1).unwrap();
    assert_eq!(tax_a, tax_b);
    assert_eq!(view_a, view_b);
    // A 64-byte target on a 500-transaction dataset really produced many
    // chunks (otherwise this test tests nothing).
    let mut r = FbinReader::new(&tiny_chunks[..]).unwrap();
    assert!(r.chunks().count() > 10, "expected many small chunks");
}

/// Every strict prefix of a valid file fails with a typed error — never a
/// panic, never a silent partial dataset.
#[test]
fn truncation_always_fails_typed() {
    let ds = planted::generate(&planted::PlantedParams::default()).into_dataset();
    let bytes = to_fbin_bytes(&ds).unwrap();
    for cut in 0..bytes.len() {
        match read_fbin(&bytes[..cut]) {
            Ok(_) => panic!("prefix of {cut}/{} bytes parsed successfully", bytes.len()),
            Err(
                StoreError::Truncated { .. }
                | StoreError::BadMagic(_)
                | StoreError::ChecksumMismatch { .. }
                | StoreError::Corrupt { .. },
            ) => {}
            Err(other) => panic!("unexpected error kind at cut {cut}: {other:?}"),
        }
    }
}

/// A flipped payload byte is caught by the section checksum.
#[test]
fn bit_rot_fails_checksum() {
    let ds = quest_dataset();
    let bytes = to_fbin_bytes(&ds).unwrap();
    // Inside the dictionary payload.
    let mut corrupt = bytes.clone();
    corrupt[20] ^= 0x04;
    assert!(matches!(
        read_fbin(&corrupt[..]).unwrap_err(),
        StoreError::ChecksumMismatch { .. }
    ));
    // Deep inside the transaction chunks (three quarters into the file).
    let mut corrupt = bytes.clone();
    let k = bytes.len() * 3 / 4;
    corrupt[k] ^= 0x04;
    let err = read_fbin(&corrupt[..]).unwrap_err();
    assert!(
        matches!(
            err,
            StoreError::ChecksumMismatch { .. }
                | StoreError::Corrupt { .. }
                | StoreError::Truncated { .. }
        ),
        "unexpected error kind: {err:?}"
    );
    // Streaming hits the same wall: the iterator yields the error.
    let mut reader = FbinReader::new(&corrupt[..]).unwrap();
    let outcome: Result<Vec<_>, _> = reader.chunks().collect();
    assert!(outcome.is_err(), "streamed read must also surface bit rot");
}
