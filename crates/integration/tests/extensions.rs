//! Tests for the extension features: level-restricted mining (§2.2),
//! top-K most-flipping search (§7), bootstrap stability, and the bitset
//! counting engine inside the full mining pipeline.

use flipper_core::{mine, verify::brute_force, FlipperConfig, MinSupports};
use flipper_data::rng::{Rng, Xoshiro256pp};
use flipper_data::CountingEngine;
use flipper_datagen::planted::{self, PlantedParams};
use flipper_measures::Thresholds;
use flipper_taxonomy::{NodeId, Taxonomy};

fn planted_cfg() -> FlipperConfig {
    let (g, e) = planted::recommended_thresholds();
    FlipperConfig::new(Thresholds::new(g, e), MinSupports::Counts(vec![5]))
}

/// Restricting to levels {1, 3} must equal brute force on the restricted
/// tree — and drops the middle-level flip requirement, so patterns whose
/// level-2 slice broke the chain can now appear.
#[test]
fn restricted_levels_mine_correctly() {
    let d = planted::generate(&PlantedParams {
        background_txns: 150,
        ..Default::default()
    });
    let restricted = d.taxonomy.restrict_levels(&[1, 3]).unwrap();
    assert_eq!(restricted.height(), 2);

    // Remap the database: leaf names are preserved by the restriction.
    let remap: Vec<NodeId> = {
        let mut m = vec![NodeId::ROOT; d.taxonomy.node_count()];
        for &leaf in d.taxonomy.leaves() {
            m[leaf.index()] = restricted
                .node_by_name(d.taxonomy.name(leaf))
                .expect("leaf survives");
        }
        m
    };
    let rows: Vec<Vec<NodeId>> =
        d.db.iter()
            .map(|t| t.iter().map(|&it| remap[it.index()]).collect())
            .collect();
    let rdb = flipper_data::TransactionDb::new(rows).unwrap();
    rdb.validate_against(&restricted).unwrap();

    let cfg = planted_cfg();
    let got: Vec<String> = mine(&restricted, &rdb, &cfg)
        .patterns
        .iter()
        .map(|p| p.leaf_itemset.to_string())
        .collect();
    let expected: Vec<String> = brute_force(&restricted, &rdb, &cfg)
        .iter()
        .map(|p| p.leaf_itemset.to_string())
        .collect();
    assert_eq!(got, expected);

    // The planted chain is (+, −, +): restricted to levels {1, 3} it reads
    // (+, +) — NOT a flip — so the planted pairs must disappear.
    for &(a, _b) in &d.planted_pairs {
        let name_a = d.taxonomy.name(a);
        let pattern_present = mine(&restricted, &rdb, &cfg).patterns.iter().any(|p| {
            p.leaf_itemset
                .items()
                .iter()
                .any(|&i| restricted.name(i) == name_a)
        });
        assert!(
            !pattern_present,
            "(+,+) chains must not be reported as flips after restriction"
        );
    }
}

/// Restricting to levels {2, 3} keeps the planted (−, +) tail alive.
#[test]
fn restricted_levels_keep_bottom_flip() {
    let d = planted::generate(&PlantedParams {
        background_txns: 0,
        ..Default::default()
    });
    let restricted = d.taxonomy.restrict_levels(&[2, 3]).unwrap();
    let remap = |t: &[NodeId]| -> Vec<NodeId> {
        t.iter()
            .map(|&it| restricted.node_by_name(d.taxonomy.name(it)).unwrap())
            .collect()
    };
    let rows: Vec<Vec<NodeId>> = d.db.iter().map(remap).collect();
    let rdb = flipper_data::TransactionDb::new(rows).unwrap();
    let result = mine(&restricted, &rdb, &planted_cfg());
    for &(a, b) in &d.planted_pairs {
        let ra = restricted.node_by_name(d.taxonomy.name(a)).unwrap();
        let rb = restricted.node_by_name(d.taxonomy.name(b)).unwrap();
        let pair = if ra < rb { [ra, rb] } else { [rb, ra] };
        assert!(
            result
                .patterns
                .iter()
                .any(|p| p.leaf_itemset.items() == pair),
            "planted (−,+) tail must survive the {{2,3}} restriction"
        );
    }
}

/// The bitset engine is a drop-in replacement inside the full pipeline.
#[test]
fn bitset_engine_matches_tidset_in_mining() {
    let tax = Taxonomy::uniform(3, 2, 3).unwrap();
    let leaves = tax.leaves().to_vec();
    let mut rng = Xoshiro256pp::seed_from_u64(2024);
    for _ in 0..5 {
        let rows: Vec<Vec<NodeId>> = (0..150)
            .map(|_| {
                let w = rng.gen_range(1..=5);
                (0..w)
                    .map(|_| leaves[rng.gen_range(0..leaves.len())])
                    .collect()
            })
            .collect();
        let db = flipper_data::TransactionDb::new(rows).unwrap();
        let cfg = FlipperConfig::new(
            Thresholds::new(0.5, 0.25),
            MinSupports::Counts(vec![2, 1, 1]),
        );
        let tid = mine(&tax, &db, &cfg.clone().with_engine(CountingEngine::Tidset));
        let bit = mine(&tax, &db, &cfg.clone().with_engine(CountingEngine::Bitset));
        assert_eq!(tid.patterns, bit.patterns);
        assert_eq!(tid.cells, bit.cells);
    }
}

/// Top-K search and bootstrap stability cooperate: the patterns the top-K
/// search surfaces on planted data are also the most stable ones.
#[test]
fn topk_patterns_are_stable() {
    let d = planted::generate(&PlantedParams {
        background_txns: 100,
        ..Default::default()
    });
    let topk = flipper_core::topk::top_k(
        &d.taxonomy,
        &d.db,
        &flipper_core::topk::TopKConfig {
            k: 2,
            base: FlipperConfig {
                min_support: MinSupports::Counts(vec![5]),
                ..Default::default()
            },
            ..Default::default()
        },
    );
    assert_eq!(topk.patterns.len(), 2);

    let mut cfg = planted_cfg();
    cfg.thresholds = topk.thresholds;
    let report = flipper_core::stability::bootstrap_stability(&d.taxonomy, &d.db, &cfg, 8, 5);
    for p in &topk.patterns {
        let entry = report
            .patterns
            .iter()
            .find(|s| s.leaf_itemset == p.leaf_itemset)
            .expect("top-k pattern appears in stability report");
        assert!(
            entry.stability >= 0.75,
            "top-k pattern {} unstable: {}",
            p.leaf_itemset,
            entry.stability
        );
    }
}
