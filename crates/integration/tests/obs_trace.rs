//! Observability invariants: the flipper-obs recorder must never perturb
//! `flipper-results/v1` bytes, and the traces it emits must be valid
//! `flipper-trace/v1` documents covering the whole pipeline.
//!
//! The recorder is process-global, so every test here serializes on one
//! mutex; this file is its own test binary, so no other tests can record
//! concurrently.

use flipper_api::{
    CountingEngine, FlipperConfig, Generator, JsonWriter, MinSupports, PlantedParams, ResultSink,
    Session, Thresholds,
};
use std::sync::{Mutex, MutexGuard, OnceLock};

fn recorder_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn planted_session() -> Session {
    Session::open(Generator::Planted(PlantedParams::default())).expect("planted ingests")
}

fn config(engine: CountingEngine, threads: usize) -> FlipperConfig {
    FlipperConfig {
        thresholds: Thresholds {
            gamma: 0.6,
            epsilon: 0.35,
        },
        min_support: MinSupports::uniform_fraction(0.001),
        engine,
        threads,
        ..FlipperConfig::default()
    }
}

/// Mine and serialize to `flipper-results/v1` bytes.
fn results_bytes(session: &Session, cfg: &FlipperConfig) -> Vec<u8> {
    let result = session.mine(cfg).expect("mine succeeds");
    let mut sink = JsonWriter::new(Vec::new());
    sink.consume("obs", session.taxonomy(), cfg, &result)
        .expect("serialize");
    sink.finish().expect("finish");
    sink.into_inner()
}

/// The tentpole invariant: result bytes are identical with the recorder
/// off and on, for every engine at threads 1 and 4.
#[test]
fn results_bytes_identical_with_tracing_on_and_off() {
    let _guard = recorder_lock();
    let session = planted_session();
    let engines = CountingEngine::CONCRETE
        .into_iter()
        .chain([CountingEngine::Auto]);
    for engine in engines {
        for threads in [1usize, 4] {
            let cfg = config(engine, threads);
            flipper_obs::disable();
            let _ = flipper_obs::drain();
            let bare = results_bytes(&session, &cfg);
            flipper_obs::enable();
            let traced = results_bytes(&session, &cfg);
            let capture = flipper_obs::drain();
            flipper_obs::disable();
            assert_eq!(
                bare,
                traced,
                "recorder changed flipper-results/v1 bytes ({} t{threads})",
                engine.name()
            );
            assert!(
                !capture.events.is_empty(),
                "recorder was enabled but captured nothing ({} t{threads})",
                engine.name()
            );
        }
    }
}

/// A traced mine renders a valid `flipper-trace/v1` document that covers
/// ingest, view build, per-level counting and cache activity — and spans
/// recorded inside exec worker shards still nest within their lanes.
#[test]
fn traced_mine_emits_valid_covering_trace() {
    let _guard = recorder_lock();
    flipper_obs::disable();
    let _ = flipper_obs::drain();
    flipper_obs::enable();
    // Sharded ingestion: the view build fans out over workers, so the
    // trace exercises multiple lanes even though the planted dataset is
    // too small for counting itself to shard.
    let session = Session::open_with_threads(Generator::Planted(PlantedParams::default()), 4)
        .expect("planted ingests");
    let cfg = config(CountingEngine::Tidset, 4);
    let result = session.mine(&cfg).expect("mine succeeds");
    assert!(result.stats.cells_evaluated > 0);
    let capture = flipper_obs::drain();
    flipper_obs::disable();

    let trace = capture.render_trace();
    let stats = flipper_obs::validate_trace(&trace).expect("trace parses and nests");
    for name in [
        "session.ingest",
        "view.build",
        "mine.run",
        "mine.cell",
        "mine.gen",
        "mine.count",
        "cache.cell",
        "exec.shard",
    ] {
        assert!(stats.names.contains(name), "missing span {name}");
    }
    // Worker lanes exist beyond the main lane (threads=4 sharded at least
    // one batch), and the metrics side carries the run's counters.
    assert!(
        stats.lanes > 1,
        "expected worker lanes, got {}",
        stats.lanes
    );
    let metrics = capture.render_metrics();
    assert!(metrics.starts_with("# flipper-metrics/v1\n"));
    for metric in [
        "flipper_cells_evaluated_total",
        "flipper_candidates_counted_total",
        "flipper_cache_lookups_total",
        "flipper_batch_candidates_count",
    ] {
        assert!(metrics.contains(metric), "missing metric {metric}");
    }
}

/// Span nesting across shard boundaries: spans opened inside exec worker
/// closures land on per-thread lanes and stay properly nested even when
/// the same thread runs nested pools (sweep jobs over counting shards).
#[test]
fn spans_nest_across_shard_boundaries() {
    let _guard = recorder_lock();
    flipper_obs::disable();
    let _ = flipper_obs::drain();
    flipper_obs::enable();
    let outer = flipper_obs::span("test.outer");
    let sums = flipper_data::exec::map_chunks(4, 64, |r| {
        let _chunk_span = flipper_obs::span("test.chunk").arg("len", r.len() as u64);
        // A nested pool from inside a worker: its chunks' spans must not
        // corrupt the outer lanes.
        flipper_data::exec::map_chunks(2, r.len(), |inner| {
            let _inner_span = flipper_obs::span("test.inner");
            inner.len()
        })
        .into_iter()
        .sum::<usize>()
    });
    drop(outer);
    let capture = flipper_obs::drain();
    flipper_obs::disable();
    assert_eq!(sums.iter().sum::<usize>(), 64);

    let trace = capture.render_trace();
    let stats = flipper_obs::validate_trace(&trace).expect("shard spans nest per lane");
    assert!(stats.names.contains("test.outer"));
    assert!(stats.names.contains("test.chunk"));
    assert!(stats.names.contains("test.inner"));
    assert!(stats.names.contains("exec.shard"));
    // Exec tagged worker-shard events with their slot.
    assert!(capture
        .events
        .iter()
        .any(|e| e.name == "exec.shard" && e.args.iter().any(|(k, _)| *k == "slot")));
    // test.chunk spans recorded under with_shard carry the shard tag.
    assert!(capture
        .events
        .iter()
        .filter(|e| e.name == "test.chunk")
        .all(|e| e.args.iter().any(|(k, _)| *k == "shard")));
}

/// Sweeps record per-point spans, and seeded sweeps keep the byte
/// invariant under the recorder too.
#[test]
fn sweep_trace_covers_grid_points() {
    let _guard = recorder_lock();
    let run_sweep = |record: bool| {
        let session = planted_session();
        flipper_obs::disable();
        let _ = flipper_obs::drain();
        if record {
            flipper_obs::enable();
        }
        let runs = session
            .sweep()
            .with_jobs(2)
            .thresholds_grid(&config(CountingEngine::Tidset, 2), &[0.6, 0.5], &[0.35])
            .run()
            .expect("sweep runs");
        let capture = flipper_obs::drain();
        flipper_obs::disable();
        let mut sink = JsonWriter::new(Vec::new());
        flipper_api::emit_runs(&mut sink, session.taxonomy(), &runs).expect("emit");
        (sink.into_inner(), capture)
    };
    let (bare, _) = run_sweep(false);
    let (traced, capture) = run_sweep(true);
    assert_eq!(bare, traced, "recorder changed sweep results");
    let stats = flipper_obs::validate_trace(&capture.render_trace()).expect("sweep trace valid");
    assert!(stats.names.contains("sweep.run"));
    assert!(stats.names.contains("sweep.point"));
    let labeled = capture
        .events
        .iter()
        .filter(|e| e.name == "sweep.point")
        .filter_map(|e| e.label.as_deref())
        .collect::<Vec<_>>();
    assert!(
        labeled.contains(&"g0.6/e0.35") && labeled.contains(&"g0.5/e0.35"),
        "sweep.point labels missing: {labeled:?}"
    );
}
