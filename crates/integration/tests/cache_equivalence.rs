//! Cache-equivalence acceptance tests: the cross-cell prefix cache and the
//! session-level support cache are pure cost levers — at every engine,
//! thread count, and byte budget, counts, mined results, and the
//! `flipper-results/v1` bytes are identical to the uncached paths, and the
//! per-candidate reference [`flipper_data::naive_tidset_counts`] stays the
//! ground truth for every cached kernel.

use flipper_api::{FlipperConfig, Generator, JsonWriter, MinSupports, ResultSink, Session};
use flipper_data::{
    naive_tidset_counts, CellCache, CountingEngine, Itemset, MultiLevelView, TransactionDb,
};
use flipper_datagen::quest::QuestParams;
use flipper_measures::Thresholds;
use flipper_taxonomy::Taxonomy;

fn quest_data() -> (Taxonomy, TransactionDb) {
    let ds =
        Generator::Quest(QuestParams::default().with_transactions(300).with_seed(11)).dataset();
    (ds.taxonomy, ds.db)
}

fn quest_config() -> FlipperConfig {
    FlipperConfig::new(
        Thresholds::new(0.5, 0.25),
        MinSupports::Counts(vec![6, 3, 2, 1]),
    )
}

/// Chained uniform-`k` batches over the deepest level, sized to exercise
/// sharding and cross-batch prefix reuse: all frequent pairs, then every
/// triple extending the first pair prefixes, then quads — the shape the
/// miner produces when a run walks `Q(h,2) → Q(h,3) → Q(h,4)`.
fn chained_batches(view: &MultiLevelView, h: usize) -> Vec<Vec<Itemset>> {
    let counter = CountingEngine::Tidset.make(view);
    let items: Vec<_> = counter
        .present_items(h)
        .iter()
        .copied()
        .filter(|&it| counter.item_support(h, it) >= 2)
        .take(14)
        .collect();
    assert!(items.len() >= 8, "quest data must have frequent leaf items");
    let mut pairs = Vec::new();
    for i in 0..items.len() {
        for j in (i + 1)..items.len() {
            pairs.push(Itemset::pair(items[i], items[j]));
        }
    }
    pairs.sort_unstable();
    let mut triples = Vec::new();
    for i in 0..items.len().min(10) {
        for j in (i + 1)..items.len().min(10) {
            for l in (j + 1)..items.len().min(10) {
                triples.push(Itemset::new(vec![items[i], items[j], items[l]]));
            }
        }
    }
    triples.sort_unstable();
    let mut quads = Vec::new();
    for j in 3..items.len().min(11) {
        quads.push(Itemset::new(vec![items[0], items[1], items[2], items[j]]));
    }
    quads.sort_unstable();
    vec![pairs, triples, quads]
}

/// Tentpole differential: cached counting — one `CellCache` threaded
/// through chained batches, exactly as the miner drives it — returns the
/// same counts as the naive per-candidate reference, for every engine ×
/// thread count × cache budget (budget 0 = the pre-cache behavior).
#[test]
fn cached_counting_matches_naive_across_engines_threads_budgets() {
    let (tax, db) = quest_data();
    let view = MultiLevelView::build(&db, &tax);
    let h = tax.height();
    let batches = chained_batches(&view, h);
    let expected: Vec<Vec<u64>> = batches
        .iter()
        .map(|b| naive_tidset_counts(&view, h, b))
        .collect();
    for engine in [
        CountingEngine::Tidset,
        CountingEngine::Bitset,
        CountingEngine::Auto,
        CountingEngine::Scan,
    ] {
        for threads in [1usize, 2, 7] {
            for budget in [0usize, 2048, usize::MAX] {
                let mut counter = engine.make(&view);
                let mut cache = CellCache::new(budget);
                for (batch, want) in batches.iter().zip(&expected) {
                    let got = counter.count_batch_cached(h, batch, threads, &mut cache);
                    assert_eq!(
                        &got, want,
                        "{engine:?} threads={threads} budget={budget}: counts must \
                         be bit-identical to the naive reference"
                    );
                }
            }
        }
    }
}

/// Counter statistics are a pure function of `(candidates, data)`: the
/// cache changes how the work is done, never what is reported.
#[test]
fn counter_stats_are_cache_and_thread_invariant() {
    let (tax, db) = quest_data();
    let view = MultiLevelView::build(&db, &tax);
    let h = tax.height();
    let batches = chained_batches(&view, h);
    for engine in [
        CountingEngine::Tidset,
        CountingEngine::Bitset,
        CountingEngine::Auto,
    ] {
        let mut base = engine.make(&view);
        for batch in &batches {
            base.count_batch_sharded(h, batch, 1);
        }
        let want = base.stats();
        for threads in [1usize, 2, 7] {
            for budget in [0usize, 2048, usize::MAX] {
                let mut counter = engine.make(&view);
                let mut cache = CellCache::new(budget);
                for batch in &batches {
                    counter.count_batch_cached(h, batch, threads, &mut cache);
                }
                assert_eq!(
                    counter.stats(),
                    want,
                    "{engine:?} threads={threads} budget={budget}: stats drifted"
                );
            }
        }
    }
}

fn render_doc(session: &Session, cfg: &FlipperConfig) -> Vec<u8> {
    let result = session.mine(cfg).unwrap();
    let mut json = JsonWriter::new(Vec::new());
    json.consume("run", session.taxonomy(), cfg, &result)
        .unwrap();
    json.finish().unwrap();
    json.into_inner()
}

/// Acceptance bar: `flipper-results/v1` bytes are identical across cache
/// budgets, engines, thread counts {1, 4}, and repeated runs.
#[test]
fn results_v1_bytes_identical_across_budgets_engines_threads() {
    let (tax, db) = quest_data();
    let session = Session::open(&flipper_api::Dataset { taxonomy: tax, db }).unwrap();
    let base = quest_config();
    let mut reference: Option<Vec<u8>> = None;
    for budget in [0usize, 2048, usize::MAX] {
        for engine in [
            CountingEngine::Tidset,
            CountingEngine::Bitset,
            CountingEngine::Auto,
        ] {
            for threads in [1usize, 4] {
                for repeat in 0..2 {
                    let cfg = base
                        .clone()
                        .with_cache_budget(budget)
                        .with_engine(engine)
                        .with_threads(threads);
                    let bytes = render_doc(&session, &cfg);
                    match &reference {
                        None => reference = Some(bytes),
                        Some(want) => assert_eq!(
                            String::from_utf8_lossy(&bytes),
                            String::from_utf8_lossy(want),
                            "budget={budget} {engine:?} threads={threads} \
                             repeat={repeat}: result bytes drifted"
                        ),
                    }
                }
            }
        }
    }
}

/// Seeded sweeps answer already-counted supports from the session cache;
/// the labeled results — and their serialized bytes — are identical to an
/// unseeded sweep of the same grid.
#[test]
fn seeded_sweep_is_byte_identical_to_unseeded() {
    let (tax, db) = quest_data();
    let dataset = flipper_api::Dataset { taxonomy: tax, db };
    let base = quest_config();
    let render = |runs: &[flipper_api::SweepRun], session: &Session| {
        let mut json = JsonWriter::new(Vec::new());
        flipper_api::emit_runs(&mut json, session.taxonomy(), runs).unwrap();
        json.into_inner()
    };
    // Fresh session per mode so the seeded one owns a warm cache and the
    // unseeded one never builds any.
    let seeded_session = Session::open(&dataset).unwrap();
    let grid = |session: &Session, seed: bool| {
        session
            .sweep()
            .with_seeding(seed)
            .thresholds_grid(&base, &[0.5, 0.4, 0.3], &[0.1, 0.25])
            .run()
            .unwrap()
    };
    let warmup = grid(&seeded_session, true);
    assert!(!warmup.is_empty());
    assert!(
        seeded_session.support_cache_len() > 0,
        "sweep must deposit supports into the session cache"
    );
    let seeded = grid(&seeded_session, true);
    assert!(
        seeded_session.support_cache_stats().seed_hits > 0,
        "warm sweep must hit the support cache"
    );
    let unseeded_session = Session::open(&dataset).unwrap();
    let unseeded = grid(&unseeded_session, false);
    assert_eq!(
        String::from_utf8_lossy(&render(&seeded, &seeded_session)),
        String::from_utf8_lossy(&render(&unseeded, &unseeded_session)),
        "seeding changes counting cost, never results"
    );
}
