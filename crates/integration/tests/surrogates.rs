//! Reality-check tests (paper §5.2): each surrogate dataset must yield the
//! qualitative flipping patterns the paper reports for the corresponding
//! real dataset (Figs. 10–12), under the Table-4 thresholds.

use flipper_core::{mine, FlipperConfig, MinSupports, PruningConfig};
use flipper_datagen::surrogate::{census, groceries, medline, SurrogateData};
use flipper_measures::Thresholds;

fn config_for(d: &SurrogateData) -> FlipperConfig {
    FlipperConfig::new(
        Thresholds::new(d.thresholds.0, d.thresholds.1),
        MinSupports::Fractions(d.min_support.clone()),
    )
}

fn assert_expected_flips_found(d: &SurrogateData, name: &str) {
    let result = mine(&d.taxonomy, &d.db, &config_for(d));
    let found: Vec<Vec<&str>> = result
        .patterns
        .iter()
        .map(|p| {
            p.leaf_itemset
                .items()
                .iter()
                .map(|&i| d.taxonomy.name(i))
                .collect()
        })
        .collect();
    for (a, b) in d.expected_flip_ids() {
        let pair = [a, b];
        assert!(
            result
                .patterns
                .iter()
                .any(|p| p.leaf_itemset.items() == pair),
            "{name}: expected flip ({}, {}) not found; found {found:?}",
            d.taxonomy.name(a),
            d.taxonomy.name(b),
        );
    }
    for p in &result.patterns {
        assert_eq!(p.validate(), Ok(()), "{name}: invalid chain reported");
    }
}

#[test]
fn groceries_reports_fig10_patterns() {
    assert_expected_flips_found(&groceries(42), "groceries");
}

#[test]
fn census_reports_fig11_patterns() {
    assert_expected_flips_found(&census(42), "census");
}

#[test]
fn medline_reports_fig12_patterns() {
    // Scale 0.02 (~13K citations) keeps the test fast; planting scales with
    // the dataset so the chains are preserved.
    assert_expected_flips_found(&medline(0.02, 42), "medline");
}

#[test]
fn all_variants_agree_on_groceries() {
    let d = groceries(11);
    let cfg = config_for(&d);
    let reference: Vec<String> = mine(&d.taxonomy, &d.db, &cfg)
        .patterns
        .iter()
        .map(|p| p.leaf_itemset.to_string())
        .collect();
    assert!(!reference.is_empty());
    for pruning in PruningConfig::VARIANTS {
        let got: Vec<String> = mine(&d.taxonomy, &d.db, &cfg.clone().with_pruning(pruning))
            .patterns
            .iter()
            .map(|p| p.leaf_itemset.to_string())
            .collect();
        assert_eq!(got, reference, "variant {}", pruning.name());
    }
}

#[test]
fn pruned_variants_do_less_work_on_surrogates() {
    let d = groceries(3);
    let cfg = config_for(&d);
    let basic = mine(
        &d.taxonomy,
        &d.db,
        &cfg.clone().with_pruning(PruningConfig::BASIC),
    );
    let full = mine(&d.taxonomy, &d.db, &cfg.with_pruning(PruningConfig::FULL));
    assert!(
        full.stats.candidates_generated <= basic.stats.candidates_generated,
        "full pruning generated more candidates ({}) than basic ({})",
        full.stats.candidates_generated,
        basic.stats.candidates_generated,
    );
    assert!(
        full.stats.peak_resident_itemsets <= basic.stats.peak_resident_itemsets,
        "full pruning used more memory proxy than basic"
    );
}

#[test]
fn census_flip_direction_matches_paper() {
    // Fig. 11: craft-repair × income>=50K negative at the top, positive for
    // the bachelor subgroup.
    let d = census(42);
    let result = mine(&d.taxonomy, &d.db, &config_for(&d));
    let (a, b) = d.expected_flip_ids()[0];
    let p = result
        .patterns
        .iter()
        .find(|p| p.leaf_itemset.items() == [a, b])
        .expect("census pattern present");
    use flipper_measures::Label::*;
    let labels: Vec<_> = p.chain.iter().map(|c| c.label).collect();
    assert_eq!(labels, vec![Negative, Positive]);
}
