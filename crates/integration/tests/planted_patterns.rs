//! Ground-truth tests: datasets with *planted* flipping patterns must
//! yield exactly those patterns — non-trivially exercising the miner
//! (random data almost never flips, as the paper also observed for its
//! synthetic experiments).

use flipper_core::{mine, verify::brute_force, FlipperConfig, MinSupports, PruningConfig};
use flipper_datagen::planted::{self, PlantedParams};
use flipper_measures::Thresholds;

fn planted_cfg() -> FlipperConfig {
    let (gamma, eps) = planted::recommended_thresholds();
    FlipperConfig::new(
        Thresholds::new(gamma, eps),
        MinSupports::Counts(vec![5, 5, 5]),
    )
}

#[test]
fn planted_pairs_are_found_by_all_variants() {
    let data = planted::generate(&PlantedParams::default());
    let expected: Vec<(String, String)> = data
        .planted_pairs
        .iter()
        .map(|&(a, b)| {
            (
                data.taxonomy.name(a).to_string(),
                data.taxonomy.name(b).to_string(),
            )
        })
        .collect();
    assert_eq!(expected.len(), 2);

    for pruning in PruningConfig::VARIANTS {
        let result = mine(
            &data.taxonomy,
            &data.db,
            &planted_cfg().with_pruning(pruning),
        );
        let mut found: Vec<(String, String)> = result
            .patterns
            .iter()
            .filter(|p| p.size() == 2)
            .map(|p| {
                let items = p.leaf_itemset.items();
                (
                    data.taxonomy.name(items[0]).to_string(),
                    data.taxonomy.name(items[1]).to_string(),
                )
            })
            .collect();
        found.sort();
        for pair in &expected {
            assert!(
                found.contains(pair),
                "variant {} missed planted pair {:?} (found {:?})",
                pruning.name(),
                pair,
                found
            );
        }
        // Every reported pattern must be a valid alternating chain.
        for p in &result.patterns {
            assert_eq!(p.validate(), Ok(()));
        }
    }
}

#[test]
fn planted_matches_brute_force_with_noise() {
    // Background noise can create or destroy incidental patterns; whatever
    // the truth is, miner and brute force must agree exactly.
    for seed in [7u64, 13, 99] {
        let data = planted::generate(&PlantedParams {
            background_txns: 400,
            seed,
            ..Default::default()
        });
        let cfg = planted_cfg();
        let expected: Vec<String> = brute_force(&data.taxonomy, &data.db, &cfg)
            .iter()
            .map(|p| p.leaf_itemset.to_string())
            .collect();
        assert!(
            !expected.is_empty(),
            "planted data must contain at least the planted patterns"
        );
        for pruning in PruningConfig::VARIANTS {
            let got: Vec<String> =
                mine(&data.taxonomy, &data.db, &cfg.clone().with_pruning(pruning))
                    .patterns
                    .iter()
                    .map(|p| p.leaf_itemset.to_string())
                    .collect();
            assert_eq!(got, expected, "variant {} (seed {seed})", pruning.name());
        }
    }
}

#[test]
fn planted_chain_has_expected_signs() {
    let data = planted::generate(&PlantedParams {
        background_txns: 0,
        ..Default::default()
    });
    let result = mine(&data.taxonomy, &data.db, &planted_cfg());
    let (x, y) = data.planted_pairs[0];
    let p = result
        .patterns
        .iter()
        .find(|p| p.leaf_itemset.items() == [x, y])
        .expect("planted pattern found");
    use flipper_measures::Label::*;
    let labels: Vec<_> = p.chain.iter().map(|c| c.label).collect();
    assert_eq!(labels, vec![Positive, Negative, Positive]);
    // The construction's exact Kulc values.
    assert!((p.chain[2].corr - 1.0).abs() < 1e-12);
    assert!((p.chain[1].corr - 30.0 / 150.0).abs() < 1e-12);
    assert!((p.chain[0].corr - 330.0 / 450.0).abs() < 1e-12);
}

#[test]
fn more_noise_still_agrees_with_brute_force() {
    let data = planted::generate(&PlantedParams {
        background_txns: 2_000,
        num_patterns: 1,
        roots: 2,
        ..Default::default()
    });
    let cfg = planted_cfg();
    let expected: Vec<String> = brute_force(&data.taxonomy, &data.db, &cfg)
        .iter()
        .map(|p| p.leaf_itemset.to_string())
        .collect();
    for pruning in PruningConfig::VARIANTS {
        let got: Vec<String> = mine(&data.taxonomy, &data.db, &cfg.clone().with_pruning(pruning))
            .patterns
            .iter()
            .map(|p| p.leaf_itemset.to_string())
            .collect();
        assert_eq!(got, expected, "variant {}", pruning.name());
    }
}
