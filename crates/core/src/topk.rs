//! Top-K "most flipping" pattern mining — the extension proposed in the
//! paper's conclusions (§7) for users who cannot pick `(γ, ε)` a priori.
//!
//! The paper suggests defining the *most flipping* patterns as those with
//! the largest gap between correlation values at different hierarchy
//! levels. This module implements that as an automatic threshold search:
//! starting from a wide `(γ, ε)` pair, the thresholds are relaxed along the
//! paper's own tuning recipe (§5.1: fix γ, lower ε; then lower γ) until at
//! least `k` patterns exist, and the best `k` by flip gap are returned.

use crate::config::FlipperConfig;
use crate::miner::mine_with_view;
use crate::results::FlippingPattern;
use flipper_data::{MultiLevelView, TransactionDb};
use flipper_measures::Thresholds;
use flipper_taxonomy::Taxonomy;

/// Configuration of the top-K search.
#[derive(Debug, Clone)]
pub struct TopKConfig {
    /// How many patterns to return (at most).
    pub k: usize,
    /// Starting positive threshold γ₀ (strictest).
    pub gamma_start: f64,
    /// Lowest γ to try before giving up.
    pub gamma_floor: f64,
    /// Multiplicative step applied to γ when a sweep exhausts ε.
    pub gamma_step: f64,
    /// Additive step by which ε climbs from 0 toward γ in each sweep.
    pub epsilon_step: f64,
    /// Base mining configuration (its thresholds are overridden).
    pub base: FlipperConfig,
}

impl Default for TopKConfig {
    fn default() -> Self {
        TopKConfig {
            k: 10,
            gamma_start: 0.7,
            gamma_floor: 0.2,
            gamma_step: 0.8,
            epsilon_step: 0.05,
            base: FlipperConfig::default(),
        }
    }
}

/// A rejected [`TopKConfig`] search knob, reported by
/// [`TopKConfig::validate`]. The single source of truth for the search
/// invariants: the panicking entry points assert through it, and fallible
/// frontends surface it as a typed error.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchConfigError {
    /// `k` is zero.
    ZeroK,
    /// The γ schedule is not a decreasing positive range.
    BadGammaRange {
        /// Starting γ.
        start: f64,
        /// Floor γ.
        floor: f64,
    },
    /// The multiplicative γ step does not shrink γ.
    BadGammaStep(f64),
}

impl std::fmt::Display for SearchConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchConfigError::ZeroK => write!(f, "k must be positive"),
            SearchConfigError::BadGammaRange { start, floor } => write!(
                f,
                "need gamma_start > gamma_floor > 0 (got start={start}, floor={floor})"
            ),
            SearchConfigError::BadGammaStep(step) => {
                write!(f, "gamma_step must shrink gamma (0 < step < 1, got {step})")
            }
        }
    }
}

impl std::error::Error for SearchConfigError {}

impl TopKConfig {
    /// Check the search-knob invariants (the base mining configuration has
    /// its own [`FlipperConfig::validate`]). [`top_k`] /
    /// [`top_k_with_view`] assert these on entry; fallible callers check
    /// here first to get a typed error instead of a panic.
    pub fn validate(&self) -> Result<(), SearchConfigError> {
        if self.k == 0 {
            return Err(SearchConfigError::ZeroK);
        }
        if !(self.gamma_start > self.gamma_floor && self.gamma_floor > 0.0) {
            return Err(SearchConfigError::BadGammaRange {
                start: self.gamma_start,
                floor: self.gamma_floor,
            });
        }
        // Strict on both ends (rejects 0, 1 and NaN): step 0 would probe
        // only gamma_start instead of sweeping down to the floor.
        if !(self.gamma_step > 0.0 && self.gamma_step < 1.0) {
            return Err(SearchConfigError::BadGammaStep(self.gamma_step));
        }
        Ok(())
    }
}

/// Outcome of the top-K search.
#[derive(Debug, Clone)]
pub struct TopKResult {
    /// Up to `k` patterns, descending by flip gap (ties: ascending itemset).
    pub patterns: Vec<FlippingPattern>,
    /// The `(γ, ε)` pair that produced them.
    pub thresholds: Thresholds,
    /// Number of mining runs performed by the search.
    pub runs: usize,
}

/// Find the top-K most-flipping patterns without a user-supplied `(γ, ε)`.
///
/// Strategy (mirroring the paper's recipe): for γ from `gamma_start`
/// downwards, sweep ε from just below γ *downwards* is what a user would do
/// to restrict; to *find* patterns we instead start from the most
/// permissive ε (just below γ) — the very first sweep position already
/// yields the largest pattern set for that γ, so each γ needs exactly one
/// mining run, with ε = γ − `epsilon_step`.
///
/// Patterns found at stricter thresholds have larger guaranteed gaps
/// (`corr ≥ γ` on positive levels, `corr ≤ ε` on negative ones), so the
/// first γ that yields ≥ k patterns gives the best-separated top-K.
pub fn top_k(tax: &Taxonomy, db: &TransactionDb, cfg: &TopKConfig) -> TopKResult {
    // Fail fast on a bad config before paying for the projection.
    assert_search_knobs(cfg);
    let view = MultiLevelView::build(db, tax);
    top_k_with_view(tax, &view, cfg)
}

/// The search-knob invariants both entry points enforce up front.
fn assert_search_knobs(cfg: &TopKConfig) {
    if let Err(e) = cfg.validate() {
        // lint:allow(panic-hygiene) documented panicking entry point; fallible callers use validate()
        panic!("{e}");
    }
}

/// [`top_k`] over a prebuilt [`MultiLevelView`] — the projection is the
/// expensive part, so sessions that cache the view (or built it by
/// streaming, without ever materializing the database) search through this
/// entry point.
pub fn top_k_with_view(tax: &Taxonomy, view: &MultiLevelView, cfg: &TopKConfig) -> TopKResult {
    assert_search_knobs(cfg);
    let mut runs = 0;
    let mut best: Option<TopKResult> = None;

    let mut gamma = cfg.gamma_start;
    while gamma >= cfg.gamma_floor {
        let epsilon = (gamma - cfg.epsilon_step)
            .max(gamma / 2.0)
            .min(gamma * 0.99);
        let thresholds = Thresholds::new(gamma, epsilon);
        let mut mining_cfg = cfg.base.clone();
        mining_cfg.thresholds = thresholds;
        let result = mine_with_view(tax, view, &mining_cfg);
        runs += 1;

        let mut patterns = result.patterns;
        patterns.sort_by(|a, b| {
            b.flip_gap()
                .total_cmp(&a.flip_gap())
                .then_with(|| a.leaf_itemset.cmp(&b.leaf_itemset))
        });
        patterns.truncate(cfg.k);
        let found = patterns.len();
        let candidate = TopKResult {
            patterns,
            thresholds,
            runs,
        };
        if found >= cfg.k {
            return candidate;
        }
        // Keep the best partial answer in case nothing reaches k.
        if best
            .as_ref()
            .is_none_or(|b| candidate.patterns.len() > b.patterns.len())
        {
            best = Some(candidate);
        }
        gamma *= cfg.gamma_step;
    }
    // lint:allow(panic-hygiene) validate() guarantees gamma_start ≥ gamma_floor, so the loop ran
    let mut out = best.expect("at least one run performed");
    out.runs = runs;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MinSupports;
    use flipper_datagen::planted::{self, PlantedParams};

    fn planted_base() -> FlipperConfig {
        FlipperConfig {
            min_support: MinSupports::Counts(vec![5]),
            ..Default::default()
        }
    }

    #[test]
    fn finds_planted_patterns_without_thresholds() {
        let d = planted::generate(&PlantedParams {
            background_txns: 0,
            ..Default::default()
        });
        let cfg = TopKConfig {
            k: 2,
            base: planted_base(),
            ..Default::default()
        };
        let r = top_k(&d.taxonomy, &d.db, &cfg);
        assert_eq!(r.patterns.len(), 2, "both planted pairs surface");
        let mut found: Vec<_> = r
            .patterns
            .iter()
            .map(|p| (p.leaf_itemset.items()[0], p.leaf_itemset.items()[1]))
            .collect();
        found.sort();
        assert_eq!(found, d.planted_pairs);
        assert!(r.runs >= 1);
        // Each returned pattern is a valid chain with the search thresholds.
        for p in &r.patterns {
            assert_eq!(p.validate(), Ok(()));
        }
    }

    #[test]
    fn k_one_returns_single_best_gap() {
        let d = planted::generate(&PlantedParams {
            background_txns: 0,
            ..Default::default()
        });
        let cfg = TopKConfig {
            k: 1,
            base: planted_base(),
            ..Default::default()
        };
        let r = top_k(&d.taxonomy, &d.db, &cfg);
        assert_eq!(r.patterns.len(), 1);
        // Both planted patterns have identical construction, so the winner
        // must carry the maximal gap among all patterns at the final γ.
        let winner_gap = r.patterns[0].flip_gap();
        assert!(winner_gap > 0.5);
    }

    #[test]
    fn ordering_is_descending_by_gap() {
        let d = planted::generate(&PlantedParams::default());
        let cfg = TopKConfig {
            k: 10,
            base: planted_base(),
            ..Default::default()
        };
        let r = top_k(&d.taxonomy, &d.db, &cfg);
        for w in r.patterns.windows(2) {
            assert!(w[0].flip_gap() >= w[1].flip_gap() - 1e-12);
        }
    }

    #[test]
    fn returns_partial_result_when_data_has_few_patterns() {
        // An all-noise dataset: the search exhausts gamma and reports what
        // little (usually nothing) it found, without panicking.
        let d = planted::generate(&PlantedParams {
            num_patterns: 1,
            pair_txns: 1,
            dilute_txns: 1,
            boost_txns: 1,
            background_txns: 300,
            ..Default::default()
        });
        let cfg = TopKConfig {
            k: 50,
            base: planted_base(),
            ..Default::default()
        };
        let r = top_k(&d.taxonomy, &d.db, &cfg);
        assert!(r.patterns.len() < 50);
        assert!(r.runs > 1, "search explored multiple gammas");
    }

    #[test]
    fn validate_reports_typed_search_errors() {
        assert_eq!(TopKConfig::default().validate(), Ok(()));
        let cfg = TopKConfig {
            k: 0,
            ..Default::default()
        };
        assert_eq!(cfg.validate(), Err(SearchConfigError::ZeroK));
        let cfg = TopKConfig {
            gamma_start: 0.1,
            gamma_floor: 0.5,
            ..Default::default()
        };
        assert_eq!(
            cfg.validate(),
            Err(SearchConfigError::BadGammaRange {
                start: 0.1,
                floor: 0.5
            })
        );
        let cfg = TopKConfig {
            gamma_step: 1.5,
            ..Default::default()
        };
        assert_eq!(cfg.validate(), Err(SearchConfigError::BadGammaStep(1.5)));
        let cfg = TopKConfig {
            gamma_step: 0.0,
            ..Default::default()
        };
        assert_eq!(
            cfg.validate(),
            Err(SearchConfigError::BadGammaStep(0.0)),
            "step 0 would never sweep below gamma_start"
        );
        // Displays carry the historical assert messages.
        assert_eq!(SearchConfigError::ZeroK.to_string(), "k must be positive");
        assert!(SearchConfigError::BadGammaStep(1.5)
            .to_string()
            .contains("shrink gamma"));
        assert!(SearchConfigError::BadGammaRange {
            start: 0.1,
            floor: 0.5
        }
        .to_string()
        .contains("gamma_start > gamma_floor"));
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let d = planted::generate(&PlantedParams::default());
        let cfg = TopKConfig {
            k: 0,
            base: planted_base(),
            ..Default::default()
        };
        let _ = top_k(&d.taxonomy, &d.db, &cfg);
    }

    #[test]
    #[should_panic(expected = "gamma_step")]
    fn bad_gamma_step_rejected() {
        let d = planted::generate(&PlantedParams::default());
        let cfg = TopKConfig {
            gamma_step: 1.5,
            base: planted_base(),
            ..Default::default()
        };
        let _ = top_k(&d.taxonomy, &d.db, &cfg);
    }
}
