//! Surprisingness ranking baselines from the paper's related work (§6).
//!
//! Before flipping patterns, taxonomies were used to *rank* already-mined
//! positive correlations: Hamani & Maamri \[6\] score a pattern by the
//! taxonomy distance between its items (farther apart ⇒ more surprising),
//! and Srikant & Agrawal \[17\] prune rules whose ancestors already imply
//! them. This module implements the distance-ranking baseline so the
//! qualitative comparison of the paper's §6 can be reproduced: distance
//! ranking surfaces *cross-category* positives but cannot express the
//! level-contrast ("flip") requirement.

use crate::cell::ItemsetInfo;
use crate::config::FlipperConfig;
use crate::miner::mine;
use crate::results::MiningResult;
use flipper_data::{Itemset, TransactionDb};
use flipper_measures::Label;
use flipper_taxonomy::Taxonomy;

/// A positive itemset scored by taxonomy distance.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedPattern {
    /// The itemset (at whatever level it was found).
    pub itemset: Itemset,
    /// Its abstraction level.
    pub level: usize,
    /// Correlation value.
    pub corr: f64,
    /// Surprisingness: the maximum pairwise taxonomy distance between the
    /// itemset's members (edges on the tree path).
    pub distance: usize,
}

/// Mine all positive itemsets with the BASIC variant and rank them by
/// taxonomy distance, descending (ties: higher correlation first).
///
/// This reproduces the related-work baseline the paper contrasts with: the
/// output is a ranking of positives only — flips are invisible to it.
pub fn rank_by_distance(
    tax: &Taxonomy,
    db: &TransactionDb,
    cfg: &FlipperConfig,
) -> Vec<RankedPattern> {
    let basic = cfg
        .clone()
        .with_pruning(crate::config::PruningConfig::BASIC);
    let result = mine(tax, db, &basic);
    rank_result_by_distance(tax, &result)
}

/// Rank the positive itemsets of an existing mining result.
///
/// Works with any variant's result, but only itemsets that were evaluated
/// (and labeled positive) appear — use BASIC for the complete ranking.
pub fn rank_result_by_distance(tax: &Taxonomy, result: &MiningResult) -> Vec<RankedPattern> {
    let mut out: Vec<RankedPattern> = result
        .positive_itemsets()
        .map(|(level, set, info)| RankedPattern {
            itemset: set.clone(),
            level,
            corr: info.corr,
            distance: max_pairwise_distance(tax, set),
        })
        .collect();
    out.sort_by(|a, b| {
        b.distance
            .cmp(&a.distance)
            .then_with(|| b.corr.total_cmp(&a.corr))
            .then_with(|| a.itemset.cmp(&b.itemset))
    });
    out
}

fn max_pairwise_distance(tax: &Taxonomy, set: &Itemset) -> usize {
    let items = set.items();
    let mut best = 0;
    for (i, &a) in items.iter().enumerate() {
        for &b in &items[i + 1..] {
            best = best.max(tax.distance(a, b));
        }
    }
    best
}

impl MiningResult {
    /// Iterate `(level, itemset, info)` for every positively labeled
    /// itemset across all evaluated cells.
    pub fn positive_itemsets(&self) -> impl Iterator<Item = (usize, &Itemset, &ItemsetInfo)> + '_ {
        self.evaluated.iter().flat_map(|(level, cell)| {
            cell.iter()
                .filter(|(_, info)| info.label == Label::Positive)
                .map(move |(set, info)| (*level, set, info))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MinSupports;
    use flipper_datagen::planted::{self, PlantedParams};
    use flipper_measures::Thresholds;

    fn setup() -> (flipper_taxonomy::Taxonomy, TransactionDb, FlipperConfig) {
        let d = planted::generate(&PlantedParams {
            background_txns: 0,
            ..Default::default()
        });
        let (g, e) = planted::recommended_thresholds();
        let cfg = FlipperConfig::new(Thresholds::new(g, e), MinSupports::Counts(vec![5]));
        (d.taxonomy, d.db, cfg)
    }

    #[test]
    fn ranking_is_sorted_by_distance_then_corr() {
        let (tax, db, cfg) = setup();
        let ranked = rank_by_distance(&tax, &db, &cfg);
        assert!(!ranked.is_empty());
        for w in ranked.windows(2) {
            assert!(
                w[0].distance > w[1].distance
                    || (w[0].distance == w[1].distance && w[0].corr >= w[1].corr - 1e-12)
            );
        }
    }

    #[test]
    fn cross_category_positives_have_max_distance() {
        let (tax, db, cfg) = setup();
        let ranked = rank_by_distance(&tax, &db, &cfg);
        // The planted leaf pairs (cross-category, perfectly correlated)
        // sit at the top band: two leaves under different level-1 roots are
        // 2 × height edges apart.
        assert_eq!(ranked[0].distance, 2 * tax.height());
    }

    #[test]
    fn ranking_contains_planted_leaf_pairs() {
        let d = planted::generate(&PlantedParams {
            background_txns: 0,
            ..Default::default()
        });
        let (g, e) = planted::recommended_thresholds();
        let cfg = FlipperConfig::new(Thresholds::new(g, e), MinSupports::Counts(vec![5]));
        let ranked = rank_by_distance(&d.taxonomy, &d.db, &cfg);
        for &(a, b) in &d.planted_pairs {
            let set = Itemset::pair(a, b);
            assert!(
                ranked.iter().any(|r| r.itemset == set),
                "planted positive pair must be ranked"
            );
        }
    }

    #[test]
    fn distance_ranking_cannot_see_flips() {
        // The baseline's blind spot, per the paper's §6: a negatively
        // correlated leaf pair under positively correlated parents (a
        // down-flip) never appears in a positives-only ranking.
        let (tax, db, cfg) = setup();
        let ranked = rank_by_distance(&tax, &db, &cfg);
        let flips = mine(&tax, &db, &cfg);
        // The planted up-flip leaf pairs are positive, so they DO appear —
        // but their defining property (the flip) is not what ranks them:
        // equal-distance non-flipping pairs rank alongside them.
        let flip_sets: Vec<&Itemset> = flips.patterns.iter().map(|p| &p.leaf_itemset).collect();
        let top_band: Vec<&RankedPattern> = ranked
            .iter()
            .filter(|r| r.distance == ranked[0].distance)
            .collect();
        assert!(
            top_band.len() > flip_sets.len(),
            "distance ranking cannot separate flips from ordinary \
             cross-category positives ({} vs {})",
            top_band.len(),
            flip_sets.len()
        );
    }
}
