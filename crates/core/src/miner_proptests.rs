//! Property tests of miner-level invariants that hold for every input —
//! complementing the brute-force differential tests in the integration
//! crate with faster, structural checks.
//!
//! Ported from `proptest` to deterministic seed sweeps for the offline
//! (dependency-free) build: each retired strategy drew scalar seeds, so a
//! fixed range loop reproduces the same coverage reproducibly.

#![cfg(test)]

use crate::config::{FlipperConfig, MinSupports, PruningConfig};
use crate::miner::mine;
use flipper_data::rng::{Rng, Xoshiro256pp};
use flipper_data::TransactionDb;
use flipper_measures::{Label, Thresholds};
use flipper_taxonomy::{NodeId, Taxonomy};

fn random_input(
    roots: usize,
    fanout: usize,
    height: usize,
    n: usize,
    seed: u64,
) -> (Taxonomy, TransactionDb) {
    let tax = Taxonomy::uniform(roots, fanout, height).unwrap();
    let leaves = tax.leaves().to_vec();
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let rows: Vec<Vec<NodeId>> = (0..n)
        .map(|_| {
            let w = rng.gen_range(1..=4);
            (0..w)
                .map(|_| leaves[rng.gen_range(0..leaves.len())])
                .collect()
        })
        .collect();
    (tax, TransactionDb::new(rows).unwrap())
}

/// Every reported pattern validates (alternating, correlated chain of
/// consecutive levels ending at the leaf itemset).
#[test]
fn all_patterns_validate() {
    for seed in 0..32u64 {
        let (tax, db) = random_input(2, 2, 3, 60, seed);
        let cfg = FlipperConfig::new(Thresholds::new(0.5, 0.25), MinSupports::Counts(vec![1]));
        let r = mine(&tax, &db, &cfg);
        for p in &r.patterns {
            assert_eq!(p.validate(), Ok(()), "seed {seed}");
            assert_eq!(p.chain.len(), tax.height(), "seed {seed}");
        }
    }
}

/// Cell summaries are internally consistent: per-label counts bound the
/// evaluated count, and alive itemsets are always correlated.
#[test]
fn cell_summaries_consistent() {
    for seed in 0..32u64 {
        let (tax, db) = random_input(3, 2, 2, 50, seed);
        let cfg = FlipperConfig::new(Thresholds::new(0.6, 0.3), MinSupports::Counts(vec![2, 1]));
        let r = mine(&tax, &db, &cfg);
        for c in &r.cells {
            assert!(c.positive + c.negative <= c.frequent, "seed {seed}");
            assert!(c.frequent <= c.evaluated, "seed {seed}");
            assert!(c.alive <= c.positive + c.negative, "seed {seed}");
        }
        for (_, cell) in &r.evaluated {
            for (_, info) in cell.iter() {
                if info.chain_alive {
                    assert!(info.label.is_correlated(), "seed {seed}");
                }
                if info.label != Label::Infrequent {
                    assert!((0.0..=1.0).contains(&info.corr), "seed {seed}");
                }
            }
        }
    }
}

/// Monotonicity of the pruning stack: each additional technique never
/// *increases* generated candidates, and never changes the answer.
#[test]
fn pruning_stack_is_monotone_in_work() {
    for seed in 0..32u64 {
        let (tax, db) = random_input(2, 2, 3, 80, seed);
        let cfg = FlipperConfig::new(
            Thresholds::new(0.5, 0.2),
            MinSupports::Counts(vec![2, 1, 1]),
        );
        let runs: Vec<_> = PruningConfig::VARIANTS
            .iter()
            .map(|&p| mine(&tax, &db, &cfg.clone().with_pruning(p)))
            .collect();
        // Identical answers.
        for w in runs.windows(2) {
            assert_eq!(&w[0].patterns, &w[1].patterns, "seed {seed}");
        }
        // BASIC does at least as much candidate work as the full stack.
        assert!(
            runs[0].stats.candidates_generated >= runs[3].stats.candidates_generated,
            "seed {seed}"
        );
        // TPG and SIBP never add work over plain flipping.
        assert!(
            runs[1].stats.candidates_generated >= runs[2].stats.candidates_generated,
            "seed {seed}"
        );
        assert!(
            runs[2].stats.candidates_generated >= runs[3].stats.candidates_generated,
            "seed {seed}"
        );
    }
}

/// Raising minimum supports can only shrink the pattern set (flipping
/// patterns require frequency at every level).
#[test]
fn min_support_monotonicity() {
    for seed in 0..16u64 {
        let (tax, db) = random_input(2, 2, 2, 60, seed);
        for theta in 1..4u64 {
            let loose =
                FlipperConfig::new(Thresholds::new(0.5, 0.25), MinSupports::Counts(vec![theta]));
            let tight = FlipperConfig::new(
                Thresholds::new(0.5, 0.25),
                MinSupports::Counts(vec![theta + 2]),
            );
            let many = mine(&tax, &db, &loose).patterns;
            let few = mine(&tax, &db, &tight).patterns;
            for p in &few {
                assert!(
                    many.iter().any(|q| q.leaf_itemset == p.leaf_itemset),
                    "tightening θ must not create new patterns (seed {seed}, θ {theta})"
                );
            }
        }
    }
}

/// Widening the (γ, ε) gap can only shrink the pattern set: a chain
/// that is positive at γ' ≥ γ and negative at ε' ≤ ε also qualifies at
/// the looser thresholds.
#[test]
fn threshold_gap_monotonicity() {
    for seed in 0..32u64 {
        let (tax, db) = random_input(2, 2, 2, 60, seed);
        let loose = FlipperConfig::new(Thresholds::new(0.5, 0.3), MinSupports::Counts(vec![1]));
        let tight = FlipperConfig::new(Thresholds::new(0.6, 0.2), MinSupports::Counts(vec![1]));
        let many = mine(&tax, &db, &loose).patterns;
        let few = mine(&tax, &db, &tight).patterns;
        for p in &few {
            assert!(
                many.iter().any(|q| q.leaf_itemset == p.leaf_itemset),
                "tightening (γ, ε) must not create new patterns (seed {seed})"
            );
        }
    }
}
