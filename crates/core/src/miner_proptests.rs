//! Property tests of miner-level invariants that hold for every input —
//! complementing the brute-force differential tests in the integration
//! crate with faster, structural checks.

#![cfg(test)]

use crate::config::{FlipperConfig, MinSupports, PruningConfig};
use crate::miner::mine;
use flipper_data::TransactionDb;
use flipper_measures::{Label, Thresholds};
use flipper_taxonomy::{NodeId, Taxonomy};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn random_input(
    roots: usize,
    fanout: usize,
    height: usize,
    n: usize,
    seed: u64,
) -> (Taxonomy, TransactionDb) {
    let tax = Taxonomy::uniform(roots, fanout, height).unwrap();
    let leaves = tax.leaves().to_vec();
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<NodeId>> = (0..n)
        .map(|_| {
            let w = rng.gen_range(1..=4);
            (0..w).map(|_| leaves[rng.gen_range(0..leaves.len())]).collect()
        })
        .collect();
    (tax, TransactionDb::new(rows).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Every reported pattern validates (alternating, correlated chain of
    /// consecutive levels ending at the leaf itemset).
    #[test]
    fn all_patterns_validate(seed in 0u64..2_000) {
        let (tax, db) = random_input(2, 2, 3, 60, seed);
        let cfg = FlipperConfig::new(
            Thresholds::new(0.5, 0.25),
            MinSupports::Counts(vec![1]),
        );
        let r = mine(&tax, &db, &cfg);
        for p in &r.patterns {
            prop_assert_eq!(p.validate(), Ok(()));
            prop_assert_eq!(p.chain.len(), tax.height());
        }
    }

    /// Cell summaries are internally consistent: per-label counts bound the
    /// evaluated count, and alive itemsets are always correlated.
    #[test]
    fn cell_summaries_consistent(seed in 0u64..2_000) {
        let (tax, db) = random_input(3, 2, 2, 50, seed);
        let cfg = FlipperConfig::new(
            Thresholds::new(0.6, 0.3),
            MinSupports::Counts(vec![2, 1]),
        );
        let r = mine(&tax, &db, &cfg);
        for c in &r.cells {
            prop_assert!(c.positive + c.negative <= c.frequent);
            prop_assert!(c.frequent <= c.evaluated);
            prop_assert!(c.alive <= c.positive + c.negative);
        }
        for (_, cell) in &r.evaluated {
            for (_, info) in cell.iter() {
                if info.chain_alive {
                    prop_assert!(info.label.is_correlated());
                }
                if info.label != Label::Infrequent {
                    prop_assert!((0.0..=1.0).contains(&info.corr));
                }
            }
        }
    }

    /// Monotonicity of the pruning stack: each additional technique never
    /// *increases* generated candidates, and never changes the answer.
    #[test]
    fn pruning_stack_is_monotone_in_work(seed in 0u64..1_000) {
        let (tax, db) = random_input(2, 2, 3, 80, seed);
        let cfg = FlipperConfig::new(
            Thresholds::new(0.5, 0.2),
            MinSupports::Counts(vec![2, 1, 1]),
        );
        let runs: Vec<_> = PruningConfig::VARIANTS
            .iter()
            .map(|&p| mine(&tax, &db, &cfg.clone().with_pruning(p)))
            .collect();
        // Identical answers.
        for w in runs.windows(2) {
            prop_assert_eq!(&w[0].patterns, &w[1].patterns);
        }
        // BASIC does at least as much candidate work as the full stack.
        prop_assert!(
            runs[0].stats.candidates_generated >= runs[3].stats.candidates_generated
        );
        // TPG and SIBP never add work over plain flipping.
        prop_assert!(runs[1].stats.candidates_generated >= runs[2].stats.candidates_generated);
        prop_assert!(runs[2].stats.candidates_generated >= runs[3].stats.candidates_generated);
    }

    /// Raising minimum supports can only shrink the pattern set (flipping
    /// patterns require frequency at every level).
    #[test]
    fn min_support_monotonicity(seed in 0u64..1_000, theta in 1u64..4) {
        let (tax, db) = random_input(2, 2, 2, 60, seed);
        let loose = FlipperConfig::new(
            Thresholds::new(0.5, 0.25),
            MinSupports::Counts(vec![theta]),
        );
        let tight = FlipperConfig::new(
            Thresholds::new(0.5, 0.25),
            MinSupports::Counts(vec![theta + 2]),
        );
        let many = mine(&tax, &db, &loose).patterns;
        let few = mine(&tax, &db, &tight).patterns;
        for p in &few {
            prop_assert!(
                many.iter().any(|q| q.leaf_itemset == p.leaf_itemset),
                "tightening θ must not create new patterns"
            );
        }
    }

    /// Widening the (γ, ε) gap can only shrink the pattern set: a chain
    /// that is positive at γ' ≥ γ and negative at ε' ≤ ε also qualifies at
    /// the looser thresholds.
    #[test]
    fn threshold_gap_monotonicity(seed in 0u64..1_000) {
        let (tax, db) = random_input(2, 2, 2, 60, seed);
        let loose = FlipperConfig::new(
            Thresholds::new(0.5, 0.3),
            MinSupports::Counts(vec![1]),
        );
        let tight = FlipperConfig::new(
            Thresholds::new(0.6, 0.2),
            MinSupports::Counts(vec![1]),
        );
        let many = mine(&tax, &db, &loose).patterns;
        let few = mine(&tax, &db, &tight).patterns;
        for p in &few {
            prop_assert!(
                many.iter().any(|q| q.leaf_itemset == p.leaf_itemset),
                "tightening (γ, ε) must not create new patterns"
            );
        }
    }
}
