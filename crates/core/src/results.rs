//! Mining results: flipping patterns with their full per-level chains.

use flipper_data::Itemset;
use flipper_measures::Label;
use flipper_taxonomy::Taxonomy;
use std::fmt;

/// One level of a flipping pattern's correlation chain.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct ChainLevel {
    /// Abstraction level (1 = most general).
    pub level: usize,
    /// The `(h,k)`-itemset at this level.
    pub itemset: Itemset,
    /// Its support in the level-`h` projection.
    pub support: u64,
    /// Its correlation value.
    pub corr: f64,
    /// Its label (always `Positive` or `Negative` in a valid chain).
    pub label: Label,
}

/// A violated invariant of a [`FlippingPattern`] chain, reported by
/// [`FlippingPattern::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ChainError {
    /// The chain holds no levels at all.
    Empty,
    /// Levels are not consecutive `1..=H`: position `position` (0-based)
    /// holds `found` instead of `expected`.
    LevelOutOfOrder {
        /// 0-based position in the chain.
        position: usize,
        /// The level that should sit there (`position + 1`).
        expected: usize,
        /// The level actually recorded.
        found: usize,
    },
    /// A chain level carries a non-correlated label.
    NotCorrelated {
        /// The offending level.
        level: usize,
        /// Its label.
        label: Label,
    },
    /// Two consecutive levels do not flip sign.
    NoFlip {
        /// The upper level.
        upper: usize,
        /// The lower level.
        lower: usize,
    },
    /// The chain's last itemset differs from the pattern's leaf itemset.
    LeafMismatch,
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::Empty => write!(f, "empty chain"),
            ChainError::LevelOutOfOrder {
                position,
                expected,
                found,
            } => write!(
                f,
                "chain level {found} at position {position} (expected {expected})"
            ),
            ChainError::NotCorrelated { level, label } => {
                write!(f, "level {level} is {label}")
            }
            ChainError::NoFlip { upper, lower } => {
                write!(f, "labels do not flip between levels {upper} and {lower}")
            }
            ChainError::LeafMismatch => write!(f, "chain leaf differs from leaf_itemset"),
        }
    }
}

impl std::error::Error for ChainError {}

/// A flipping correlation pattern (Definition 2): a leaf itemset whose
/// generalization chain alternates between positive and negative correlation
/// at every abstraction level.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct FlippingPattern {
    /// The leaf-level itemset (the chain's last entry repeats it).
    pub leaf_itemset: Itemset,
    /// The chain from level 1 (index 0) down to the leaf level.
    pub chain: Vec<ChainLevel>,
}

impl FlippingPattern {
    /// Number of items `k`.
    pub fn size(&self) -> usize {
        self.leaf_itemset.len()
    }

    /// The "flip gap": the largest absolute correlation difference between
    /// consecutive levels — the paper's suggested top-K ranking criterion
    /// for "most flipping" patterns (§7).
    pub fn flip_gap(&self) -> f64 {
        self.chain
            .windows(2)
            .map(|w| (w[0].corr - w[1].corr).abs())
            .fold(0.0, f64::max)
    }

    /// Validate the chain invariants: labels alternate, levels are
    /// `1..=H` consecutive, and every label is correlated.
    pub fn validate(&self) -> Result<(), ChainError> {
        if self.chain.is_empty() {
            return Err(ChainError::Empty);
        }
        for (i, lv) in self.chain.iter().enumerate() {
            if lv.level != i + 1 {
                return Err(ChainError::LevelOutOfOrder {
                    position: i,
                    expected: i + 1,
                    found: lv.level,
                });
            }
            if !lv.label.is_correlated() {
                return Err(ChainError::NotCorrelated {
                    level: lv.level,
                    label: lv.label,
                });
            }
        }
        for w in self.chain.windows(2) {
            if !w[0].label.flips_to(w[1].label) {
                return Err(ChainError::NoFlip {
                    upper: w[0].level,
                    lower: w[1].level,
                });
            }
        }
        // Emptiness was rejected above, so a missing last element can only
        // mean LeafMismatch-grade corruption anyway.
        if self.chain.last().map(|lv| &lv.itemset) != Some(&self.leaf_itemset) {
            return Err(ChainError::LeafMismatch);
        }
        Ok(())
    }

    /// Human-readable rendering with node names from `tax`.
    pub fn display<'a>(&'a self, tax: &'a Taxonomy) -> DisplayPattern<'a> {
        DisplayPattern { pattern: self, tax }
    }
}

/// Pretty-printer for [`FlippingPattern`] (see [`FlippingPattern::display`]).
pub struct DisplayPattern<'a> {
    pattern: &'a FlippingPattern,
    tax: &'a Taxonomy,
}

impl fmt::Display for DisplayPattern<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, lv) in self.pattern.chain.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(
                f,
                "  L{} {} {}  sup={} corr={:.4}",
                lv.level,
                lv.label.sigil(),
                lv.itemset.display(self.tax),
                lv.support,
                lv.corr
            )?;
        }
        Ok(())
    }
}

/// Summary of one evaluated search-table cell, for reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct CellSummary {
    /// Abstraction level.
    pub level: usize,
    /// Itemset size.
    pub k: usize,
    /// Candidates evaluated.
    pub evaluated: usize,
    /// Frequent itemsets.
    pub frequent: usize,
    /// Positive itemsets.
    pub positive: usize,
    /// Negative itemsets.
    pub negative: usize,
    /// Chain-alive itemsets.
    pub alive: usize,
}

/// The complete outcome of a mining run.
#[derive(Debug, Clone)]
pub struct MiningResult {
    /// All flipping patterns, sorted by (size, leaf itemset) for
    /// deterministic output.
    pub patterns: Vec<FlippingPattern>,
    /// Run statistics.
    pub stats: crate::stats::RunStats,
    /// Per-cell summaries in evaluation order.
    pub cells: Vec<CellSummary>,
    /// The evaluated cells themselves, as `(level, cell)` pairs in
    /// evaluation order — the raw material for post-hoc analyses such as
    /// the distance ranking of [`crate::ranking`].
    pub evaluated: Vec<(usize, crate::cell::Cell)>,
}

impl MiningResult {
    /// Total number of positive frequent itemsets found across all
    /// evaluated cells (Table 4's "Pos" column when run with BASIC pruning).
    pub fn total_positive(&self) -> usize {
        self.cells.iter().map(|c| c.positive).sum()
    }

    /// Total number of negative frequent itemsets across all cells.
    pub fn total_negative(&self) -> usize {
        self.cells.iter().map(|c| c.negative).sum()
    }

    /// Patterns ranked by descending flip gap — the paper's proposed
    /// "top-K most flipping" ordering.
    pub fn top_k_by_gap(&self, k: usize) -> Vec<&FlippingPattern> {
        let mut v: Vec<&FlippingPattern> = self.patterns.iter().collect();
        v.sort_by(|a, b| b.flip_gap().total_cmp(&a.flip_gap()));
        v.truncate(k);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flipper_taxonomy::NodeId;

    fn n(i: u32) -> NodeId {
        NodeId::from_index(i as usize)
    }

    fn lv(level: usize, items: &[u32], corr: f64, label: Label) -> ChainLevel {
        ChainLevel {
            level,
            itemset: Itemset::new(items.iter().map(|&i| n(i)).collect()),
            support: 5,
            corr,
            label,
        }
    }

    fn valid_pattern() -> FlippingPattern {
        FlippingPattern {
            leaf_itemset: Itemset::new(vec![n(7), n(11)]),
            chain: vec![
                lv(1, &[1, 2], 0.8, Label::Positive),
                lv(2, &[3, 5], 0.05, Label::Negative),
                lv(3, &[7, 11], 0.9, Label::Positive),
            ],
        }
    }

    #[test]
    fn validate_accepts_alternating_chain() {
        assert_eq!(valid_pattern().validate(), Ok(()));
        assert_eq!(valid_pattern().size(), 2);
    }

    #[test]
    fn validate_rejects_broken_chains() {
        let mut p = valid_pattern();
        p.chain[1].label = Label::Positive;
        assert_eq!(p.validate(), Err(ChainError::NoFlip { upper: 1, lower: 2 }));

        let mut p = valid_pattern();
        p.chain[1].label = Label::NonCorrelated;
        assert_eq!(
            p.validate(),
            Err(ChainError::NotCorrelated {
                level: 2,
                label: Label::NonCorrelated
            })
        );

        let mut p = valid_pattern();
        p.chain.remove(0);
        assert_eq!(
            p.validate(),
            Err(ChainError::LevelOutOfOrder {
                position: 0,
                expected: 1,
                found: 2
            })
        );

        let mut p = valid_pattern();
        p.leaf_itemset = Itemset::single(n(1));
        assert_eq!(p.validate(), Err(ChainError::LeafMismatch));

        let p = FlippingPattern {
            leaf_itemset: Itemset::single(n(1)),
            chain: vec![],
        };
        assert_eq!(p.validate(), Err(ChainError::Empty));
    }

    #[test]
    fn chain_error_displays_are_descriptive() {
        assert_eq!(ChainError::Empty.to_string(), "empty chain");
        assert!(ChainError::NoFlip { upper: 1, lower: 2 }
            .to_string()
            .contains("do not flip"));
        assert!(ChainError::NotCorrelated {
            level: 2,
            label: Label::NonCorrelated
        }
        .to_string()
        .contains("non-correlated"));
        assert!(ChainError::LevelOutOfOrder {
            position: 0,
            expected: 1,
            found: 2
        }
        .to_string()
        .contains("chain level 2"));
        assert!(ChainError::LeafMismatch.to_string().contains("differs"));
    }

    #[test]
    fn flip_gap_is_max_consecutive_difference() {
        let p = valid_pattern();
        // |0.8-0.05| = 0.75, |0.05-0.9| = 0.85.
        assert!((p.flip_gap() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn top_k_sorts_by_gap() {
        let p1 = valid_pattern(); // gap 0.85
        let mut p2 = valid_pattern();
        p2.chain[2].corr = 0.3; // gaps 0.75, 0.25 → 0.75
        let r = MiningResult {
            patterns: vec![p2.clone(), p1.clone()],
            stats: Default::default(),
            cells: vec![],
            evaluated: vec![],
        };
        let top = r.top_k_by_gap(1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0], &p1);
    }

    #[test]
    fn totals_sum_cells() {
        let r = MiningResult {
            patterns: vec![],
            stats: Default::default(),
            evaluated: vec![],
            cells: vec![
                CellSummary {
                    level: 1,
                    k: 2,
                    evaluated: 10,
                    frequent: 8,
                    positive: 3,
                    negative: 2,
                    alive: 5,
                },
                CellSummary {
                    level: 2,
                    k: 2,
                    evaluated: 20,
                    frequent: 15,
                    positive: 1,
                    negative: 7,
                    alive: 4,
                },
            ],
        };
        assert_eq!(r.total_positive(), 4);
        assert_eq!(r.total_negative(), 9);
    }
}
