//! Run statistics: hardware-independent cost counters backing the paper's
//! performance figures.

use flipper_data::{CacheStats, CounterStats};
use std::time::{Duration, Instant};

/// The one sanctioned wall-clock in the result path.
///
/// `flipper-lint`'s determinism rule bans `Instant`/`SystemTime` from every
/// module that feeds `flipper-results/v1` bytes; this module is deliberately
/// outside that list because [`RunStats::elapsed`] is excluded from the
/// serialized results (`serde(skip)` here, and the sink never writes it).
/// Timing code in result-path modules goes through this wrapper so the
/// exemption stays in exactly one place.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Wall-clock time since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

/// Counters accumulated over a mining run.
///
/// The paper's Fig. 8/9 report wall-clock seconds and resident memory; both
/// are hardware-bound, so we additionally expose candidate counts and the
/// peak number of simultaneously stored itemsets (the paper's memory
/// driver) — those carry the ratios between pruning variants on any
/// machine.
#[derive(Debug, Clone, Copy, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct RunStats {
    /// Candidates generated before counting (after all generation-time
    /// filters).
    pub candidates_generated: u64,
    /// Candidates dropped at generation time by the SIBP item bans.
    pub pruned_by_sibp: u64,
    /// Candidates dropped at generation time because a known subset was
    /// infrequent (support-based / Apriori pruning).
    pub pruned_by_support: u64,
    /// Candidates never generated because vertical extension was withheld
    /// from chain-broken parents is not directly observable; instead this
    /// counts cells whose vertical source was non-empty but fully dead.
    pub dead_parent_cells: u64,
    /// Frequent itemsets found.
    pub frequent_found: u64,
    /// Positive itemsets found.
    pub positive_found: u64,
    /// Negative itemsets found.
    pub negative_found: u64,
    /// Cells evaluated.
    pub cells_evaluated: u64,
    /// Column cap imposed by TPG (0 = never triggered).
    pub tpg_cap: u64,
    /// Items banned by SIBP across all rows.
    pub sibp_banned_items: u64,
    /// Peak number of itemsets resident in the table at once — the memory
    /// proxy for Fig. 9(b).
    pub peak_resident_itemsets: u64,
    /// Total itemsets ever stored (BASIC keeps everything; Flipper far
    /// less).
    pub total_stored_itemsets: u64,
    /// Supports answered from a session-level seed cache instead of being
    /// counted ([`crate::mine_with_view_seeded`]); `0` on unseeded runs.
    /// Excluded from serialized results: seeding never changes them, only
    /// how much counting they cost.
    #[cfg_attr(feature = "serde", serde(skip))]
    pub seeded_supports: u64,
    /// Counting-engine statistics.
    #[cfg_attr(feature = "serde", serde(skip))]
    pub counter: CounterStats,
    /// Cross-cell prefix-cache efficiency counters. Excluded from
    /// serialized results for the same reason as `counter`: hit rates are
    /// an engine/runtime property, not a property of the mined patterns.
    #[cfg_attr(feature = "serde", serde(skip))]
    pub cache: CacheStats,
    /// Wall-clock duration of the mining run.
    #[cfg_attr(feature = "serde", serde(skip))]
    pub elapsed: Duration,
}

impl RunStats {
    /// One-line summary for logs and experiment tables.
    pub fn summary(&self) -> String {
        format!(
            "cells={} candidates={} frequent={} pos={} neg={} peak_resident={} \
             sibp_pruned={} support_pruned={} tpg_cap={} elapsed={:.3}s",
            self.cells_evaluated,
            self.candidates_generated,
            self.frequent_found,
            self.positive_found,
            self.negative_found,
            self.peak_resident_itemsets,
            self.pruned_by_sibp,
            self.pruned_by_support,
            self.tpg_cap,
            self.elapsed.as_secs_f64(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_contains_counters() {
        let s = RunStats {
            candidates_generated: 42,
            tpg_cap: 3,
            ..Default::default()
        };
        let line = s.summary();
        assert!(line.contains("candidates=42"));
        assert!(line.contains("tpg_cap=3"));
    }

    #[test]
    fn default_is_zeroed() {
        let s = RunStats::default();
        assert_eq!(s.candidates_generated, 0);
        assert_eq!(s.elapsed, Duration::ZERO);
    }
}
