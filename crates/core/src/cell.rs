//! Cells of the two-dimensional search-space table `M` (Fig. 6 of the
//! paper): each cell `Q(h,k)` holds the evaluated `(h,k)`-itemsets.
//!
//! Storage is a `Vec` kept sorted by itemset, so iteration order — and
//! therefore everything downstream that walks a cell, up to the
//! `flipper-results/v1` bytes — is deterministic by construction. The
//! miner inserts candidates in ascending order (they are sorted and
//! deduplicated in `gen_candidates`), which makes every insert an O(1)
//! append in practice; out-of-order inserts fall back to binary-search
//! placement.

use flipper_data::Itemset;
use flipper_measures::Label;

/// Everything known about one evaluated `(h,k)`-itemset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ItemsetInfo {
    /// Support in the level-`h` projection.
    pub support: u64,
    /// Correlation value under the configured measure (0 for infrequent
    /// itemsets whose correlation is never consulted).
    pub corr: f64,
    /// Label under Definition 1.
    pub label: Label,
    /// Whether the flipping chain from level 1 down to this itemset is
    /// unbroken: every ancestor slice is frequent, correlated, and the
    /// labels alternate. Level-1 itemsets are alive iff correlated.
    pub chain_alive: bool,
}

/// One cell `Q(h,k)` of the search table.
#[derive(Debug, Clone, Default)]
pub struct Cell {
    /// Sorted by itemset; no duplicates.
    itemsets: Vec<(Itemset, ItemsetInfo)>,
}

impl Cell {
    /// Empty cell.
    pub fn new() -> Self {
        Cell::default()
    }

    /// Number of evaluated itemsets (frequent or not).
    pub fn len(&self) -> usize {
        self.itemsets.len()
    }

    /// Whether the cell holds no itemsets.
    pub fn is_empty(&self) -> bool {
        self.itemsets.is_empty()
    }

    /// Insert an evaluated itemset, replacing any previous entry.
    pub fn insert(&mut self, set: Itemset, info: ItemsetInfo) {
        if self.itemsets.last().is_none_or(|(last, _)| *last < set) {
            self.itemsets.push((set, info));
            return;
        }
        match self.itemsets.binary_search_by(|(s, _)| s.cmp(&set)) {
            Ok(i) => self.itemsets[i].1 = info,
            Err(i) => self.itemsets.insert(i, (set, info)),
        }
    }

    /// Look up an itemset.
    pub fn get(&self, set: &Itemset) -> Option<&ItemsetInfo> {
        self.itemsets
            .binary_search_by(|(s, _)| s.cmp(set))
            .ok()
            .map(|i| &self.itemsets[i].1)
    }

    /// Iterate `(itemset, info)` pairs in ascending itemset order.
    pub fn iter(&self) -> impl Iterator<Item = (&Itemset, &ItemsetInfo)> {
        self.itemsets.iter().map(|(s, i)| (s, i))
    }

    /// Iterate itemsets with `support ≥ θ` (label ≠ infrequent).
    pub fn frequent(&self) -> impl Iterator<Item = (&Itemset, &ItemsetInfo)> {
        self.iter().filter(|(_, i)| i.label != Label::Infrequent)
    }

    /// Iterate chain-alive itemsets — the ones extended vertically.
    pub fn alive(&self) -> impl Iterator<Item = (&Itemset, &ItemsetInfo)> {
        self.iter().filter(|(_, i)| i.chain_alive)
    }

    /// Number of frequent itemsets.
    pub fn frequent_count(&self) -> usize {
        self.frequent().count()
    }

    /// Whether no itemset in this cell is labeled positive — the TPG
    /// condition of Theorem 3. Vacuously true for empty cells.
    pub fn all_non_positive(&self) -> bool {
        self.itemsets
            .iter()
            .all(|(_, i)| i.label != Label::Positive)
    }

    /// Count of itemsets per label `(positive, negative, non-correlated,
    /// infrequent)`.
    pub fn label_counts(&self) -> (usize, usize, usize, usize) {
        let mut counts = (0, 0, 0, 0);
        for (_, info) in &self.itemsets {
            match info.label {
                Label::Positive => counts.0 += 1,
                Label::Negative => counts.1 += 1,
                Label::NonCorrelated => counts.2 += 1,
                Label::Infrequent => counts.3 += 1,
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flipper_taxonomy::NodeId;

    fn n(i: u32) -> NodeId {
        NodeId::from_index(i as usize)
    }

    fn info(label: Label, alive: bool) -> ItemsetInfo {
        ItemsetInfo {
            support: 10,
            corr: 0.5,
            label,
            chain_alive: alive,
        }
    }

    #[test]
    fn insert_get_len() {
        let mut c = Cell::new();
        assert!(c.is_empty());
        let s = Itemset::pair(n(1), n(2));
        c.insert(s.clone(), info(Label::Positive, true));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&s).unwrap().label, Label::Positive);
        assert!(c.get(&Itemset::pair(n(1), n(3))).is_none());
    }

    #[test]
    fn filtered_iterators() {
        let mut c = Cell::new();
        c.insert(Itemset::pair(n(1), n(2)), info(Label::Positive, true));
        c.insert(Itemset::pair(n(1), n(3)), info(Label::Negative, false));
        c.insert(Itemset::pair(n(2), n(3)), info(Label::Infrequent, false));
        c.insert(Itemset::pair(n(2), n(4)), info(Label::NonCorrelated, false));
        assert_eq!(c.frequent_count(), 3);
        assert_eq!(c.alive().count(), 1);
        assert_eq!(c.label_counts(), (1, 1, 1, 1));
        assert!(!c.all_non_positive());
    }

    #[test]
    fn tpg_condition() {
        let mut c = Cell::new();
        assert!(c.all_non_positive(), "vacuously true when empty");
        c.insert(Itemset::pair(n(1), n(2)), info(Label::Negative, true));
        c.insert(Itemset::pair(n(1), n(3)), info(Label::Infrequent, false));
        assert!(c.all_non_positive());
        c.insert(Itemset::pair(n(2), n(3)), info(Label::Positive, true));
        assert!(!c.all_non_positive());
    }

    #[test]
    fn out_of_order_inserts_keep_sorted_order_and_replace() {
        let mut c = Cell::new();
        c.insert(Itemset::pair(n(2), n(4)), info(Label::Negative, false));
        c.insert(Itemset::pair(n(1), n(2)), info(Label::Positive, true));
        c.insert(Itemset::pair(n(1), n(3)), info(Label::Infrequent, false));
        // Replacement, not duplication.
        c.insert(Itemset::pair(n(1), n(2)), info(Label::Negative, false));
        assert_eq!(c.len(), 3);
        let order: Vec<_> = c.iter().map(|(s, _)| s.clone()).collect();
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(order, sorted);
        assert_eq!(
            c.get(&Itemset::pair(n(1), n(2))).unwrap().label,
            Label::Negative
        );
    }
}
