//! Cells of the two-dimensional search-space table `M` (Fig. 6 of the
//! paper): each cell `Q(h,k)` holds the evaluated `(h,k)`-itemsets.

use flipper_data::Itemset;
use flipper_measures::Label;
use std::collections::HashMap;

/// Everything known about one evaluated `(h,k)`-itemset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ItemsetInfo {
    /// Support in the level-`h` projection.
    pub support: u64,
    /// Correlation value under the configured measure (0 for infrequent
    /// itemsets whose correlation is never consulted).
    pub corr: f64,
    /// Label under Definition 1.
    pub label: Label,
    /// Whether the flipping chain from level 1 down to this itemset is
    /// unbroken: every ancestor slice is frequent, correlated, and the
    /// labels alternate. Level-1 itemsets are alive iff correlated.
    pub chain_alive: bool,
}

/// One cell `Q(h,k)` of the search table.
#[derive(Debug, Clone, Default)]
pub struct Cell {
    itemsets: HashMap<Itemset, ItemsetInfo>,
}

impl Cell {
    /// Empty cell.
    pub fn new() -> Self {
        Cell::default()
    }

    /// Number of evaluated itemsets (frequent or not).
    pub fn len(&self) -> usize {
        self.itemsets.len()
    }

    /// Whether the cell holds no itemsets.
    pub fn is_empty(&self) -> bool {
        self.itemsets.is_empty()
    }

    /// Insert an evaluated itemset.
    pub fn insert(&mut self, set: Itemset, info: ItemsetInfo) {
        self.itemsets.insert(set, info);
    }

    /// Look up an itemset.
    pub fn get(&self, set: &Itemset) -> Option<&ItemsetInfo> {
        self.itemsets.get(set)
    }

    /// Iterate `(itemset, info)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Itemset, &ItemsetInfo)> {
        self.itemsets.iter()
    }

    /// Iterate itemsets with `support ≥ θ` (label ≠ infrequent).
    pub fn frequent(&self) -> impl Iterator<Item = (&Itemset, &ItemsetInfo)> {
        self.itemsets
            .iter()
            .filter(|(_, i)| i.label != Label::Infrequent)
    }

    /// Iterate chain-alive itemsets — the ones extended vertically.
    pub fn alive(&self) -> impl Iterator<Item = (&Itemset, &ItemsetInfo)> {
        self.itemsets.iter().filter(|(_, i)| i.chain_alive)
    }

    /// Number of frequent itemsets.
    pub fn frequent_count(&self) -> usize {
        self.frequent().count()
    }

    /// Whether no itemset in this cell is labeled positive — the TPG
    /// condition of Theorem 3. Vacuously true for empty cells.
    pub fn all_non_positive(&self) -> bool {
        self.itemsets.values().all(|i| i.label != Label::Positive)
    }

    /// Count of itemsets per label `(positive, negative, non-correlated,
    /// infrequent)`.
    pub fn label_counts(&self) -> (usize, usize, usize, usize) {
        let mut counts = (0, 0, 0, 0);
        for info in self.itemsets.values() {
            match info.label {
                Label::Positive => counts.0 += 1,
                Label::Negative => counts.1 += 1,
                Label::NonCorrelated => counts.2 += 1,
                Label::Infrequent => counts.3 += 1,
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flipper_taxonomy::NodeId;

    fn n(i: u32) -> NodeId {
        NodeId::from_index(i as usize)
    }

    fn info(label: Label, alive: bool) -> ItemsetInfo {
        ItemsetInfo {
            support: 10,
            corr: 0.5,
            label,
            chain_alive: alive,
        }
    }

    #[test]
    fn insert_get_len() {
        let mut c = Cell::new();
        assert!(c.is_empty());
        let s = Itemset::pair(n(1), n(2));
        c.insert(s.clone(), info(Label::Positive, true));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&s).unwrap().label, Label::Positive);
        assert!(c.get(&Itemset::pair(n(1), n(3))).is_none());
    }

    #[test]
    fn filtered_iterators() {
        let mut c = Cell::new();
        c.insert(Itemset::pair(n(1), n(2)), info(Label::Positive, true));
        c.insert(Itemset::pair(n(1), n(3)), info(Label::Negative, false));
        c.insert(Itemset::pair(n(2), n(3)), info(Label::Infrequent, false));
        c.insert(Itemset::pair(n(2), n(4)), info(Label::NonCorrelated, false));
        assert_eq!(c.frequent_count(), 3);
        assert_eq!(c.alive().count(), 1);
        assert_eq!(c.label_counts(), (1, 1, 1, 1));
        assert!(!c.all_non_positive());
    }

    #[test]
    fn tpg_condition() {
        let mut c = Cell::new();
        assert!(c.all_non_positive(), "vacuously true when empty");
        c.insert(Itemset::pair(n(1), n(2)), info(Label::Negative, true));
        c.insert(Itemset::pair(n(1), n(3)), info(Label::Infrequent, false));
        assert!(c.all_non_positive());
        c.insert(Itemset::pair(n(2), n(3)), info(Label::Positive, true));
        assert!(!c.all_non_positive());
    }
}
