//! Bootstrap stability analysis for flipping patterns.
//!
//! Flipping chains hinge on threshold crossings at every level, so patterns
//! close to `γ`/`ε` can be sampling artifacts. This module quantifies
//! robustness: resample the database with replacement `rounds` times,
//! re-mine each replicate, and report how often each pattern reappears.
//! (An extension beyond the paper, in the spirit of its §7 discussion of
//! threshold sensitivity.)
//!
//! Replicates are embarrassingly parallel, so with `cfg.threads != 1` they
//! are sharded over scoped workers ([`flipper_data::exec`]). Each replicate
//! draws from its **own** seeded RNG stream derived from `(seed, round)` —
//! never from a shared sequential stream — so the resampled databases, and
//! therefore the whole report, are bit-identical at every thread count.

use crate::config::FlipperConfig;
use crate::miner::mine;
use flipper_data::{exec, Itemset, TransactionDb};
use flipper_taxonomy::{NodeId, Taxonomy};
use std::collections::BTreeMap;

/// Stability report for one pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternStability {
    /// The leaf itemset of the pattern.
    pub leaf_itemset: Itemset,
    /// Fraction of bootstrap replicates in which the pattern re-appeared
    /// (1.0 = perfectly stable).
    pub stability: f64,
    /// Whether the pattern is present in the original (un-resampled) data.
    pub in_original: bool,
}

/// Result of a bootstrap run.
#[derive(Debug, Clone)]
pub struct StabilityReport {
    /// Per-pattern stability, descending by stability then by itemset.
    pub patterns: Vec<PatternStability>,
    /// Number of bootstrap rounds performed.
    pub rounds: usize,
}

impl StabilityReport {
    /// Patterns at or above a stability cutoff.
    pub fn stable_at(&self, cutoff: f64) -> impl Iterator<Item = &PatternStability> {
        self.patterns.iter().filter(move |p| p.stability >= cutoff)
    }
}

/// A small deterministic xorshift generator so the analysis does not drag a
/// heavyweight RNG dependency into the core crate.
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> Self {
        XorShift64(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform index in `0..n` (n > 0) via rejection-free mapping (the bias
    /// for n ≪ 2⁶⁴ is negligible for resampling purposes).
    fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Resample `db` with replacement.
fn bootstrap_sample(db: &TransactionDb, rng: &mut XorShift64) -> TransactionDb {
    let n = db.len();
    let rows: Vec<Vec<NodeId>> = (0..n)
        .map(|_| db.transaction(rng.index(n)).to_vec())
        .collect();
    // lint:allow(panic-hygiene) rows are resampled from an already-validated TransactionDb
    TransactionDb::new(rows).expect("resampled rows are non-empty")
}

/// The RNG stream of one replicate: one SplitMix64 step over
/// `seed ^ round`, so streams are decorrelated and independent of which
/// worker runs the round.
fn replicate_rng(seed: u64, round: usize) -> XorShift64 {
    let mut state = seed ^ (round as u64);
    XorShift64::new(flipper_data::rng::splitmix64(&mut state))
}

/// Run the bootstrap: `rounds` replicates of `db`, mining each with `cfg`.
///
/// Patterns appearing in *any* replicate or in the original are reported;
/// stability is the replicate hit-rate. With `cfg.threads != 1` the rounds
/// run on a scoped worker pool, one replicate per worker at a time; each
/// replicate's miner then runs sequentially so the machine is not
/// oversubscribed.
pub fn bootstrap_stability(
    tax: &Taxonomy,
    db: &TransactionDb,
    cfg: &FlipperConfig,
    rounds: usize,
    seed: u64,
) -> StabilityReport {
    assert!(rounds > 0, "at least one bootstrap round is required");
    let original = mine(tax, db, cfg);
    let threads = exec::effective_threads(cfg.threads);
    // Replicate-level parallelism subsumes batch-level parallelism.
    let replicate_cfg = if threads > 1 {
        cfg.clone().with_threads(1)
    } else {
        cfg.clone()
    };
    let per_round: Vec<Vec<Itemset>> = exec::map_chunks(threads, rounds, |range| {
        range
            .map(|round| {
                let mut rng = replicate_rng(seed, round);
                let sample = bootstrap_sample(db, &mut rng);
                mine(tax, &sample, &replicate_cfg)
                    .patterns
                    .into_iter()
                    .map(|p| p.leaf_itemset)
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<Vec<Itemset>>>()
    })
    .into_iter()
    .flatten()
    .collect();
    let mut hits: BTreeMap<Itemset, usize> = BTreeMap::new();
    for sets in per_round {
        for set in sets {
            *hits.entry(set).or_insert(0) += 1;
        }
    }
    let original_sets: Vec<&Itemset> = original.patterns.iter().map(|p| &p.leaf_itemset).collect();
    let mut patterns: Vec<PatternStability> = hits
        .iter()
        .map(|(set, &count)| PatternStability {
            leaf_itemset: set.clone(),
            stability: count as f64 / rounds as f64,
            in_original: original_sets.contains(&set),
        })
        .collect();
    // Original-only patterns (never re-appearing) get stability 0.
    for set in original_sets {
        if !hits.contains_key(set) {
            patterns.push(PatternStability {
                leaf_itemset: set.clone(),
                stability: 0.0,
                in_original: true,
            });
        }
    }
    patterns.sort_by(|a, b| {
        b.stability
            .total_cmp(&a.stability)
            .then_with(|| a.leaf_itemset.cmp(&b.leaf_itemset))
    });
    StabilityReport { patterns, rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MinSupports;
    use flipper_datagen::planted::{self, PlantedParams};
    use flipper_measures::Thresholds;

    fn cfg() -> FlipperConfig {
        let (g, e) = planted::recommended_thresholds();
        FlipperConfig::new(Thresholds::new(g, e), MinSupports::Counts(vec![5]))
    }

    #[test]
    fn planted_patterns_are_highly_stable() {
        // Strong margins (Kulc 1.0 vs γ=0.6 at the leaf, 0.2 vs ε=0.35 in
        // the middle, 0.73 vs 0.6 at the top) survive resampling.
        let d = planted::generate(&PlantedParams {
            background_txns: 0,
            ..Default::default()
        });
        let report = bootstrap_stability(&d.taxonomy, &d.db, &cfg(), 10, 7);
        for &(a, b) in &d.planted_pairs {
            let set = Itemset::pair(a, b);
            let entry = report
                .patterns
                .iter()
                .find(|p| p.leaf_itemset == set)
                .expect("planted pattern in report");
            assert!(entry.in_original);
            assert!(
                entry.stability >= 0.8,
                "planted pattern should be stable, got {}",
                entry.stability
            );
        }
    }

    #[test]
    fn stable_at_filters() {
        let d = planted::generate(&PlantedParams {
            background_txns: 200,
            ..Default::default()
        });
        let report = bootstrap_stability(&d.taxonomy, &d.db, &cfg(), 5, 99);
        let all = report.patterns.len();
        let strict = report.stable_at(0.99).count();
        assert!(strict <= all);
        for p in report.stable_at(0.99) {
            assert!(p.stability >= 0.99);
        }
    }

    #[test]
    fn report_is_sorted_descending() {
        let d = planted::generate(&PlantedParams {
            background_txns: 300,
            ..Default::default()
        });
        let report = bootstrap_stability(&d.taxonomy, &d.db, &cfg(), 4, 3);
        for w in report.patterns.windows(2) {
            assert!(w[0].stability >= w[1].stability);
        }
        assert_eq!(report.rounds, 4);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = planted::generate(&PlantedParams {
            background_txns: 100,
            ..Default::default()
        });
        let a = bootstrap_stability(&d.taxonomy, &d.db, &cfg(), 3, 5);
        let b = bootstrap_stability(&d.taxonomy, &d.db, &cfg(), 3, 5);
        assert_eq!(a.patterns, b.patterns);
    }

    /// The report is bit-identical at every thread count: replicate RNG
    /// streams depend only on (seed, round), never on worker scheduling.
    #[test]
    fn thread_count_does_not_change_the_report() {
        let d = planted::generate(&PlantedParams {
            background_txns: 150,
            ..Default::default()
        });
        let sequential = bootstrap_stability(&d.taxonomy, &d.db, &cfg(), 6, 11);
        for threads in [2usize, 4, 0] {
            let parallel =
                bootstrap_stability(&d.taxonomy, &d.db, &cfg().with_threads(threads), 6, 11);
            assert_eq!(
                parallel.patterns, sequential.patterns,
                "threads={threads} diverged"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one bootstrap round")]
    fn zero_rounds_rejected() {
        let d = planted::generate(&PlantedParams::default());
        let _ = bootstrap_stability(&d.taxonomy, &d.db, &cfg(), 0, 1);
    }
}
