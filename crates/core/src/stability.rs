//! Bootstrap stability analysis for flipping patterns.
//!
//! Flipping chains hinge on threshold crossings at every level, so patterns
//! close to `γ`/`ε` can be sampling artifacts. This module quantifies
//! robustness: resample the database with replacement `rounds` times,
//! re-mine each replicate, and report how often each pattern reappears.
//! (An extension beyond the paper, in the spirit of its §7 discussion of
//! threshold sensitivity.)

use crate::config::FlipperConfig;
use crate::miner::mine;
use flipper_data::{Itemset, TransactionDb};
use flipper_taxonomy::{NodeId, Taxonomy};
use std::collections::HashMap;

/// Stability report for one pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternStability {
    /// The leaf itemset of the pattern.
    pub leaf_itemset: Itemset,
    /// Fraction of bootstrap replicates in which the pattern re-appeared
    /// (1.0 = perfectly stable).
    pub stability: f64,
    /// Whether the pattern is present in the original (un-resampled) data.
    pub in_original: bool,
}

/// Result of a bootstrap run.
#[derive(Debug, Clone)]
pub struct StabilityReport {
    /// Per-pattern stability, descending by stability then by itemset.
    pub patterns: Vec<PatternStability>,
    /// Number of bootstrap rounds performed.
    pub rounds: usize,
}

impl StabilityReport {
    /// Patterns at or above a stability cutoff.
    pub fn stable_at(&self, cutoff: f64) -> impl Iterator<Item = &PatternStability> {
        self.patterns.iter().filter(move |p| p.stability >= cutoff)
    }
}

/// A small deterministic xorshift generator so the analysis does not drag a
/// heavyweight RNG dependency into the core crate.
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> Self {
        XorShift64(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform index in `0..n` (n > 0) via rejection-free mapping (the bias
    /// for n ≪ 2⁶⁴ is negligible for resampling purposes).
    fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Resample `db` with replacement.
fn bootstrap_sample(db: &TransactionDb, rng: &mut XorShift64) -> TransactionDb {
    let n = db.len();
    let rows: Vec<Vec<NodeId>> = (0..n)
        .map(|_| db.transaction(rng.index(n)).to_vec())
        .collect();
    TransactionDb::new(rows).expect("resampled rows are non-empty")
}

/// Run the bootstrap: `rounds` replicates of `db`, mining each with `cfg`.
///
/// Patterns appearing in *any* replicate or in the original are reported;
/// stability is the replicate hit-rate.
pub fn bootstrap_stability(
    tax: &Taxonomy,
    db: &TransactionDb,
    cfg: &FlipperConfig,
    rounds: usize,
    seed: u64,
) -> StabilityReport {
    assert!(rounds > 0, "at least one bootstrap round is required");
    let original = mine(tax, db, cfg);
    let mut hits: HashMap<Itemset, usize> = HashMap::new();
    let mut rng = XorShift64::new(seed);
    for _ in 0..rounds {
        let sample = bootstrap_sample(db, &mut rng);
        let result = mine(tax, &sample, cfg);
        for p in result.patterns {
            *hits.entry(p.leaf_itemset).or_insert(0) += 1;
        }
    }
    let original_sets: Vec<&Itemset> = original.patterns.iter().map(|p| &p.leaf_itemset).collect();
    let mut patterns: Vec<PatternStability> = hits
        .iter()
        .map(|(set, &count)| PatternStability {
            leaf_itemset: set.clone(),
            stability: count as f64 / rounds as f64,
            in_original: original_sets.contains(&set),
        })
        .collect();
    // Original-only patterns (never re-appearing) get stability 0.
    for set in original_sets {
        if !hits.contains_key(set) {
            patterns.push(PatternStability {
                leaf_itemset: set.clone(),
                stability: 0.0,
                in_original: true,
            });
        }
    }
    patterns.sort_by(|a, b| {
        b.stability
            .partial_cmp(&a.stability)
            .expect("stabilities are finite")
            .then_with(|| a.leaf_itemset.cmp(&b.leaf_itemset))
    });
    StabilityReport { patterns, rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MinSupports;
    use flipper_datagen::planted::{self, PlantedParams};
    use flipper_measures::Thresholds;

    fn cfg() -> FlipperConfig {
        let (g, e) = planted::recommended_thresholds();
        FlipperConfig::new(Thresholds::new(g, e), MinSupports::Counts(vec![5]))
    }

    #[test]
    fn planted_patterns_are_highly_stable() {
        // Strong margins (Kulc 1.0 vs γ=0.6 at the leaf, 0.2 vs ε=0.35 in
        // the middle, 0.73 vs 0.6 at the top) survive resampling.
        let d = planted::generate(&PlantedParams {
            background_txns: 0,
            ..Default::default()
        });
        let report = bootstrap_stability(&d.taxonomy, &d.db, &cfg(), 10, 7);
        for &(a, b) in &d.planted_pairs {
            let set = Itemset::pair(a, b);
            let entry = report
                .patterns
                .iter()
                .find(|p| p.leaf_itemset == set)
                .expect("planted pattern in report");
            assert!(entry.in_original);
            assert!(
                entry.stability >= 0.8,
                "planted pattern should be stable, got {}",
                entry.stability
            );
        }
    }

    #[test]
    fn stable_at_filters() {
        let d = planted::generate(&PlantedParams {
            background_txns: 200,
            ..Default::default()
        });
        let report = bootstrap_stability(&d.taxonomy, &d.db, &cfg(), 5, 99);
        let all = report.patterns.len();
        let strict = report.stable_at(0.99).count();
        assert!(strict <= all);
        for p in report.stable_at(0.99) {
            assert!(p.stability >= 0.99);
        }
    }

    #[test]
    fn report_is_sorted_descending() {
        let d = planted::generate(&PlantedParams {
            background_txns: 300,
            ..Default::default()
        });
        let report = bootstrap_stability(&d.taxonomy, &d.db, &cfg(), 4, 3);
        for w in report.patterns.windows(2) {
            assert!(w[0].stability >= w[1].stability);
        }
        assert_eq!(report.rounds, 4);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = planted::generate(&PlantedParams {
            background_txns: 100,
            ..Default::default()
        });
        let a = bootstrap_stability(&d.taxonomy, &d.db, &cfg(), 3, 5);
        let b = bootstrap_stability(&d.taxonomy, &d.db, &cfg(), 3, 5);
        assert_eq!(a.patterns, b.patterns);
    }

    #[test]
    #[should_panic(expected = "at least one bootstrap round")]
    fn zero_rounds_rejected() {
        let d = planted::generate(&PlantedParams::default());
        let _ = bootstrap_stability(&d.taxonomy, &d.db, &cfg(), 0, 1);
    }
}
