//! The Flipper mining driver: a two-dimensional Apriori over the search
//! table `M[h][k]` with the paper's four cumulative pruning stages.
//!
//! # Search order (paper §4.3.1, Fig. 7b)
//!
//! The top two rows are processed in zigzag —
//! `Q(1,2) → Q(2,2) → Q(1,3) → Q(2,3) → …` — so the TPG condition
//! (Theorem 3) can be checked as early as possible; the remaining rows are
//! processed one at a time, left to right.
//!
//! # Candidate generation
//!
//! * Row 1 is mined by plain Apriori: all frequent level-1 itemsets (over
//!   items from **distinct** level-1 categories, per Definition 2 — at
//!   level 1 this means all distinct frequent nodes).
//! * For rows `h ≥ 2` with flipping pruning on, a cell `Q(h,k)` receives the
//!   **union** of
//!   1. *vertical* candidates — children-combinations of the chain-alive
//!      itemsets of `Q(h−1,k)` (§4.2.2: chain-broken itemsets are never
//!      extended vertically), generated through a tid index: only
//!      combinations that actually co-occur in some transaction covering
//!      the parent set are enumerated (any other combination has support
//!      0 < θ, since θ ≥ 1 always), and
//!   2. *horizontal* candidates — Apriori joins of the frequent itemsets of
//!      `Q(h,k−1)` (§4.2.2: supersets of chain-broken itemsets must still be
//!      counted).
//!
//!   The union is a completeness fix over a literal reading of the paper:
//!   a viable superset's sub-itemsets need not be viable themselves
//!   (correlation is not monotone), so the horizontal join alone can miss
//!   viable candidates whose subsets were never counted; the vertical
//!   children-combination of the (always present) viable parent recovers
//!   them. `DESIGN.md` discusses this.
//! * With flipping pruning off (BASIC), every row is mined independently by
//!   plain Apriori and flips are recovered post-hoc — the paper's baseline.
//!
//! # Execution
//!
//! Support counting goes through the cache-aware sharded execution layer
//! ([`SupportCounter::count_batch_cached`]): with `cfg.threads != 1` each
//! cell's candidate batch is chunked over scoped worker threads, and every
//! worker slot owns a budgeted cross-cell prefix cache
//! ([`flipper_data::CellCache`], budget from `cfg.cache_budget`) so the
//! `(k-1)`-prefixes materialized for one cell seed the next cell's
//! counting. Seeded runs ([`mine_with_view_seeded`]) additionally answer
//! candidates from a session-level [`SupportCache`] before counting.
//! Results and statistics are bit-identical at every thread count, cache
//! budget, and seed-cache state.

use crate::cell::{Cell, ItemsetInfo};
use crate::config::FlipperConfig;
use crate::results::{CellSummary, ChainLevel, FlippingPattern, MiningResult};
use crate::stats::{RunStats, Stopwatch};
use flipper_data::tidset::intersect_many;
use flipper_data::{
    CellCache, Itemset, MultiLevelView, SupportCache, SupportCounter, TransactionDb,
};
use flipper_guard::{CancelToken, GuardError};
use flipper_measures::{CorrelationMeasure, Label, Thresholds};
use flipper_taxonomy::{NodeId, Taxonomy};
use std::collections::{BTreeMap, BTreeSet};

/// Mine all flipping patterns from `db` under `tax` with configuration
/// `cfg`. Convenience wrapper that builds the multi-level view internally;
/// use [`mine_with_view`] to amortize the projection across runs.
pub fn mine(tax: &Taxonomy, db: &TransactionDb, cfg: &FlipperConfig) -> MiningResult {
    let view = MultiLevelView::build(db, tax);
    mine_with_view(tax, &view, cfg)
}

/// Mine all flipping patterns using a prebuilt [`MultiLevelView`].
pub fn mine_with_view(tax: &Taxonomy, view: &MultiLevelView, cfg: &FlipperConfig) -> MiningResult {
    Miner::new(tax, view, cfg)
        .run()
        .unwrap_or_else(|_| unreachable!("an unguarded run has no token to interrupt it"))
}

/// [`mine_with_view`] under a [`CancelToken`]: the token is checked at
/// every cell boundary, so a cancel or deadline interrupts the run within
/// one cell's worth of counting and surfaces as a typed [`GuardError`].
/// Panics anywhere inside the run are trapped and converted too. A guarded
/// run that completes returns bytes identical to an unguarded one — the
/// token influences *whether* the run finishes, never *what* it computes.
pub fn mine_with_view_guarded(
    tax: &Taxonomy,
    view: &MultiLevelView,
    cfg: &FlipperConfig,
    token: &CancelToken,
) -> Result<MiningResult, GuardError> {
    flipper_guard::trap("mine", || {
        let mut miner = Miner::new(tax, view, cfg);
        miner.token = Some(token);
        miner.run()
    })
    .and_then(|r| r)
}

/// [`mine_with_view_seeded`] under a [`CancelToken`]; see
/// [`mine_with_view_guarded`] for the interruption semantics.
pub fn mine_with_view_seeded_guarded(
    tax: &Taxonomy,
    view: &MultiLevelView,
    cfg: &FlipperConfig,
    seeds: &SupportCache,
    token: &CancelToken,
) -> Result<MiningResult, GuardError> {
    flipper_guard::trap("mine", || {
        let mut miner = Miner::new(tax, view, cfg);
        miner.seeds = Some(seeds);
        miner.token = Some(token);
        miner.run()
    })
    .and_then(|r| r)
}

/// Mine with a prebuilt view *and* a session-level support seed cache.
///
/// Every candidate found in `seeds` skips counting entirely and is charged
/// to [`RunStats::seeded_supports`]; everything else is counted as usual.
/// Supports are facts about the data alone — independent of measure,
/// thresholds, pruning, engine, or thread count — so seeding from any
/// completed run over the same view is sound and the mined patterns,
/// labels, and `flipper-results/v1` bytes are identical to an unseeded
/// run.
pub fn mine_with_view_seeded(
    tax: &Taxonomy,
    view: &MultiLevelView,
    cfg: &FlipperConfig,
    seeds: &SupportCache,
) -> MiningResult {
    let mut miner = Miner::new(tax, view, cfg);
    miner.seeds = Some(seeds);
    miner
        .run()
        .unwrap_or_else(|_| unreachable!("an unguarded run has no token to interrupt it"))
}

/// Per-row mutable state. Ordered maps throughout: every iteration over
/// this state can reach the `flipper-results/v1` bytes, so no container
/// here may iterate in hash order (`flipper-lint`'s determinism rule).
struct RowState {
    /// Evaluated cells of this row, keyed by itemset size `k`.
    cells: BTreeMap<usize, Cell>,
    /// Frequent 1-items at this level, ascending by node id.
    freq_items: Vec<NodeId>,
    /// Frequent 1-items sorted ascending by support (SIBP's list `L_h`).
    by_support: Vec<NodeId>,
    /// SIBP removal-candidate prefix `R_h(k)` per column.
    removal_prefix: BTreeMap<usize, BTreeSet<NodeId>>,
    /// SIBP-banned items: supersets of size > `ban_k` are pruned.
    banned: BTreeMap<NodeId, usize>,
    /// Item supports at this level, indexed by `NodeId::index()` (absent
    /// items hold 0). Built once per level so `eval_cell`'s correlation
    /// loop reads supports from a flat array instead of issuing one virtual
    /// `SupportCounter::item_support` call per item per frequent candidate.
    sup_cache: Vec<u64>,
    /// Total itemsets stored in this row (memory accounting).
    stored: u64,
}

impl RowState {
    fn is_banned(&self, item: NodeId, k: usize) -> bool {
        self.banned.get(&item).is_some_and(|&ban_k| k > ban_k)
    }
}

struct Miner<'a> {
    tax: &'a Taxonomy,
    cfg: &'a FlipperConfig,
    view: &'a MultiLevelView,
    /// Resolved worker-thread count for sharded counting (1 = sequential).
    threads: usize,
    counter: Box<dyn SupportCounter + 'a>,
    /// Cross-cell prefix cache handed to every counting batch
    /// ([`SupportCounter::count_batch_cached`]); budget from
    /// `cfg.cache_budget`, disabled at budget 0.
    cache: CellCache,
    /// Session-level support seeds ([`mine_with_view_seeded`]); `None` for
    /// plain runs.
    seeds: Option<&'a SupportCache>,
    /// Cooperative-cancellation token ([`mine_with_view_guarded`]); checked
    /// at cell boundaries only, so the live fast path stays off the
    /// per-candidate hot loops. `None` for unguarded runs.
    token: Option<&'a CancelToken>,
    /// Per-level absolute minimum supports (index `h-1`).
    thetas: Vec<u64>,
    /// Level-1 ancestor of every node (index = node id).
    top_cat: Vec<NodeId>,
    rows: Vec<RowState>,
    stats: RunStats,
    cells_out: Vec<CellSummary>,
    /// Column bound: candidates with `k > k_cap` are never generated.
    k_cap: usize,
}

impl<'a> Miner<'a> {
    fn new(tax: &'a Taxonomy, view: &'a MultiLevelView, cfg: &'a FlipperConfig) -> Self {
        assert_eq!(
            view.height(),
            tax.height(),
            "view must be built from the same taxonomy"
        );
        let counter = cfg.engine.make(view);
        let n = counter.num_transactions();
        let height = tax.height();
        let thetas = cfg.min_support.resolve(n, height);

        let mut top_cat = vec![NodeId::ROOT; tax.node_count()];
        for node in tax.node_ids().skip(1) {
            top_cat[node.index()] = tax
                .ancestor_at_level(node, 1)
                // lint:allow(panic-hygiene) taxonomy invariant: every non-root node has a level-1 ancestor
                .expect("non-root nodes have level-1 ancestors");
        }

        let mut rows = Vec::with_capacity(height);
        for h in 1..=height {
            let mut sup_cache = vec![0u64; tax.node_count()];
            for &it in counter.present_items(h) {
                sup_cache[it.index()] = counter.item_support(h, it);
            }
            let mut freq_items: Vec<NodeId> = counter
                .present_items(h)
                .iter()
                .copied()
                .filter(|&it| sup_cache[it.index()] >= thetas[h - 1])
                .collect();
            freq_items.sort_unstable();
            let mut by_support = freq_items.clone();
            by_support.sort_by_key(|&it| (sup_cache[it.index()], it));
            rows.push(RowState {
                cells: BTreeMap::new(),
                freq_items,
                by_support,
                removal_prefix: BTreeMap::new(),
                banned: BTreeMap::new(),
                sup_cache,
                stored: 0,
            });
        }

        // Column bound: distinct level-1 categories, the widest transaction,
        // and the configured cap.
        let cats = tax.nodes_at_level(1).map(|v| v.len()).unwrap_or(0);
        let max_width = (0..view.num_transactions())
            .map(|i| view.level(height).transaction(i).len())
            .max()
            .unwrap_or(0);
        let mut k_cap = cats.min(max_width);
        if let Some(mk) = cfg.max_k {
            k_cap = k_cap.min(mk);
        }

        Miner {
            tax,
            cfg,
            view,
            threads: flipper_data::exec::effective_threads(cfg.threads),
            counter,
            cache: CellCache::new(cfg.cache_budget),
            seeds: None,
            token: None,
            thetas,
            top_cat,
            rows,
            stats: RunStats::default(),
            cells_out: Vec::new(),
            k_cap,
        }
    }

    #[inline]
    fn cat(&self, item: NodeId) -> NodeId {
        self.top_cat[item.index()]
    }

    /// Parent itemset (generalization one level up). Items in candidates
    /// descend from distinct categories, so parents never collide.
    fn parent_set(&self, set: &Itemset) -> Itemset {
        set.map(|it| {
            self.tax
                .parent(it)
                // lint:allow(panic-hygiene) only called on h ≥ 2 itemsets, whose items all have parents
                .expect("items below level 1 have parents")
        })
    }

    fn cell(&self, h: usize, k: usize) -> Option<&Cell> {
        self.rows[h - 1].cells.get(&k)
    }

    // ---- candidate generation --------------------------------------------

    /// All frequent-item pairs at level `h` from distinct categories,
    /// subject to SIBP bans. Used for row 1 and for the BASIC variant;
    /// flipping variants generate pairs at `h ≥ 2` vertically from
    /// chain-alive parent pairs instead ([`Self::gen_vertical`]).
    fn gen_pairs(&mut self, h: usize) -> Vec<Itemset> {
        let row = &self.rows[h - 1];
        let items = &row.freq_items;
        let mut out = Vec::new();
        let mut sibp_pruned = 0u64;
        for (i, &x) in items.iter().enumerate() {
            if row.is_banned(x, 2) {
                continue;
            }
            for &y in &items[i + 1..] {
                if self.cat(x) == self.cat(y) {
                    continue;
                }
                if row.is_banned(y, 2) {
                    sibp_pruned += 1;
                    continue;
                }
                out.push(Itemset::pair(x, y));
            }
        }
        self.stats.pruned_by_sibp += sibp_pruned;
        out
    }

    /// Horizontal Apriori join over the frequent itemsets of `Q(h,k-1)`.
    fn gen_horizontal(&mut self, h: usize, k: usize) -> Vec<Itemset> {
        let Some(prev) = self.cell(h, k - 1) else {
            return Vec::new();
        };
        let mut freq: Vec<&Itemset> = prev.frequent().map(|(s, _)| s).collect();
        freq.sort_unstable();
        let mut out = Vec::new();
        // Join sets sharing their (k-2)-prefix; sorted order groups them.
        let mut i = 0;
        while i < freq.len() {
            let prefix = &freq[i].items()[..k - 2];
            let mut j = i;
            while j < freq.len() && &freq[j].items()[..k - 2] == prefix {
                j += 1;
            }
            for p in i..j {
                for q in (p + 1)..j {
                    let a = freq[p];
                    let b = freq[q];
                    let (la, lb) = (a.items()[k - 2], b.items()[k - 2]);
                    if self.cat(la) == self.cat(lb) {
                        continue;
                    }
                    // lint:allow(panic-hygiene) join precondition holds by the grouping loop above
                    let joined = a.apriori_join(b).expect("same prefix, distinct last items");
                    out.push(joined);
                }
            }
            i = j;
        }
        // Classic Apriori prune: every (k-1)-subset must be frequent in the
        // previous cell. (Our cells can be unions wider than the pure join
        // closure, so membership is checked explicitly.)
        // lint:allow(panic-hygiene) the early return at the top guarantees the cell exists
        let prev = self.cell(h, k - 1).expect("checked above");
        let mut kept = Vec::with_capacity(out.len());
        let mut pruned = 0u64;
        for cand in out {
            let ok = cand
                .subsets_k_minus_1()
                .all(|s| prev.get(&s).is_some_and(|i| i.label != Label::Infrequent));
            if ok {
                kept.push(cand);
            } else {
                pruned += 1;
            }
        }
        self.stats.pruned_by_support += pruned;
        kept
    }

    /// Vertical candidates for `Q(h,k)` (`k ≥ 2`): combinations of
    /// level-`h` children of the chain-alive itemsets of `Q(h-1,k)`,
    /// restricted to frequent level-`h` items.
    ///
    /// Generated through a tid index instead of a blind cartesian product
    /// of children lists: for each alive parent set, the parents'
    /// level-`(h-1)` tid-lists are intersected and only children actually
    /// present in a covering transaction are combined. A combination
    /// occurring in no covering transaction has support 0 < θ (θ ≥ 1 by
    /// [`crate::config::MinSupports::resolve`]), so it could never become
    /// frequent — skipping it changes no labels, no chains and no patterns,
    /// while the old cartesian product exploded exponentially in `k`
    /// (fanoutᵏ combos per parent, almost all with zero support).
    fn gen_vertical(&mut self, h: usize, k: usize) -> Vec<Itemset> {
        let Some(above) = self.cell(h - 1, k) else {
            return Vec::new();
        };
        let row = &self.rows[h - 1];
        let theta = self.thetas[h - 1];
        let lv_above = self.view.level(h - 1);
        let lv_here = self.view.level(h);
        let mut out: Vec<Itemset> = Vec::new();
        // Scratch: per parent-slot, the frequent children present in the
        // current transaction; and the distinct combinations of the current
        // parent (the same combination recurs in every transaction it
        // occurs in, so deduping per parent bounds transient memory by the
        // distinct-candidate count, not by Σ parent supports).
        let mut slots: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        // Combos are accumulated as sorted item vectors (children of the
        // distinct parents are disjoint, so sorting yields a strictly
        // increasing, canonical sequence) and only converted to `Itemset`s
        // once per *distinct* combination on drain.
        let mut per_parent: BTreeSet<Vec<NodeId>> = BTreeSet::new();
        // Reused for every emitted combination: the common case is the same
        // combo recurring in each covering transaction, which now costs a
        // buffer refill + hash probe instead of a fresh allocation.
        let mut combo_items: Vec<NodeId> = Vec::with_capacity(k);
        for (pset, _) in above.alive() {
            // Per parent slot, the frequent children — computed once per
            // parent, not once per covering transaction.
            let freq_children: Vec<Vec<NodeId>> = pset
                .items()
                .iter()
                .map(|&p| {
                    self.tax
                        .children(p)
                        .iter()
                        .copied()
                        .filter(|&c| lv_here.item_support(c) >= theta)
                        .collect()
                })
                .collect();
            if freq_children.iter().any(Vec::is_empty) {
                continue;
            }
            let tid_lists: Vec<&[u32]> = pset.items().iter().map(|&p| lv_above.tidset(p)).collect();
            let tids = intersect_many(&tid_lists);
            for &t in &tids {
                let txn = lv_here.transaction(t as usize);
                let mut ok = true;
                for (slot, children) in slots.iter_mut().zip(&freq_children) {
                    slot.clear();
                    slot.extend(
                        children
                            .iter()
                            .copied()
                            .filter(|&c| txn.binary_search(&c).is_ok()),
                    );
                    if slot.is_empty() {
                        ok = false;
                        break;
                    }
                }
                if !ok {
                    continue;
                }
                // Odometer over the (typically singleton) slot lists.
                let mut combo = vec![0usize; k];
                'outer: loop {
                    combo_items.clear();
                    combo_items.extend(combo.iter().enumerate().map(|(i, &c)| slots[i][c]));
                    combo_items.sort_unstable();
                    if !per_parent.contains(combo_items.as_slice()) {
                        per_parent.insert(combo_items.clone());
                    }
                    for i in (0..k).rev() {
                        combo[i] += 1;
                        if combo[i] < slots[i].len() {
                            continue 'outer;
                        }
                        combo[i] = 0;
                        if i == 0 {
                            break 'outer;
                        }
                    }
                }
            }
            // Distinct parents yield distinct children-combinations, so
            // draining per parent loses no cross-parent dedup; `out` is
            // duplicate-free. The ban and prune passes below are
            // order-independent, and the caller canonicalizes the final
            // candidate union.
            out.extend(
                std::mem::take(&mut per_parent)
                    .into_iter()
                    .map(Itemset::from_sorted),
            );
        }
        let mut sibp_pruned = 0u64;
        out.retain(|cand| {
            let banned = cand.items().iter().any(|&it| row.is_banned(it, k));
            sibp_pruned += u64::from(banned);
            !banned
        });
        self.stats.pruned_by_sibp += sibp_pruned;
        // Known-infrequent-subset prune: a (k-1)-subset *present* in
        // Q(h,k-1) and labeled infrequent dooms the candidate. (Absent
        // subsets carry no information — they may simply never have been
        // candidates.)
        if let Some(prev) = self.cell(h, k - 1) {
            let mut kept = Vec::with_capacity(out.len());
            let mut pruned = 0u64;
            for cand in out {
                let doomed = cand
                    .subsets_k_minus_1()
                    .any(|s| prev.get(&s).is_some_and(|i| i.label == Label::Infrequent));
                if doomed {
                    pruned += 1;
                } else {
                    kept.push(cand);
                }
            }
            self.stats.pruned_by_support += pruned;
            kept
        } else {
            out
        }
    }

    fn gen_candidates(&mut self, h: usize, k: usize) -> Vec<Itemset> {
        let mut cands = if self.cfg.pruning.flipping && h >= 2 {
            // Vertical from chain-alive parents (the only source at k = 2),
            // unioned with the horizontal Apriori join for wider cells.
            let mut c = if k >= 3 {
                self.gen_horizontal(h, k)
            } else {
                Vec::new()
            };
            c.extend(self.gen_vertical(h, k));
            c
        } else if k == 2 {
            self.gen_pairs(h)
        } else {
            self.gen_horizontal(h, k)
        };
        cands.sort_unstable();
        cands.dedup();
        cands
    }

    // ---- evaluation -------------------------------------------------------

    /// Count supports for a sorted candidate batch: answer what the seed
    /// cache already knows, count the rest through the cross-cell cached
    /// path. Seeded supports are exact values from a completed run, so the
    /// merged vector is identical to counting everything.
    fn count_supports(&mut self, h: usize, candidates: &[Itemset]) -> Vec<u64> {
        let _span = flipper_obs::span("mine.count")
            .arg("h", h as u64)
            .arg("batch", candidates.len() as u64);
        flipper_obs::observe("flipper_batch_candidates", candidates.len() as u64);
        let seeds = self.seeds.filter(|s| !s.is_empty());
        let Some(seeds) = seeds else {
            return self
                .counter
                .count_batch_cached(h, candidates, self.threads, &mut self.cache);
        };
        // One ordered range-merge over the seed cache instead of a map
        // probe (plus an `Itemset` clone for the probe key) per candidate;
        // `gen_candidates` sorts and dedups, which `seed_batch` requires.
        let mut out = vec![0u64; candidates.len()];
        let mut known = vec![false; candidates.len()];
        let hits = {
            let _seed_span = flipper_obs::span("mine.seed").arg("h", h as u64);
            seeds.seed_batch(h, candidates, |i, sup| {
                out[i] = sup;
                known[i] = true;
            })
        };
        self.stats.seeded_supports += hits;
        if hits as usize == candidates.len() {
            return out;
        }
        let miss = candidates.len() - hits as usize;
        let mut unknown: Vec<Itemset> = Vec::with_capacity(miss);
        let mut unknown_at: Vec<usize> = Vec::with_capacity(miss);
        for (i, set) in candidates.iter().enumerate() {
            if !known[i] {
                unknown_at.push(i);
                unknown.push(set.clone());
            }
        }
        {
            // `unknown` preserves the sorted order of `candidates`, so the
            // prefix-group kernels see a well-formed batch.
            let counted =
                self.counter
                    .count_batch_cached(h, &unknown, self.threads, &mut self.cache);
            for (i, sup) in unknown_at.into_iter().zip(counted) {
                out[i] = sup;
            }
        }
        out
    }

    /// Evaluate cell `Q(h,k)`: generate, count, label, compute chain
    /// aliveness, record statistics.
    fn eval_cell(&mut self, h: usize, k: usize) {
        let _cell_span = flipper_obs::span("mine.cell")
            .arg("h", h as u64)
            .arg("k", k as u64);
        let candidates = {
            let _gen_span = flipper_obs::span("mine.gen")
                .arg("h", h as u64)
                .arg("k", k as u64);
            self.gen_candidates(h, k)
        };
        self.stats.cells_evaluated += 1;
        self.stats.candidates_generated += candidates.len() as u64;

        let theta = self.thetas[h - 1];
        let thresholds: Thresholds = self.cfg.thresholds;
        let measure = self.cfg.measure;
        // Snapshot cache counters around counting so the trace carries one
        // `cache.cell` event per cell with the hit/miss deltas it caused.
        let cache_before = flipper_obs::enabled().then(|| self.cache.stats());
        let supports = self.count_supports(h, &candidates);
        if let Some(before) = cache_before {
            let after = self.cache.stats();
            flipper_obs::event(
                "cache.cell",
                &[
                    ("h", h as u64),
                    ("k", k as u64),
                    ("lookups", after.lookups - before.lookups),
                    ("exact_hits", after.exact_hits - before.exact_hits),
                    ("parent_hits", after.parent_hits - before.parent_hits),
                    ("insertions", after.insertions - before.insertions),
                    ("evicted", after.evicted_cells - before.evicted_cells),
                ],
            );
        }

        let mut cell = Cell::new();
        // Per-item max correlation for SIBP, indexed by `NodeId::index()` —
        // a flat array instead of a hash map so downstream iteration order
        // is structural, not hash-dependent.
        let mut max_corr: Vec<f64> = if self.cfg.pruning.sibp {
            vec![0.0; self.tax.node_count()]
        } else {
            Vec::new()
        };
        let (mut n_pos, mut n_neg, mut n_freq) = (0usize, 0usize, 0usize);
        // Flat per-level support cache plus one reused buffer: the
        // correlation loop issues no virtual calls and no per-candidate
        // allocations.
        let sup_cache = &self.rows[h - 1].sup_cache;
        let mut item_sups: Vec<u64> = Vec::new();
        for (set, sup) in candidates.into_iter().zip(supports) {
            let frequent = sup >= theta;
            let (corr, label) = if frequent {
                item_sups.clear();
                item_sups.extend(set.items().iter().map(|&it| sup_cache[it.index()]));
                let corr = measure.value(sup, &item_sups);
                (corr, thresholds.label_frequent(corr))
            } else {
                (0.0, Label::Infrequent)
            };
            if frequent {
                n_freq += 1;
                match label {
                    Label::Positive => n_pos += 1,
                    Label::Negative => n_neg += 1,
                    _ => {}
                }
            }
            let chain_alive = label.is_correlated()
                && (h == 1 || {
                    let parent = self.parent_set(&set);
                    self.cell(h - 1, k)
                        .and_then(|c| c.get(&parent))
                        .is_some_and(|pi| pi.chain_alive && pi.label.flips_to(label))
                });
            if self.cfg.pruning.sibp {
                for &it in set.items() {
                    let e = &mut max_corr[it.index()];
                    if corr > *e {
                        *e = corr;
                    }
                }
            }
            cell.insert(
                set,
                ItemsetInfo {
                    support: sup,
                    corr,
                    label,
                    chain_alive,
                },
            );
        }

        self.stats.frequent_found += n_freq as u64;
        self.stats.positive_found += n_pos as u64;
        self.stats.negative_found += n_neg as u64;
        self.cells_out.push(CellSummary {
            level: h,
            k,
            evaluated: cell.len(),
            frequent: n_freq,
            positive: n_pos,
            negative: n_neg,
            alive: cell.alive().count(),
        });

        let row = &mut self.rows[h - 1];
        row.stored += cell.len() as u64;
        self.stats.total_stored_itemsets += cell.len() as u64;
        row.cells.insert(k, cell);
        self.update_peak_resident(h);

        if self.cfg.pruning.sibp {
            self.sibp_after_cell(h, k, &max_corr);
        }
    }

    /// Memory proxy: BASIC retains the whole table; the pruned variants
    /// only ever need the previous row plus the current one (paper §5.2).
    fn update_peak_resident(&mut self, h: usize) {
        let resident: u64 = if self.cfg.pruning.flipping {
            let prev = if h >= 2 { self.rows[h - 2].stored } else { 0 };
            prev + self.rows[h - 1].stored
        } else {
            self.rows.iter().map(|r| r.stored).sum()
        };
        self.stats.peak_resident_itemsets = self.stats.peak_resident_itemsets.max(resident);
    }

    /// SIBP bookkeeping after a cell: compute the removal prefix `R_h(k)`
    /// (maximal support-ascending prefix with per-cell max Corr < γ), then
    /// ban items of `R_h(k)` whose generalization is in `R_{h-1}(k)`.
    /// `max_corr` is indexed by `NodeId::index()`.
    fn sibp_after_cell(&mut self, h: usize, k: usize, max_corr: &[f64]) {
        let gamma = self.cfg.thresholds.gamma;
        let row = &self.rows[h - 1];
        let mut prefix = BTreeSet::new();
        for &item in &row.by_support {
            let mc = max_corr[item.index()];
            if mc < gamma {
                prefix.insert(item);
            } else {
                break;
            }
        }
        let banned_now: Vec<NodeId> = if h >= 2 {
            let above = self.rows[h - 2].removal_prefix.get(&k);
            prefix
                .iter()
                .copied()
                .filter(|&it| {
                    // lint:allow(panic-hygiene) h ≥ 2 here, so every item is below level 1
                    let parent = self.tax.parent(it).expect("below level 1");
                    above.is_some_and(|r| r.contains(&parent))
                })
                .collect()
        } else {
            Vec::new()
        };
        let row = &mut self.rows[h - 1];
        row.removal_prefix.insert(k, prefix);
        for it in banned_now {
            if row.banned.insert(it, k).is_none() {
                self.stats.sibp_banned_items += 1;
            }
        }
    }

    // ---- driving loops ----------------------------------------------------

    /// The boundary check for guarded runs: free (`Ok`) when no token is
    /// attached, one relaxed atomic load otherwise.
    #[inline]
    fn check_interrupt(&self) -> Result<(), GuardError> {
        match self.token {
            Some(token) => token.check(),
            None => Ok(()),
        }
    }

    fn run(mut self) -> Result<MiningResult, GuardError> {
        let _run_span = flipper_obs::span("mine.run");
        let t0 = Stopwatch::start();
        let height = self.tax.height();
        if height == 1 {
            // A single level cannot flip; still mine row 1 so label counts
            // (Table-4 style reporting) are available.
            let mut k = 2;
            while k <= self.k_cap {
                self.check_interrupt()?;
                self.eval_cell(1, k);
                // lint:allow(panic-hygiene) eval_cell on the previous line always inserts the cell
                if self.cell(1, k).expect("just inserted").frequent_count() == 0 {
                    break;
                }
                k += 1;
            }
            return Ok(self.finish(t0));
        }

        // Phase 1: zigzag over rows 1 and 2.
        let mut row1_done = false;
        let mut row2_done = false;
        let mut k = 2;
        while k <= self.k_cap && !(row1_done && row2_done) {
            self.check_interrupt()?;
            if !row1_done {
                self.eval_cell(1, k);
            }
            if !row2_done {
                self.eval_cell(2, k);
            }
            let c1_freq = self.cell(1, k).map_or(0, Cell::frequent_count);
            let c2_freq = self.cell(2, k).map_or(0, Cell::frequent_count);
            if self.cfg.pruning.tpg {
                let np1 = self.cell(1, k).is_none_or(Cell::all_non_positive);
                let np2 = self.cell(2, k).is_none_or(Cell::all_non_positive);
                if np1 && np2 {
                    // Theorem 3: no flipping pattern at any column ≥ k.
                    self.stats.tpg_cap = k as u64;
                    self.k_cap = k.saturating_sub(1).max(1);
                    break;
                }
            }
            if self.cfg.pruning.flipping {
                // Row 1 cells are frequency-complete: no frequent k-itemset
                // at level 1 ⇒ none larger ⇒ no flipping pattern beyond.
                if c1_freq == 0 {
                    break;
                }
                // Row 2 going silent does not by itself end the zigzag
                // (vertical sources from row 1 may revive later columns).
            } else {
                row1_done = row1_done || c1_freq == 0;
                row2_done = row2_done || c2_freq == 0;
            }
            k += 1;
        }

        // Phase 2: remaining rows, left to right.
        for h in 3..=height {
            // Largest column with vertical sources in the row above.
            let alive_cols = self.rows[h - 2]
                .cells
                .iter()
                .filter(|(_, c)| c.alive().next().is_some())
                .map(|(&k, _)| k)
                .max()
                .unwrap_or(0);
            let mut k = 2;
            while k <= self.k_cap {
                self.check_interrupt()?;
                self.eval_cell(h, k);
                let freq_here = self.cell(h, k).map_or(0, Cell::frequent_count);
                if self.cfg.pruning.tpg {
                    let np_above = self.cell(h - 1, k).is_none_or(Cell::all_non_positive);
                    let np_here = self.cell(h, k).is_none_or(Cell::all_non_positive);
                    if np_above && np_here {
                        self.stats.tpg_cap = k as u64;
                        self.k_cap = k.saturating_sub(1).max(1);
                        break;
                    }
                }
                if self.cfg.pruning.flipping {
                    // No horizontal source left and no vertical source to
                    // the right ⇒ all later cells of this row are empty.
                    if freq_here == 0 && k >= alive_cols {
                        break;
                    }
                } else if freq_here == 0 {
                    break;
                }
                k += 1;
            }
        }
        Ok(self.finish(t0))
    }

    fn finish(mut self, t0: Stopwatch) -> MiningResult {
        let patterns = self.extract_patterns();
        self.stats.counter = self.counter.stats();
        self.stats.cache = self.cache.stats();
        self.stats.elapsed = t0.elapsed();
        if flipper_obs::enabled() {
            // Charge the run's totals to the metrics registry in bulk —
            // one locked pass per run, nothing per candidate.
            let s = &self.stats;
            flipper_obs::counter_add("flipper_cells_evaluated_total", s.cells_evaluated);
            flipper_obs::counter_add("flipper_candidates_generated_total", s.candidates_generated);
            flipper_obs::counter_add("flipper_frequent_found_total", s.frequent_found);
            flipper_obs::counter_add("flipper_seeded_supports_total", s.seeded_supports);
            flipper_obs::counter_add("flipper_db_scans_total", s.counter.db_scans);
            flipper_obs::counter_add("flipper_subset_tests_total", s.counter.subset_tests);
            flipper_obs::counter_add("flipper_intersections_total", s.counter.intersections);
            flipper_obs::counter_add(
                "flipper_candidates_counted_total",
                s.counter.candidates_counted,
            );
            flipper_obs::counter_add("flipper_prefix_reuses_total", s.counter.prefix_reuses);
            flipper_obs::counter_add("flipper_cache_lookups_total", s.cache.lookups);
            flipper_obs::counter_add("flipper_cache_exact_hits_total", s.cache.exact_hits);
            flipper_obs::counter_add("flipper_cache_parent_hits_total", s.cache.parent_hits);
            flipper_obs::counter_add("flipper_cache_insertions_total", s.cache.insertions);
            flipper_obs::counter_add("flipper_cache_evicted_cells_total", s.cache.evicted_cells);
            flipper_obs::gauge_set(
                "flipper_cache_bytes_resident",
                i64::try_from(s.cache.bytes_resident).unwrap_or(i64::MAX),
            );
        }
        let mut evaluated: Vec<(usize, Cell)> = Vec::new();
        for (h, row) in self.rows.into_iter().enumerate() {
            // BTreeMap iteration is ascending by `k` already.
            for (_k, cell) in row.cells {
                evaluated.push((h + 1, cell));
            }
        }
        MiningResult {
            patterns,
            stats: self.stats,
            cells: self.cells_out,
            evaluated,
        }
    }

    /// Collect flipping patterns: chain-alive itemsets at the leaf level,
    /// with their chains reconstructed from the stored cells.
    fn extract_patterns(&self) -> Vec<FlippingPattern> {
        let height = self.tax.height();
        if height < 2 {
            return Vec::new();
        }
        let mut patterns = Vec::new();
        let leaf_row = &self.rows[height - 1];
        let mut ks: Vec<usize> = leaf_row.cells.keys().copied().collect();
        ks.sort_unstable();
        for k in ks {
            let cell = &leaf_row.cells[&k];
            let mut alive: Vec<&Itemset> = cell.alive().map(|(s, _)| s).collect();
            alive.sort_unstable();
            for leaf_set in alive {
                let mut chain = Vec::with_capacity(height);
                let mut set = leaf_set.clone();
                let mut ok = true;
                for h in (1..=height).rev() {
                    let info = match self.cell(h, k).and_then(|c| c.get(&set)) {
                        Some(i) => i,
                        None => {
                            debug_assert!(false, "alive leaf itemset with missing ancestor cell");
                            ok = false;
                            break;
                        }
                    };
                    chain.push(ChainLevel {
                        level: h,
                        itemset: set.clone(),
                        support: info.support,
                        corr: info.corr,
                        label: info.label,
                    });
                    if h > 1 {
                        set = self.parent_set(&set);
                    }
                }
                if !ok {
                    continue;
                }
                chain.reverse();
                let p = FlippingPattern {
                    leaf_itemset: leaf_set.clone(),
                    chain,
                };
                debug_assert_eq!(p.validate(), Ok(()), "extracted pattern must be valid");
                patterns.push(p);
            }
        }
        patterns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MinSupports, PruningConfig};
    use flipper_taxonomy::RebalancePolicy;

    /// The paper's Fig. 4 toy dataset.
    pub(crate) fn toy() -> (Taxonomy, TransactionDb) {
        let tax = Taxonomy::from_edges(
            [
                ("a", ""),
                ("b", ""),
                ("a1", "a"),
                ("a2", "a"),
                ("b1", "b"),
                ("b2", "b"),
                ("a11", "a1"),
                ("a12", "a1"),
                ("a21", "a2"),
                ("a22", "a2"),
                ("b11", "b1"),
                ("b12", "b1"),
                ("b21", "b2"),
                ("b22", "b2"),
            ],
            RebalancePolicy::RequireBalanced,
        )
        .unwrap();
        let g = |s: &str| tax.node_by_name(s).unwrap();
        let db = TransactionDb::new(vec![
            vec![g("a11"), g("a22"), g("b11"), g("b22")],
            vec![g("a11"), g("a21"), g("b11")],
            vec![g("a12"), g("a21")],
            vec![g("a12"), g("a22"), g("b21")],
            vec![g("a12"), g("a22"), g("b21")],
            vec![g("a12"), g("a21"), g("b22")],
            vec![g("a21"), g("b12")],
            vec![g("b12"), g("b21"), g("b22")],
            vec![g("b12"), g("b21")],
            vec![g("a22"), g("b12"), g("b22")],
        ])
        .unwrap();
        (tax, db)
    }

    fn toy_config(pruning: PruningConfig) -> FlipperConfig {
        FlipperConfig::new(Thresholds::new(0.6, 0.35), MinSupports::Counts(vec![1]))
            .with_pruning(pruning)
    }

    #[test]
    fn guarded_run_with_a_live_token_matches_unguarded() {
        let (tax, db) = toy();
        let view = MultiLevelView::build(&db, &tax);
        for pruning in PruningConfig::VARIANTS {
            let cfg = toy_config(pruning);
            let plain = mine_with_view(&tax, &view, &cfg);
            let token = CancelToken::new();
            let guarded = mine_with_view_guarded(&tax, &view, &cfg, &token).unwrap();
            assert_eq!(plain.patterns, guarded.patterns, "{}", pruning.name());
            assert_eq!(plain.cells, guarded.cells, "{}", pruning.name());
        }
    }

    #[test]
    fn cancelled_token_interrupts_at_a_cell_boundary() {
        let (tax, db) = toy();
        let view = MultiLevelView::build(&db, &tax);
        let cfg = toy_config(PruningConfig::FULL);
        // Pre-cancelled: the very first boundary check trips.
        let token = CancelToken::new();
        token.cancel();
        assert_eq!(
            mine_with_view_guarded(&tax, &view, &cfg, &token).unwrap_err(),
            GuardError::Cancelled
        );
        // Deterministic mid-run interruption: cancel on the 2nd check.
        let token = CancelToken::cancel_after(2);
        assert_eq!(
            mine_with_view_guarded(&tax, &view, &cfg, &token).unwrap_err(),
            GuardError::Cancelled
        );
    }

    #[test]
    fn expired_deadline_surfaces_as_timeout() {
        let (tax, db) = toy();
        let view = MultiLevelView::build(&db, &tax);
        let cfg = toy_config(PruningConfig::FULL);
        let token = CancelToken::with_timeout(std::time::Duration::ZERO);
        assert_eq!(
            mine_with_view_guarded(&tax, &view, &cfg, &token).unwrap_err(),
            GuardError::TimedOut
        );
    }

    #[test]
    fn seeded_guarded_run_matches_plain_seeded() {
        let (tax, db) = toy();
        let view = MultiLevelView::build(&db, &tax);
        let cfg = toy_config(PruningConfig::FULL);
        let first = mine_with_view(&tax, &view, &cfg);
        let mut seeds = SupportCache::new();
        for (h, cell) in &first.evaluated {
            for (set, info) in cell.iter() {
                seeds.insert(*h, set, info.support);
            }
        }
        let plain = mine_with_view_seeded(&tax, &view, &cfg, &seeds);
        let token = CancelToken::new();
        let guarded = mine_with_view_seeded_guarded(&tax, &view, &cfg, &seeds, &token).unwrap();
        assert_eq!(plain.patterns, guarded.patterns);
        assert!(guarded.stats.seeded_supports > 0);
    }

    #[test]
    fn toy_example_finds_the_paper_pattern() {
        let (tax, db) = toy();
        for pruning in PruningConfig::VARIANTS {
            let result = mine(&tax, &db, &toy_config(pruning));
            let names: Vec<String> = result
                .patterns
                .iter()
                .map(|p| p.leaf_itemset.display(&tax).to_string())
                .collect();
            assert_eq!(
                names,
                vec!["{a11, b11}".to_string()],
                "variant {} found {names:?}",
                pruning.name()
            );
            let p = &result.patterns[0];
            assert_eq!(p.chain.len(), 3);
            assert_eq!(p.chain[0].label, Label::Positive); // {a, b}
            assert_eq!(p.chain[1].label, Label::Negative); // {a1, b1}
            assert_eq!(p.chain[2].label, Label::Positive); // {a11, b11}
            assert!((p.chain[0].corr - (7.0 / 8.0 + 7.0 / 9.0) / 2.0).abs() < 1e-12);
            assert!((p.chain[1].corr - (2.0 / 6.0 + 2.0 / 6.0) / 2.0).abs() < 1e-12);
            assert!((p.chain[2].corr - 1.0).abs() < 1e-12);
            assert_eq!(p.validate(), Ok(()));
        }
    }

    #[test]
    fn basic_counts_more_candidates_than_pruned_variants() {
        let (tax, db) = toy();
        let basic = mine(&tax, &db, &toy_config(PruningConfig::BASIC));
        let full = mine(&tax, &db, &toy_config(PruningConfig::FULL));
        assert!(basic.stats.candidates_generated >= full.stats.candidates_generated);
        assert_eq!(basic.patterns, full.patterns);
    }

    #[test]
    fn support_threshold_prunes_pattern() {
        // {a11, b11} has support 2 at the leaf level; θ₃ = 3 kills it.
        let (tax, db) = toy();
        let cfg = FlipperConfig::new(
            Thresholds::new(0.6, 0.35),
            MinSupports::Counts(vec![1, 1, 3]),
        );
        let result = mine(&tax, &db, &cfg);
        assert!(result.patterns.is_empty());
    }

    #[test]
    fn gamma_too_high_kills_chain() {
        let (tax, db) = toy();
        // Level-1 Kulc of {a,b} is ~0.826; γ=0.9 breaks the chain at the top.
        let cfg = FlipperConfig::new(Thresholds::new(0.9, 0.35), MinSupports::Counts(vec![1]));
        let result = mine(&tax, &db, &cfg);
        assert!(result.patterns.is_empty());
    }

    #[test]
    fn max_k_caps_columns() {
        let (tax, db) = toy();
        let cfg = toy_config(PruningConfig::BASIC).with_max_k(2);
        let result = mine(&tax, &db, &cfg);
        assert!(result.cells.iter().all(|c| c.k <= 2));
    }

    #[test]
    fn stats_are_populated() {
        let (tax, db) = toy();
        let r = mine(&tax, &db, &toy_config(PruningConfig::FULL));
        assert!(r.stats.cells_evaluated > 0);
        assert!(r.stats.candidates_generated > 0);
        assert!(r.stats.frequent_found > 0);
        assert!(r.stats.peak_resident_itemsets > 0);
        assert!(r.stats.elapsed.as_nanos() > 0);
        assert_eq!(
            r.stats.positive_found as usize,
            r.cells.iter().map(|c| c.positive).sum::<usize>()
        );
    }

    #[test]
    fn single_level_taxonomy_yields_no_patterns() {
        let tax = Taxonomy::from_edges(
            [("x", ""), ("y", ""), ("z", "")],
            RebalancePolicy::RequireBalanced,
        )
        .unwrap();
        let x = tax.node_by_name("x").unwrap();
        let y = tax.node_by_name("y").unwrap();
        let z = tax.node_by_name("z").unwrap();
        let db = TransactionDb::new(vec![vec![x, y], vec![x, y, z], vec![z]]).unwrap();
        let r = mine(
            &tax,
            &db,
            &FlipperConfig::new(Thresholds::new(0.5, 0.2), MinSupports::Counts(vec![1])),
        );
        assert!(r.patterns.is_empty());
        assert!(
            r.stats.cells_evaluated > 0,
            "row 1 is still mined for label counts"
        );
    }

    #[test]
    fn same_category_pairs_are_never_candidates() {
        let (tax, db) = toy();
        let r = mine(&tax, &db, &toy_config(PruningConfig::BASIC));
        // At level 2 the same-category pair {a1, a2} must not appear: check
        // via cell summaries — level 2, k=2 has at most 4 cross pairs.
        let c22 = r.cells.iter().find(|c| c.level == 2 && c.k == 2).unwrap();
        assert!(
            c22.evaluated <= 4,
            "only cross-category level-2 pairs: {}",
            c22.evaluated
        );
    }

    #[test]
    fn cache_budget_never_changes_results_or_stats() {
        let (tax, db) = toy();
        let base = mine(&tax, &db, &toy_config(PruningConfig::FULL));
        for budget in [0usize, 256, 4096, usize::MAX] {
            for threads in [1usize, 4] {
                let cfg = toy_config(PruningConfig::FULL)
                    .with_cache_budget(budget)
                    .with_threads(threads);
                let r = mine(&tax, &db, &cfg);
                assert_eq!(
                    r.patterns, base.patterns,
                    "budget={budget} threads={threads}"
                );
                assert_eq!(r.cells, base.cells, "budget={budget} threads={threads}");
                assert_eq!(
                    r.stats.counter, base.stats.counter,
                    "counter stats must be budget- and thread-invariant \
                     (budget={budget} threads={threads})"
                );
            }
        }
    }

    #[test]
    fn seeded_mining_matches_unseeded_and_skips_counting() {
        let (tax, db) = toy();
        let view = MultiLevelView::build(&db, &tax);
        let cfg = toy_config(PruningConfig::FULL);
        let plain = mine_with_view(&tax, &view, &cfg);

        // Seed a cache with every support the plain run established.
        let mut seeds = SupportCache::new();
        for (h, cell) in &plain.evaluated {
            for (set, info) in cell.iter() {
                seeds.insert(*h, set, info.support);
            }
        }
        let seeded = mine_with_view_seeded(&tax, &view, &cfg, &seeds);
        assert_eq!(seeded.patterns, plain.patterns);
        assert_eq!(seeded.cells, plain.cells);
        assert!(
            seeded.stats.seeded_supports > 0,
            "a fully-seeded rerun must answer candidates from the cache"
        );
        assert_eq!(plain.stats.seeded_supports, 0);

        // A seed cache for a *different* config still yields identical
        // results: supports are config-independent data facts.
        let alt = FlipperConfig::new(Thresholds::new(0.8, 0.1), MinSupports::Counts(vec![1]));
        let alt_plain = mine_with_view(&tax, &view, &alt);
        let alt_seeded = mine_with_view_seeded(&tax, &view, &alt, &seeds);
        assert_eq!(alt_seeded.patterns, alt_plain.patterns);
        assert_eq!(alt_seeded.cells, alt_plain.cells);
    }

    #[test]
    fn deterministic_across_runs() {
        let (tax, db) = toy();
        let r1 = mine(&tax, &db, &toy_config(PruningConfig::FULL));
        let r2 = mine(&tax, &db, &toy_config(PruningConfig::FULL));
        assert_eq!(r1.patterns, r2.patterns);
        assert_eq!(r1.stats.candidates_generated, r2.stats.candidates_generated);
        assert_eq!(r1.cells, r2.cells);
    }
}
