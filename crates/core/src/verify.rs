//! Brute-force reference miner, used to differential-test Flipper.
//!
//! Enumerates every cross-category leaf itemset up to a size bound and
//! checks Definition 2 directly against full database scans. Exponential —
//! strictly for tests and tiny datasets. With `cfg.threads != 1` the
//! enumeration shards over the first leaf of each combination, strided
//! across workers for load balance ([`flipper_data::exec`]); the merged
//! results are sorted by a total key, so the output is bit-identical at
//! every thread count.

use crate::config::FlipperConfig;
use crate::results::{ChainLevel, FlippingPattern};
use flipper_data::{exec, Itemset, MultiLevelView, TransactionDb};
use flipper_measures::CorrelationMeasure;
use flipper_taxonomy::{NodeId, Taxonomy};

/// Find all flipping patterns by exhaustive enumeration.
///
/// Honors `cfg.measure`, `cfg.thresholds`, `cfg.min_support`, `cfg.max_k`
/// and `cfg.threads`; ignores pruning and engine settings (it scans
/// everything).
pub fn brute_force(
    tax: &Taxonomy,
    db: &TransactionDb,
    cfg: &FlipperConfig,
) -> Vec<FlippingPattern> {
    let height = tax.height();
    if height < 2 {
        return Vec::new();
    }
    let view = MultiLevelView::build(db, tax);
    let thetas = cfg.min_support.resolve(db.len() as u64, height);

    // Leaf items actually present, and the column bound.
    let leaves: Vec<NodeId> = view.level(height).present_items().to_vec();
    // lint:allow(panic-hygiene) height ≥ 2 was checked above, so level 1 exists
    let cats = tax.nodes_at_level(1).expect("level 1 exists").len();
    let max_width = db.max_width();
    let mut k_max = cats.min(max_width).min(leaves.len());
    if let Some(mk) = cfg.max_k {
        k_max = k_max.min(mk);
    }
    if k_max < 2 {
        // No itemset of size ≥ 2 can qualify; the enumeration below pushes
        // a first leaf before recursing, so it must not run with k_max < 2
        // (a direct `cfg.max_k = Some(0)` would otherwise enumerate the
        // full powerset).
        return Vec::new();
    }

    // Depth-first enumeration of index combinations of every size 2..=k_max.
    fn rec(
        leaves: &[NodeId],
        combo: &mut Vec<usize>,
        start: usize,
        k_max: usize,
        check: &mut dyn FnMut(&[usize]),
    ) {
        if combo.len() >= 2 {
            check(combo);
        }
        if combo.len() == k_max {
            return;
        }
        for i in start..leaves.len() {
            combo.push(i);
            rec(leaves, combo, i + 1, k_max, check);
            combo.pop();
        }
    }

    // Evaluate one index combination; pushes the pattern if the chain flips.
    let check = |idxs: &[usize], patterns: &mut Vec<FlippingPattern>| {
        let set = Itemset::from_sorted(idxs.iter().map(|&i| leaves[i]).collect());
        // Distinct level-1 ancestors.
        let mut cats: Vec<NodeId> = set
            .items()
            .iter()
            // lint:allow(panic-hygiene) leaves sit at the bottom level, so every ancestor level exists
            .map(|&it| tax.ancestor_at_level(it, 1).expect("leaf"))
            .collect();
        cats.sort_unstable();
        cats.dedup();
        if cats.len() != set.len() {
            return;
        }
        // Evaluate the chain at every level.
        let mut chain = Vec::with_capacity(height);
        for h in 1..=height {
            // lint:allow(panic-hygiene) leaves sit at the bottom level, so every ancestor level exists
            let gen = set.map(|it| tax.ancestor_at_level(it, h).expect("leaf"));
            let lv = view.level(h);
            let sup = count_support(lv.transactions(), &gen);
            if sup < thetas[h - 1] {
                return;
            }
            let item_sups: Vec<u64> = gen.items().iter().map(|&it| lv.item_support(it)).collect();
            let corr = cfg.measure.value(sup, &item_sups);
            let label = cfg.thresholds.label_frequent(corr);
            if !label.is_correlated() {
                return;
            }
            chain.push(ChainLevel {
                level: h,
                itemset: gen,
                support: sup,
                corr,
                label,
            });
        }
        if chain.windows(2).all(|w| w[0].label.flips_to(w[1].label)) {
            patterns.push(FlippingPattern {
                leaf_itemset: set,
                chain,
            });
        }
    };

    // Shard the enumeration over the first leaf of each combination. The
    // subtree below first-leaf `i` shrinks steeply as `i` grows, so the
    // indices are STRIDED across workers (worker `w` takes `i ≡ w mod W`)
    // rather than split into contiguous ranges, which would leave nearly
    // all the work in the first chunk. Worker-local results are merged and
    // then sorted by a total key, so the output is identical for every
    // thread count.
    let workers = exec::effective_threads(cfg.threads)
        .min(leaves.len())
        .max(1);
    let per_chunk = exec::map_chunks(workers, workers, |range| {
        let mut local = Vec::new();
        let mut combo = Vec::with_capacity(k_max);
        for w in range {
            let mut i = w;
            while i < leaves.len() {
                combo.push(i);
                rec(&leaves, &mut combo, i + 1, k_max, &mut |idxs| {
                    check(idxs, &mut local)
                });
                combo.pop();
                i += workers;
            }
        }
        local
    });
    let mut patterns: Vec<FlippingPattern> = per_chunk.into_iter().flatten().collect();

    patterns.sort_by(|a, b| {
        (a.leaf_itemset.len(), &a.leaf_itemset).cmp(&(b.leaf_itemset.len(), &b.leaf_itemset))
    });
    patterns
}

fn count_support<'a, I>(txns: I, set: &Itemset) -> u64
where
    I: Iterator<Item = &'a [NodeId]>,
{
    txns.filter(|t| set.items().iter().all(|it| t.contains(it)))
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FlipperConfig, MinSupports};
    use flipper_measures::Thresholds;
    use flipper_taxonomy::RebalancePolicy;

    #[test]
    fn brute_force_on_the_toy_example() {
        let tax = Taxonomy::from_edges(
            [
                ("a", ""),
                ("b", ""),
                ("a1", "a"),
                ("a2", "a"),
                ("b1", "b"),
                ("b2", "b"),
                ("a11", "a1"),
                ("a12", "a1"),
                ("a21", "a2"),
                ("a22", "a2"),
                ("b11", "b1"),
                ("b12", "b1"),
                ("b21", "b2"),
                ("b22", "b2"),
            ],
            RebalancePolicy::RequireBalanced,
        )
        .unwrap();
        let g = |s: &str| tax.node_by_name(s).unwrap();
        let db = TransactionDb::new(vec![
            vec![g("a11"), g("a22"), g("b11"), g("b22")],
            vec![g("a11"), g("a21"), g("b11")],
            vec![g("a12"), g("a21")],
            vec![g("a12"), g("a22"), g("b21")],
            vec![g("a12"), g("a22"), g("b21")],
            vec![g("a12"), g("a21"), g("b22")],
            vec![g("a21"), g("b12")],
            vec![g("b12"), g("b21"), g("b22")],
            vec![g("b12"), g("b21")],
            vec![g("a22"), g("b12"), g("b22")],
        ])
        .unwrap();
        let cfg = FlipperConfig::new(Thresholds::new(0.6, 0.35), MinSupports::Counts(vec![1]));
        let pats = brute_force(&tax, &db, &cfg);
        assert_eq!(pats.len(), 1);
        assert_eq!(pats[0].leaf_itemset.display(&tax).to_string(), "{a11, b11}");
        assert_eq!(pats[0].validate(), Ok(()));
    }

    /// A hand-built `max_k` below 2 (bypassing `with_max_k`'s assert) must
    /// yield no patterns, not a full powerset enumeration.
    #[test]
    fn degenerate_max_k_yields_nothing() {
        let tax = Taxonomy::uniform(2, 2, 2).unwrap();
        let leaves = tax.leaves().to_vec();
        let db = TransactionDb::new(vec![vec![leaves[0], leaves[3]]; 4]).unwrap();
        for mk in [0usize, 1] {
            let cfg = FlipperConfig {
                max_k: Some(mk),
                ..FlipperConfig::new(Thresholds::new(0.5, 0.2), MinSupports::Counts(vec![1]))
            };
            assert!(brute_force(&tax, &db, &cfg).is_empty(), "max_k={mk}");
        }
    }

    /// Sharded enumeration returns exactly the sequential result.
    #[test]
    fn brute_force_is_thread_invariant() {
        use flipper_data::rng::{Rng, Xoshiro256pp};
        let tax = Taxonomy::uniform(3, 2, 3).unwrap();
        let leaves = tax.leaves().to_vec();
        let mut rng = Xoshiro256pp::seed_from_u64(77);
        let rows: Vec<Vec<NodeId>> = (0..80)
            .map(|_| {
                let w = rng.gen_range(1..=5);
                (0..w)
                    .map(|_| leaves[rng.gen_range(0..leaves.len())])
                    .collect()
            })
            .collect();
        let db = TransactionDb::new(rows).unwrap();
        let cfg = FlipperConfig::new(Thresholds::new(0.5, 0.25), MinSupports::Counts(vec![1]));
        let sequential = brute_force(&tax, &db, &cfg);
        for threads in [2usize, 4, 0] {
            let parallel = brute_force(&tax, &db, &cfg.clone().with_threads(threads));
            assert_eq!(parallel, sequential, "threads={threads}");
        }
    }

    #[test]
    fn single_level_has_no_patterns() {
        let tax =
            Taxonomy::from_edges([("x", ""), ("y", "")], RebalancePolicy::RequireBalanced).unwrap();
        let x = tax.node_by_name("x").unwrap();
        let y = tax.node_by_name("y").unwrap();
        let db = TransactionDb::new(vec![vec![x, y]]).unwrap();
        let cfg = FlipperConfig::new(Thresholds::new(0.5, 0.1), MinSupports::Counts(vec![1]));
        assert!(brute_force(&tax, &db, &cfg).is_empty());
    }
}
