//! Miner configuration: measure, thresholds, per-level minimum supports and
//! the pruning stack.

use flipper_data::CountingEngine;
use flipper_measures::{Measure, Thresholds};

/// Per-level minimum support thresholds `θ_1 ≥ θ_2 ≥ … ≥ θ_H`.
///
/// The paper recommends non-increasing thresholds (deep levels hold many
/// rare items). Values may be given as fractions of `N` or absolute counts;
/// if fewer values than levels are supplied, the last value is repeated.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MinSupports {
    /// Relative thresholds, each in `(0, 1]`, one per level starting at 1.
    Fractions(Vec<f64>),
    /// Absolute transaction counts, one per level starting at 1.
    Counts(Vec<u64>),
}

impl MinSupports {
    /// A single fraction applied to every level.
    pub fn uniform_fraction(f: f64) -> Self {
        MinSupports::Fractions(vec![f])
    }

    /// Resolve to absolute counts for a database of `n` transactions and a
    /// taxonomy of height `height`. Every count is at least 1.
    ///
    /// # Panics
    /// Panics on empty specs or non-positive fractions.
    pub fn resolve(&self, n: u64, height: usize) -> Vec<u64> {
        let counts: Vec<u64> = match self {
            MinSupports::Fractions(fs) => {
                assert!(!fs.is_empty(), "at least one support threshold is required");
                assert!(
                    fs.iter().all(|&f| f > 0.0 && f <= 1.0),
                    "fractions must be in (0,1]"
                );
                fs.iter()
                    .map(|&f| ((f * n as f64).ceil() as u64).max(1))
                    .collect()
            }
            MinSupports::Counts(cs) => {
                assert!(!cs.is_empty(), "at least one support threshold is required");
                cs.iter().map(|&c| c.max(1)).collect()
            }
        };
        (0..height)
            .map(|h| counts[h.min(counts.len() - 1)])
            .collect()
    }
}

impl Default for MinSupports {
    /// The paper's default synthetic profile: θ₁=1%, θ₂=0.1%, θ₃=0.05%,
    /// θ₄=0.01%.
    fn default() -> Self {
        MinSupports::Fractions(vec![0.01, 0.001, 0.0005, 0.0001])
    }
}

/// Which pruning techniques are active — the four cumulative variants the
/// paper benchmarks in Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PruningConfig {
    /// Flipping-based pruning (§4.2.2): only chain-alive itemsets are
    /// extended vertically. Off = the BASIC level-wise Apriori baseline,
    /// which mines all frequent itemsets per level and post-filters flips.
    pub flipping: bool,
    /// Termination of pattern growth (Theorem 3): cap the column bound when
    /// two vertically adjacent cells are all-non-positive.
    pub tpg: bool,
    /// Single-item-based pruning (Theorem 2 / Corollary 2): ban minimal
    /// support items whose per-cell max correlation stays below γ.
    pub sibp: bool,
}

impl PruningConfig {
    /// BASIC: support-only pruning (the paper's baseline).
    pub const BASIC: PruningConfig = PruningConfig {
        flipping: false,
        tpg: false,
        sibp: false,
    };
    /// FLIPPING: + flipping-based vertical pruning.
    pub const FLIPPING: PruningConfig = PruningConfig {
        flipping: true,
        tpg: false,
        sibp: false,
    };
    /// FLIPPING+TPG.
    pub const FLIPPING_TPG: PruningConfig = PruningConfig {
        flipping: true,
        tpg: true,
        sibp: false,
    };
    /// FLIPPING+TPG+SIBP — the full Flipper.
    pub const FULL: PruningConfig = PruningConfig {
        flipping: true,
        tpg: true,
        sibp: true,
    };

    /// The four cumulative variants in benchmark order.
    pub const VARIANTS: [PruningConfig; 4] =
        [Self::BASIC, Self::FLIPPING, Self::FLIPPING_TPG, Self::FULL];

    /// Short display name matching the paper's legend.
    pub fn name(&self) -> &'static str {
        match (self.flipping, self.tpg, self.sibp) {
            (false, _, _) => "basic",
            (true, false, _) => "flipping",
            (true, true, false) => "flipping+tpg",
            (true, true, true) => "flipping+tpg+sibp",
        }
    }
}

impl Default for PruningConfig {
    fn default() -> Self {
        PruningConfig::FULL
    }
}

/// A rejected [`FlipperConfig`], reported by [`FlipperConfig::validate`].
///
/// The struct-literal escape hatch (`FlipperConfig { .. }`) can produce
/// configurations the builder methods would have refused; `validate`
/// re-checks every invariant and reports the first violation as a typed
/// value instead of a panic, so services and CLIs can refuse a bad request
/// gracefully.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The minimum-support spec holds no thresholds at all.
    EmptySupports,
    /// A relative support fraction falls outside `(0, 1]`.
    BadSupportFraction(f64),
    /// The thresholds violate `0 ≤ ε < γ ≤ 1`.
    BadThresholds {
        /// Positive threshold γ.
        gamma: f64,
        /// Negative threshold ε.
        epsilon: f64,
    },
    /// `max_k` caps itemsets below the minimum meaningful size of 2.
    BadMaxK(usize),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::EmptySupports => {
                write!(f, "at least one minimum-support threshold is required")
            }
            ConfigError::BadSupportFraction(v) => {
                write!(f, "support fraction {v} is outside (0, 1]")
            }
            ConfigError::BadThresholds { gamma, epsilon } => write!(
                f,
                "thresholds must satisfy 0 <= epsilon < gamma <= 1 \
                 (got gamma={gamma}, epsilon={epsilon})"
            ),
            ConfigError::BadMaxK(k) => {
                write!(f, "max_k is {k} but itemsets have at least two items")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full miner configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FlipperConfig {
    /// Null-invariant correlation measure (default Kulczynski, as in the
    /// paper's experiments).
    pub measure: Measure,
    /// Correlation thresholds `(γ, ε)`.
    pub thresholds: Thresholds,
    /// Per-level minimum supports.
    pub min_support: MinSupports,
    /// Active pruning techniques.
    pub pruning: PruningConfig,
    /// Support-counting engine.
    pub engine: CountingEngine,
    /// Optional hard cap on itemset size `k` (None = bounded only by the
    /// data and pruning).
    pub max_k: Option<usize>,
    /// Worker threads for the sharded execution layer: candidate batches,
    /// bootstrap replicates and brute-force verification. `1` = sequential
    /// (the default), `0` = auto-detect the hardware parallelism, `n ≥ 2` =
    /// exactly `n`. Results and statistics are bit-identical at every
    /// setting.
    pub threads: usize,
    /// Byte budget per worker slot for the cross-cell prefix cache
    /// ([`flipper_data::cache`]): materialized `(k−1)`-prefix intersections
    /// are kept across cells so the next k-column extends them instead of
    /// rebuilding from level singletons. `0` disables the cache; the
    /// default is [`flipper_data::DEFAULT_CACHE_BUDGET`] (16 MiB). Results
    /// and reported statistics are bit-identical at every budget.
    pub cache_budget: usize,
}

impl Default for FlipperConfig {
    fn default() -> Self {
        FlipperConfig {
            measure: Measure::default(),
            thresholds: Thresholds::default(),
            min_support: MinSupports::default(),
            pruning: PruningConfig::default(),
            engine: CountingEngine::default(),
            max_k: None,
            threads: 1,
            cache_budget: flipper_data::DEFAULT_CACHE_BUDGET,
        }
    }
}

impl FlipperConfig {
    /// Convenience constructor with the most common knobs.
    pub fn new(thresholds: Thresholds, min_support: MinSupports) -> Self {
        FlipperConfig {
            thresholds,
            min_support,
            ..Default::default()
        }
    }

    /// Replace the pruning stack.
    pub fn with_pruning(mut self, pruning: PruningConfig) -> Self {
        self.pruning = pruning;
        self
    }

    /// Replace the measure.
    pub fn with_measure(mut self, measure: Measure) -> Self {
        self.measure = measure;
        self
    }

    /// Replace the counting engine.
    pub fn with_engine(mut self, engine: CountingEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Cap the maximum itemset size.
    pub fn with_max_k(mut self, max_k: usize) -> Self {
        assert!(max_k >= 2, "itemsets have at least two items");
        self.max_k = Some(max_k);
        self
    }

    /// Set the worker-thread count (`0` = auto-detect, `1` = sequential).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Set the per-worker byte budget of the cross-cell prefix cache
    /// (`0` disables it). Never changes results or statistics.
    pub fn with_cache_budget(mut self, cache_budget: usize) -> Self {
        self.cache_budget = cache_budget;
        self
    }

    /// Check every invariant [`MinSupports::resolve`], [`Thresholds::new`]
    /// and [`FlipperConfig::with_max_k`] would enforce by panicking, and
    /// report the first violation as a typed [`ConfigError`] instead.
    ///
    /// A configuration that passes `validate` never panics inside the miner
    /// for configuration reasons.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let t = &self.thresholds;
        if !((0.0..=1.0).contains(&t.gamma)
            && (0.0..=1.0).contains(&t.epsilon)
            && t.epsilon < t.gamma)
        {
            return Err(ConfigError::BadThresholds {
                gamma: t.gamma,
                epsilon: t.epsilon,
            });
        }
        match &self.min_support {
            MinSupports::Fractions(fs) => {
                if fs.is_empty() {
                    return Err(ConfigError::EmptySupports);
                }
                if let Some(&bad) = fs.iter().find(|&&f| !(f > 0.0 && f <= 1.0)) {
                    return Err(ConfigError::BadSupportFraction(bad));
                }
            }
            MinSupports::Counts(cs) => {
                if cs.is_empty() {
                    return Err(ConfigError::EmptySupports);
                }
            }
        }
        if let Some(k) = self.max_k {
            if k < 2 {
                return Err(ConfigError::BadMaxK(k));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_repeats_last_threshold() {
        let ms = MinSupports::Fractions(vec![0.5, 0.1]);
        assert_eq!(ms.resolve(100, 4), vec![50, 10, 10, 10]);
    }

    #[test]
    fn resolve_rounds_up_and_floors_at_one() {
        let ms = MinSupports::Fractions(vec![0.015]);
        assert_eq!(ms.resolve(1000, 1), vec![15]);
        let ms = MinSupports::Fractions(vec![0.0001]);
        assert_eq!(ms.resolve(100, 2), vec![1, 1]);
        let ms = MinSupports::Counts(vec![0, 5]);
        assert_eq!(ms.resolve(100, 3), vec![1, 5, 5]);
    }

    #[test]
    fn default_matches_paper_profile() {
        let ms = MinSupports::default();
        assert_eq!(ms.resolve(100_000, 4), vec![1000, 100, 50, 10]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_spec_panics() {
        let _ = MinSupports::Fractions(vec![]).resolve(10, 1);
    }

    #[test]
    #[should_panic(expected = "fractions must be in")]
    fn bad_fraction_panics() {
        let _ = MinSupports::Fractions(vec![1.5]).resolve(10, 1);
    }

    #[test]
    fn variant_names() {
        assert_eq!(PruningConfig::BASIC.name(), "basic");
        assert_eq!(PruningConfig::FLIPPING.name(), "flipping");
        assert_eq!(PruningConfig::FLIPPING_TPG.name(), "flipping+tpg");
        assert_eq!(PruningConfig::FULL.name(), "flipping+tpg+sibp");
        assert_eq!(PruningConfig::default(), PruningConfig::FULL);
    }

    #[test]
    fn builder_methods_chain() {
        let cfg = FlipperConfig::new(
            Thresholds::new(0.6, 0.2),
            MinSupports::uniform_fraction(0.1),
        )
        .with_pruning(PruningConfig::BASIC)
        .with_measure(flipper_measures::Measure::Cosine)
        .with_engine(CountingEngine::Scan)
        .with_max_k(3)
        .with_threads(4)
        .with_cache_budget(1 << 20);
        assert_eq!(cfg.pruning, PruningConfig::BASIC);
        assert_eq!(cfg.measure, flipper_measures::Measure::Cosine);
        assert_eq!(cfg.max_k, Some(3));
        assert_eq!(cfg.threads, 4);
        assert_eq!(cfg.cache_budget, 1 << 20);
    }

    #[test]
    fn default_is_sequential() {
        assert_eq!(FlipperConfig::default().threads, 1);
    }

    #[test]
    fn default_cache_budget_is_enabled() {
        assert_eq!(
            FlipperConfig::default().cache_budget,
            flipper_data::DEFAULT_CACHE_BUDGET
        );
        assert_eq!(
            FlipperConfig::default().with_cache_budget(0).cache_budget,
            0
        );
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn max_k_one_rejected() {
        let _ = FlipperConfig::default().with_max_k(1);
    }

    #[test]
    fn validate_accepts_defaults_and_builder_output() {
        assert_eq!(FlipperConfig::default().validate(), Ok(()));
        let cfg = FlipperConfig::new(Thresholds::new(0.6, 0.2), MinSupports::Counts(vec![10, 5]))
            .with_max_k(3);
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn validate_reports_typed_violations() {
        let cfg = FlipperConfig {
            thresholds: Thresholds {
                gamma: 0.1,
                epsilon: 0.4,
            },
            ..Default::default()
        };
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::BadThresholds {
                gamma: 0.1,
                epsilon: 0.4
            })
        );

        let mut cfg = FlipperConfig {
            min_support: MinSupports::Fractions(vec![]),
            ..Default::default()
        };
        assert_eq!(cfg.validate(), Err(ConfigError::EmptySupports));
        cfg.min_support = MinSupports::Counts(vec![]);
        assert_eq!(cfg.validate(), Err(ConfigError::EmptySupports));
        cfg.min_support = MinSupports::Fractions(vec![0.5, 1.5]);
        assert_eq!(cfg.validate(), Err(ConfigError::BadSupportFraction(1.5)));

        let cfg = FlipperConfig {
            max_k: Some(1),
            ..Default::default()
        };
        assert_eq!(cfg.validate(), Err(ConfigError::BadMaxK(1)));
    }

    #[test]
    fn config_error_displays_are_descriptive() {
        assert!(ConfigError::EmptySupports.to_string().contains("at least"));
        assert!(ConfigError::BadSupportFraction(2.0)
            .to_string()
            .contains("(0, 1]"));
        assert!(ConfigError::BadThresholds {
            gamma: 0.1,
            epsilon: 0.4
        }
        .to_string()
        .contains("epsilon < gamma"));
        assert!(ConfigError::BadMaxK(1).to_string().contains("two items"));
    }
}
