//! # flipper-core
//!
//! The **Flipper** algorithm of Barsky, Kim, Weninger & Han, *Mining
//! Flipping Correlations from Large Datasets with Taxonomies* (PVLDB 5(4),
//! 2011): direct mining of *flipping correlation patterns* — itemsets whose
//! correlation alternates between positive and negative as the items are
//! generalized level by level through a taxonomy.
//!
//! The miner explores the two-dimensional search table `M[h][k]`
//! (abstraction level × itemset size) with four cumulative pruning stages,
//! matching the paper's benchmarked variants:
//!
//! 1. [`PruningConfig::BASIC`] — support-only level-wise Apriori
//!    (the baseline: mine every frequent itemset, post-filter flips);
//! 2. [`PruningConfig::FLIPPING`] — chain-broken itemsets are never
//!    extended vertically (§4.2.2);
//! 3. [`PruningConfig::FLIPPING_TPG`] — plus termination of pattern growth
//!    (Theorem 3);
//! 4. [`PruningConfig::FULL`] — plus single-item-based pruning
//!    (Theorem 2 / Corollary 2).
//!
//! ```
//! use flipper_core::{mine, FlipperConfig, MinSupports};
//! use flipper_measures::Thresholds;
//! use flipper_taxonomy::{Taxonomy, RebalancePolicy};
//! use flipper_data::TransactionDb;
//!
//! // Two categories, two leaves each.
//! let tax = Taxonomy::from_edges(
//!     [("food", ""), ("drink", ""),
//!      ("bread", "food"), ("cheese", "food"),
//!      ("beer", "drink"), ("milk", "drink")],
//!     RebalancePolicy::RequireBalanced).unwrap();
//! let g = |s: &str| tax.node_by_name(s).unwrap();
//! // bread+beer always together; cheese+milk never; categories uncorrelated.
//! let db = TransactionDb::new(vec![
//!     vec![g("bread"), g("beer")], vec![g("bread"), g("beer")],
//!     vec![g("cheese")], vec![g("milk")],
//!     vec![g("cheese")], vec![g("milk")],
//! ]).unwrap();
//!
//! let cfg = FlipperConfig::new(Thresholds::new(0.9, 0.4), MinSupports::Counts(vec![1]));
//! let result = mine(&tax, &db, &cfg);
//! for p in &result.patterns {
//!     println!("{}", p.display(&tax));
//! }
//! ```

mod cell;
mod config;
mod miner;
#[cfg(test)]
mod miner_proptests;
pub mod ranking;
mod results;
pub mod stability;
mod stats;
pub mod topk;
pub mod verify;

pub use cell::{Cell, ItemsetInfo};
pub use config::{ConfigError, FlipperConfig, MinSupports, PruningConfig};
pub use miner::{
    mine, mine_with_view, mine_with_view_guarded, mine_with_view_seeded,
    mine_with_view_seeded_guarded,
};
pub use results::{CellSummary, ChainError, ChainLevel, FlippingPattern, MiningResult};
pub use stats::RunStats;
