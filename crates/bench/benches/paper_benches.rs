//! Criterion benchmarks mirroring the paper's evaluation, at laptop-sized
//! scales (the `src/bin/fig*` targets run the full-scale sweeps and print
//! the tables; these benches give statistics-grade timings for the same
//! configurations plus two ablations the paper does not have: counting
//! engine and measure choice).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flipper_core::{mine_with_view, FlipperConfig, MinSupports, PruningConfig};
use flipper_data::{CountingEngine, MultiLevelView};
use flipper_datagen::quest::{generate, QuestParams};
use flipper_datagen::surrogate::groceries;
use flipper_measures::{Measure, Thresholds};
use std::time::Duration;

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("flipper");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    g
}

/// Fig. 8(a) shape: variants across support profiles (quest, N = 10K).
fn bench_fig8a(c: &mut Criterion) {
    let data = generate(&QuestParams::default().with_transactions(10_000));
    let view = MultiLevelView::build(&data.db, &data.taxonomy);
    let profiles: [(&str, [f64; 4]); 3] = [
        ("thr1", [0.05, 0.05, 0.05, 0.05]),
        ("thr5", [0.01, 0.0005, 0.0001, 0.0001]),
        ("thr10", [0.001, 0.0001, 0.00006, 0.00003]),
    ];
    let mut g = quick(c);
    for (name, thetas) in profiles {
        for pruning in PruningConfig::VARIANTS {
            let cfg = FlipperConfig::new(
                Thresholds::new(0.3, 0.1),
                MinSupports::Fractions(thetas.to_vec()),
            )
            .with_pruning(pruning);
            g.bench_with_input(
                BenchmarkId::new("fig8a", format!("{name}/{}", pruning.name())),
                &cfg,
                |b, cfg| b.iter(|| mine_with_view(&data.taxonomy, &view, cfg)),
            );
        }
    }
    g.finish();
}

/// Fig. 8(c) shape: variants across transaction widths (quest, N = 5K).
fn bench_fig8c(c: &mut Criterion) {
    let mut g = quick(c);
    for w in [5.0f64, 8.0] {
        let data = generate(
            &QuestParams::default()
                .with_transactions(5_000)
                .with_width(w),
        );
        let view = MultiLevelView::build(&data.db, &data.taxonomy);
        for pruning in [PruningConfig::BASIC, PruningConfig::FULL] {
            let cfg = flipper_bench::default_synthetic_config().with_pruning(pruning);
            g.bench_with_input(
                BenchmarkId::new("fig8c", format!("w{w}/{}", pruning.name())),
                &cfg,
                |b, cfg| b.iter(|| mine_with_view(&data.taxonomy, &view, cfg)),
            );
        }
    }
    g.finish();
}

/// Fig. 9 shape: naive flipping vs full Flipper on the GROCERIES surrogate.
fn bench_fig9(c: &mut Criterion) {
    let d = groceries(42);
    let view = MultiLevelView::build(&d.db, &d.taxonomy);
    let base = FlipperConfig::new(
        Thresholds::new(d.thresholds.0, d.thresholds.1),
        MinSupports::Fractions(d.min_support.clone()),
    );
    let mut g = quick(c);
    for pruning in [PruningConfig::FLIPPING, PruningConfig::FULL] {
        let cfg = base.clone().with_pruning(pruning);
        g.bench_with_input(
            BenchmarkId::new("fig9_groceries", pruning.name()),
            &cfg,
            |b, cfg| b.iter(|| mine_with_view(&d.taxonomy, &view, cfg)),
        );
    }
    g.finish();
}

/// Ablation: counting engines (tidset vs scan) on the GROCERIES surrogate.
fn bench_counting_engines(c: &mut Criterion) {
    let d = groceries(42);
    let view = MultiLevelView::build(&d.db, &d.taxonomy);
    let base = FlipperConfig::new(
        Thresholds::new(d.thresholds.0, d.thresholds.1),
        MinSupports::Fractions(d.min_support.clone()),
    );
    let mut g = quick(c);
    for (name, engine) in [
        ("tidset", CountingEngine::Tidset),
        ("scan", CountingEngine::Scan),
    ] {
        let cfg = base.clone().with_engine(engine);
        g.bench_with_input(BenchmarkId::new("counting", name), &cfg, |b, cfg| {
            b.iter(|| mine_with_view(&d.taxonomy, &view, cfg))
        });
    }
    g.finish();
}

/// Ablation: the five null-invariant measures under identical thresholds —
/// validates the paper's claim that the framework is measure-agnostic in
/// cost, not just in correctness.
fn bench_measures(c: &mut Criterion) {
    let d = groceries(42);
    let view = MultiLevelView::build(&d.db, &d.taxonomy);
    let base = FlipperConfig::new(
        Thresholds::new(d.thresholds.0, d.thresholds.1),
        MinSupports::Fractions(d.min_support.clone()),
    );
    let mut g = quick(c);
    for measure in Measure::ALL {
        let cfg = base.clone().with_measure(measure);
        g.bench_with_input(
            BenchmarkId::new("measure", format!("{measure}")),
            &cfg,
            |b, cfg| b.iter(|| mine_with_view(&d.taxonomy, &view, cfg)),
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_fig8a,
    bench_fig8c,
    bench_fig9,
    bench_counting_engines,
    bench_measures
);
criterion_main!(benches);
