//! Machine-readable benchmark reports.
//!
//! `quickbench --json <path>` serializes every timed row into a small,
//! stable JSON document (`flipper-quickbench/v1`) so the performance
//! trajectory can be tracked across PRs by tooling instead of by reading
//! fixed-width tables. The workspace builds offline with zero external
//! crates, so the writer is hand-rolled: flat structs, explicit field
//! order, minimal string escaping.

use crate::timing::Timing;
use flipper_data::{CacheStats, CounterStats};

/// One benchmark measurement destined for the JSON report.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Which experiment family the row belongs to (`exec_grid`, `kernel`,
    /// `storage_io`, ...).
    pub bench: &'static str,
    /// Input dataset name (`quest`, `groceries`, ...).
    pub dataset: &'static str,
    /// Input size (transactions).
    pub n: usize,
    /// Full configuration label as printed in the tables.
    pub config: String,
    /// Counting engine / kernel under test (empty when not applicable).
    pub engine: String,
    /// Worker threads (1 = sequential).
    pub threads: usize,
    /// The timing summary.
    pub timing: Timing,
    /// Counting-engine work statistics for the run, when the experiment
    /// surfaces them (mining runs do; storage rows do not).
    pub stats: Option<CounterStats>,
    /// Cache-efficiency statistics (prefix-cache hit rates, bytes
    /// resident, support-cache seeding), when the experiment measures the
    /// caching layer. Serialized *after* `stats` so the fixed field-order
    /// prefix `bench,…,median_ns` that `scripts/bench_check.sh` keys rows
    /// by is unchanged.
    pub cache: Option<CacheStats>,
}

impl BenchRow {
    /// Row from a timing plus the grid coordinates.
    pub fn new(
        bench: &'static str,
        dataset: &'static str,
        n: usize,
        engine: impl Into<String>,
        threads: usize,
        timing: Timing,
    ) -> Self {
        BenchRow {
            bench,
            dataset,
            n,
            config: timing.label.clone(),
            engine: engine.into(),
            threads,
            timing,
            stats: None,
            cache: None,
        }
    }

    /// Attach counting-engine statistics.
    pub fn with_stats(mut self, stats: CounterStats) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Attach cache-efficiency statistics.
    pub fn with_cache(mut self, cache: CacheStats) -> Self {
        self.cache = Some(cache);
        self
    }

    fn json(&self) -> String {
        let stats = match &self.stats {
            None => "null".to_string(),
            Some(s) => format!(
                "{{\"db_scans\":{},\"subset_tests\":{},\"intersections\":{},\
                 \"candidates_counted\":{},\"prefix_reuses\":{}}}",
                s.db_scans, s.subset_tests, s.intersections, s.candidates_counted, s.prefix_reuses
            ),
        };
        let cache = match &self.cache {
            None => "null".to_string(),
            Some(c) => format!(
                "{{\"lookups\":{},\"exact_hits\":{},\"parent_hits\":{},\
                 \"hit_rate\":{:.4},\"insertions\":{},\"evicted_cells\":{},\
                 \"bytes_resident\":{},\"seed_lookups\":{},\"seed_hits\":{}}}",
                c.lookups,
                c.exact_hits,
                c.parent_hits,
                c.hit_rate(),
                c.insertions,
                c.evicted_cells,
                c.bytes_resident,
                c.seed_lookups,
                c.seed_hits
            ),
        };
        format!(
            "{{\"bench\":{},\"dataset\":{},\"n\":{},\"config\":{},\"engine\":{},\
             \"threads\":{},\"samples\":{},\"median_ns\":{},\"min_ns\":{},\"mean_ns\":{},\
             \"stats\":{},\"cache\":{}}}",
            json_string(self.bench),
            json_string(self.dataset),
            self.n,
            json_string(&self.config),
            json_string(&self.engine),
            self.threads,
            self.timing.samples,
            self.timing.median.as_nanos(),
            self.timing.min.as_nanos(),
            self.timing.mean.as_nanos(),
            stats,
            cache,
        )
    }
}

/// Escape a string as a JSON string literal (quotes, backslashes, control
/// characters — the labels are ASCII identifiers, but escaping is cheap
/// insurance).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serialize rows as the `flipper-quickbench/v1` report document.
pub fn render_report(rows: &[BenchRow]) -> String {
    let mut out = format!(
        "{{\n  \"schema\": \"{}\",\n  \"rows\": [\n",
        flipper_wire::QUICKBENCH_V1
    );
    for (i, row) in rows.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&row.json());
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write the report to `path` (standard truncating create).
///
/// # Errors
/// Propagates the underlying IO error.
pub fn write_report(path: &str, rows: &[BenchRow]) -> std::io::Result<()> {
    std::fs::write(path, render_report(rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::time_fn;

    fn row() -> BenchRow {
        BenchRow::new(
            "exec_grid",
            "quest",
            300,
            "tidset",
            2,
            time_fn("tidset/t2", 0, 3, || 7u64),
        )
        .with_stats(CounterStats {
            db_scans: 1,
            subset_tests: 2,
            intersections: 3,
            candidates_counted: 4,
            prefix_reuses: 5,
        })
    }

    #[test]
    fn report_has_schema_and_rows() {
        let doc = render_report(&[row(), row()]);
        assert!(doc.contains("\"schema\": \"flipper-quickbench/v1\""));
        assert_eq!(doc.matches("\"bench\":\"exec_grid\"").count(), 2);
        assert!(doc.contains("\"engine\":\"tidset\""));
        assert!(doc.contains("\"threads\":2"));
        assert!(doc.contains("\"prefix_reuses\":5"));
        assert!(doc.contains("\"cache\":null"));
        // Rows are comma-separated: exactly one separator for two rows.
        assert_eq!(doc.matches("},\n").count(), 1);
    }

    #[test]
    fn cache_block_serializes_after_stats() {
        let r = row().with_cache(CacheStats {
            lookups: 8,
            exact_hits: 4,
            parent_hits: 2,
            insertions: 3,
            evicted_cells: 1,
            bytes_resident: 4096,
            seed_lookups: 10,
            seed_hits: 9,
        });
        let doc = render_report(&[r]);
        // The fixed field-order prefix bench_check.sh keys on is intact…
        assert!(doc.contains("\"bench\":\"exec_grid\",\"dataset\":\"quest\",\"n\":300"));
        // …and the cache block follows the stats block.
        let stats_at = doc.find("\"stats\":").unwrap();
        let cache_at = doc.find("\"cache\":{").unwrap();
        assert!(cache_at > stats_at);
        assert!(doc.contains("\"hit_rate\":0.7500"));
        assert!(doc.contains("\"bytes_resident\":4096"));
        assert!(doc.contains("\"seed_hits\":9"));
    }

    #[test]
    fn report_balances_braces_and_brackets() {
        // A structural smoke check standing in for a full JSON parser
        // (which the offline build doesn't have): every brace/bracket
        // closes, and no stray quotes remain after escaping.
        let mut r = row();
        r.config = "we\"ird\\label".to_string();
        r.stats = None;
        let doc = render_report(&[r]);
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
        assert!(doc.contains("\"stats\":null"));
        assert!(doc.contains("we\\\"ird\\\\label"));
        // Unescaped quote count is even (every string literal closes).
        let unescaped = doc.replace("\\\"", "");
        assert_eq!(unescaped.matches('"').count() % 2, 0);
    }

    #[test]
    fn empty_report_is_valid() {
        let doc = render_report(&[]);
        assert!(doc.contains("\"rows\": [\n  ]"));
    }
}
