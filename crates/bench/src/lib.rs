//! Shared experiment harness for regenerating every table and figure of the
//! paper's evaluation (§5). The `src/bin/*` targets print the tables; the
//! Criterion benches in `benches/` (behind the off-by-default `criterion`
//! feature) measure the same configurations under a statistics-grade timer,
//! and the dependency-free [`timing`] module plus the `quickbench` bin are
//! the offline fallback.

pub mod report;
pub mod timing;

use flipper_core::{mine_with_view, FlipperConfig, MinSupports, PruningConfig};
use flipper_data::{MultiLevelView, TransactionDb};
use flipper_measures::Thresholds;
use flipper_taxonomy::Taxonomy;
use std::time::Duration;

/// One row of a variant-comparison experiment.
#[derive(Debug, Clone)]
pub struct VariantRow {
    /// Pruning-variant name (paper legend).
    pub variant: &'static str,
    /// Wall-clock mining time.
    pub elapsed: Duration,
    /// Candidates generated.
    pub candidates: u64,
    /// Peak resident itemsets (memory proxy, Fig. 9b).
    pub peak_resident: u64,
    /// Flipping patterns found.
    pub flips: usize,
    /// Positive itemsets across all cells.
    pub pos: usize,
    /// Negative itemsets across all cells.
    pub neg: usize,
}

/// Run all four pruning variants on one dataset and configuration.
pub fn run_variants(tax: &Taxonomy, db: &TransactionDb, base: &FlipperConfig) -> Vec<VariantRow> {
    run_selected(tax, db, base, &PruningConfig::VARIANTS)
}

/// Run a subset of variants (for heavy sweeps where BASIC is prohibitive at
/// paper scale — exactly the situation the paper reports in §5.2).
pub fn run_selected(
    tax: &Taxonomy,
    db: &TransactionDb,
    base: &FlipperConfig,
    variants: &[PruningConfig],
) -> Vec<VariantRow> {
    let view = MultiLevelView::build(db, tax);
    variants
        .iter()
        .map(|&pruning| {
            let cfg = base.clone().with_pruning(pruning);
            let r = mine_with_view(tax, &view, &cfg);
            VariantRow {
                variant: pruning.name(),
                elapsed: r.stats.elapsed,
                candidates: r.stats.candidates_generated,
                peak_resident: r.stats.peak_resident_itemsets,
                flips: r.patterns.len(),
                pos: r.total_positive(),
                neg: r.total_negative(),
            }
        })
        .collect()
}

/// The ten minimum-support profiles of Table 3 `(θ₁, θ₂, θ₃, θ₄)`.
pub fn minsup_profiles() -> Vec<(&'static str, [f64; 4])> {
    vec![
        ("thr1", [0.05, 0.05, 0.05, 0.05]),
        ("thr2", [0.05, 0.001, 0.0005, 0.0001]),
        ("thr3", [0.01, 0.001, 0.0005, 0.0001]),
        ("thr4", [0.01, 0.0005, 0.0005, 0.0001]),
        ("thr5", [0.01, 0.0005, 0.0001, 0.0001]),
        ("thr6", [0.01, 0.0005, 0.0001, 0.00005]),
        ("thr7", [0.001, 0.0005, 0.0001, 0.00005]),
        ("thr8", [0.001, 0.0001, 0.0001, 0.00005]),
        ("thr9", [0.001, 0.0001, 0.00006, 0.00005]),
        ("thr10", [0.001, 0.0001, 0.00006, 0.00003]),
    ]
}

/// The seven correlation-threshold profiles of Fig. 8(d) `(γ, ε)`.
pub fn corr_profiles() -> Vec<(f64, f64)> {
    vec![
        (0.2, 0.1),
        (0.3, 0.1),
        (0.4, 0.1),
        (0.5, 0.1),
        (0.6, 0.1),
        (0.6, 0.3),
        (0.6, 0.5),
    ]
}

/// The paper's default synthetic configuration (§5.1): γ=0.3, ε=0.1,
/// θ = (1%, 0.1%, 0.05%, 0.01%).
pub fn default_synthetic_config() -> FlipperConfig {
    FlipperConfig::new(
        Thresholds::new(0.3, 0.1),
        MinSupports::Fractions(vec![0.01, 0.001, 0.0005, 0.0001]),
    )
}

/// Render rows as a fixed-width table with the given headers.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title}");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, c) in row.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let line = |cols: &[String]| {
        let cells: Vec<String> = cols
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        println!("  {}", cells.join("  "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Format a [`VariantRow`] for the standard variant-comparison tables.
pub fn variant_cells(r: &VariantRow) -> Vec<String> {
    vec![
        r.variant.to_string(),
        format!("{:.3}", r.elapsed.as_secs_f64()),
        r.candidates.to_string(),
        r.peak_resident.to_string(),
        r.flips.to_string(),
    ]
}

/// Scale factor from the `--scale` CLI flag (default `default_scale`).
pub fn scale_from_args(default_scale: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == "--scale")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(default_scale)
}

/// Whether a bare boolean flag (e.g. `--smoke`) was passed on the CLI.
pub fn flag_from_args(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Value of a `--name <value>` CLI option, when present.
pub fn opt_from_args(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flipper_datagen::planted::{self, PlantedParams};

    #[test]
    fn profiles_match_table3() {
        let p = minsup_profiles();
        assert_eq!(p.len(), 10);
        assert_eq!(p[0].0, "thr1");
        assert_eq!(p[0].1, [0.05; 4]);
        assert_eq!(p[9].1[3], 0.00003);
        // Profiles are value-decreasing at the bottom level.
        for w in p.windows(2) {
            assert!(w[1].1[3] <= w[0].1[3]);
        }
    }

    #[test]
    fn corr_profiles_match_fig8d() {
        let p = corr_profiles();
        assert_eq!(p.len(), 7);
        assert_eq!(p[0], (0.2, 0.1));
        assert_eq!(p[6], (0.6, 0.5));
    }

    #[test]
    fn run_variants_produces_four_rows() {
        let d = planted::generate(&PlantedParams::default());
        let (g, e) = planted::recommended_thresholds();
        let cfg = FlipperConfig::new(Thresholds::new(g, e), MinSupports::Counts(vec![5]));
        let rows = run_variants(&d.taxonomy, &d.db, &cfg);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].variant, "basic");
        assert_eq!(rows[3].variant, "flipping+tpg+sibp");
        // All variants agree on the number of flips.
        assert!(rows.windows(2).all(|w| w[0].flips == w[1].flips));
        // Pruning never generates more candidates than BASIC here.
        assert!(rows[3].candidates <= rows[0].candidates);
    }

    #[test]
    fn variant_cells_format() {
        let r = VariantRow {
            variant: "basic",
            elapsed: Duration::from_millis(1500),
            candidates: 10,
            peak_resident: 7,
            flips: 2,
            pos: 1,
            neg: 1,
        };
        assert_eq!(variant_cells(&r), vec!["basic", "1.500", "10", "7", "2"]);
    }

    #[test]
    fn default_config_matches_paper() {
        let cfg = default_synthetic_config();
        assert_eq!(cfg.thresholds.gamma, 0.3);
        assert_eq!(cfg.thresholds.epsilon, 0.1);
    }
}
