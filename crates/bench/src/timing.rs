//! Dependency-free micro-benchmark harness.
//!
//! The statistics-grade benches in `benches/paper_benches.rs` sit behind the
//! off-by-default `criterion` feature because this workspace builds offline
//! with zero external crates. This module is the fallback path: a small
//! warmup-then-sample loop over [`std::time::Instant`] good enough to rank
//! configurations and spot order-of-magnitude regressions. The `quickbench`
//! bin drives it over the same configurations as the criterion benches.

use std::time::{Duration, Instant};

/// Summary statistics for one timed configuration.
#[derive(Debug, Clone)]
pub struct Timing {
    /// Configuration label (mirrors the criterion benchmark id).
    pub label: String,
    /// Fastest observed sample.
    pub min: Duration,
    /// Median sample — the headline number (robust to scheduler noise).
    pub median: Duration,
    /// Arithmetic mean of the samples.
    pub mean: Duration,
    /// Number of measured samples.
    pub samples: usize,
}

impl Timing {
    /// Render as cells for [`crate::print_table`]:
    /// `[label, median_ms, min_ms, mean_ms]`.
    pub fn cells(&self) -> Vec<String> {
        vec![
            self.label.clone(),
            format!("{:.3}", self.median.as_secs_f64() * 1e3),
            format!("{:.3}", self.min.as_secs_f64() * 1e3),
            format!("{:.3}", self.mean.as_secs_f64() * 1e3),
        ]
    }
}

/// Time `f` with `warmup` unmeasured runs followed by `samples` measured
/// runs. The closure's return value is passed through a black box so the
/// optimizer cannot delete the computation.
pub fn time_fn<T, F: FnMut() -> T>(
    label: impl Into<String>,
    warmup: usize,
    samples: usize,
    mut f: F,
) -> Timing {
    assert!(samples > 0, "at least one measured sample is required");
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut durations: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed()
        })
        .collect();
    durations.sort_unstable();
    let min = durations[0];
    let median = durations[durations.len() / 2];
    let total: Duration = durations.iter().sum();
    Timing {
        label: label.into(),
        min,
        median,
        mean: total / samples as u32,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_requested_sample_count() {
        let t = time_fn("noop", 1, 5, || 42u64);
        assert_eq!(t.samples, 5);
        assert_eq!(t.label, "noop");
    }

    #[test]
    fn ordering_min_le_median() {
        let mut x = 0u64;
        let t = time_fn("spin", 0, 9, || {
            for i in 0..10_000u64 {
                x = x.wrapping_add(std::hint::black_box(i));
            }
            x
        });
        assert!(t.min <= t.median);
        assert!(t.min > Duration::ZERO);
    }

    #[test]
    fn cells_have_four_columns() {
        let t = time_fn("fmt", 0, 3, || ());
        assert_eq!(t.cells().len(), 4);
        assert_eq!(t.cells()[0], "fmt");
    }

    #[test]
    #[should_panic(expected = "at least one measured sample")]
    fn zero_samples_rejected() {
        let _ = time_fn("bad", 0, 0, || ());
    }
}
