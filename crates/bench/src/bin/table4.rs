//! Regenerates **Table 4**: the number of flipping patterns vs all positive
//! and negative frequent patterns, per real-dataset surrogate under the
//! paper's thresholds.
//!
//! Positive/negative totals are counted by the BASIC variant (which
//! enumerates every frequent itemset per level, as the paper's comparison
//! requires); flips come from the full Flipper.
//!
//! Run with: `cargo run --release -p flipper-bench --bin table4 [--scale F]`

use flipper_bench::{print_table, run_selected, scale_from_args};
use flipper_core::{FlipperConfig, MinSupports, PruningConfig};
use flipper_datagen::surrogate::{census, groceries, medline, SurrogateData};
use flipper_measures::Thresholds;

fn row(name: &str, d: &SurrogateData) -> Vec<String> {
    eprintln!("{name}: N = {} …", d.db.len());
    let cfg = FlipperConfig::new(
        Thresholds::new(d.thresholds.0, d.thresholds.1),
        MinSupports::Fractions(d.min_support.clone()),
    );
    let results = run_selected(
        &d.taxonomy,
        &d.db,
        &cfg,
        &[PruningConfig::BASIC, PruningConfig::FULL],
    );
    let basic = &results[0];
    let full = &results[1];
    assert_eq!(basic.flips, full.flips, "variants must agree on flips");
    vec![
        name.to_string(),
        format!("({}, {})", d.thresholds.0, d.thresholds.1),
        d.min_support
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join(","),
        basic.pos.to_string(),
        basic.neg.to_string(),
        full.flips.to_string(),
    ]
}

fn main() {
    let scale = scale_from_args(0.1);
    let rows = vec![
        row("GROCERIES", &groceries(42)),
        row("CENSUS", &census(42)),
        row("MEDLINE", &medline(scale, 42)),
    ];
    print_table(
        "Table 4 — flipping patterns vs all positive/negative frequent patterns",
        &["dataset", "(γ, ε)", "θ profile", "Pos", "Neg", "Flips"],
        &rows,
    );
}
