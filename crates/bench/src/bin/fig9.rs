//! Regenerates **Figure 9(a)/(b)**: runtime and memory of the naive
//! flipping-based miner vs the full Flipper on the three real-dataset
//! surrogates. The paper's memory axis (MB of candidate storage) maps to
//! our hardware-independent proxy: peak resident itemsets.
//!
//! The BASIC Apriori baseline is reported too when feasible — the paper
//! excluded it because it ran > 10 hours / > 48 GB on the originals.
//!
//! Run with: `cargo run --release -p flipper-bench --bin fig9 [--scale F]`
//! (`--scale` applies to MEDLINE only; 1.0 ≈ the paper's 640K citations.)

use flipper_bench::{print_table, run_selected, scale_from_args};
use flipper_core::{FlipperConfig, MinSupports, PruningConfig};
use flipper_datagen::surrogate::{census, groceries, medline, SurrogateData};
use flipper_measures::Thresholds;

fn experiment(name: &str, d: &SurrogateData, rows: &mut Vec<Vec<String>>) {
    eprintln!("{name}: N = {} …", d.db.len());
    let cfg = FlipperConfig::new(
        Thresholds::new(d.thresholds.0, d.thresholds.1),
        MinSupports::Fractions(d.min_support.clone()),
    );
    // "naive flipping" = flipping-based pruning only; "full" = +TPG +SIBP.
    let variants = [
        PruningConfig::BASIC,
        PruningConfig::FLIPPING,
        PruningConfig::FULL,
    ];
    for v in run_selected(&d.taxonomy, &d.db, &cfg, &variants) {
        rows.push(vec![
            name.to_string(),
            v.variant.to_string(),
            format!("{:.3}", v.elapsed.as_secs_f64()),
            v.candidates.to_string(),
            v.peak_resident.to_string(),
            v.flips.to_string(),
        ]);
    }
}

fn main() {
    let scale = scale_from_args(0.1);
    let mut rows = Vec::new();
    experiment("GROCERIES", &groceries(42), &mut rows);
    experiment("CENSUS", &census(42), &mut rows);
    experiment("MEDLINE", &medline(scale, 42), &mut rows);
    print_table(
        "Fig. 9 — real-dataset surrogates: naive flipping vs full Flipper",
        &[
            "dataset",
            "variant",
            "time(s)",
            "candidates",
            "peak_resident",
            "flips",
        ],
        &rows,
    );
    println!(
        "\npeak_resident is the memory proxy for Fig. 9(b): the number of\n\
         itemsets the variant must hold simultaneously."
    );
}
