//! Regenerates **Figure 8(b)**: mining time vs number of transactions
//! (paper: 100K → 1M; linear for all variants, Flipper 15–20× faster).
//!
//! Run with: `cargo run --release -p flipper-bench --bin fig8b [--scale F]`
//! (`--scale 1.0` sweeps 100K..1M as in the paper; default 0.1 sweeps
//! 10K..100K).

use flipper_bench::{default_synthetic_config, print_table, run_variants, scale_from_args};
use flipper_datagen::quest::{generate, QuestParams};

fn main() {
    let scale = scale_from_args(0.1);
    let sweep: Vec<usize> = [100_000usize, 250_000, 500_000, 750_000, 1_000_000]
        .iter()
        .map(|&n| ((n as f64 * scale) as usize).max(1_000))
        .collect();
    let cfg = default_synthetic_config();

    let mut rows = Vec::new();
    for n in sweep {
        eprintln!("N = {n} …");
        let data = generate(&QuestParams::default().with_transactions(n));
        for v in run_variants(&data.taxonomy, &data.db, &cfg) {
            rows.push(vec![
                n.to_string(),
                v.variant.to_string(),
                format!("{:.3}", v.elapsed.as_secs_f64()),
                v.candidates.to_string(),
                v.flips.to_string(),
            ]);
        }
    }
    print_table(
        "Fig. 8(b) — runtime vs number of transactions",
        &["N", "variant", "time(s)", "candidates", "flips"],
        &rows,
    );
}
