//! Regenerates **Table 1** of the paper: expectation-based correlation
//! judgements flip sign with the total transaction count `N`, while the
//! null-invariant Kulc value is unchanged.
//!
//! Run with: `cargo run -p flipper-bench --bin table1`

use flipper_bench::print_table;
use flipper_measures::expectation::{expectation_sign, expected_support, ExpectationSign};
use flipper_measures::{CorrelationMeasure, Measure};

fn sign(s: ExpectationSign) -> &'static str {
    match s {
        ExpectationSign::Positive => "positive",
        ExpectationSign::Negative => "negative",
        ExpectationSign::Independent => "independent",
    }
}

fn main() {
    // (label, sup_a, sup_b, sup_ab, N) — the paper's DB1/DB2 rows.
    let cases = [
        ("A,B / DB1", 1000u64, 1000u64, 400u64, 20_000u64),
        ("A,B / DB2", 1000, 1000, 400, 2_000),
        ("C,D / DB1", 200, 200, 4, 20_000),
        ("C,D / DB2", 200, 200, 4, 2_000),
    ];
    let rows: Vec<Vec<String>> = cases
        .iter()
        .map(|&(label, a, b, ab, n)| {
            vec![
                label.to_string(),
                a.to_string(),
                b.to_string(),
                ab.to_string(),
                n.to_string(),
                format!("{:.0}", expected_support(a, b, n)),
                sign(expectation_sign(ab, a, b, n)).to_string(),
                format!("{:.2}", Measure::Kulczynski.pair(ab, a, b)),
            ]
        })
        .collect();
    print_table(
        "Table 1 — expectation-based correlation vs null-invariant Kulc",
        &[
            "itemset/db",
            "sup(A)",
            "sup(B)",
            "sup(AB)",
            "N",
            "E[sup]",
            "expectation says",
            "Kulc",
        ],
        &rows,
    );
    println!(
        "\nThe expectation-based judgement flips with N for identical supports;\n\
         Kulc stays 0.40 / 0.02 — the paper's argument for null-invariant measures."
    );
}
