//! Regenerates **Figure 8(c)**: mining time vs average transaction width
//! `W = 5..10` (paper: BASIC degrades dramatically with density; full
//! Flipper handles it gracefully — up to 300× faster).
//!
//! Run with: `cargo run --release -p flipper-bench --bin fig8c [--scale F]`

use flipper_bench::{default_synthetic_config, print_table, run_variants, scale_from_args};
use flipper_datagen::quest::{generate, QuestParams};

fn main() {
    let scale = scale_from_args(0.1);
    let n = ((100_000.0 * scale) as usize).max(1_000);
    let cfg = default_synthetic_config();

    let mut rows = Vec::new();
    for w in [5u32, 6, 7, 8, 9, 10] {
        eprintln!("W = {w} (N = {n}) …");
        let data = generate(
            &QuestParams::default()
                .with_transactions(n)
                .with_width(w as f64),
        );
        for v in run_variants(&data.taxonomy, &data.db, &cfg) {
            rows.push(vec![
                w.to_string(),
                v.variant.to_string(),
                format!("{:.3}", v.elapsed.as_secs_f64()),
                v.candidates.to_string(),
                v.peak_resident.to_string(),
            ]);
        }
    }
    print_table(
        &format!("Fig. 8(c) — runtime vs avg transaction width (N = {n})"),
        &["W", "variant", "time(s)", "candidates", "peak_resident"],
        &rows,
    );
}
