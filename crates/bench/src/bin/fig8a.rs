//! Regenerates **Figure 8(a)**: mining time of the four pruning variants
//! across the ten minimum-support profiles of Table 3, on the default
//! synthetic dataset (N = 100K·scale, W = 5, |I| ≈ 1250, H = 4).
//!
//! Run with: `cargo run --release -p flipper-bench --bin fig8a [--scale F]`
//! (`--scale 1.0` is the paper's N = 100K; the default 0.25 keeps a laptop
//! run under a minute while preserving the curve's shape).

use flipper_bench::{minsup_profiles, print_table, run_variants, scale_from_args};
use flipper_core::{FlipperConfig, MinSupports};
use flipper_datagen::quest::{generate, QuestParams};
use flipper_measures::Thresholds;

fn main() {
    let scale = scale_from_args(0.25);
    let n = ((100_000.0 * scale) as usize).max(1_000);
    eprintln!("generating quest dataset: N = {n}, W = 5, H = 4 …");
    let data = generate(&QuestParams::default().with_transactions(n));

    let mut rows = Vec::new();
    for (name, thetas) in minsup_profiles() {
        let cfg = FlipperConfig::new(
            Thresholds::new(0.3, 0.1),
            MinSupports::Fractions(thetas.to_vec()),
        );
        eprintln!("profile {name} …");
        let variants = run_variants(&data.taxonomy, &data.db, &cfg);
        for v in &variants {
            rows.push(vec![
                name.to_string(),
                v.variant.to_string(),
                format!("{:.3}", v.elapsed.as_secs_f64()),
                v.candidates.to_string(),
                v.peak_resident.to_string(),
                v.flips.to_string(),
            ]);
        }
    }
    print_table(
        &format!("Fig. 8(a) — runtime vs minimum-support profile (N = {n})"),
        &[
            "profile",
            "variant",
            "time(s)",
            "candidates",
            "peak_resident",
            "flips",
        ],
        &rows,
    );
}
