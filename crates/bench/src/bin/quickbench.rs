//! Dependency-free fallback for `benches/paper_benches.rs`: times the same
//! configurations with the `std::time::Instant` harness in
//! [`flipper_bench::timing`] and prints fixed-width tables.
//!
//! Scale with `--scale <f>` (default 0.2 so a full run stays interactive;
//! 1.0 matches the criterion bench inputs) and sample count with
//! `--samples <n>`.

use flipper_bench::timing::{time_fn, Timing};
use flipper_bench::{print_table, scale_from_args};
use flipper_core::{mine_with_view, FlipperConfig, MinSupports, PruningConfig};
use flipper_data::{CountingEngine, MultiLevelView};
use flipper_datagen::quest::{generate, QuestParams};
use flipper_datagen::surrogate::groceries;
use flipper_measures::{Measure, Thresholds};

fn samples_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == "--samples")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(5)
        .max(1)
}

fn main() {
    let scale = scale_from_args(0.2);
    let samples = samples_from_args();
    let warmup = 1;
    let headers = ["config", "median_ms", "min_ms", "mean_ms"];

    // Fig. 8(a) shape: variants across support profiles (quest).
    let n = (10_000.0 * scale).max(500.0) as usize;
    let data = generate(&QuestParams::default().with_transactions(n));
    let view = MultiLevelView::build(&data.db, &data.taxonomy);
    let profiles: [(&str, [f64; 4]); 3] = [
        ("thr1", [0.05, 0.05, 0.05, 0.05]),
        ("thr5", [0.01, 0.0005, 0.0001, 0.0001]),
        ("thr10", [0.001, 0.0001, 0.00006, 0.00003]),
    ];
    let mut rows: Vec<Timing> = Vec::new();
    for (name, thetas) in profiles {
        for pruning in PruningConfig::VARIANTS {
            let cfg = FlipperConfig::new(
                Thresholds::new(0.3, 0.1),
                MinSupports::Fractions(thetas.to_vec()),
            )
            .with_pruning(pruning);
            rows.push(time_fn(
                format!("{name}/{}", pruning.name()),
                warmup,
                samples,
                || mine_with_view(&data.taxonomy, &view, &cfg),
            ));
        }
    }
    print_table(
        &format!("fig8a shape (quest, N = {n})"),
        &headers,
        &rows.iter().map(Timing::cells).collect::<Vec<_>>(),
    );

    // Fig. 9 shape plus engine/measure ablations on the GROCERIES surrogate.
    let d = groceries(42);
    let view = MultiLevelView::build(&d.db, &d.taxonomy);
    let base = FlipperConfig::new(
        Thresholds::new(d.thresholds.0, d.thresholds.1),
        MinSupports::Fractions(d.min_support.clone()),
    );

    let mut rows: Vec<Timing> = Vec::new();
    for pruning in [PruningConfig::FLIPPING, PruningConfig::FULL] {
        let cfg = base.clone().with_pruning(pruning);
        rows.push(time_fn(
            format!("fig9/{}", pruning.name()),
            warmup,
            samples,
            || mine_with_view(&d.taxonomy, &view, &cfg),
        ));
    }
    for (name, engine) in [
        ("tidset", CountingEngine::Tidset),
        ("scan", CountingEngine::Scan),
    ] {
        let cfg = base.clone().with_engine(engine);
        rows.push(time_fn(format!("counting/{name}"), warmup, samples, || {
            mine_with_view(&d.taxonomy, &view, &cfg)
        }));
    }
    for measure in Measure::ALL {
        let cfg = base.clone().with_measure(measure);
        rows.push(time_fn(format!("measure/{measure}"), warmup, samples, || {
            mine_with_view(&d.taxonomy, &view, &cfg)
        }));
    }
    print_table(
        "fig9 + ablations (GROCERIES surrogate)",
        &headers,
        &rows.iter().map(Timing::cells).collect::<Vec<_>>(),
    );
}
