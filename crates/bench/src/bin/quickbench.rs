//! Dependency-free fallback for `benches/paper_benches.rs`: times the same
//! configurations with the `std::time::Instant` harness in
//! [`flipper_bench::timing`] and prints fixed-width tables, plus the
//! execution-layer grid (counting engine × worker threads), the
//! counting-kernel rows (prefix-cached and cell-cached vs naive
//! per-candidate) and the sweep-seeding rows (support-cache-seeded vs cold
//! γ/ε grids).
//!
//! Scale with `--scale <f>` (default 0.2 so a full run stays interactive;
//! 1.0 matches the criterion bench inputs) and sample count with
//! `--samples <n>`. `--smoke` runs a few-second engine × threads grid on a
//! tiny dataset — the CI hook `scripts/verify.sh` uses it so a perf
//! regression in any engine fails loudly instead of silently. `--json
//! <path>` additionally writes every timed grid/kernel/storage row as a
//! `flipper-quickbench/v1` JSON report (see [`flipper_bench::report`]) —
//! the machine-readable baseline future PRs regress against.

use flipper_api::Session;
use flipper_bench::report::{write_report, BenchRow};
use flipper_bench::timing::{time_fn, Timing};
use flipper_bench::{flag_from_args, opt_from_args, print_table, scale_from_args};
use flipper_core::{mine_with_view, FlipperConfig, MinSupports, PruningConfig};
use flipper_data::format::{read_dataset, write_dataset};
use flipper_data::{
    naive_tidset_counts, BitsetCounter, CellCache, CountingEngine, Itemset, MultiLevelView,
    SupportCache, SupportCounter, TidsetCounter, DEFAULT_CACHE_BUDGET,
};
use flipper_datagen::quest::{generate, QuestParams};
use flipper_datagen::surrogate::groceries;
use flipper_measures::{Measure, Thresholds};
use flipper_store::{read_fbin, stream_view, to_fbin_bytes, FbinReader};
use flipper_taxonomy::{NodeId, RebalancePolicy};
use std::io::Cursor;

fn samples_from_args() -> usize {
    opt_from_args("--samples")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
        .max(1)
}

/// The engine × threads grid on a quest dataset of `n` transactions:
/// BASIC pruning with the thr10 support profile, where per-cell candidate
/// batches are large enough that counting dominates and sharding pays.
/// Prints per-engine 4-thread speedups and prefix-reuse rates after the
/// table, and appends one JSON row per grid point (with the run's counter
/// stats) to `report`.
fn exec_layer_grid(n: usize, warmup: usize, samples: usize, report: &mut Vec<BenchRow>) {
    let data = generate(&QuestParams::default().with_transactions(n));
    let view = MultiLevelView::build(&data.db, &data.taxonomy);
    let base = FlipperConfig::new(
        Thresholds::new(0.3, 0.1),
        MinSupports::Fractions(vec![0.001, 0.0001, 0.00006, 0.00003]),
    )
    .with_pruning(PruningConfig::BASIC);

    let engines = [
        ("tidset", CountingEngine::Tidset),
        ("bitset", CountingEngine::Bitset),
        ("scan", CountingEngine::Scan),
        ("auto", CountingEngine::Auto),
    ];
    let thread_grid = [1usize, 2, 4];
    let mut rows: Vec<Timing> = Vec::new();
    let mut speedups: Vec<String> = Vec::new();
    let mut reuse_rates: Vec<String> = Vec::new();
    for (name, engine) in engines {
        let mut per_threads: Vec<(usize, Timing)> = Vec::new();
        for threads in thread_grid {
            let cfg = base.clone().with_engine(engine).with_threads(threads);
            let mut counter_stats = None;
            let t = time_fn(format!("{name}/t{threads}"), warmup, samples, || {
                let r = mine_with_view(&data.taxonomy, &view, &cfg);
                counter_stats = Some(r.stats.counter);
                r
            });
            let stats = counter_stats.expect("at least one sample ran");
            report.push(
                BenchRow::new("exec_grid", "quest", n, name, threads, t.clone()).with_stats(stats),
            );
            if threads == 1 && stats.candidates_counted > 0 {
                reuse_rates.push(format!(
                    "{name}: {:.0}%",
                    100.0 * stats.prefix_reuses as f64 / stats.candidates_counted as f64
                ));
            }
            per_threads.push((threads, t.clone()));
            rows.push(t);
        }
        let t1 = per_threads[0].1.median.as_secs_f64();
        let t4 = per_threads
            .last()
            .expect("grid non-empty")
            .1
            .median
            .as_secs_f64();
        if t4 > 0.0 {
            speedups.push(format!("{name}: {:.2}x", t1 / t4));
        }
    }
    print_table(
        &format!("execution layer: engine × threads (quest, N = {n}, basic/thr10)"),
        &["config", "median_ms", "min_ms", "mean_ms"],
        &rows.iter().map(Timing::cells).collect::<Vec<_>>(),
    );
    println!("  4-thread speedup over 1 thread: {}", speedups.join(", "));
    println!("  prefix-reuse rate (t1): {}", reuse_rates.join(", "));
}

/// Build a realistic k≥3-heavy counting workload at the leaf level of a
/// quest dataset: frequent items (θ = 2) → co-occurring pairs → Apriori
/// triples. The result is the sorted, deduplicated batch shape the miner
/// hands to `count_shard` at a low-support leaf cell, where candidates
/// cluster densely under shared (k−1)-prefixes.
fn leaf_triple_batch(view: &MultiLevelView, h: usize, max_items: usize) -> Vec<Itemset> {
    let lv = view.level(h);
    let theta = 2u64;
    let freq: Vec<NodeId> = lv
        .present_items()
        .iter()
        .copied()
        .filter(|&it| lv.item_support(it) >= theta)
        .take(max_items)
        .collect();
    let mut pairs = Vec::new();
    for (i, &x) in freq.iter().enumerate() {
        for &y in &freq[i + 1..] {
            pairs.push(Itemset::pair(x, y));
        }
    }
    let counter = TidsetCounter::new(view);
    let (pair_counts, _) = counter.count_shard(h, &pairs);
    let fpairs: Vec<&Itemset> = pairs
        .iter()
        .zip(&pair_counts)
        .filter(|(_, &c)| c >= theta)
        .map(|(p, _)| p)
        .collect();
    // Apriori join of frequent pairs sharing their first item; the grouped
    // generation order is already sorted and duplicate-free.
    let mut triples = Vec::new();
    let mut i = 0;
    while i < fpairs.len() {
        let first = fpairs[i].items()[0];
        let mut j = i;
        while j < fpairs.len() && fpairs[j].items()[0] == first {
            j += 1;
        }
        for p in i..j {
            for q in (p + 1)..j {
                if let Some(t) = fpairs[p].apriori_join(fpairs[q]) {
                    triples.push(t);
                }
            }
        }
        i = j;
    }
    triples.sort_unstable();
    triples.dedup();
    triples
}

/// Counting-kernel rows: the prefix-cached tidset/bitset shard cores vs the
/// retained naive per-candidate kernel, on the k=3-heavy leaf batch. The
/// prefix kernels are asserted bit-identical to the reference before any
/// timing is reported, and the printed reuse rate comes from the kernel's
/// own `prefix_reuses` statistic.
fn counting_kernel_rows(n: usize, warmup: usize, samples: usize, report: &mut Vec<BenchRow>) {
    let data = generate(&QuestParams::default().with_transactions(n));
    let view = MultiLevelView::build(&data.db, &data.taxonomy);
    let h = data.taxonomy.height();
    let batch = leaf_triple_batch(&view, h, 120);
    if batch.is_empty() {
        println!("\n== counting kernels: no k=3 batch at N = {n}, skipped");
        return;
    }
    let tc = TidsetCounter::new(&view);
    let bc = BitsetCounter::new(&view);
    let reference = naive_tidset_counts(&view, h, &batch);
    let (prefix_counts, kernel_stats) = tc.count_shard(h, &batch);
    assert_eq!(
        prefix_counts, reference,
        "prefix-cached tidset kernel diverged from the naive reference"
    );
    assert_eq!(
        bc.count_shard(h, &batch).0,
        reference,
        "prefix-cached bitset kernel diverged from the naive reference"
    );

    let t_naive = time_fn("tidset-naive/k3", warmup, samples, || {
        naive_tidset_counts(&view, h, &batch)
    });
    let t_prefix = time_fn("tidset-prefix/k3", warmup, samples, || {
        tc.count_shard(h, &batch)
    });
    let t_bitset = time_fn("bitset-prefix/k3", warmup, samples, || {
        bc.count_shard(h, &batch)
    });

    // Cross-cell cache rows: cold pays the first-visit cost of populating a
    // fresh `CellCache`; warm answers every (k−1)-prefix from memory so the
    // kernel only performs the final per-candidate intersection.
    let mut tcc = TidsetCounter::new(&view);
    let t_cache_cold = time_fn("tidset-cache-cold/k3", warmup, samples, || {
        let mut cache = CellCache::new(DEFAULT_CACHE_BUDGET);
        tcc.count_batch_cached(h, &batch, 1, &mut cache)
    });
    let mut warm = CellCache::new(DEFAULT_CACHE_BUDGET);
    assert_eq!(
        tcc.count_batch_cached(h, &batch, 1, &mut warm),
        reference,
        "cell-cached tidset kernel diverged from the naive reference"
    );
    let t_cache_warm = time_fn("tidset-cache-warm/k3", warmup, samples, || {
        tcc.count_batch_cached(h, &batch, 1, &mut warm)
    });
    let cache_stats = warm.stats();

    report.push(BenchRow::new(
        "kernel",
        "quest",
        n,
        "tidset-naive",
        1,
        t_naive.clone(),
    ));
    report.push(
        BenchRow::new("kernel", "quest", n, "tidset-prefix", 1, t_prefix.clone())
            .with_stats(kernel_stats),
    );
    report.push(BenchRow::new(
        "kernel",
        "quest",
        n,
        "bitset-prefix",
        1,
        t_bitset.clone(),
    ));
    report.push(BenchRow::new(
        "kernel",
        "quest",
        n,
        "tidset-cache-cold",
        1,
        t_cache_cold.clone(),
    ));
    report.push(
        BenchRow::new(
            "kernel",
            "quest",
            n,
            "tidset-cache-warm",
            1,
            t_cache_warm.clone(),
        )
        .with_cache(cache_stats),
    );
    print_table(
        &format!(
            "counting kernels (quest, N = {n}, leaf level, {} k=3 candidates)",
            batch.len()
        ),
        &["config", "median_ms", "min_ms", "mean_ms"],
        &[
            t_naive.cells(),
            t_prefix.cells(),
            t_bitset.cells(),
            t_cache_cold.cells(),
            t_cache_warm.cells(),
        ],
    );
    let (naive_med, prefix_med) = (t_naive.median.as_secs_f64(), t_prefix.median.as_secs_f64());
    if prefix_med > 0.0 {
        println!(
            "  prefix-cached tidset speedup over naive: {:.2}x  (reuse rate {:.0}%: {} of {} candidates)",
            naive_med / prefix_med,
            100.0 * kernel_stats.prefix_reuses as f64 / kernel_stats.candidates_counted as f64,
            kernel_stats.prefix_reuses,
            kernel_stats.candidates_counted,
        );
    }
    let warm_med = t_cache_warm.median.as_secs_f64();
    if warm_med > 0.0 {
        println!(
            "  warm cell-cache speedup over naive: {:.2}x  (hit rate {:.0}%, {} KiB resident)",
            naive_med / warm_med,
            100.0 * cache_stats.hit_rate(),
            cache_stats.bytes_resident / 1024,
        );
    }
}

/// Sweep-seeding rows: the same γ/ε grid swept cold (seeding off, every
/// point counts all of its candidates) vs seeded (the session's support
/// cache answers already-counted `(h, itemset)` supports). Both sweeps run
/// on a session with a prebuilt view so the comparison isolates counting
/// cost; the seeded session is warmed by one throwaway sweep first. The
/// grid runs the `scan` engine — the paper's disk model, where counting is
/// the dominant cost and skipping it shows the cache's full value (the
/// vertical engines' prefix kernels already amortize most of what seeding
/// saves).
fn sweep_seeding_rows(n: usize, warmup: usize, samples: usize, report: &mut Vec<BenchRow>) {
    let ds = generate(&QuestParams::default().with_transactions(n)).into_dataset();
    let base = FlipperConfig::new(
        Thresholds::new(0.3, 0.1),
        MinSupports::Fractions(vec![0.001, 0.0001, 0.00006, 0.00003]),
    )
    .with_pruning(PruningConfig::BASIC)
    .with_engine(CountingEngine::Scan);
    let gammas = [0.5, 0.4, 0.3];
    let epsilons = [0.25, 0.1];

    let cold_session = Session::open(&ds).expect("open session");
    let t_cold = time_fn("sweep-cold/6pt", warmup, samples, || {
        cold_session
            .sweep()
            .with_seeding(false)
            .thresholds_grid(&base, &gammas, &epsilons)
            .run()
            .expect("cold sweep")
    });

    let seeded_session = Session::open(&ds).expect("open session");
    seeded_session
        .sweep()
        .thresholds_grid(&base, &gammas, &epsilons)
        .run()
        .expect("warmup sweep");
    let t_seeded = time_fn("sweep-seeded/6pt", warmup, samples, || {
        seeded_session
            .sweep()
            .thresholds_grid(&base, &gammas, &epsilons)
            .run()
            .expect("seeded sweep")
    });
    let cache_stats = seeded_session.support_cache_stats();

    report.push(BenchRow::new(
        "sweep",
        "quest",
        n,
        "cold",
        1,
        t_cold.clone(),
    ));
    report.push(
        BenchRow::new("sweep", "quest", n, "seeded", 1, t_seeded.clone()).with_cache(cache_stats),
    );
    print_table(
        &format!("sweep seeding (quest, N = {n}, 3×2 γ/ε grid, basic/thr10, scan engine)"),
        &["config", "median_ms", "min_ms", "mean_ms"],
        &[t_cold.cells(), t_seeded.cells()],
    );
    let (cold_med, seeded_med) = (t_cold.median.as_secs_f64(), t_seeded.median.as_secs_f64());
    if seeded_med > 0.0 && cache_stats.seed_lookups > 0 {
        println!(
            "  seeded sweep speedup over cold: {:.2}x  (seed hit rate {:.0}%: {} of {} supports, {} cached)",
            cold_med / seeded_med,
            100.0 * cache_stats.seed_hits as f64 / cache_stats.seed_lookups as f64,
            cache_stats.seed_hits,
            cache_stats.seed_lookups,
            seeded_session.support_cache_len(),
        );
    }
}

/// Observability overhead rows: the same mine timed with the flipper-obs
/// recorder off (`mine-bare`) and on (`mine-traced`, draining the captured
/// spans after every sample the way the CLI does per run). The traced
/// median is the number the "< 2% overhead" acceptance row tracks; both
/// rows land in the JSON report so the baseline catches instrumentation
/// creep.
fn obs_overhead_rows(n: usize, warmup: usize, samples: usize, report: &mut Vec<BenchRow>) {
    let data = generate(&QuestParams::default().with_transactions(n));
    let view = MultiLevelView::build(&data.db, &data.taxonomy);
    let cfg = FlipperConfig::new(
        Thresholds::new(0.3, 0.1),
        MinSupports::Fractions(vec![0.001, 0.0001, 0.00006, 0.00003]),
    )
    .with_pruning(PruningConfig::BASIC);

    flipper_obs::disable();
    let _ = flipper_obs::drain();
    let t_bare = time_fn("mine-bare", warmup, samples, || {
        mine_with_view(&data.taxonomy, &view, &cfg)
    });
    flipper_obs::enable();
    let t_traced = time_fn("mine-traced", warmup, samples, || {
        let r = mine_with_view(&data.taxonomy, &view, &cfg);
        let capture = flipper_obs::drain();
        (r, capture.events.len())
    });
    flipper_obs::disable();
    let _ = flipper_obs::drain();

    report.push(BenchRow::new(
        "obs",
        "quest",
        n,
        "mine-bare",
        1,
        t_bare.clone(),
    ));
    report.push(BenchRow::new(
        "obs",
        "quest",
        n,
        "mine-traced",
        1,
        t_traced.clone(),
    ));
    print_table(
        &format!("observability overhead (quest, N = {n}, basic/thr10)"),
        &["config", "median_ms", "min_ms", "mean_ms"],
        &[t_bare.cells(), t_traced.cells()],
    );
    let (bare_med, traced_med) = (t_bare.median.as_secs_f64(), t_traced.median.as_secs_f64());
    if bare_med > 0.0 {
        println!(
            "  recorder overhead (traced vs bare median): {:+.2}%",
            100.0 * (traced_med - bare_med) / bare_med
        );
    }
}

/// Guard overhead rows: the same mine timed unguarded (`mine-unguarded`)
/// and through `mine_with_view_guarded` with a live-but-inert
/// [`flipper_api::CancelToken`] (`mine-guarded`) — the cancellation checks,
/// the fault-site probes and the panic trap all on the timed path with
/// nothing firing. The guarded median is the number the "< 1% overhead"
/// acceptance row tracks; both rows land in the JSON report so the baseline
/// catches guard-path creep.
fn guard_overhead_rows(n: usize, warmup: usize, samples: usize, report: &mut Vec<BenchRow>) {
    let data = generate(&QuestParams::default().with_transactions(n));
    let view = MultiLevelView::build(&data.db, &data.taxonomy);
    let cfg = FlipperConfig::new(
        Thresholds::new(0.3, 0.1),
        MinSupports::Fractions(vec![0.001, 0.0001, 0.00006, 0.00003]),
    )
    .with_pruning(PruningConfig::BASIC);

    let t_bare = time_fn("mine-unguarded", warmup, samples, || {
        mine_with_view(&data.taxonomy, &view, &cfg)
    });
    let token = flipper_api::CancelToken::new();
    let t_guarded = time_fn("mine-guarded", warmup, samples, || {
        flipper_core::mine_with_view_guarded(&data.taxonomy, &view, &cfg, &token)
            .expect("inert guard never fails")
    });

    report.push(BenchRow::new(
        "guard",
        "quest",
        n,
        "mine-unguarded",
        1,
        t_bare.clone(),
    ));
    report.push(BenchRow::new(
        "guard",
        "quest",
        n,
        "mine-guarded",
        1,
        t_guarded.clone(),
    ));
    print_table(
        &format!("guard overhead (quest, N = {n}, basic/thr10)"),
        &["config", "median_ms", "min_ms", "mean_ms"],
        &[t_bare.cells(), t_guarded.cells()],
    );
    let (bare_med, guarded_med) = (t_bare.median.as_secs_f64(), t_guarded.median.as_secs_f64());
    if bare_med > 0.0 {
        println!(
            "  guard overhead (guarded vs unguarded median): {:+.2}%",
            100.0 * (guarded_med - bare_med) / bare_med
        );
    }
}

/// Support-cache probe rows: the old per-candidate `BTreeMap` probe
/// (`probe-get`, one `(h, itemset.clone())` range lookup per candidate)
/// vs the sorted-batch range-merge (`probe-merge`, one cursor walked in
/// lockstep with the candidate batch). The synthetic cache interleaves
/// resident and missing candidates so both hit and miss paths are on the
/// timed path, and both probes are asserted to agree before timing.
fn seeding_probe_rows(warmup: usize, samples: usize, report: &mut Vec<BenchRow>) {
    const H: usize = 3;
    let candidates: Vec<Itemset> = (0..20_000usize)
        .map(|i| {
            Itemset::new(vec![
                NodeId::from_index(i),
                NodeId::from_index(i + 1),
                NodeId::from_index(i + 2),
            ])
        })
        .collect();
    let mut cache = SupportCache::new();
    for (i, cand) in candidates.iter().enumerate() {
        // Every other candidate is resident, plus off-batch neighbours the
        // merge cursor has to skip over.
        if i % 2 == 0 {
            cache.insert(H, cand, i as u64 + 1);
        }
        cache.insert(H + 1, cand, 1);
    }

    let probe_get = || {
        let mut hits = 0u64;
        for cand in &candidates {
            if cache.get(H, cand).is_some() {
                hits += 1;
            }
        }
        hits
    };
    let probe_merge = || cache.seed_batch(H, &candidates, |_, _| {});
    assert_eq!(
        probe_get(),
        probe_merge(),
        "range-merge probe diverged from per-candidate probe"
    );

    let t_get = time_fn("probe-get", warmup, samples, probe_get);
    let t_merge = time_fn("probe-merge", warmup, samples, probe_merge);
    let n = candidates.len();
    report.push(BenchRow::new(
        "seeding",
        "synthetic",
        n,
        "probe-get",
        1,
        t_get.clone(),
    ));
    report.push(BenchRow::new(
        "seeding",
        "synthetic",
        n,
        "probe-merge",
        1,
        t_merge.clone(),
    ));
    print_table(
        &format!("support-cache probes ({n} sorted candidates, 50% resident)"),
        &["config", "median_ms", "min_ms", "mean_ms"],
        &[t_get.cells(), t_merge.cells()],
    );
    let (get_med, merge_med) = (t_get.median.as_secs_f64(), t_merge.median.as_secs_f64());
    if merge_med > 0.0 {
        println!(
            "  range-merge speedup over per-candidate get: {:.2}x",
            get_med / merge_med
        );
    }
}

/// Storage/IO rows on a quest dataset of `n` transactions: text parse vs
/// FBIN full load vs FBIN streamed ingestion (chunks → sharded projector),
/// all from memory so only the format work is measured. Prints the encoded
/// sizes and the FBIN-load speedup over the text parse.
fn storage_io_rows(n: usize, warmup: usize, samples: usize, report: &mut Vec<BenchRow>) {
    let ds = generate(&QuestParams::default().with_transactions(n)).into_dataset();
    let mut text = Vec::new();
    write_dataset(&mut text, &ds).expect("serialize text");
    let fbin = to_fbin_bytes(&ds).expect("serialize fbin");

    let t_text = time_fn("text-parse", warmup, samples, || {
        read_dataset(Cursor::new(&text[..]), RebalancePolicy::LeafCopy).expect("parse text")
    });
    let t_load = time_fn("fbin-load", warmup, samples, || {
        read_fbin(&fbin[..]).expect("load fbin")
    });
    // The loaded paths above stop at the Dataset; the streamed path goes all
    // the way to a mining-ready view, so also time view construction on the
    // loaded side for an apples-to-apples "ready to mine" comparison.
    let t_load_view = time_fn("fbin-load+view", warmup, samples, || {
        let ds = read_fbin(&fbin[..]).expect("load fbin");
        MultiLevelView::build(&ds.db, &ds.taxonomy)
    });
    let t_stream = time_fn("fbin-stream+view/t1", warmup, samples, || {
        stream_view(FbinReader::new(&fbin[..]).expect("open fbin"), 1).expect("stream fbin")
    });
    let rows = [
        t_text.clone(),
        t_load.clone(),
        t_load_view.clone(),
        t_stream.clone(),
    ];
    for t in &rows {
        report.push(BenchRow::new(
            "storage_io",
            "quest",
            n,
            t.label.clone(),
            1,
            t.clone(),
        ));
    }
    print_table(
        &format!(
            "storage io (quest, N = {n}; text {} KiB, fbin {} KiB)",
            text.len() / 1024,
            fbin.len() / 1024
        ),
        &["config", "median_ms", "min_ms", "mean_ms"],
        &rows.iter().map(Timing::cells).collect::<Vec<_>>(),
    );
    let (t, f) = (t_text.median.as_secs_f64(), t_load.median.as_secs_f64());
    if f > 0.0 {
        println!("  fbin load speedup over text parse: {:.2}x", t / f);
    }
}

/// Lint-runtime row: one full `flipper-lint` workspace analysis (lex,
/// regions, per-file rules, plus the symbol-table/call-graph/crate-graph
/// pass) timed end-to-end on this workspace's own sources. Advisory: the
/// row warns above a 2 s median but never fails — the point is catching an
/// accidental quadratic in the analyzer before it slows every verify run.
fn lint_runtime_rows(warmup: usize, samples: usize, report: &mut Vec<BenchRow>) {
    let cwd = std::env::current_dir().expect("cwd");
    let Some(root) = flipper_lint::find_workspace_root(&cwd) else {
        println!("\n== lint runtime: no workspace root above the cwd, skipped");
        return;
    };
    let mut files = 0usize;
    let t = time_fn("lint-workspace", warmup, samples, || {
        let a = flipper_lint::analyze_workspace_full(&root).expect("workspace analyzes");
        files = a.report.files_scanned;
        a
    });
    report.push(BenchRow::new(
        "lint",
        "workspace",
        files,
        "analyze-full",
        1,
        t.clone(),
    ));
    print_table(
        &format!("lint runtime (workspace sources, {files} files)"),
        &["config", "median_ms", "min_ms", "mean_ms"],
        &[t.cells()],
    );
    let med = t.median.as_secs_f64();
    if med > 2.0 {
        println!("  advisory: lint median {med:.2} s exceeds the 2 s budget");
    }
}

/// Few-second CI smoke: the full engine × threads grid, the counting-kernel
/// comparison (naive vs prefix-cached vs cell-cached, with a built-in
/// bit-identity assertion), the sweep-seeding comparison, the
/// storage/IO rows and the lint-runtime row at toy scale. Any engine
/// regressing by an order of magnitude shows up immediately in the printed
/// medians; any mis-wired engine/thread combination, kernel divergence or
/// broken format round-trip panics the run.
fn run_smoke(report: &mut Vec<BenchRow>) {
    exec_layer_grid(300, 0, 1, report);
    counting_kernel_rows(300, 0, 1, report);
    // The sweep rows need enough transactions for scan counting to dominate
    // the per-point cost, or the seeded-vs-cold signal drowns in overhead.
    sweep_seeding_rows(800, 0, 1, report);
    obs_overhead_rows(300, 0, 3, report);
    guard_overhead_rows(300, 0, 3, report);
    seeding_probe_rows(0, 1, report);
    storage_io_rows(300, 0, 1, report);
    lint_runtime_rows(0, 1, report);
    println!("\nquickbench --smoke PASSED");
}

fn main() {
    let json_path = opt_from_args("--json");
    let mut report: Vec<BenchRow> = Vec::new();
    if flag_from_args("--smoke") {
        run_smoke(&mut report);
        finish_report(json_path, &report);
        return;
    }
    let scale = scale_from_args(0.2);
    let samples = samples_from_args();
    let warmup = 1;
    let headers = ["config", "median_ms", "min_ms", "mean_ms"];

    // Fig. 8(a) shape: variants across support profiles (quest).
    let n = (10_000.0 * scale).max(500.0) as usize;
    let data = generate(&QuestParams::default().with_transactions(n));
    let view = MultiLevelView::build(&data.db, &data.taxonomy);
    let profiles: [(&str, [f64; 4]); 3] = [
        ("thr1", [0.05, 0.05, 0.05, 0.05]),
        ("thr5", [0.01, 0.0005, 0.0001, 0.0001]),
        ("thr10", [0.001, 0.0001, 0.00006, 0.00003]),
    ];
    let mut rows: Vec<Timing> = Vec::new();
    for (name, thetas) in profiles {
        for pruning in PruningConfig::VARIANTS {
            let cfg = FlipperConfig::new(
                Thresholds::new(0.3, 0.1),
                MinSupports::Fractions(thetas.to_vec()),
            )
            .with_pruning(pruning);
            rows.push(time_fn(
                format!("{name}/{}", pruning.name()),
                warmup,
                samples,
                || mine_with_view(&data.taxonomy, &view, &cfg),
            ));
        }
    }
    print_table(
        &format!("fig8a shape (quest, N = {n})"),
        &headers,
        &rows.iter().map(Timing::cells).collect::<Vec<_>>(),
    );

    // Fig. 9 shape plus engine/measure ablations on the GROCERIES surrogate.
    let d = groceries(42);
    let view = MultiLevelView::build(&d.db, &d.taxonomy);
    let base = FlipperConfig::new(
        Thresholds::new(d.thresholds.0, d.thresholds.1),
        MinSupports::Fractions(d.min_support.clone()),
    );

    let mut rows: Vec<Timing> = Vec::new();
    for pruning in [PruningConfig::FLIPPING, PruningConfig::FULL] {
        let cfg = base.clone().with_pruning(pruning);
        rows.push(time_fn(
            format!("fig9/{}", pruning.name()),
            warmup,
            samples,
            || mine_with_view(&d.taxonomy, &view, &cfg),
        ));
    }
    for (name, engine) in [
        ("tidset", CountingEngine::Tidset),
        ("scan", CountingEngine::Scan),
        ("bitset", CountingEngine::Bitset),
        ("auto", CountingEngine::Auto),
    ] {
        let cfg = base.clone().with_engine(engine);
        rows.push(time_fn(format!("counting/{name}"), warmup, samples, || {
            mine_with_view(&d.taxonomy, &view, &cfg)
        }));
    }
    for measure in Measure::ALL {
        let cfg = base.clone().with_measure(measure);
        rows.push(time_fn(
            format!("measure/{measure}"),
            warmup,
            samples,
            || mine_with_view(&d.taxonomy, &view, &cfg),
        ));
    }
    print_table(
        "fig9 + ablations (GROCERIES surrogate)",
        &headers,
        &rows.iter().map(Timing::cells).collect::<Vec<_>>(),
    );

    // The execution-layer grid the ROADMAP's scaling items track: engine ×
    // threads on quest N = 1000.
    exec_layer_grid(1000, warmup, samples, &mut report);

    // Counting kernels: prefix-cached vs naive on the k=3-heavy leaf batch.
    counting_kernel_rows(1000, warmup, samples, &mut report);

    // Sweep seeding: cold vs support-cache-seeded γ/ε grids.
    sweep_seeding_rows(1000, warmup, samples, &mut report);

    // Observability: recorder-off vs recorder-on medians for the same mine.
    obs_overhead_rows(1000, warmup, samples, &mut report);

    // Guard: unguarded vs inert-token guarded medians for the same mine.
    guard_overhead_rows(1000, warmup, samples, &mut report);

    // Support-cache probes: per-candidate get vs sorted-batch range-merge.
    seeding_probe_rows(warmup, samples, &mut report);

    // Storage/IO: text parse vs FBIN load vs streamed ingestion, N = 1000.
    storage_io_rows(1000, warmup, samples, &mut report);

    // Static analysis: one full flipper-lint workspace pass.
    lint_runtime_rows(warmup, samples, &mut report);

    finish_report(json_path, &report);
}

/// Write the collected rows when `--json <path>` was requested.
fn finish_report(json_path: Option<String>, report: &[BenchRow]) {
    if let Some(path) = json_path {
        write_report(&path, report).expect("write bench report");
        println!("\nwrote {} bench rows to {path}", report.len());
    }
}
