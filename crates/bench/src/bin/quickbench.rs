//! Dependency-free fallback for `benches/paper_benches.rs`: times the same
//! configurations with the `std::time::Instant` harness in
//! [`flipper_bench::timing`] and prints fixed-width tables, plus the
//! execution-layer grid (counting engine × worker threads).
//!
//! Scale with `--scale <f>` (default 0.2 so a full run stays interactive;
//! 1.0 matches the criterion bench inputs) and sample count with
//! `--samples <n>`. `--smoke` runs a few-second engine × threads grid on a
//! tiny dataset — the CI hook `scripts/verify.sh` uses it so a perf
//! regression in any engine fails loudly instead of silently.

use flipper_bench::timing::{time_fn, Timing};
use flipper_bench::{flag_from_args, print_table, scale_from_args};
use flipper_core::{mine_with_view, FlipperConfig, MinSupports, PruningConfig};
use flipper_data::format::{read_dataset, write_dataset};
use flipper_data::{CountingEngine, MultiLevelView};
use flipper_datagen::quest::{generate, QuestParams};
use flipper_datagen::surrogate::groceries;
use flipper_measures::{Measure, Thresholds};
use flipper_store::{read_fbin, stream_view, to_fbin_bytes, FbinReader};
use flipper_taxonomy::RebalancePolicy;
use std::io::Cursor;

fn samples_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == "--samples")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(5)
        .max(1)
}

/// The engine × threads grid on a quest dataset of `n` transactions:
/// BASIC pruning with the thr10 support profile, where per-cell candidate
/// batches are large enough that counting dominates and sharding pays.
/// Prints per-engine 4-thread speedups after the table.
fn exec_layer_grid(n: usize, warmup: usize, samples: usize) {
    let data = generate(&QuestParams::default().with_transactions(n));
    let view = MultiLevelView::build(&data.db, &data.taxonomy);
    let base = FlipperConfig::new(
        Thresholds::new(0.3, 0.1),
        MinSupports::Fractions(vec![0.001, 0.0001, 0.00006, 0.00003]),
    )
    .with_pruning(PruningConfig::BASIC);

    let engines = [
        ("tidset", CountingEngine::Tidset),
        ("bitset", CountingEngine::Bitset),
        ("scan", CountingEngine::Scan),
        ("auto", CountingEngine::Auto),
    ];
    let thread_grid = [1usize, 2, 4];
    let mut rows: Vec<Timing> = Vec::new();
    let mut speedups: Vec<String> = Vec::new();
    for (name, engine) in engines {
        let mut per_threads: Vec<(usize, Timing)> = Vec::new();
        for threads in thread_grid {
            let cfg = base.clone().with_engine(engine).with_threads(threads);
            let t = time_fn(format!("{name}/t{threads}"), warmup, samples, || {
                mine_with_view(&data.taxonomy, &view, &cfg)
            });
            per_threads.push((threads, t.clone()));
            rows.push(t);
        }
        let t1 = per_threads[0].1.median.as_secs_f64();
        let t4 = per_threads
            .last()
            .expect("grid non-empty")
            .1
            .median
            .as_secs_f64();
        if t4 > 0.0 {
            speedups.push(format!("{name}: {:.2}x", t1 / t4));
        }
    }
    print_table(
        &format!("execution layer: engine × threads (quest, N = {n}, basic/thr10)"),
        &["config", "median_ms", "min_ms", "mean_ms"],
        &rows.iter().map(Timing::cells).collect::<Vec<_>>(),
    );
    println!("  4-thread speedup over 1 thread: {}", speedups.join(", "));
}

/// Storage/IO rows on a quest dataset of `n` transactions: text parse vs
/// FBIN full load vs FBIN streamed ingestion (chunks → sharded projector),
/// all from memory so only the format work is measured. Prints the encoded
/// sizes and the FBIN-load speedup over the text parse.
fn storage_io_rows(n: usize, warmup: usize, samples: usize) {
    let ds = generate(&QuestParams::default().with_transactions(n)).into_dataset();
    let mut text = Vec::new();
    write_dataset(&mut text, &ds).expect("serialize text");
    let fbin = to_fbin_bytes(&ds).expect("serialize fbin");

    let t_text = time_fn("text-parse", warmup, samples, || {
        read_dataset(Cursor::new(&text[..]), RebalancePolicy::LeafCopy).expect("parse text")
    });
    let t_load = time_fn("fbin-load", warmup, samples, || {
        read_fbin(&fbin[..]).expect("load fbin")
    });
    // The loaded paths above stop at the Dataset; the streamed path goes all
    // the way to a mining-ready view, so also time view construction on the
    // loaded side for an apples-to-apples "ready to mine" comparison.
    let t_load_view = time_fn("fbin-load+view", warmup, samples, || {
        let ds = read_fbin(&fbin[..]).expect("load fbin");
        MultiLevelView::build(&ds.db, &ds.taxonomy)
    });
    let t_stream = time_fn("fbin-stream+view/t1", warmup, samples, || {
        stream_view(FbinReader::new(&fbin[..]).expect("open fbin"), 1).expect("stream fbin")
    });
    let rows = [t_text.clone(), t_load.clone(), t_load_view, t_stream];
    print_table(
        &format!(
            "storage io (quest, N = {n}; text {} KiB, fbin {} KiB)",
            text.len() / 1024,
            fbin.len() / 1024
        ),
        &["config", "median_ms", "min_ms", "mean_ms"],
        &rows.iter().map(Timing::cells).collect::<Vec<_>>(),
    );
    let (t, f) = (t_text.median.as_secs_f64(), t_load.median.as_secs_f64());
    if f > 0.0 {
        println!("  fbin load speedup over text parse: {:.2}x", t / f);
    }
}

/// Few-second CI smoke: the full engine × threads grid plus the storage/IO
/// rows at toy scale. Any engine regressing by an order of magnitude shows
/// up immediately in the printed medians; any mis-wired engine/thread
/// combination or broken format round-trip panics the run.
fn run_smoke() {
    exec_layer_grid(300, 0, 1);
    storage_io_rows(300, 0, 1);
    println!("\nquickbench --smoke PASSED");
}

fn main() {
    if flag_from_args("--smoke") {
        run_smoke();
        return;
    }
    let scale = scale_from_args(0.2);
    let samples = samples_from_args();
    let warmup = 1;
    let headers = ["config", "median_ms", "min_ms", "mean_ms"];

    // Fig. 8(a) shape: variants across support profiles (quest).
    let n = (10_000.0 * scale).max(500.0) as usize;
    let data = generate(&QuestParams::default().with_transactions(n));
    let view = MultiLevelView::build(&data.db, &data.taxonomy);
    let profiles: [(&str, [f64; 4]); 3] = [
        ("thr1", [0.05, 0.05, 0.05, 0.05]),
        ("thr5", [0.01, 0.0005, 0.0001, 0.0001]),
        ("thr10", [0.001, 0.0001, 0.00006, 0.00003]),
    ];
    let mut rows: Vec<Timing> = Vec::new();
    for (name, thetas) in profiles {
        for pruning in PruningConfig::VARIANTS {
            let cfg = FlipperConfig::new(
                Thresholds::new(0.3, 0.1),
                MinSupports::Fractions(thetas.to_vec()),
            )
            .with_pruning(pruning);
            rows.push(time_fn(
                format!("{name}/{}", pruning.name()),
                warmup,
                samples,
                || mine_with_view(&data.taxonomy, &view, &cfg),
            ));
        }
    }
    print_table(
        &format!("fig8a shape (quest, N = {n})"),
        &headers,
        &rows.iter().map(Timing::cells).collect::<Vec<_>>(),
    );

    // Fig. 9 shape plus engine/measure ablations on the GROCERIES surrogate.
    let d = groceries(42);
    let view = MultiLevelView::build(&d.db, &d.taxonomy);
    let base = FlipperConfig::new(
        Thresholds::new(d.thresholds.0, d.thresholds.1),
        MinSupports::Fractions(d.min_support.clone()),
    );

    let mut rows: Vec<Timing> = Vec::new();
    for pruning in [PruningConfig::FLIPPING, PruningConfig::FULL] {
        let cfg = base.clone().with_pruning(pruning);
        rows.push(time_fn(
            format!("fig9/{}", pruning.name()),
            warmup,
            samples,
            || mine_with_view(&d.taxonomy, &view, &cfg),
        ));
    }
    for (name, engine) in [
        ("tidset", CountingEngine::Tidset),
        ("scan", CountingEngine::Scan),
        ("bitset", CountingEngine::Bitset),
        ("auto", CountingEngine::Auto),
    ] {
        let cfg = base.clone().with_engine(engine);
        rows.push(time_fn(format!("counting/{name}"), warmup, samples, || {
            mine_with_view(&d.taxonomy, &view, &cfg)
        }));
    }
    for measure in Measure::ALL {
        let cfg = base.clone().with_measure(measure);
        rows.push(time_fn(
            format!("measure/{measure}"),
            warmup,
            samples,
            || mine_with_view(&d.taxonomy, &view, &cfg),
        ));
    }
    print_table(
        "fig9 + ablations (GROCERIES surrogate)",
        &headers,
        &rows.iter().map(Timing::cells).collect::<Vec<_>>(),
    );

    // The execution-layer grid the ROADMAP's scaling items track: engine ×
    // threads on quest N = 1000.
    exec_layer_grid(1000, warmup, samples);

    // Storage/IO: text parse vs FBIN load vs streamed ingestion, N = 1000.
    storage_io_rows(1000, warmup, samples);
}
