//! Regenerates **Figure 8(d)**: mining time vs correlation thresholds
//! `(γ, ε)` over the paper's seven profiles. The correlation-based pruning
//! strengthens as γ grows (more candidates are non-positive), while BASIC
//! ignores thresholds entirely.
//!
//! Run with: `cargo run --release -p flipper-bench --bin fig8d [--scale F]`

use flipper_bench::{corr_profiles, print_table, run_variants, scale_from_args};
use flipper_core::{FlipperConfig, MinSupports};
use flipper_datagen::quest::{generate, QuestParams};
use flipper_measures::Thresholds;

fn main() {
    let scale = scale_from_args(0.25);
    let n = ((100_000.0 * scale) as usize).max(1_000);
    eprintln!("generating quest dataset: N = {n} …");
    let data = generate(&QuestParams::default().with_transactions(n));

    let mut rows = Vec::new();
    for (gamma, eps) in corr_profiles() {
        eprintln!("(γ, ε) = ({gamma}, {eps}) …");
        let cfg = FlipperConfig::new(
            Thresholds::new(gamma, eps),
            MinSupports::Fractions(vec![0.01, 0.001, 0.0005, 0.0001]),
        );
        for v in run_variants(&data.taxonomy, &data.db, &cfg) {
            rows.push(vec![
                format!("({gamma},{eps})"),
                v.variant.to_string(),
                format!("{:.3}", v.elapsed.as_secs_f64()),
                v.candidates.to_string(),
                v.flips.to_string(),
            ]);
        }
    }
    print_table(
        &format!("Fig. 8(d) — runtime vs correlation thresholds (N = {n})"),
        &["(γ,ε)", "variant", "time(s)", "candidates", "flips"],
        &rows,
    );
}
