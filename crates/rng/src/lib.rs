//! # flipper-rng
//!
//! Minimal self-contained pseudo-random number generation.
//!
//! The workspace builds offline with zero external crates, so the generators
//! and property-style tests cannot use the `rand` crate. This micro-crate
//! supplies the small subset of its surface the workspace needs: a seedable,
//! deterministic generator ([`Xoshiro256pp`]) and uniform sampling over
//! integer and float ranges via [`Rng::gen`] / [`Rng::gen_range`].
//!
//! Determinism is part of the contract: every generator in `flipper-datagen`
//! and every randomized test derives its stream from an explicit `u64` seed,
//! and the stream for a given seed is stable across platforms and releases.
//!
//! The historical module path `flipper_data::rng` re-exports this crate, so
//! existing callers keep working unchanged.
//!
//! ```
//! use flipper_rng::{Rng, Xoshiro256pp};
//!
//! let mut rng = Xoshiro256pp::seed_from_u64(7);
//! let w: usize = rng.gen_range(1..=4);
//! assert!((1..=4).contains(&w));
//! let u = rng.gen::<f64>();
//! assert!((0.0..1.0).contains(&u));
//! ```

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Used to expand a 64-bit seed into full generator state, following the
/// xoshiro authors' recommendation (Blackman & Vigna).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The xoshiro256++ generator of Blackman & Vigna: 256 bits of state, period
/// 2²⁵⁶ − 1, excellent statistical quality for non-cryptographic use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Deterministically seed the generator from a single `u64`.
    ///
    /// The 256-bit state is expanded from the seed with SplitMix64, so
    /// nearby seeds still yield statistically independent streams. The
    /// state can never be all-zero (SplitMix64 is a bijection).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Xoshiro256pp {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl Rng for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A deterministic source of uniform random bits plus derived samplers.
///
/// Mirrors the `rand::Rng` call surface used by this workspace
/// (`gen::<f64>()`, `gen_range(lo..hi)`, `gen_range(lo..=hi)`), so code
/// written against `rand` ports with only an import change.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of type `T` from its standard distribution
    /// (`f64`/`f32`: uniform in `[0, 1)`; integers: uniform over the full
    /// domain; `bool`: fair coin).
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range; panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Types with a standard distribution, for [`Rng::gen`].
pub trait Sample: Sized {
    /// Draw one value from `rng`.
    fn sample<G: Rng + ?Sized>(rng: &mut G) -> Self;
}

impl Sample for u64 {
    fn sample<G: Rng + ?Sized>(rng: &mut G) -> u64 {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample<G: Rng + ?Sized>(rng: &mut G) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for bool {
    fn sample<G: Rng + ?Sized>(rng: &mut G) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with the full 53 bits of mantissa precision.
    fn sample<G: Rng + ?Sized>(rng: &mut G) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    /// Uniform in `[0, 1)` with the full 24 bits of mantissa precision.
    fn sample<G: Rng + ?Sized>(rng: &mut G) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Range types [`Rng::gen_range`] can sample from, producing `T`.
///
/// `T` is a type parameter (not an associated type) so the element type of a
/// literal range like `1..=4` is inferred from the call site's target type,
/// matching `rand`'s `gen_range` ergonomics.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range; panics if it is empty.
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> T;
}

/// Map 64 uniform bits onto `0..span` (`span ≥ 1`, as `u128` to allow a full
/// 2⁶⁴ span) by fixed-point multiply-and-shift. The modulo-style bias is at
/// most `span / 2⁶⁴`, which is negligible for the simulation and test
/// workloads this workspace runs.
fn uniform_below<G: Rng + ?Sized>(rng: &mut G, span: u128) -> u128 {
    (u128::from(rng.next_u64()) * span) >> 64
}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(
            self.start < self.end && (self.end - self.start).is_finite(),
            "gen_range: invalid float range"
        );
        let u = f64::sample(rng);
        let v = self.start + (self.end - self.start) * u;
        // Rounding can land exactly on `end`; clamp back into the half-open
        // contract.
        if v < self.end {
            v
        } else {
            self.start
                .max(self.end - (self.end - self.start) * f64::EPSILON)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_fixed_seed() {
        let mut a = Xoshiro256pp::seed_from_u64(12345);
        let mut b = Xoshiro256pp::seed_from_u64(12345);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256pp::seed_from_u64(1);
        let mut b = Xoshiro256pp::seed_from_u64(2);
        let draws_a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let draws_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(draws_a, draws_b);
    }

    #[test]
    fn reference_vector_is_stable() {
        // Pinned so accidental algorithm changes (which would silently
        // reshuffle every generated dataset) are caught.
        let mut rng = Xoshiro256pp::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let again: Vec<u64> = {
            let mut r = Xoshiro256pp::seed_from_u64(0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(first, again);
        // SplitMix64(0) expansion is a known sequence; the state must not
        // collapse to zeros and consecutive draws must differ.
        assert!(first.iter().any(|&x| x != 0));
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn gen_range_half_open_bounds() {
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        for _ in 0..2000 {
            let x: usize = rng.gen_range(0..7);
            assert!(x < 7);
            let y: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&y));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_inclusive_bounds_and_coverage() {
        let mut rng = Xoshiro256pp::seed_from_u64(10);
        let mut seen = [false; 6];
        for _ in 0..2000 {
            let x: usize = rng.gen_range(1..=6);
            assert!((1..=6).contains(&x));
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 1..=6 drawn");
        // Degenerate singleton range.
        assert_eq!(rng.gen_range(3..=3u32), 3);
    }

    #[test]
    fn gen_unit_interval() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let mut sum = 0.0;
        let n = 10_000;
        for _ in 0..n {
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!(
            (mean - 0.5).abs() < 0.02,
            "mean of U[0,1) ≈ 0.5, got {mean}"
        );
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let _: usize = rng.gen_range(5..5);
    }

    #[test]
    fn integer_range_is_roughly_uniform() {
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            let expected = n / 10;
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < (expected / 10) as u64,
                "bucket count {c} deviates from {expected} by more than 10%"
            );
        }
    }
}
