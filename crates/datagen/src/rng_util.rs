//! Small sampling helpers shared by the generators.

use flipper_data::rng::Rng;

/// Sample from a Poisson distribution with mean `lambda` (Knuth's method —
/// fine for the small means used by transaction/pattern widths).
pub fn poisson<R: Rng>(rng: &mut R, lambda: f64) -> usize {
    assert!(lambda > 0.0, "poisson mean must be positive");
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        // Numerical guard for very unlucky streaks.
        if k > (lambda * 20.0 + 50.0) as usize {
            return k;
        }
    }
}

/// Sample from an exponential distribution with mean 1.
pub fn exp1<R: Rng>(rng: &mut R) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln()
}

/// Sample an approximately normal value via the Irwin–Hall sum of 12
/// uniforms (good enough for the corruption-level noise of the generator).
pub fn normal<R: Rng>(rng: &mut R, mean: f64, dev: f64) -> f64 {
    let s: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
    mean + dev * s
}

/// Weighted index sampling from cumulative weights (must be non-empty,
/// strictly increasing, ending at the total).
pub fn sample_cumulative<R: Rng>(rng: &mut R, cumulative: &[f64]) -> usize {
    let total = *cumulative.last().expect("non-empty weights");
    let x = rng.gen_range(0.0..total);
    cumulative
        .partition_point(|&c| c <= x)
        .min(cumulative.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flipper_data::rng::Xoshiro256pp;

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| poisson(&mut rng, 5.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "poisson mean {mean}");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exp1(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "exp mean {mean}");
    }

    #[test]
    fn normal_mean_and_spread() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut rng, 0.5, 0.1)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01);
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((var.sqrt() - 0.1).abs() < 0.01);
    }

    #[test]
    fn cumulative_sampling_respects_weights() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        // Weights 1, 3 → cumulative [1, 4]; index 1 about 3× as likely.
        let cum = [1.0, 4.0];
        let n = 10_000;
        let ones = (0..n)
            .filter(|_| sample_cumulative(&mut rng, &cum) == 1)
            .count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.03, "fraction {frac}");
    }

    #[test]
    fn poisson_zero_possible_with_small_mean() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        assert!((0..200).any(|_| poisson(&mut rng, 0.5) == 0));
    }
}
