//! Generator with *planted* flipping patterns — ground truth for
//! correctness tests and for the reality-check experiments.
//!
//! The construction plants, for chosen category pairs, a leaf pair whose
//! Kulczynski chain provably alternates:
//!
//! * **up-flip** (`− → +` downwards is the paper's Movies example shape;
//!   here: level 1 positive, level 2 negative, level 3 positive):
//!   `P` transactions `{x, y}` make the leaf pair perfectly correlated;
//!   `Q` singleton transactions over siblings of `x` and of `y` dilute the
//!   *parents* (`Kulc(px,py) = P/(P+Q)`); `R` transactions pairing other
//!   branches of the same categories re-inflate the *category* correlation
//!   (`Kulc(A,B) = (P+R)/(P+Q+R)`).
//!
//! With the default counts `(P, Q, R) = (30, 120, 300)` and thresholds
//! `γ = 0.6`, `ε = 0.35` the chain is `+ − +` with comfortable margins:
//! `Kulc₁ = 330/450 ≈ 0.733`, `Kulc₂ = 30/150 = 0.2`, `Kulc₃ = 1.0`.

use flipper_data::rng::{Rng, Xoshiro256pp};
use flipper_data::TransactionDb;
use flipper_taxonomy::{NodeId, Taxonomy};

/// Parameters of the planted-pattern generator.
#[derive(Debug, Clone, PartialEq)]
pub struct PlantedParams {
    /// Level-1 categories (must be ≥ 2 × `num_patterns`).
    pub roots: usize,
    /// Children per internal node (must be ≥ 2).
    pub fanout: usize,
    /// Number of planted flipping pairs; pattern `i` spans categories
    /// `2i` and `2i+1`.
    pub num_patterns: usize,
    /// Transactions containing the planted leaf pair (`P`).
    pub pair_txns: usize,
    /// Dilution singleton transactions per side (`Q`).
    pub dilute_txns: usize,
    /// Category re-inflation transactions (`R`).
    pub boost_txns: usize,
    /// Uniform random background transactions appended after the planted
    /// structure (width 1–3). Moderate noise keeps the flips intact.
    pub background_txns: usize,
    /// PRNG seed for the background noise.
    pub seed: u64,
}

impl Default for PlantedParams {
    fn default() -> Self {
        PlantedParams {
            roots: 4,
            fanout: 2,
            num_patterns: 2,
            pair_txns: 30,
            dilute_txns: 120,
            boost_txns: 300,
            background_txns: 200,
            seed: 7,
        }
    }
}

/// A planted dataset with its ground truth.
#[derive(Debug, Clone)]
pub struct PlantedData {
    /// Height-3 uniform taxonomy.
    pub taxonomy: Taxonomy,
    /// The transactions.
    pub db: TransactionDb,
    /// The planted flipping leaf pairs, sorted.
    pub planted_pairs: Vec<(NodeId, NodeId)>,
}

impl PlantedData {
    /// Repackage as an interchange [`Dataset`](flipper_data::format::Dataset)
    /// ready for the text or FBIN writers, dropping the ground truth.
    pub fn into_dataset(self) -> flipper_data::format::Dataset {
        flipper_data::format::Dataset {
            taxonomy: self.taxonomy,
            db: self.db,
        }
    }
}

/// Generate a height-3 dataset with `num_patterns` planted flipping pairs.
///
/// # Panics
/// Panics when the taxonomy is too small to host the requested patterns.
pub fn generate(params: &PlantedParams) -> PlantedData {
    assert!(
        params.fanout >= 2,
        "fanout must be at least 2 for dilution siblings"
    );
    assert!(
        params.roots >= 2 * params.num_patterns.max(1),
        "need two categories per planted pattern"
    );
    assert!(
        params.pair_txns > 0,
        "planted pairs need at least one supporting transaction"
    );
    let taxonomy = Taxonomy::uniform(params.roots, params.fanout, 3)
        .expect("uniform parameters validated above");
    let mut rng = Xoshiro256pp::seed_from_u64(params.seed);
    let mut rows: Vec<Vec<NodeId>> = Vec::new();
    let mut planted_pairs = Vec::new();

    let cats = taxonomy.nodes_at_level(1).expect("level 1").to_vec();
    for i in 0..params.num_patterns {
        let cat_a = cats[2 * i];
        let cat_b = cats[2 * i + 1];
        // Branch 0 of each category hosts the pattern; branch 1 hosts the
        // category-level boost.
        let pa = taxonomy.children(cat_a)[0];
        let pb = taxonomy.children(cat_b)[0];
        let x = taxonomy.children(pa)[0];
        let x_sibling = taxonomy.children(pa)[1];
        let y = taxonomy.children(pb)[0];
        let y_sibling = taxonomy.children(pb)[1];
        let boost_a = taxonomy.children(taxonomy.children(cat_a)[1])[0];
        let boost_b = taxonomy.children(taxonomy.children(cat_b)[1])[0];

        for _ in 0..params.pair_txns {
            rows.push(vec![x, y]);
        }
        for _ in 0..params.dilute_txns {
            rows.push(vec![x_sibling]);
            rows.push(vec![y_sibling]);
        }
        for _ in 0..params.boost_txns {
            rows.push(vec![boost_a, boost_b]);
        }
        planted_pairs.push(if x < y { (x, y) } else { (y, x) });
    }

    // Background noise: random 1–3 item baskets over the leaves *not*
    // participating in a planted pair. Noise on the pair leaves themselves
    // would dilute the leaf-level correlation (their support comes entirely
    // from the planted block), so they are modeled as niche items.
    let planted: std::collections::HashSet<NodeId> =
        planted_pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
    let leaves: Vec<NodeId> = taxonomy
        .leaves()
        .iter()
        .copied()
        .filter(|l| !planted.contains(l))
        .collect();
    for _ in 0..params.background_txns {
        let w = rng.gen_range(1..=3);
        let mut t: Vec<NodeId> = (0..w)
            .map(|_| leaves[rng.gen_range(0..leaves.len())])
            .collect();
        t.sort_unstable();
        t.dedup();
        rows.push(t);
    }

    let db = TransactionDb::new(rows).expect("all rows non-empty");
    planted_pairs.sort_unstable();
    PlantedData {
        taxonomy,
        db,
        planted_pairs,
    }
}

/// The `(γ, ε)` thresholds the default construction is calibrated for.
pub fn recommended_thresholds() -> (f64, f64) {
    (0.6, 0.35)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_counts_are_exact_without_noise() {
        let p = PlantedParams {
            background_txns: 0,
            num_patterns: 1,
            ..Default::default()
        };
        let d = generate(&p);
        let (x, y) = d.planted_pairs[0];
        // Leaf pair: exactly P co-occurrences and P occurrences each.
        let co = d.db.support_of_sorted(&[x, y]);
        assert_eq!(co, 30);
        assert_eq!(d.db.support_of_sorted(&[x]), 30);
        // Parent dilution: P + Q occurrences each.
        let tax = &d.taxonomy;
        let px = tax.parent(x).unwrap();
        let view = flipper_data::MultiLevelView::build(&d.db, tax);
        assert_eq!(view.level(2).item_support(px), 150);
        // Category-level: co-occurrence P + R, support P + Q + R.
        let ca = tax.ancestor_at_level(x, 1).unwrap();
        assert_eq!(view.level(1).item_support(ca), 450);
    }

    #[test]
    fn kulc_chain_flips_by_construction() {
        let p = PlantedParams {
            background_txns: 0,
            num_patterns: 1,
            ..Default::default()
        };
        let d = generate(&p);
        let (x, y) = d.planted_pairs[0];
        let tax = &d.taxonomy;
        let view = flipper_data::MultiLevelView::build(&d.db, tax);
        let kulc = |h: usize, a: NodeId, b: NodeId| {
            let (ga, gb) = (
                tax.ancestor_at_level(a, h).unwrap(),
                tax.ancestor_at_level(b, h).unwrap(),
            );
            let lv = view.level(h);
            let co = lv
                .transactions()
                .filter(|t| t.contains(&ga) && t.contains(&gb))
                .count() as f64;
            (co / lv.item_support(ga) as f64 + co / lv.item_support(gb) as f64) / 2.0
        };
        let (k1, k2, k3) = (kulc(1, x, y), kulc(2, x, y), kulc(3, x, y));
        assert!(k1 >= 0.6, "level 1 Kulc {k1} should be positive");
        assert!(k2 <= 0.35, "level 2 Kulc {k2} should be negative");
        assert!((k3 - 1.0).abs() < 1e-12, "level 3 Kulc {k3} should be 1");
    }

    #[test]
    fn multiple_patterns_do_not_interfere() {
        let p = PlantedParams {
            num_patterns: 2,
            background_txns: 0,
            ..Default::default()
        };
        let d = generate(&p);
        assert_eq!(d.planted_pairs.len(), 2);
        let (x0, _) = d.planted_pairs[0];
        let (x1, _) = d.planted_pairs[1];
        let c0 = d.taxonomy.ancestor_at_level(x0, 1).unwrap();
        let c1 = d.taxonomy.ancestor_at_level(x1, 1).unwrap();
        assert_ne!(c0, c1, "patterns live in disjoint categories");
    }

    #[test]
    fn deterministic_background() {
        let a = generate(&PlantedParams::default());
        let b = generate(&PlantedParams::default());
        assert_eq!(a.db, b.db);
    }

    #[test]
    #[should_panic(expected = "two categories per planted pattern")]
    fn too_many_patterns_rejected() {
        let _ = generate(&PlantedParams {
            roots: 2,
            num_patterns: 2,
            ..Default::default()
        });
    }
}
