//! # flipper-datagen
//!
//! Dataset generators for flipping-correlation mining experiments:
//!
//! * [`quest`] — a reimplementation of the Srikant–Agrawal synthetic
//!   generator used by the paper's §5.1 performance study;
//! * [`planted`] — datasets with provable ground-truth flipping patterns,
//!   for correctness tests;
//! * [`surrogate`] — stand-ins for the paper's GROCERIES / CENSUS / MEDLINE
//!   datasets with the qualitative flips of Figs. 10–12 planted.
//!
//! All generators are deterministic given their seed.

pub mod planted;
pub mod quest;
mod rng_util;
pub mod surrogate;
