//! Reimplementation of the Srikant–Agrawal synthetic data generator for
//! generalized association mining (VLDB '95), the generator behind the
//! paper's §5.1 performance experiments.
//!
//! The original is a C binary ("IBM Quest") that is no longer distributed;
//! this module reproduces its statistical structure: a uniform taxonomy, a
//! table of *potentially frequent itemsets* whose items chain between
//! consecutive patterns (correlation), exponentially distributed pattern
//! weights, per-pattern corruption, and Poisson transaction widths.

use crate::rng_util::{exp1, normal, poisson, sample_cumulative};
use flipper_data::rng::{Rng, Xoshiro256pp};
use flipper_data::TransactionDb;
use flipper_taxonomy::{NodeId, Taxonomy};

/// Parameters of the synthetic generator. Defaults reproduce the paper's
/// §5.1 setting: `N = 100K`, `W = 5`, `|I| ≈ 1000` (10 roots × fanout 5 ×
/// 4 levels = 1250 leaves), `H = 4`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuestParams {
    /// Number of transactions `N`.
    pub num_transactions: usize,
    /// Average transaction width `W` (Poisson mean).
    pub avg_width: f64,
    /// Level-1 categories ("roots" in the original generator).
    pub roots: usize,
    /// Children per internal node.
    pub fanout: usize,
    /// Taxonomy height `H`.
    pub levels: usize,
    /// Number of potentially frequent itemsets (`|L|` in the original).
    pub num_patterns: usize,
    /// Average pattern size (Poisson mean, min 1).
    pub avg_pattern_len: f64,
    /// Fraction of items a pattern borrows from its predecessor.
    pub correlation: f64,
    /// Mean corruption level (items dropped from a pattern instance).
    pub corruption_mean: f64,
    /// Corruption standard deviation.
    pub corruption_dev: f64,
    /// PRNG seed — generation is fully deterministic given the parameters.
    pub seed: u64,
}

impl Default for QuestParams {
    fn default() -> Self {
        QuestParams {
            num_transactions: 100_000,
            avg_width: 5.0,
            roots: 10,
            fanout: 5,
            levels: 4,
            num_patterns: 500,
            avg_pattern_len: 2.5,
            correlation: 0.5,
            corruption_mean: 0.5,
            corruption_dev: 0.1,
            seed: 0xF11BBE4,
        }
    }
}

impl QuestParams {
    /// Builder-style setter for the transaction count.
    pub fn with_transactions(mut self, n: usize) -> Self {
        self.num_transactions = n;
        self
    }

    /// Builder-style setter for the average width.
    pub fn with_width(mut self, w: f64) -> Self {
        self.avg_width = w;
        self
    }

    /// Builder-style setter for the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A generated dataset: the taxonomy, the transactions, and the pattern
/// table used to produce them (useful for debugging experiments).
#[derive(Debug, Clone)]
pub struct QuestData {
    /// The uniform taxonomy.
    pub taxonomy: Taxonomy,
    /// The generated transactions.
    pub db: TransactionDb,
    /// The potentially frequent itemsets that seeded the data.
    pub seed_patterns: Vec<Vec<NodeId>>,
}

impl QuestData {
    /// Repackage as an interchange [`Dataset`](flipper_data::format::Dataset)
    /// ready for the text or FBIN writers, dropping the seed-pattern table.
    pub fn into_dataset(self) -> flipper_data::format::Dataset {
        flipper_data::format::Dataset {
            taxonomy: self.taxonomy,
            db: self.db,
        }
    }
}

/// Run the generator.
pub fn generate(params: &QuestParams) -> QuestData {
    assert!(params.num_transactions > 0, "need at least one transaction");
    assert!(params.avg_width >= 1.0, "average width must be at least 1");
    assert!(
        (0.0..=1.0).contains(&params.correlation),
        "correlation must be in [0,1]"
    );
    let mut rng = Xoshiro256pp::seed_from_u64(params.seed);
    let taxonomy = Taxonomy::uniform(params.roots, params.fanout, params.levels)
        .expect("uniform taxonomy parameters are validated");
    let leaves: Vec<NodeId> = taxonomy.leaves().to_vec();

    // --- Pattern table -----------------------------------------------------
    // Item popularity is skewed: exponential weights over leaves.
    let mut leaf_cum = Vec::with_capacity(leaves.len());
    let mut acc = 0.0;
    for _ in &leaves {
        acc += exp1(&mut rng);
        leaf_cum.push(acc);
    }

    let mut patterns: Vec<Vec<NodeId>> = Vec::with_capacity(params.num_patterns);
    let mut corruption: Vec<f64> = Vec::with_capacity(params.num_patterns);
    let mut weights_cum: Vec<f64> = Vec::with_capacity(params.num_patterns);
    let mut wacc = 0.0;
    for p in 0..params.num_patterns {
        let len = poisson(&mut rng, params.avg_pattern_len).max(1);
        let mut items: Vec<NodeId> = Vec::with_capacity(len);
        // Borrow a prefix from the previous pattern (the generator's
        // "correlation between consecutive itemsets").
        if p > 0 {
            let prev = &patterns[p - 1];
            let borrow = ((len as f64) * params.correlation).round() as usize;
            items.extend(prev.iter().take(borrow.min(len)).copied());
        }
        while items.len() < len {
            let it = leaves[sample_cumulative(&mut rng, &leaf_cum)];
            if !items.contains(&it) {
                items.push(it);
            }
        }
        items.sort_unstable();
        items.dedup();
        patterns.push(items);
        corruption
            .push(normal(&mut rng, params.corruption_mean, params.corruption_dev).clamp(0.0, 1.0));
        wacc += exp1(&mut rng);
        weights_cum.push(wacc);
    }

    // --- Transactions ------------------------------------------------------
    let mut rows: Vec<Vec<NodeId>> = Vec::with_capacity(params.num_transactions);
    for _ in 0..params.num_transactions {
        let width = poisson(&mut rng, params.avg_width).max(1);
        let mut txn: Vec<NodeId> = Vec::with_capacity(width + 4);
        let mut guard = 0;
        while txn.len() < width && guard < width * 8 {
            guard += 1;
            let pi = sample_cumulative(&mut rng, &weights_cum);
            let c = corruption[pi];
            for &item in &patterns[pi] {
                // Corrupt: drop each item with probability c.
                if rng.gen::<f64>() >= c {
                    txn.push(item);
                }
            }
        }
        txn.sort_unstable();
        txn.dedup();
        txn.truncate(width.max(1));
        if txn.is_empty() {
            txn.push(leaves[sample_cumulative(&mut rng, &leaf_cum)]);
        }
        rows.push(txn);
    }

    let db = TransactionDb::new(rows).expect("generator never emits empty rows");
    QuestData {
        taxonomy,
        db,
        seed_patterns: patterns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> QuestParams {
        QuestParams {
            num_transactions: 2_000,
            avg_width: 5.0,
            roots: 4,
            fanout: 3,
            levels: 3,
            num_patterns: 50,
            ..Default::default()
        }
    }

    #[test]
    fn shape_matches_parameters() {
        let d = generate(&small());
        assert_eq!(d.db.len(), 2_000);
        assert_eq!(d.taxonomy.height(), 3);
        assert_eq!(d.taxonomy.leaf_count(), 4 * 3 * 3);
        d.db.validate_against(&d.taxonomy).unwrap();
        let w = d.db.avg_width();
        assert!((3.0..7.0).contains(&w), "avg width {w} should be near 5");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a.db, b.db);
        assert_eq!(a.seed_patterns, b.seed_patterns);
        let c = generate(&small().with_seed(99));
        assert_ne!(a.db, c.db, "different seeds give different data");
    }

    #[test]
    fn item_popularity_is_skewed() {
        let d = generate(&small());
        let stats = flipper_data::stats::DbStats::compute(&d.db);
        assert!(
            stats.max_item_support >= stats.median_item_support * 3,
            "exponential weights should produce a skewed support distribution \
             (max {}, median {})",
            stats.max_item_support,
            stats.median_item_support
        );
    }

    #[test]
    fn patterns_recur_in_transactions() {
        // The most-used seed patterns should appear together far more often
        // than random chance: verify the first multi-item pattern co-occurs.
        let d = generate(&small());
        let multi = d
            .seed_patterns
            .iter()
            .find(|p| p.len() >= 2)
            .expect("a multi-item pattern");
        let pair = [multi[0], multi[1]];
        let co =
            d.db.iter()
                .filter(|t| pair.iter().all(|it| t.contains(it)))
                .count();
        assert!(co > 0, "seeded pairs must co-occur");
    }

    #[test]
    fn width_parameter_scales_width() {
        let narrow = generate(&small().with_width(3.0));
        let wide = generate(&small().with_width(8.0));
        assert!(wide.db.avg_width() > narrow.db.avg_width() + 2.0);
    }

    #[test]
    #[should_panic(expected = "at least one transaction")]
    fn zero_transactions_rejected() {
        let _ = generate(&small().with_transactions(0));
    }
}
