//! Surrogates for the paper's three real datasets (§5.2): GROCERIES,
//! CENSUS and MEDLINE.
//!
//! The originals are not redistributable here, so each surrogate simulates
//! the corresponding data source at the paper's scale and taxonomy shape,
//! and *plants* the qualitative flipping patterns the paper reports
//! (Figs. 10–12) so that the reality-check experiments regenerate them.
//! DESIGN.md documents the substitution.
//!
//! Two planting primitives cover every reported pattern:
//!
//! * **up-flip** `+ − +`: leaf pair strongly together, their parents
//!   diluted apart, their categories re-linked through other branches
//!   (beer & baby cosmetics; pork & salad dressing; biofeedback &
//!   behavior therapy);
//! * **down-flip** `− + −`: leaf pair rarely together, their parents
//!   strongly linked through sibling leaves, their categories diluted
//!   (eggs & fish; withdrawal syndrome & temperance).

use flipper_data::rng::{Rng, Xoshiro256pp};
use flipper_data::TransactionDb;
use flipper_taxonomy::{NodeId, RebalancePolicy, Taxonomy, TaxonomyBuilder};

/// A generated surrogate dataset with its ground-truth planted flips.
#[derive(Debug, Clone)]
pub struct SurrogateData {
    /// The dataset taxonomy (balanced; census uses leaf-copy padding).
    pub taxonomy: Taxonomy,
    /// The transactions.
    pub db: TransactionDb,
    /// Leaf-name pairs planted as flipping patterns.
    pub expected_flips: Vec<(String, String)>,
    /// Thresholds `(γ, ε)` the construction is calibrated for (Table 4).
    pub thresholds: (f64, f64),
    /// Per-level minimum-support fractions (Table 4).
    pub min_support: Vec<f64>,
}

impl SurrogateData {
    /// Repackage as an interchange [`Dataset`](flipper_data::format::Dataset)
    /// ready for the text or FBIN writers, dropping the ground truth and
    /// calibration metadata.
    pub fn into_dataset(self) -> flipper_data::format::Dataset {
        flipper_data::format::Dataset {
            taxonomy: self.taxonomy,
            db: self.db,
        }
    }

    /// Node ids of the expected flips.
    pub fn expected_flip_ids(&self) -> Vec<(NodeId, NodeId)> {
        self.expected_flips
            .iter()
            .map(|(a, b)| {
                let a = self.taxonomy.node_by_name(a).expect("planted leaf exists");
                let b = self.taxonomy.node_by_name(b).expect("planted leaf exists");
                if a < b {
                    (a, b)
                } else {
                    (b, a)
                }
            })
            .collect()
    }
}

/// Counts driving an up-flip `+ − +`: `pair` transactions `{x,y}`,
/// `dilute` singleton transactions for one sibling on each side, `boost`
/// transactions linking other branches of the two categories.
struct UpFlip<'a> {
    x: &'a str,
    y: &'a str,
    x_sib: &'a str,
    y_sib: &'a str,
    boost_a: &'a str,
    boost_b: &'a str,
    pair: usize,
    dilute: usize,
    boost: usize,
}

/// Counts driving a down-flip `− + −`: `pair` rare transactions `{x,y}`,
/// `solo` singleton transactions for `x` and `y` each, `link` transactions
/// `{x_sib, y_sib}` making the parents positively correlated, and `dilute`
/// singleton transactions over other branches of each category.
struct DownFlip<'a> {
    x: &'a str,
    y: &'a str,
    x_sib: &'a str,
    y_sib: &'a str,
    cat_fill_a: &'a str,
    cat_fill_b: &'a str,
    pair: usize,
    solo: usize,
    link: usize,
    dilute: usize,
}

/// Nested literal spec: category → (group → products).
type TreeSpec<'a> = &'a [(&'a str, &'a [(&'a str, &'a [&'a str])])];

fn push_n(rows: &mut Vec<Vec<NodeId>>, n: usize, items: &[NodeId]) {
    for _ in 0..n {
        rows.push(items.to_vec());
    }
}

fn ids(tax: &Taxonomy, names: &[&str]) -> Vec<NodeId> {
    names
        .iter()
        .map(|n| {
            tax.node_by_name(n)
                .unwrap_or_else(|| panic!("unknown node {n:?}"))
        })
        .collect()
}

fn apply_up_flip(rows: &mut Vec<Vec<NodeId>>, tax: &Taxonomy, f: &UpFlip<'_>) {
    let v = ids(tax, &[f.x, f.y, f.x_sib, f.y_sib, f.boost_a, f.boost_b]);
    push_n(rows, f.pair, &[v[0].min(v[1]), v[0].max(v[1])]);
    push_n(rows, f.dilute, &[v[2]]);
    push_n(rows, f.dilute, &[v[3]]);
    push_n(rows, f.boost, &[v[4].min(v[5]), v[4].max(v[5])]);
}

fn apply_down_flip(rows: &mut Vec<Vec<NodeId>>, tax: &Taxonomy, f: &DownFlip<'_>) {
    let v = ids(
        tax,
        &[f.x, f.y, f.x_sib, f.y_sib, f.cat_fill_a, f.cat_fill_b],
    );
    push_n(rows, f.pair, &[v[0].min(v[1]), v[0].max(v[1])]);
    push_n(rows, f.solo, &[v[0]]);
    push_n(rows, f.solo, &[v[1]]);
    push_n(rows, f.link, &[v[2].min(v[3]), v[2].max(v[3])]);
    push_n(rows, f.dilute, &[v[4]]);
    push_n(rows, f.dilute, &[v[5]]);
}

// ---------------------------------------------------------------------------
// GROCERIES
// ---------------------------------------------------------------------------

/// GROCERIES surrogate: ~9,800 point-of-sale baskets over a 3-level store
/// taxonomy (department → product group → product), with the paper's
/// Fig. 10 flips planted:
///
/// * canned beer × baby cosmetics (up-flip: drinks & non-food link
///   positively overall, beer & cosmetics repel, the famous pair attracts);
/// * pork × salad dressing (up-flip against meat × delicatessen);
/// * eggs × fish (down-flip: fresh produce & meat-and-fish correlate, egg
///   products & fish products correlate, the specific pair repels).
pub fn groceries(seed: u64) -> SurrogateData {
    let mut b = TaxonomyBuilder::new();
    // department → product-group → product
    let spec: TreeSpec = &[
        (
            "drinks",
            &[
                ("beer", &["canned beer", "bottled beer"]),
                ("soda", &["cola", "lemonade"]),
                ("juice", &["orange juice", "apple juice"]),
            ],
        ),
        (
            "non-food",
            &[
                ("cosmetics", &["baby cosmetics", "skin cream"]),
                ("cleaning", &["detergent", "sponges"]),
                ("kitchenware", &["napkins", "foil"]),
            ],
        ),
        (
            "meat",
            &[
                ("pork products", &["pork", "ham"]),
                ("beef products", &["beef", "steak"]),
                ("poultry", &["chicken", "turkey"]),
            ],
        ),
        (
            "delicatessen",
            &[
                ("dressings", &["salad dressing", "mayonnaise"]),
                ("spreads", &["hummus", "pate"]),
                ("olives", &["green olives", "black olives"]),
            ],
        ),
        (
            "fresh produce",
            &[
                ("egg products", &["eggs", "quail eggs"]),
                ("vegetables", &["lettuce", "tomatoes"]),
                ("fruit", &["apples", "bananas"]),
            ],
        ),
        (
            "meat and fish",
            &[
                ("fish products", &["fresh fish", "canned fish"]),
                ("shellfish", &["shrimp", "mussels"]),
                ("smoked", &["smoked salmon", "smoked mackerel"]),
            ],
        ),
        (
            "bakery",
            &[
                ("bread", &["white bread", "rye bread"]),
                ("pastry", &["croissant", "muffin"]),
                ("biscuits", &["cookies", "crackers"]),
            ],
        ),
        (
            "dairy",
            &[
                ("milk products", &["whole milk", "skim milk"]),
                ("cheese", &["brie", "cheddar"]),
                ("yogurt", &["plain yogurt", "fruit yogurt"]),
            ],
        ),
    ];
    for (dep, groups) in spec {
        b.add_root_child(dep).unwrap();
        for (grp, products) in *groups {
            b.add_child(grp, dep).unwrap();
            for p in *products {
                b.add_child(p, grp).unwrap();
            }
        }
    }
    let tax = b.build(RebalancePolicy::RequireBalanced).unwrap();

    let mut rows: Vec<Vec<NodeId>> = Vec::new();
    // Calibrated for (γ, ε) = (0.15, 0.10), θ = (0.001, 0.0005, 0.0002)·N.
    // Up-flip margins: Kulc₂ = 20/220 ≈ 0.091 ≤ ε; Kulc₁ ≥ (20+300)/520.
    apply_up_flip(
        &mut rows,
        &tax,
        &UpFlip {
            x: "canned beer",
            y: "baby cosmetics",
            x_sib: "bottled beer",
            y_sib: "skin cream",
            boost_a: "cola",
            boost_b: "detergent",
            pair: 20,
            dilute: 200,
            boost: 300,
        },
    );
    apply_up_flip(
        &mut rows,
        &tax,
        &UpFlip {
            x: "pork",
            y: "salad dressing",
            x_sib: "ham",
            y_sib: "mayonnaise",
            boost_a: "chicken",
            boost_b: "hummus",
            pair: 20,
            dilute: 200,
            boost: 300,
        },
    );
    // Down-flip: Kulc₃ = 4/44 ≈ 0.091 ≤ ε; Kulc₂ = (300+4)/(344+…) ≥ γ;
    // Kulc₁ diluted below ε by the category filler.
    apply_down_flip(
        &mut rows,
        &tax,
        &DownFlip {
            x: "eggs",
            y: "fresh fish",
            x_sib: "quail eggs",
            y_sib: "canned fish",
            cat_fill_a: "lettuce",
            cat_fill_b: "shrimp",
            pair: 4,
            solo: 40,
            link: 300,
            dilute: 3500,
        },
    );

    // Background shoppers over departments *not* hosting planted structure
    // (bakery, dairy) plus fillers inside drinks / non-food / meat /
    // delicatessen that avoid the planted product groups. Fresh produce and
    // meat-and-fish are excluded entirely: the eggs × fish down-flip needs
    // its category-level correlation fully determined by the construction.
    let filler: Vec<NodeId> = ids(
        &tax,
        &[
            "white bread",
            "rye bread",
            "croissant",
            "muffin",
            "cookies",
            "crackers",
            "whole milk",
            "skim milk",
            "brie",
            "cheddar",
            "plain yogurt",
            "fruit yogurt",
            "orange juice",
            "apple juice",
            "napkins",
            "foil",
            "beef",
            "steak",
            "green olives",
            "black olives",
        ],
    );
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let background = 9_800usize.saturating_sub(rows.len());
    for _ in 0..background {
        let w = rng.gen_range(1..=4);
        let mut t: Vec<NodeId> = (0..w)
            .map(|_| filler[rng.gen_range(0..filler.len())])
            .collect();
        t.sort_unstable();
        t.dedup();
        rows.push(t);
    }

    let db = TransactionDb::new(rows).expect("rows non-empty");
    SurrogateData {
        taxonomy: tax,
        db,
        expected_flips: vec![
            ("canned beer".into(), "baby cosmetics".into()),
            ("pork".into(), "salad dressing".into()),
            ("eggs".into(), "fresh fish".into()),
        ],
        thresholds: (0.15, 0.10),
        min_support: vec![0.001, 0.0005, 0.0002],
    }
}

// ---------------------------------------------------------------------------
// CENSUS
// ---------------------------------------------------------------------------

/// CENSUS surrogate: 32,000 person records as transactions over attribute
/// items with a 2-level hierarchy (attribute group → attribute∧qualifier
/// subgroup), reproducing the paper's Fig. 11 flips:
///
/// * occupation craft-repair × income ≥ 50K is negative, but flips positive
///   for the bachelor-degree subgroup;
/// * age 60–65 × income ≥ 50K is negative, but flips positive for
///   executives of that age.
///
/// `income>=50K` has no deeper refinement; leaf-copy rebalancing pads it,
/// exactly the situation of the paper's Fig. 3 \[B\].
pub fn census(seed: u64) -> SurrogateData {
    let mut b = TaxonomyBuilder::new();
    for (group, subs) in [
        (
            "occ:craft-repair",
            vec!["occ:craft-repair+edu:bachelor", "occ:craft-repair+edu:hs"],
        ),
        (
            "occ:executive",
            vec!["occ:executive+edu:bachelor", "occ:executive+edu:hs"],
        ),
        (
            "occ:clerical",
            vec!["occ:clerical+edu:bachelor", "occ:clerical+edu:hs"],
        ),
        (
            "occ:service",
            vec!["occ:service+edu:bachelor", "occ:service+edu:hs"],
        ),
        (
            "age:60-65",
            vec!["age:60-65+occ:executive", "age:60-65+occ:other"],
        ),
        (
            "age:30-40",
            vec!["age:30-40+occ:executive", "age:30-40+occ:other"],
        ),
        ("income>=50K", vec![]),
        ("income<50K", vec![]),
        ("sex:female", vec![]),
        ("sex:male", vec![]),
    ] {
        b.add_root_child(group).unwrap();
        for s in subs {
            b.add_child(s, group).unwrap();
        }
    }
    let tax = b.build(RebalancePolicy::LeafCopy).unwrap();
    let g = |n: &str| tax.node_by_name(n).expect("census node");
    // Leaf-level names of padded attributes.
    let hi = g("income>=50K#1");
    let lo = g("income<50K#1");
    let female = g("sex:female#1");
    let male = g("sex:male#1");

    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut rows: Vec<Vec<NodeId>> = Vec::new();
    let n = 32_000usize;

    // Sub-populations: (occupation-subgroup leaf, size, P(income >= 50K)).
    // Calibrated for (γ, ε) = (0.25, 0.15):
    //   craft-repair: 600·0.8 + 2400·0.05 = 600 high earners of 3000
    //     → Kulc₁(craft, inc) = (600/3000 + 600/|inc|)/2 ≈ 0.14 ≤ ε
    //     → Kulc₂(craft∧bachelor, inc) = (480/600 + 480/|inc|)/2 ≈ 0.43 ≥ γ
    let blocks: Vec<(&str, usize, f64)> = vec![
        ("occ:craft-repair+edu:bachelor", 600, 0.80),
        ("occ:craft-repair+edu:hs", 2_400, 0.05),
        ("occ:executive+edu:bachelor", 2_000, 0.55),
        ("occ:executive+edu:hs", 1_200, 0.35),
        ("occ:clerical+edu:bachelor", 2_000, 0.22),
        ("occ:clerical+edu:hs", 4_800, 0.12),
        ("occ:service+edu:bachelor", 1_000, 0.18),
        ("occ:service+edu:hs", 6_000, 0.08),
    ];
    // Age blocks are sampled independently of occupation blocks; each person
    // carries an occupation item OR an age item (mirroring how attribute
    // combinations become items), keeping the planted chains decoupled.
    let age_blocks: Vec<(&str, usize, f64)> = vec![
        ("age:60-65+occ:executive", 700, 0.75),
        ("age:60-65+occ:other", 3_500, 0.06),
        ("age:30-40+occ:executive", 2_500, 0.30),
        ("age:30-40+occ:other", 5_300, 0.20),
    ];

    for (leaf, size, p_inc) in blocks.iter().chain(age_blocks.iter()) {
        let leaf = g(leaf);
        for _ in 0..*size {
            let income = if rng.gen::<f64>() < *p_inc { hi } else { lo };
            let sex = if rng.gen::<f64>() < 0.47 {
                female
            } else {
                male
            };
            let mut t = vec![leaf, income, sex];
            t.sort_unstable();
            rows.push(t);
        }
    }
    // Fill to N with records carrying only income + sex (other occupations).
    while rows.len() < n {
        let income = if rng.gen::<f64>() < 0.18 { hi } else { lo };
        let sex = if rng.gen::<f64>() < 0.5 { female } else { male };
        let mut t = vec![income, sex];
        t.sort_unstable();
        rows.push(t);
    }

    let db = TransactionDb::new(rows).expect("rows non-empty");
    SurrogateData {
        taxonomy: tax,
        db,
        expected_flips: vec![
            (
                "occ:craft-repair+edu:bachelor".into(),
                "income>=50K#1".into(),
            ),
            ("age:60-65+occ:executive".into(), "income>=50K#1".into()),
        ],
        thresholds: (0.25, 0.15),
        min_support: vec![0.002, 0.001],
    }
}

// ---------------------------------------------------------------------------
// MEDLINE
// ---------------------------------------------------------------------------

/// MEDLINE surrogate: topic baskets over a 3-level MeSH-like tree at a
/// configurable scale (`scale = 1.0` ≈ the paper's 640K citations; the
/// default experiments use 0.1 → 64K). Plants the Fig. 12 flips:
///
/// * withdrawal syndrome × temperance (down-flip: substance-related
///   disorders and temperance are studied together, this refinement is
///   underrepresented);
/// * biofeedback × behavior therapy (up-flip: psychophysiology and
///   psychotherapy rarely meet, this pair does).
pub fn medline(scale: f64, seed: u64) -> SurrogateData {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let mut b = TaxonomyBuilder::new();
    let spec: TreeSpec = &[
        (
            "mental disorders",
            &[
                (
                    "substance-related disorders",
                    &["withdrawal syndrome", "substance abuse"],
                ),
                ("mood disorders", &["depression", "bipolar disorder"]),
                ("anxiety disorders", &["panic disorder", "phobias"]),
            ],
        ),
        (
            "human activities",
            &[
                ("temperance", &["alcohol abstinence", "tobacco abstinence"]),
                ("exercise", &["running", "swimming"]),
                ("leisure", &["reading", "travel"]),
            ],
        ),
        (
            "psychological phenomena",
            &[
                ("psychophysiology", &["biofeedback", "arousal"]),
                ("cognition", &["memory", "attention"]),
                ("emotion", &["affect", "mood"]),
            ],
        ),
        (
            "behavioral disciplines",
            &[
                ("psychotherapy", &["behavior therapy", "psychoanalysis"]),
                ("counseling", &["group counseling", "family counseling"]),
                ("assessment", &["personality tests", "iq tests"]),
            ],
        ),
        (
            "diseases",
            &[
                ("cardiovascular", &["hypertension", "arrhythmia"]),
                ("metabolic", &["diabetes", "obesity"]),
                ("respiratory", &["asthma", "copd"]),
            ],
        ),
        (
            "chemicals and drugs",
            &[
                ("analgesics", &["aspirin", "ibuprofen"]),
                ("antibiotics", &["penicillin", "tetracycline"]),
                ("hormones", &["insulin", "cortisol"]),
            ],
        ),
    ];
    for (cat, subs) in spec {
        b.add_root_child(cat).unwrap();
        for (sub, topics) in *subs {
            b.add_child(sub, cat).unwrap();
            for t in *topics {
                b.add_child(t, sub).unwrap();
            }
        }
    }
    let tax = b.build(RebalancePolicy::RequireBalanced).unwrap();

    // Counts are specified at the paper's full scale (640K citations); e.g.
    // `s(3)` is 30 pair-transactions at scale 0.1 (64K).
    let s = |x: usize| ((x as f64) * scale * 100.0).round().max(1.0) as usize;
    let mut rows: Vec<Vec<NodeId>> = Vec::new();
    // Calibrated for (γ, ε) = (0.40, 0.10), θ = (0.001, 0.0005, 0.0001)·N.
    // Down-flip (withdrawal × temperance), per 64K-scale counts:
    //   pair 30, solo 300 → Kulc₃ = 30/330 ≈ 0.091 ≤ ε
    //   link 400 (substance abuse × alcohol abstinence)
    //     → Kulc₂ ≈ 430/730 ≈ 0.59 ≥ γ
    //   dilute 4000 per category → Kulc₁ ≈ 430/4730 ≈ 0.091 ≤ ε.
    apply_down_flip(
        &mut rows,
        &tax,
        &DownFlip {
            x: "withdrawal syndrome",
            y: "alcohol abstinence",
            x_sib: "substance abuse",
            y_sib: "tobacco abstinence",
            cat_fill_a: "depression",
            cat_fill_b: "running",
            pair: s(3),
            solo: s(30),
            link: s(40),
            dilute: s(400),
        },
    );
    // Up-flip (biofeedback × behavior therapy):
    //   pair 80, dilute 800 → Kulc₂ = 80/880 ≈ 0.091 ≤ ε
    //   boost 900 → Kulc₁ = 980/1780 ≈ 0.55 ≥ γ.
    apply_up_flip(
        &mut rows,
        &tax,
        &UpFlip {
            x: "biofeedback",
            y: "behavior therapy",
            x_sib: "arousal",
            y_sib: "psychoanalysis",
            boost_a: "memory",
            boost_b: "group counseling",
            pair: s(8),
            dilute: s(80),
            boost: s(90),
        },
    );

    // Background citations over the two filler categories.
    let filler: Vec<NodeId> = ids(
        &tax,
        &[
            "hypertension",
            "arrhythmia",
            "diabetes",
            "obesity",
            "asthma",
            "copd",
            "aspirin",
            "ibuprofen",
            "penicillin",
            "tetracycline",
            "insulin",
            "cortisol",
        ],
    );
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let target = ((640_000.0 * scale).round() as usize).max(rows.len() + 1);
    let background = target - rows.len();
    for _ in 0..background {
        let w = rng.gen_range(1..=5);
        let mut t: Vec<NodeId> = (0..w)
            .map(|_| filler[rng.gen_range(0..filler.len())])
            .collect();
        t.sort_unstable();
        t.dedup();
        rows.push(t);
    }

    let db = TransactionDb::new(rows).expect("rows non-empty");
    SurrogateData {
        taxonomy: tax,
        db,
        expected_flips: vec![
            ("withdrawal syndrome".into(), "alcohol abstinence".into()),
            ("biofeedback".into(), "behavior therapy".into()),
        ],
        thresholds: (0.40, 0.10),
        min_support: vec![0.001, 0.0005, 0.0001],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groceries_shape() {
        let d = groceries(1);
        assert_eq!(d.db.len(), 9_800);
        assert_eq!(d.taxonomy.height(), 3);
        d.db.validate_against(&d.taxonomy).unwrap();
        assert_eq!(d.expected_flips.len(), 3);
        assert_eq!(d.expected_flip_ids().len(), 3);
    }

    #[test]
    fn census_shape_and_padding() {
        let d = census(2);
        assert_eq!(d.db.len(), 32_000);
        assert_eq!(d.taxonomy.height(), 2);
        d.db.validate_against(&d.taxonomy).unwrap();
        // Income is a padded leaf (Fig. 3 [B] in action).
        let inc = d.taxonomy.node_by_name("income>=50K#1").unwrap();
        assert!(d.taxonomy.is_synthetic(inc));
    }

    #[test]
    fn medline_scales() {
        let d = medline(0.01, 3);
        assert!((5_000..=7_000).contains(&d.db.len()), "N = {}", d.db.len());
        assert_eq!(d.taxonomy.height(), 3);
        d.db.validate_against(&d.taxonomy).unwrap();
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn medline_rejects_zero_scale() {
        let _ = medline(0.0, 0);
    }

    #[test]
    fn surrogates_are_deterministic() {
        assert_eq!(groceries(5).db, groceries(5).db);
        assert_eq!(census(5).db, census(5).db);
        assert_eq!(medline(0.01, 5).db, medline(0.01, 5).db);
    }
}
