//! Transaction databases over taxonomy leaf items.

use crate::itemset::is_sorted_subset;
use flipper_taxonomy::{NodeId, Taxonomy};

/// Errors raised when constructing or validating a [`TransactionDb`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A transaction contains an item that is not a leaf of the taxonomy.
    NonLeafItem {
        /// Index of the offending transaction.
        txn: usize,
        /// The offending item.
        item: NodeId,
    },
    /// A transaction is empty (carries no information; rejected to keep
    /// statistics honest).
    EmptyTransaction {
        /// Index of the offending transaction.
        txn: usize,
    },
    /// The database itself contains no transactions.
    EmptyDatabase,
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::NonLeafItem { txn, item } => {
                write!(f, "transaction {txn} contains non-leaf item {item}")
            }
            DataError::EmptyTransaction { txn } => write!(f, "transaction {txn} is empty"),
            DataError::EmptyDatabase => write!(f, "database has no transactions"),
        }
    }
}

impl std::error::Error for DataError {}

/// An immutable transaction database: every transaction is a sorted,
/// duplicate-free set of taxonomy **leaf** items.
///
/// Construct with [`TransactionDb::new`] (which canonicalizes rows) and
/// optionally validate leaf membership against a taxonomy with
/// [`TransactionDb::validate_against`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TransactionDb {
    txns: Vec<Vec<NodeId>>,
}

impl TransactionDb {
    /// Build a database, sorting and deduplicating each transaction.
    ///
    /// # Errors
    /// Rejects empty databases and empty transactions.
    pub fn new(rows: Vec<Vec<NodeId>>) -> Result<Self, DataError> {
        if rows.is_empty() {
            return Err(DataError::EmptyDatabase);
        }
        let mut txns = Vec::with_capacity(rows.len());
        for (i, mut row) in rows.into_iter().enumerate() {
            row.sort_unstable();
            row.dedup();
            if row.is_empty() {
                return Err(DataError::EmptyTransaction { txn: i });
            }
            txns.push(row);
        }
        Ok(TransactionDb { txns })
    }

    /// Check that every item of every transaction is a leaf of `tax`.
    pub fn validate_against(&self, tax: &Taxonomy) -> Result<(), DataError> {
        for (i, txn) in self.txns.iter().enumerate() {
            for &item in txn {
                if item.index() >= tax.node_count()
                    || tax.level_of(item) != tax.height()
                    || !tax.is_leaf(item)
                {
                    return Err(DataError::NonLeafItem { txn: i, item });
                }
            }
        }
        Ok(())
    }

    /// Number of transactions, `N`.
    #[inline]
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// True when the database holds no transactions (cannot happen for
    /// successfully constructed values; useful for the `len`/`is_empty`
    /// convention).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// Transaction at `idx` (sorted items).
    #[inline]
    pub fn transaction(&self, idx: usize) -> &[NodeId] {
        &self.txns[idx]
    }

    /// Iterate over all transactions.
    pub fn iter(&self) -> impl Iterator<Item = &[NodeId]> {
        self.txns.iter().map(Vec::as_slice)
    }

    /// All rows as a slice (crate-internal: lets the projection layer feed
    /// the whole database through the chunk path without copying).
    pub(crate) fn rows(&self) -> &[Vec<NodeId>] {
        &self.txns
    }

    /// Support of the itemset `items` (must be sorted ascending) by a full
    /// scan. This is the reference implementation the optimized counters are
    /// tested against.
    pub fn support_of_sorted(&self, items: &[NodeId]) -> u64 {
        debug_assert!(items.windows(2).all(|w| w[0] < w[1]));
        self.txns
            .iter()
            .filter(|t| is_sorted_subset(items, t))
            .count() as u64
    }

    /// Average transaction width.
    pub fn avg_width(&self) -> f64 {
        let total: usize = self.txns.iter().map(Vec::len).sum();
        total as f64 / self.txns.len() as f64
    }

    /// Maximum transaction width (the paper's bound on the number of columns
    /// of the search table).
    pub fn max_width(&self) -> usize {
        self.txns.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The distinct items appearing anywhere in the database, sorted.
    pub fn distinct_items(&self) -> Vec<NodeId> {
        let mut all: Vec<NodeId> = self.txns.iter().flatten().copied().collect();
        all.sort_unstable();
        all.dedup();
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flipper_taxonomy::RebalancePolicy;

    fn n(i: u32) -> NodeId {
        NodeId::from_index(i as usize)
    }

    #[test]
    fn canonicalizes_rows() {
        let db = TransactionDb::new(vec![vec![n(3), n(1), n(3)], vec![n(2)]]).unwrap();
        assert_eq!(db.transaction(0), &[n(1), n(3)]);
        assert_eq!(db.len(), 2);
        assert!(!db.is_empty());
    }

    #[test]
    fn rejects_empty_db_and_txn() {
        assert_eq!(
            TransactionDb::new(vec![]).unwrap_err(),
            DataError::EmptyDatabase
        );
        assert_eq!(
            TransactionDb::new(vec![vec![n(1)], vec![]]).unwrap_err(),
            DataError::EmptyTransaction { txn: 1 }
        );
    }

    #[test]
    fn support_by_scan() {
        let db = TransactionDb::new(vec![
            vec![n(1), n(2), n(3)],
            vec![n(1), n(2)],
            vec![n(2), n(3)],
            vec![n(1)],
        ])
        .unwrap();
        assert_eq!(db.support_of_sorted(&[n(1), n(2)]), 2);
        assert_eq!(db.support_of_sorted(&[n(2)]), 3);
        assert_eq!(db.support_of_sorted(&[n(1), n(3)]), 1);
        assert_eq!(db.support_of_sorted(&[n(1), n(2), n(3)]), 1);
        assert_eq!(db.support_of_sorted(&[n(9)]), 0);
        assert_eq!(db.support_of_sorted(&[]), 4);
    }

    #[test]
    fn widths_and_items() {
        let db =
            TransactionDb::new(vec![vec![n(1), n(2), n(3)], vec![n(5)], vec![n(2), n(5)]]).unwrap();
        assert!((db.avg_width() - 2.0).abs() < 1e-12);
        assert_eq!(db.max_width(), 3);
        assert_eq!(db.distinct_items(), vec![n(1), n(2), n(3), n(5)]);
    }

    #[test]
    fn validation_against_taxonomy() {
        let tax = Taxonomy::from_edges(
            [("cat", ""), ("x", "cat"), ("y", "cat")],
            RebalancePolicy::RequireBalanced,
        )
        .unwrap();
        let x = tax.node_by_name("x").unwrap();
        let cat = tax.node_by_name("cat").unwrap();
        let ok = TransactionDb::new(vec![vec![x]]).unwrap();
        assert!(ok.validate_against(&tax).is_ok());
        // An internal node in a transaction is rejected.
        let bad = TransactionDb::new(vec![vec![cat]]).unwrap();
        assert_eq!(
            bad.validate_against(&tax).unwrap_err(),
            DataError::NonLeafItem { txn: 0, item: cat }
        );
        // An out-of-range id is rejected, not a panic.
        let bad = TransactionDb::new(vec![vec![n(99)]]).unwrap();
        assert!(matches!(
            bad.validate_against(&tax).unwrap_err(),
            DataError::NonLeafItem { .. }
        ));
    }

    #[test]
    fn clone_roundtrip() {
        // The serde round-trip lives behind the off-by-default `serde`
        // feature (the offline build carries no serde_json); cloning still
        // exercises the full deep-copy + equality surface.
        let db = TransactionDb::new(vec![vec![n(1), n(2)], vec![n(3)]]).unwrap();
        let back = db.clone();
        assert_eq!(db, back);
    }

    #[test]
    fn error_display() {
        assert!(DataError::EmptyDatabase
            .to_string()
            .contains("no transactions"));
        assert!(DataError::EmptyTransaction { txn: 7 }
            .to_string()
            .contains('7'));
    }
}
