//! Descriptive statistics of transaction databases — used by the CLI's
//! `stats` subcommand and by experiment reports.

use crate::transaction::TransactionDb;
use flipper_taxonomy::{NodeId, Taxonomy};
use std::collections::HashMap;

/// Summary statistics of a database (optionally cross-referenced with its
/// taxonomy).
#[derive(Debug, Clone, PartialEq)]
pub struct DbStats {
    /// Number of transactions `N`.
    pub num_transactions: usize,
    /// Number of distinct leaf items appearing in the data.
    pub distinct_items: usize,
    /// Mean transaction width.
    pub avg_width: f64,
    /// Maximum transaction width.
    pub max_width: usize,
    /// Minimum transaction width.
    pub min_width: usize,
    /// Density: avg width divided by distinct item count.
    pub density: f64,
    /// Support of the most frequent item.
    pub max_item_support: u64,
    /// Support of the least frequent (but present) item.
    pub min_item_support: u64,
    /// Median item support.
    pub median_item_support: u64,
}

impl DbStats {
    /// Compute statistics for `db`.
    pub fn compute(db: &TransactionDb) -> Self {
        let mut support: HashMap<NodeId, u64> = HashMap::new();
        let mut min_width = usize::MAX;
        let mut max_width = 0usize;
        let mut total = 0usize;
        for txn in db.iter() {
            min_width = min_width.min(txn.len());
            max_width = max_width.max(txn.len());
            total += txn.len();
            for &it in txn {
                *support.entry(it).or_insert(0) += 1;
            }
        }
        let mut sups: Vec<u64> = support.values().copied().collect();
        sups.sort_unstable();
        let distinct = sups.len();
        DbStats {
            num_transactions: db.len(),
            distinct_items: distinct,
            avg_width: total as f64 / db.len() as f64,
            max_width,
            min_width,
            density: (total as f64 / db.len() as f64) / distinct.max(1) as f64,
            max_item_support: sups.last().copied().unwrap_or(0),
            min_item_support: sups.first().copied().unwrap_or(0),
            median_item_support: sups.get(distinct / 2).copied().unwrap_or(0),
        }
    }

    /// Render a compact multi-line report.
    pub fn report(&self) -> String {
        format!(
            "transactions: {}\ndistinct items: {}\nwidth avg/min/max: {:.2}/{}/{}\n\
             density: {:.5}\nitem support min/median/max: {}/{}/{}",
            self.num_transactions,
            self.distinct_items,
            self.avg_width,
            self.min_width,
            self.max_width,
            self.density,
            self.min_item_support,
            self.median_item_support,
            self.max_item_support,
        )
    }
}

/// Per-level item-support distribution of a database under a taxonomy —
/// the data behind the paper's advice to use level-wise minimum supports.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelStats {
    /// Abstraction level.
    pub level: usize,
    /// Number of distinct nodes present at this level.
    pub distinct_nodes: usize,
    /// Mean relative support (fraction of N) of present nodes.
    pub mean_rel_support: f64,
    /// Max relative support.
    pub max_rel_support: f64,
}

/// Compute [`LevelStats`] for each level `1..=height`.
pub fn level_stats(db: &TransactionDb, tax: &Taxonomy) -> Vec<LevelStats> {
    let view = crate::projection::MultiLevelView::build(db, tax);
    let n = db.len() as f64;
    (1..=tax.height())
        .map(|h| {
            let lv = view.level(h);
            let sups: Vec<u64> = lv
                .present_items()
                .iter()
                .map(|&it| lv.item_support(it))
                .collect();
            let distinct = sups.len();
            let mean = sups.iter().sum::<u64>() as f64 / distinct.max(1) as f64 / n;
            let max = sups.iter().copied().max().unwrap_or(0) as f64 / n;
            LevelStats {
                level: h,
                distinct_nodes: distinct,
                mean_rel_support: mean,
                max_rel_support: max,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flipper_taxonomy::RebalancePolicy;

    fn n(i: u32) -> NodeId {
        NodeId::from_index(i as usize)
    }

    #[test]
    fn stats_on_small_db() {
        let db =
            TransactionDb::new(vec![vec![n(1), n(2), n(3)], vec![n(1), n(2)], vec![n(1)]]).unwrap();
        let s = DbStats::compute(&db);
        assert_eq!(s.num_transactions, 3);
        assert_eq!(s.distinct_items, 3);
        assert_eq!(s.max_width, 3);
        assert_eq!(s.min_width, 1);
        assert!((s.avg_width - 2.0).abs() < 1e-12);
        assert_eq!(s.max_item_support, 3); // item 1
        assert_eq!(s.min_item_support, 1); // item 3
        assert_eq!(s.median_item_support, 2); // item 2
        assert!((s.density - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn report_contains_key_numbers() {
        let db = TransactionDb::new(vec![vec![n(1)], vec![n(1), n(2)]]).unwrap();
        let r = DbStats::compute(&db).report();
        assert!(r.contains("transactions: 2"));
        assert!(r.contains("distinct items: 2"));
    }

    #[test]
    fn level_stats_shrink_with_depth() {
        // Deeper levels have more distinct nodes and lower mean support —
        // the premise behind decreasing per-level minimum supports.
        let tax = Taxonomy::uniform(2, 3, 2).unwrap();
        let leaves = tax.leaves().to_vec();
        let rows: Vec<Vec<NodeId>> = (0..30)
            .map(|i| vec![leaves[i % leaves.len()], leaves[(i + 1) % leaves.len()]])
            .collect();
        let db = TransactionDb::new(rows).unwrap();
        let ls = level_stats(&db, &tax);
        assert_eq!(ls.len(), 2);
        assert!(ls[0].distinct_nodes <= ls[1].distinct_nodes);
        assert!(ls[0].mean_rel_support >= ls[1].mean_rel_support);
        assert!(ls[0].level == 1 && ls[1].level == 2);
    }

    #[test]
    fn level_stats_respects_rebalanced_trees() {
        let tax = Taxonomy::from_edges(
            [("a", ""), ("deep", "a"), ("leaf", "deep"), ("b", "")],
            RebalancePolicy::LeafCopy,
        )
        .unwrap();
        let leaf = tax.node_by_name("leaf").unwrap();
        let b_leaf = tax.node_by_name("b#2").unwrap(); // b padded twice
        let db = TransactionDb::new(vec![vec![leaf, b_leaf], vec![leaf]]).unwrap();
        db.validate_against(&tax).unwrap();
        let ls = level_stats(&db, &tax);
        assert_eq!(ls.len(), 3);
        assert_eq!(ls[0].distinct_nodes, 2); // a and b
    }
}
