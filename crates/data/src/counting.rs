//! Support-counting engines.
//!
//! The miner asks one question per search-table cell: *what are the supports
//! of this batch of candidate `(h,k)`-itemsets?* Two engines answer it:
//!
//! * [`TidsetCounter`] — vertical counting: per-item sorted tid-lists,
//!   candidate support = size of the k-way intersection. The default; fast
//!   at laptop scale.
//! * [`ScanCounter`] — horizontal counting: one sequential pass over the
//!   (projected) transactions per batch, testing candidates grouped by their
//!   first item. This models the paper's disk-scan counting and its scan
//!   statistics.
//!
//! Both are deterministic and produce identical counts (property-tested);
//! they differ only in complexity profile, which the ablation bench
//! (`bench_counting`) measures.

use crate::itemset::Itemset;
use crate::projection::MultiLevelView;
use crate::tidset::intersect_size_many;
use flipper_taxonomy::NodeId;
use std::collections::HashMap;

/// Counters accumulate work statistics so experiments can report
/// hardware-independent costs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterStats {
    /// Number of full passes over the (projected) database.
    pub db_scans: u64,
    /// Number of candidate-in-transaction subset tests (scan engine).
    pub subset_tests: u64,
    /// Number of tid-list intersections (tidset engine).
    pub intersections: u64,
    /// Total candidates counted.
    pub candidates_counted: u64,
}

/// A batch support oracle over one multi-level view.
pub trait SupportCounter {
    /// Number of transactions `N` (identical at every level).
    fn num_transactions(&self) -> u64;

    /// Support of a single node at level `h`.
    fn item_support(&self, h: usize, item: NodeId) -> u64;

    /// Nodes present (support > 0) at level `h`, ascending by id.
    fn present_items(&self, h: usize) -> &[NodeId];

    /// Supports of `candidates` (each a sorted itemset of level-`h` nodes),
    /// in input order.
    fn count_batch(&mut self, h: usize, candidates: &[Itemset]) -> Vec<u64>;

    /// Work statistics accumulated so far.
    fn stats(&self) -> CounterStats;

    /// Descriptive engine name for reports.
    fn engine_name(&self) -> &'static str;
}

/// Vertical (tid-list intersection) counting engine.
pub struct TidsetCounter<'v> {
    view: &'v MultiLevelView,
    stats: CounterStats,
}

impl<'v> TidsetCounter<'v> {
    /// Create a counter over `view`.
    pub fn new(view: &'v MultiLevelView) -> Self {
        TidsetCounter {
            view,
            stats: CounterStats::default(),
        }
    }
}

impl SupportCounter for TidsetCounter<'_> {
    fn num_transactions(&self) -> u64 {
        self.view.num_transactions() as u64
    }

    fn item_support(&self, h: usize, item: NodeId) -> u64 {
        self.view.level(h).item_support(item)
    }

    fn present_items(&self, h: usize) -> &[NodeId] {
        self.view.level(h).present_items()
    }

    fn count_batch(&mut self, h: usize, candidates: &[Itemset]) -> Vec<u64> {
        let lv = self.view.level(h);
        self.stats.candidates_counted += candidates.len() as u64;
        candidates
            .iter()
            .map(|c| {
                let lists: Vec<&[u32]> = c.items().iter().map(|&it| lv.tidset(it)).collect();
                self.stats.intersections += lists.len().saturating_sub(1) as u64;
                intersect_size_many(&lists)
            })
            .collect()
    }

    fn stats(&self) -> CounterStats {
        self.stats
    }

    fn engine_name(&self) -> &'static str {
        "tidset"
    }
}

/// Horizontal (sequential scan) counting engine, modeling the paper's
/// disk-resident counting: each batch costs one pass over the level's
/// transactions.
pub struct ScanCounter<'v> {
    view: &'v MultiLevelView,
    stats: CounterStats,
}

impl<'v> ScanCounter<'v> {
    /// Create a counter over `view`.
    pub fn new(view: &'v MultiLevelView) -> Self {
        ScanCounter {
            view,
            stats: CounterStats::default(),
        }
    }
}

impl SupportCounter for ScanCounter<'_> {
    fn num_transactions(&self) -> u64 {
        self.view.num_transactions() as u64
    }

    fn item_support(&self, h: usize, item: NodeId) -> u64 {
        self.view.level(h).item_support(item)
    }

    fn present_items(&self, h: usize) -> &[NodeId] {
        self.view.level(h).present_items()
    }

    fn count_batch(&mut self, h: usize, candidates: &[Itemset]) -> Vec<u64> {
        if candidates.is_empty() {
            return Vec::new();
        }
        let lv = self.view.level(h);
        self.stats.db_scans += 1;
        self.stats.candidates_counted += candidates.len() as u64;

        // Group candidate indices by first (smallest) item, so a transaction
        // only tests candidates whose first item it actually contains.
        let mut by_first: HashMap<NodeId, Vec<usize>> = HashMap::new();
        for (i, c) in candidates.iter().enumerate() {
            let first = *c.items().first().expect("candidates must be non-empty");
            by_first.entry(first).or_default().push(i);
        }
        let mut counts = vec![0u64; candidates.len()];
        for txn in lv.transactions() {
            for &item in txn {
                if let Some(idxs) = by_first.get(&item) {
                    for &i in idxs {
                        self.stats.subset_tests += 1;
                        if crate::itemset::is_sorted_subset(candidates[i].items(), txn) {
                            counts[i] += 1;
                        }
                    }
                }
            }
        }
        counts
    }

    fn stats(&self) -> CounterStats {
        self.stats
    }

    fn engine_name(&self) -> &'static str {
        "scan"
    }
}

/// Which counting engine to instantiate — part of the miner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CountingEngine {
    /// Vertical tid-list intersection (default).
    #[default]
    Tidset,
    /// Horizontal sequential scan (models the paper's setup).
    Scan,
    /// Hybrid dense-bitmap / sparse-tidlist engine (see [`crate::BitsetCounter`]).
    Bitset,
}

impl CountingEngine {
    /// Instantiate the chosen engine over `view`.
    pub fn make<'v>(self, view: &'v MultiLevelView) -> Box<dyn SupportCounter + 'v> {
        match self {
            CountingEngine::Tidset => Box::new(TidsetCounter::new(view)),
            CountingEngine::Scan => Box::new(ScanCounter::new(view)),
            CountingEngine::Bitset => Box::new(crate::bitset::BitsetCounter::new(view)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::TransactionDb;
    use crate::rng::{Rng, Xoshiro256pp};
    use flipper_taxonomy::{RebalancePolicy, Taxonomy};

    fn toy() -> (Taxonomy, TransactionDb) {
        let tax = Taxonomy::from_edges(
            [
                ("a", ""),
                ("b", ""),
                ("a1", "a"),
                ("a2", "a"),
                ("b1", "b"),
                ("b2", "b"),
                ("a11", "a1"),
                ("a12", "a1"),
                ("a21", "a2"),
                ("a22", "a2"),
                ("b11", "b1"),
                ("b12", "b1"),
                ("b21", "b2"),
                ("b22", "b2"),
            ],
            RebalancePolicy::RequireBalanced,
        )
        .unwrap();
        let g = |s: &str| tax.node_by_name(s).unwrap();
        let db = TransactionDb::new(vec![
            vec![g("a11"), g("a22"), g("b11"), g("b22")],
            vec![g("a11"), g("a21"), g("b11")],
            vec![g("a12"), g("a21")],
            vec![g("a12"), g("a22"), g("b21")],
            vec![g("a12"), g("a22"), g("b21")],
            vec![g("a12"), g("a21"), g("b22")],
            vec![g("a21"), g("b12")],
            vec![g("b12"), g("b21"), g("b22")],
            vec![g("b12"), g("b21")],
            vec![g("a22"), g("b12"), g("b22")],
        ])
        .unwrap();
        (tax, db)
    }

    #[test]
    fn both_engines_count_the_toy_example() {
        let (tax, db) = toy();
        let view = MultiLevelView::build(&db, &tax);
        let g = |s: &str| tax.node_by_name(s).unwrap();
        // The paper's flipping pattern {a11, b11}: sup=2 at leaf level;
        // {a1, b1} sup=2 at level 2; {a, b} sup=7 at level 1.
        let cases = [
            (3usize, Itemset::pair(g("a11"), g("b11")), 2u64),
            (2, Itemset::pair(g("a1"), g("b1")), 2),
            (1, Itemset::pair(g("a"), g("b")), 7),
        ];
        for engine in [CountingEngine::Tidset, CountingEngine::Scan] {
            let mut c = engine.make(&view);
            for (h, set, expect) in cases.iter() {
                let got = c.count_batch(*h, std::slice::from_ref(set));
                assert_eq!(got, vec![*expect], "{} level {h} {set}", c.engine_name());
            }
        }
    }

    #[test]
    fn batch_order_is_preserved() {
        let (tax, db) = toy();
        let view = MultiLevelView::build(&db, &tax);
        let g = |s: &str| tax.node_by_name(s).unwrap();
        let batch = vec![
            Itemset::pair(g("a12"), g("a22")),
            Itemset::pair(g("a11"), g("b11")),
            Itemset::pair(g("b21"), g("b22")),
        ];
        let mut c = TidsetCounter::new(&view);
        assert_eq!(c.count_batch(3, &batch), vec![2, 2, 1]);
        let mut c = ScanCounter::new(&view);
        assert_eq!(c.count_batch(3, &batch), vec![2, 2, 1]);
    }

    #[test]
    fn stats_accumulate() {
        let (tax, db) = toy();
        let view = MultiLevelView::build(&db, &tax);
        let g = |s: &str| tax.node_by_name(s).unwrap();
        let batch = vec![Itemset::pair(g("a11"), g("b11"))];
        let mut sc = ScanCounter::new(&view);
        sc.count_batch(3, &batch);
        sc.count_batch(3, &batch);
        assert_eq!(sc.stats().db_scans, 2);
        assert_eq!(sc.stats().candidates_counted, 2);
        assert!(sc.stats().subset_tests > 0);
        let mut tc = TidsetCounter::new(&view);
        tc.count_batch(3, &batch);
        assert_eq!(tc.stats().intersections, 1);
        assert_eq!(tc.stats().db_scans, 0);
        // Empty batches cost a scan counter nothing.
        let before = sc.stats();
        sc.count_batch(3, &[]);
        assert_eq!(sc.stats(), before);
    }

    #[test]
    fn item_queries_delegate_to_view() {
        let (tax, db) = toy();
        let view = MultiLevelView::build(&db, &tax);
        let c = TidsetCounter::new(&view);
        let a = tax.node_by_name("a").unwrap();
        assert_eq!(c.item_support(1, a), 8);
        assert_eq!(c.num_transactions(), 10);
        assert_eq!(c.present_items(1).len(), 2);
    }

    #[test]
    fn engine_names() {
        let (tax, db) = toy();
        let view = MultiLevelView::build(&db, &tax);
        assert_eq!(CountingEngine::Tidset.make(&view).engine_name(), "tidset");
        assert_eq!(CountingEngine::Scan.make(&view).engine_name(), "scan");
    }

    /// Random DBs over a uniform taxonomy: both engines must agree with the
    /// naive reference count for random candidate itemsets at every level.
    #[test]
    fn engines_agree_with_reference_on_random_dbs() {
        let tax = Taxonomy::uniform(3, 2, 3).unwrap();
        let leaves = tax.leaves().to_vec();
        let mut rng = Xoshiro256pp::seed_from_u64(42);
        for _ in 0..10 {
            let rows: Vec<Vec<NodeId>> = (0..50)
                .map(|_| {
                    let w = rng.gen_range(1..=5);
                    (0..w)
                        .map(|_| leaves[rng.gen_range(0..leaves.len())])
                        .collect()
                })
                .collect();
            let db = TransactionDb::new(rows).unwrap();
            let view = MultiLevelView::build(&db, &tax);
            for h in 1..=3 {
                let nodes = tax.nodes_at_level(h).unwrap();
                let mut cands = Vec::new();
                for i in 0..nodes.len().min(4) {
                    for j in (i + 1)..nodes.len().min(5) {
                        cands.push(Itemset::pair(nodes[i], nodes[j]));
                    }
                }
                let mut tc = TidsetCounter::new(&view);
                let mut sc = ScanCounter::new(&view);
                let t = tc.count_batch(h, &cands);
                let s = sc.count_batch(h, &cands);
                assert_eq!(t, s, "engines disagree at level {h}");
                // Reference: project and scan.
                for (c, &sup) in cands.iter().zip(&t) {
                    let reference = view
                        .level(h)
                        .transactions()
                        .filter(|txn| c.items().iter().all(|it| txn.contains(it)))
                        .count() as u64;
                    assert_eq!(sup, reference, "level {h} {c}");
                }
            }
        }
    }

    /// Support of any pair is bounded by the min of item supports, and
    /// monotone under generalization (an ancestor pair's support
    /// dominates the leaf pair's support).
    ///
    /// Ported from a 256-case proptest drawing `seed in 0u64..500`; a fixed
    /// sweep of 256 seeds keeps the case count deterministically. (The
    /// retired `prop_assume!(p0 != p1)` is now an assert: the first and last
    /// leaves of a 2-root uniform taxonomy always sit under different roots.)
    #[test]
    fn generalization_monotonicity() {
        for seed in 0..256u64 {
            let tax = Taxonomy::uniform(2, 2, 2).unwrap();
            let leaves = tax.leaves().to_vec();
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            let rows: Vec<Vec<NodeId>> = (0..30)
                .map(|_| {
                    let w = rng.gen_range(1..=4);
                    (0..w).map(|_| leaves[rng.gen_range(0..leaves.len())]).collect()
                })
                .collect();
            let db = TransactionDb::new(rows).unwrap();
            let view = MultiLevelView::build(&db, &tax);
            let mut c = TidsetCounter::new(&view);
            // A cross-category leaf pair and its level-1 generalization.
            let l0 = leaves[0];
            let l1 = *leaves.last().unwrap();
            let p0 = tax.ancestor_at_level(l0, 1).unwrap();
            let p1 = tax.ancestor_at_level(l1, 1).unwrap();
            assert_ne!(p0, p1, "cross-root leaves must generalize differently");
            let leaf_sup = c.count_batch(2, &[Itemset::pair(l0, l1)])[0];
            let gen_sup = c.count_batch(1, &[Itemset::pair(p0, p1)])[0];
            assert!(gen_sup >= leaf_sup, "seed {seed}");
            assert!(leaf_sup <= view.level(2).item_support(l0), "seed {seed}");
        }
    }
}
