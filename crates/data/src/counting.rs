//! Support-counting engines and the sharded execution layer over them.
//!
//! The miner asks one question per search-table cell: *what are the supports
//! of this batch of candidate `(h,k)`-itemsets?* Three engines answer it:
//!
//! * [`TidsetCounter`] — vertical counting: per-item sorted tid-lists,
//!   candidate support = size of the k-way intersection. The default; fast
//!   at laptop scale.
//! * [`ScanCounter`] — horizontal counting: one sequential pass over the
//!   (projected) transactions per batch, testing candidates grouped by their
//!   first item. This models the paper's disk-scan counting and its scan
//!   statistics.
//! * [`crate::BitsetCounter`] — hybrid dense-bitmap / sparse-tidlist
//!   counting for high-density levels.
//!
//! [`CountingEngine::Auto`] measures per-level density and picks one of the
//! three per level (see [`crate::AutoCounter`]).
//!
//! All engines are deterministic and produce identical counts
//! (property-tested); they differ only in complexity profile, which the
//! benches measure.
//!
//! # Prefix-group kernels
//!
//! The miner hands every cell a **sorted, deduplicated** candidate batch,
//! so candidates sharing their `(k−1)`-prefix are adjacent. The vertical
//! engines exploit that Eclat-style instead of re-intersecting every
//! candidate's full k-way tid-lists from scratch: [`prefix_groups`] splits a
//! batch into runs of equal `(k−1)`-prefix, the group's prefix intersection
//! is materialized **once** into reusable double-buffered scratch, and each
//! member is then answered by a single size-only (galloping) intersection of
//! that prefix with the member's last tid-list. Nothing on the hot path
//! allocates per candidate. [`CounterStats::prefix_reuses`] counts the
//! members answered from a cached prefix, so benches can report the reuse
//! rate; [`naive_tidset_counts`] keeps the pre-cache per-candidate kernel
//! around as the differential-testing and benchmarking reference.
//!
//! # Sharding
//!
//! Counting a batch is embarrassingly parallel across candidates, so the
//! trait is split into an immutable, shard-friendly core
//! ([`SupportCounter::count_shard`]) and an explicit stats fold
//! ([`SupportCounter::merge_stats`] via [`CounterStats::merge`]).
//! [`SupportCounter::count_batch_sharded`] chunks a batch over a scoped thread pool
//! ([`crate::exec`]) and folds the per-shard stats **in shard order**. The
//! chunks split only at prefix-group boundaries
//! ([`crate::exec::map_group_chunks`]), so prefix reuse survives parallelism
//! and a sharded run reports bit-identical counts *and stats* regardless of
//! thread count.

use crate::cache::{CachedPrefix, CellCache, PrefixCache};
use crate::exec;
use crate::itemset::Itemset;
use crate::projection::{LevelView, MultiLevelView};
use crate::tidset::{intersect_into, intersect_size, intersect_size_many};
use flipper_taxonomy::NodeId;
use std::collections::HashMap;
use std::ops::Range;

/// Counters accumulate work statistics so experiments can report
/// hardware-independent costs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterStats {
    /// Number of logical passes over the (projected) database. Charged once
    /// per non-empty batch by the scan engine, independent of sharding.
    pub db_scans: u64,
    /// Number of candidate-in-transaction subset tests (scan engine).
    pub subset_tests: u64,
    /// Number of pairwise tid-list/bitmap intersection operations actually
    /// performed (tidset/bitset engines). With prefix-group kernels this is
    /// *less* than the naive `Σ (k−1)` per candidate — the gap is the work
    /// the prefix cache saved.
    pub intersections: u64,
    /// Total candidates counted.
    pub candidates_counted: u64,
    /// Candidates answered from a cached `(k−1)`-prefix intersection
    /// (members of a `k ≥ 3` prefix group beyond its first). Shard-invariant
    /// by construction: sharding never splits a prefix group.
    pub prefix_reuses: u64,
}

impl CounterStats {
    /// Fold `other` into `self`. All counters are sums, so the merge is
    /// associative and commutative with [`CounterStats::default`] as the
    /// identity — sharded runs can fold per-shard stats in any grouping and
    /// still report totals identical to a sequential run.
    pub fn merge(&mut self, other: &CounterStats) {
        self.db_scans += other.db_scans;
        self.subset_tests += other.subset_tests;
        self.intersections += other.intersections;
        self.candidates_counted += other.candidates_counted;
        self.prefix_reuses += other.prefix_reuses;
    }
}

/// A batch support oracle over one multi-level view.
///
/// Implementors provide the immutable shard core ([`Self::count_shard`]) and
/// a stats sink ([`Self::merge_stats`]); `count_batch` and the parallel
/// [`Self::count_batch_sharded`] wrapper are derived from those. The `Sync` bound
/// lets one counter serve many shards concurrently.
pub trait SupportCounter: Sync {
    /// Number of transactions `N` (identical at every level).
    fn num_transactions(&self) -> u64;

    /// Support of a single node at level `h`.
    fn item_support(&self, h: usize, item: NodeId) -> u64;

    /// Nodes present (support > 0) at level `h`, ascending by id.
    fn present_items(&self, h: usize) -> &[NodeId];

    /// Shard-friendly core: supports of `candidates` (each a sorted itemset
    /// of level-`h` nodes) in input order, plus the per-candidate work stats
    /// for exactly this shard. Immutable, so shards can run concurrently.
    fn count_shard(&self, h: usize, candidates: &[Itemset]) -> (Vec<u64>, CounterStats);

    /// Per-batch overhead stats charged once per batch regardless of how
    /// many shards served it (e.g. the scan engine's one logical database
    /// pass per non-empty batch).
    fn batch_stats(&self, _h: usize, _candidates: &[Itemset]) -> CounterStats {
        CounterStats::default()
    }

    /// Fold a stats delta into the accumulated totals.
    fn merge_stats(&mut self, delta: &CounterStats);

    /// Supports of `candidates`, in input order, accumulating stats.
    fn count_batch(&mut self, h: usize, candidates: &[Itemset]) -> Vec<u64> {
        let (counts, mut delta) = self.count_shard(h, candidates);
        delta.merge(&self.batch_stats(h, candidates));
        self.merge_stats(&delta);
        counts
    }

    /// Count a batch sharded over `threads` scoped workers (`0` =
    /// auto-detect, `1` = inline). Counts and stats are bit-identical to
    /// [`Self::count_batch`] for every thread count.
    ///
    /// The default shards the **candidates** into contiguous chunks that
    /// split only at prefix-group boundaries and folds the per-shard stats
    /// in shard order — right for engines whose per-group cost is
    /// independent (tidset, bitset): a prefix group is never torn across
    /// two workers, so prefix reuse (and its statistics) survive
    /// parallelism exactly. Engines with a per-batch pass over the data
    /// override it (the scan engine shards the **transactions** instead, so
    /// the pass is split rather than duplicated per worker).
    fn count_batch_sharded(
        &mut self,
        h: usize,
        candidates: &[Itemset],
        threads: usize,
    ) -> Vec<u64> {
        group_sharded(self, h, candidates, threads)
    }

    /// [`Self::count_batch_sharded`] with a cross-cell prefix cache: prefix
    /// intersections materialized by earlier batches (typically the
    /// `(h, k−1)` cell of the same mining run) are reused instead of being
    /// rebuilt from level singletons.
    ///
    /// Counts **and reported statistics** are bit-identical to the uncached
    /// path at every thread count and cache budget — the cached kernels
    /// charge the work an uncached run would have performed, so
    /// [`CounterStats`] stays a pure function of `(candidates, data)`. The
    /// default ignores the cache (right for engines with no per-group
    /// prefix state, like the scan engine); the vertical engines override
    /// it.
    fn count_batch_cached(
        &mut self,
        h: usize,
        candidates: &[Itemset],
        threads: usize,
        cache: &mut CellCache,
    ) -> Vec<u64> {
        let _ = cache;
        self.count_batch_sharded(h, candidates, threads)
    }

    /// Work statistics accumulated so far.
    fn stats(&self) -> CounterStats;

    /// Descriptive engine name for reports.
    fn engine_name(&self) -> &'static str;
}

/// Batches smaller than this are counted inline: spawning scoped workers
/// costs more than counting a handful of candidates.
pub const MIN_SHARD_CANDIDATES: usize = 64;

/// Transaction-sharded scans over databases smaller than this run inline
/// (tuned independently of the candidate-batch cutoff above).
pub const MIN_SHARD_TXNS: usize = 64;

/// Whether two candidates belong to the same prefix group: equal size
/// `k ≥ 2` and identical first `k−1` items. In the sorted, deduplicated
/// batches the miner produces, groups are exactly the runs of adjacent
/// candidates for which this holds.
pub fn same_prefix_group(a: &Itemset, b: &Itemset) -> bool {
    let k = a.len();
    k >= 2 && b.len() == k && a.items()[..k - 1] == b.items()[..k - 1]
}

/// Split `candidates` into maximal runs of adjacent same-prefix candidates
/// ([`same_prefix_group`]); candidates with `k < 2` form singleton groups.
/// Works on any candidate order — an unsorted batch just yields smaller
/// groups (less reuse, same counts).
pub fn prefix_groups(candidates: &[Itemset]) -> impl Iterator<Item = Range<usize>> + '_ {
    let mut start = 0usize;
    std::iter::from_fn(move || {
        if start >= candidates.len() {
            return None;
        }
        let mut end = start + 1;
        while end < candidates.len() && same_prefix_group(&candidates[end - 1], &candidates[end]) {
            end += 1;
        }
        let r = start..end;
        start = end;
        Some(r)
    })
}

/// Reusable double-buffered scratch for materializing `(k−1)`-prefix
/// intersections: one pair of tid buffers swapped per intersection step,
/// plus the shortest-first evaluation order. Allocated once per shard and
/// reused across every group — the hot counting loop never allocates per
/// candidate.
#[derive(Default)]
struct PrefixScratch {
    acc: Vec<u32>,
    next: Vec<u32>,
    order: Vec<NodeId>,
}

impl PrefixScratch {
    /// Intersect the tid-lists of `prefix_items` (≥ 2 items) into the
    /// scratch accumulator, shortest list first, stopping early once the
    /// running intersection empties. Returns the materialized prefix and
    /// bumps `ops` by the number of pairwise intersections performed.
    fn materialize<'s>(
        &'s mut self,
        lv: &LevelView,
        prefix_items: &[NodeId],
        ops: &mut u64,
    ) -> &'s [u32] {
        debug_assert!(prefix_items.len() >= 2);
        self.order.clear();
        self.order.extend_from_slice(prefix_items);
        self.order.sort_unstable_by_key(|&it| lv.tidset(it).len());
        intersect_into(
            lv.tidset(self.order[0]),
            lv.tidset(self.order[1]),
            &mut self.acc,
        );
        *ops += 1;
        for &it in &self.order[2..] {
            if self.acc.is_empty() {
                break;
            }
            intersect_into(&self.acc, lv.tidset(it), &mut self.next);
            std::mem::swap(&mut self.acc, &mut self.next);
            *ops += 1;
        }
        &self.acc
    }
}

/// Reference kernel: the naive per-candidate k-way intersection the prefix
/// cache replaced — every candidate collects its full tid-lists and
/// intersects them from scratch. Kept as the ground truth for the
/// equivalence sweeps and as the baseline the `quickbench` kernel rows
/// measure the prefix-cached kernel against.
pub fn naive_tidset_counts(view: &MultiLevelView, h: usize, candidates: &[Itemset]) -> Vec<u64> {
    let lv = view.level(h);
    candidates
        .iter()
        .map(|c| {
            let lists: Vec<&[u32]> = c.items().iter().map(|&it| lv.tidset(it)).collect();
            intersect_size_many(&lists)
        })
        .collect()
}

/// The group-boundary sharding strategy backing the trait's default
/// [`SupportCounter::count_batch_sharded`]; also reused by engines that
/// dispatch per level ([`crate::AutoCounter`]). Chunks split only between
/// prefix groups ([`crate::exec::map_group_chunks`]), so the grouped
/// kernels do identical work — and report identical stats — at every
/// thread count.
pub(crate) fn group_sharded<C: SupportCounter + ?Sized>(
    counter: &mut C,
    h: usize,
    candidates: &[Itemset],
    threads: usize,
) -> Vec<u64> {
    let threads = exec::effective_threads(threads);
    if threads <= 1 || candidates.len() < MIN_SHARD_CANDIDATES {
        return counter.count_batch(h, candidates);
    }
    let shards = {
        let shared = &*counter;
        exec::map_group_chunks(threads, candidates, same_prefix_group, |chunk| {
            shared.count_shard(h, chunk)
        })
    };
    let mut counts = Vec::with_capacity(candidates.len());
    let mut delta = CounterStats::default();
    for (shard_counts, shard_stats) in shards {
        counts.extend(shard_counts);
        delta.merge(&shard_stats);
    }
    delta.merge(&counter.batch_stats(h, candidates));
    counter.merge_stats(&delta);
    counts
}

/// The sharded driver behind the vertical engines'
/// [`SupportCounter::count_batch_cached`]: like [`group_sharded`], but each
/// worker slot runs `shard_fn` against its own [`PrefixCache`]
/// ([`CellCache::shards_mut`] / [`crate::exec::map_group_chunks_with`]).
/// Chunk `i` always pairs with cache slot `i`, so the cache stays
/// merge-free and warm across batches without any cross-thread state.
/// A disabled cache falls straight through to the uncached sharded path.
pub(crate) fn cached_group_sharded<C, F>(
    counter: &mut C,
    h: usize,
    candidates: &[Itemset],
    threads: usize,
    cache: &mut CellCache,
    shard_fn: F,
) -> Vec<u64>
where
    C: SupportCounter + ?Sized,
    F: Fn(&C, usize, &[Itemset], &mut PrefixCache) -> (Vec<u64>, CounterStats) + Sync,
{
    if !cache.enabled() {
        return counter.count_batch_sharded(h, candidates, threads);
    }
    let threads = exec::effective_threads(threads);
    if threads <= 1 || candidates.len() < MIN_SHARD_CANDIDATES {
        let (counts, mut delta) = shard_fn(counter, h, candidates, cache.shard());
        delta.merge(&counter.batch_stats(h, candidates));
        counter.merge_stats(&delta);
        return counts;
    }
    let shards = {
        let shared = &*counter;
        exec::map_group_chunks_with(
            threads,
            candidates,
            same_prefix_group,
            cache.shards_mut(threads),
            |chunk, shard| shard_fn(shared, h, chunk, shard),
        )
    };
    let mut counts = Vec::with_capacity(candidates.len());
    let mut delta = CounterStats::default();
    for (shard_counts, shard_stats) in shards {
        counts.extend(shard_counts);
        delta.merge(&shard_stats);
    }
    delta.merge(&counter.batch_stats(h, candidates));
    counter.merge_stats(&delta);
    counts
}

/// The transaction-chunked sharding strategy for grouped-scan counting over
/// `lv`: one split pass instead of one full pass per worker. Per-range
/// partial counts sum element-wise and subset tests sum across ranges, so
/// counts and stats stay bit-identical to the sequential pass.
pub(crate) fn scan_sharded<C: SupportCounter + ?Sized>(
    counter: &mut C,
    lv: &crate::projection::LevelView,
    h: usize,
    candidates: &[Itemset],
    threads: usize,
) -> Vec<u64> {
    let threads = exec::effective_threads(threads);
    if threads <= 1 || candidates.is_empty() || lv.len() < MIN_SHARD_TXNS {
        return counter.count_batch(h, candidates);
    }
    let by_first = group_by_first(candidates);
    let shards = exec::map_chunks(threads, lv.len(), |range| {
        scan_txn_range(lv, candidates, &by_first, range)
    });
    let mut counts = vec![0u64; candidates.len()];
    let mut delta = CounterStats {
        candidates_counted: candidates.len() as u64,
        ..CounterStats::default()
    };
    for (partial, subset_tests) in shards {
        for (total, c) in counts.iter_mut().zip(partial) {
            *total += c;
        }
        delta.subset_tests += subset_tests;
    }
    delta.merge(&counter.batch_stats(h, candidates));
    counter.merge_stats(&delta);
    counts
}

/// Vertical (tid-list intersection) counting engine.
pub struct TidsetCounter<'v> {
    view: &'v MultiLevelView,
    stats: CounterStats,
}

impl<'v> TidsetCounter<'v> {
    /// Create a counter over `view`.
    pub fn new(view: &'v MultiLevelView) -> Self {
        TidsetCounter {
            view,
            stats: CounterStats::default(),
        }
    }

    /// [`SupportCounter::count_shard`] with a cross-cell prefix cache.
    ///
    /// Per `k ≥ 3` group the kernel resolves the `(k−1)`-prefix in cost
    /// order: an **exact hit** copies the cached intersection; a **parent
    /// hit** (`k ≥ 4`) extends the cached `(k−2)`-prefix — the one the
    /// `(h, k−1)` cell materialized — by a single intersection with the
    /// last prefix item; a miss falls back to the full shortest-first
    /// rebuild and caches the (non-empty) result for the next batch.
    ///
    /// Statistics are charged *as if uncached*, exactly: a non-empty final
    /// prefix means every shortest-first intermediate is a non-empty
    /// superset, so the uncached rebuild performs exactly `k−2`
    /// intersections with no early exit — which is what both hit paths
    /// charge. A parent hit whose extension comes up empty is discarded
    /// and the full rebuild runs instead (its early-exit op count depends
    /// on list-length order, so only the rebuild itself can charge it);
    /// empty prefixes are likewise never cached. Counts and stats are
    /// therefore bit-identical to [`SupportCounter::count_shard`] at every
    /// budget and thread count.
    pub fn count_shard_cached(
        &self,
        h: usize,
        candidates: &[Itemset],
        cache: &mut PrefixCache,
    ) -> (Vec<u64>, CounterStats) {
        if !cache.enabled() {
            return self.count_shard(h, candidates);
        }
        let lv = self.view.level(h);
        let mut stats = CounterStats {
            candidates_counted: candidates.len() as u64,
            ..CounterStats::default()
        };
        let mut counts = vec![0u64; candidates.len()];
        let mut scratch = PrefixScratch::default();
        for group in prefix_groups(candidates) {
            let items = candidates[group.start].items();
            let k = items.len();
            if k == 0 {
                continue; // empty itemsets count 0 transactions
            }
            if k == 1 {
                for i in group {
                    counts[i] = lv.tidset(candidates[i].items()[0]).len() as u64;
                }
                continue;
            }
            if k == 2 {
                let prefix = lv.tidset(items[0]);
                if prefix.is_empty() {
                    continue;
                }
                for i in group {
                    stats.intersections += 1;
                    // lint:allow(panic-hygiene) group members are k >= 2 itemsets by the prefix-split precondition
                    let last = *candidates[i].items().last().expect("k >= 2");
                    counts[i] = intersect_size(prefix, lv.tidset(last));
                }
                continue;
            }
            stats.prefix_reuses += (group.len() - 1) as u64;
            let prefix_items = &items[..k - 1];
            // Exact hit: the prefix itself was materialized by an earlier
            // batch (cached entries are never empty).
            let exact = match cache.lookup(h, prefix_items) {
                Some(CachedPrefix::Tids(t)) => {
                    scratch.acc.clear();
                    scratch.acc.extend_from_slice(t);
                    true
                }
                _ => false,
            };
            let mut resolved = exact;
            if exact {
                cache.stats_mut().exact_hits += 1;
                stats.intersections += (k - 2) as u64;
            } else if k >= 4 {
                // Parent hit: extend the (k−2)-prefix the previous column
                // cached by one intersection with the last prefix item.
                let extended = match cache.lookup(h, &items[..k - 2]) {
                    Some(CachedPrefix::Tids(t)) => {
                        intersect_into(t, lv.tidset(items[k - 2]), &mut scratch.next);
                        true
                    }
                    _ => false,
                };
                if extended && !scratch.next.is_empty() {
                    std::mem::swap(&mut scratch.acc, &mut scratch.next);
                    cache.stats_mut().parent_hits += 1;
                    stats.intersections += (k - 2) as u64;
                    cache.insert(h, prefix_items, CachedPrefix::Tids(scratch.acc.clone()));
                    resolved = true;
                }
            }
            if !resolved {
                scratch.materialize(lv, prefix_items, &mut stats.intersections);
                if !scratch.acc.is_empty() {
                    cache.insert(h, prefix_items, CachedPrefix::Tids(scratch.acc.clone()));
                }
            }
            if scratch.acc.is_empty() {
                continue; // all members count 0; no further intersections
            }
            for i in group {
                stats.intersections += 1;
                // lint:allow(panic-hygiene) group members are k >= 2 itemsets by the prefix-split precondition
                let last = *candidates[i].items().last().expect("k >= 2");
                counts[i] = intersect_size(&scratch.acc, lv.tidset(last));
            }
        }
        (counts, stats)
    }
}

impl SupportCounter for TidsetCounter<'_> {
    fn num_transactions(&self) -> u64 {
        self.view.num_transactions() as u64
    }

    fn item_support(&self, h: usize, item: NodeId) -> u64 {
        self.view.level(h).item_support(item)
    }

    fn present_items(&self, h: usize) -> &[NodeId] {
        self.view.level(h).present_items()
    }

    /// Prefix-group kernel: per group of candidates sharing a
    /// `(k−1)`-prefix, materialize the prefix intersection once (borrowed
    /// directly from the view for `k = 2`, double-buffered scratch for
    /// `k ≥ 3`), then answer every member with one size-only galloping
    /// intersection against its last item's tid-list. No per-candidate
    /// allocation; `intersections` counts the pairwise intersections
    /// actually performed (members of an empty prefix cost none).
    fn count_shard(&self, h: usize, candidates: &[Itemset]) -> (Vec<u64>, CounterStats) {
        let lv = self.view.level(h);
        let mut stats = CounterStats {
            candidates_counted: candidates.len() as u64,
            ..CounterStats::default()
        };
        let mut counts = vec![0u64; candidates.len()];
        let mut scratch = PrefixScratch::default();
        for group in prefix_groups(candidates) {
            let items = candidates[group.start].items();
            let k = items.len();
            if k == 0 {
                continue; // empty itemsets count 0 transactions
            }
            if k == 1 {
                for i in group {
                    counts[i] = lv.tidset(candidates[i].items()[0]).len() as u64;
                }
                continue;
            }
            let prefix: &[u32] = if k == 2 {
                lv.tidset(items[0])
            } else {
                stats.prefix_reuses += (group.len() - 1) as u64;
                scratch.materialize(lv, &items[..k - 1], &mut stats.intersections)
            };
            if prefix.is_empty() {
                continue; // all members count 0; no further intersections
            }
            for i in group {
                stats.intersections += 1;
                // lint:allow(panic-hygiene) group members are k >= 2 itemsets by the prefix-split precondition
                let last = *candidates[i].items().last().expect("k >= 2");
                counts[i] = intersect_size(prefix, lv.tidset(last));
            }
        }
        (counts, stats)
    }

    fn count_batch_cached(
        &mut self,
        h: usize,
        candidates: &[Itemset],
        threads: usize,
        cache: &mut CellCache,
    ) -> Vec<u64> {
        cached_group_sharded(
            self,
            h,
            candidates,
            threads,
            cache,
            |c: &Self, h, chunk, shard| c.count_shard_cached(h, chunk, shard),
        )
    }

    fn merge_stats(&mut self, delta: &CounterStats) {
        self.stats.merge(delta);
    }

    fn stats(&self) -> CounterStats {
        self.stats
    }

    fn engine_name(&self) -> &'static str {
        "tidset"
    }
}

/// Horizontal (sequential scan) counting engine, modeling the paper's
/// disk-resident counting: each batch costs one logical pass over the
/// level's transactions.
pub struct ScanCounter<'v> {
    view: &'v MultiLevelView,
    stats: CounterStats,
}

impl<'v> ScanCounter<'v> {
    /// Create a counter over `view`.
    pub fn new(view: &'v MultiLevelView) -> Self {
        ScanCounter {
            view,
            stats: CounterStats::default(),
        }
    }
}

/// Group candidate indices by first (smallest) item, so a transaction only
/// tests candidates whose first item it actually contains.
pub(crate) fn group_by_first(candidates: &[Itemset]) -> HashMap<NodeId, Vec<usize>> {
    let mut by_first: HashMap<NodeId, Vec<usize>> = HashMap::new();
    for (i, c) in candidates.iter().enumerate() {
        // lint:allow(panic-hygiene) candidate generation never emits an empty itemset
        let first = *c.items().first().expect("candidates must be non-empty");
        by_first.entry(first).or_default().push(i);
    }
    by_first
}

/// The scan core over one transaction range: per-candidate counts within
/// the range plus the number of subset tests performed.
pub(crate) fn scan_txn_range(
    lv: &crate::projection::LevelView,
    candidates: &[Itemset],
    by_first: &HashMap<NodeId, Vec<usize>>,
    range: std::ops::Range<usize>,
) -> (Vec<u64>, u64) {
    let mut counts = vec![0u64; candidates.len()];
    let mut subset_tests = 0u64;
    for t in range {
        let txn = lv.transaction(t);
        for &item in txn {
            if let Some(idxs) = by_first.get(&item) {
                for &i in idxs {
                    subset_tests += 1;
                    if crate::itemset::is_sorted_subset(candidates[i].items(), txn) {
                        counts[i] += 1;
                    }
                }
            }
        }
    }
    (counts, subset_tests)
}

impl SupportCounter for ScanCounter<'_> {
    fn num_transactions(&self) -> u64 {
        self.view.num_transactions() as u64
    }

    fn item_support(&self, h: usize, item: NodeId) -> u64 {
        self.view.level(h).item_support(item)
    }

    fn present_items(&self, h: usize) -> &[NodeId] {
        self.view.level(h).present_items()
    }

    fn count_shard(&self, h: usize, candidates: &[Itemset]) -> (Vec<u64>, CounterStats) {
        if candidates.is_empty() {
            return (Vec::new(), CounterStats::default());
        }
        let lv = self.view.level(h);
        let by_first = group_by_first(candidates);
        let (counts, subset_tests) = scan_txn_range(lv, candidates, &by_first, 0..lv.len());
        let stats = CounterStats {
            candidates_counted: candidates.len() as u64,
            subset_tests,
            ..CounterStats::default()
        };
        (counts, stats)
    }

    fn batch_stats(&self, _h: usize, candidates: &[Itemset]) -> CounterStats {
        CounterStats {
            db_scans: u64::from(!candidates.is_empty()),
            ..CounterStats::default()
        }
    }

    /// The scan engine shards the **transactions**, not the candidates: a
    /// candidate-chunked shard would repeat the full database pass once per
    /// worker.
    fn count_batch_sharded(
        &mut self,
        h: usize,
        candidates: &[Itemset],
        threads: usize,
    ) -> Vec<u64> {
        let lv = self.view.level(h);
        scan_sharded(self, lv, h, candidates, threads)
    }

    fn merge_stats(&mut self, delta: &CounterStats) {
        self.stats.merge(delta);
    }

    fn stats(&self) -> CounterStats {
        self.stats
    }

    fn engine_name(&self) -> &'static str {
        "scan"
    }
}

/// Which counting engine to instantiate — part of the miner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CountingEngine {
    /// Vertical tid-list intersection (default).
    #[default]
    Tidset,
    /// Horizontal sequential scan (models the paper's setup).
    Scan,
    /// Hybrid dense-bitmap / sparse-tidlist engine (see [`crate::BitsetCounter`]).
    Bitset,
    /// Per-level auto-selection among the three from measured density (see
    /// [`crate::AutoCounter`]).
    Auto,
}

impl CountingEngine {
    /// Instantiate the chosen engine over `view`.
    pub fn make<'v>(self, view: &'v MultiLevelView) -> Box<dyn SupportCounter + 'v> {
        match self {
            CountingEngine::Tidset => Box::new(TidsetCounter::new(view)),
            CountingEngine::Scan => Box::new(ScanCounter::new(view)),
            CountingEngine::Bitset => Box::new(crate::bitset::BitsetCounter::new(view)),
            CountingEngine::Auto => Box::new(crate::auto::AutoCounter::new(view)),
        }
    }

    /// Parse an engine name as used by CLIs and benches.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "tidset" => Some(CountingEngine::Tidset),
            "scan" => Some(CountingEngine::Scan),
            "bitset" => Some(CountingEngine::Bitset),
            "auto" => Some(CountingEngine::Auto),
            _ => None,
        }
    }

    /// Stable short name, the inverse of [`parse`](CountingEngine::parse)
    /// — used in sweep labels and machine-readable reports, so it must not
    /// track incidental enum-variant renames.
    pub fn name(self) -> &'static str {
        match self {
            CountingEngine::Tidset => "tidset",
            CountingEngine::Scan => "scan",
            CountingEngine::Bitset => "bitset",
            CountingEngine::Auto => "auto",
        }
    }

    /// All concrete (non-auto) engines.
    pub const CONCRETE: [CountingEngine; 3] = [
        CountingEngine::Tidset,
        CountingEngine::Scan,
        CountingEngine::Bitset,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, Xoshiro256pp};
    use crate::transaction::TransactionDb;
    use flipper_taxonomy::{RebalancePolicy, Taxonomy};

    fn toy() -> (Taxonomy, TransactionDb) {
        let tax = Taxonomy::from_edges(
            [
                ("a", ""),
                ("b", ""),
                ("a1", "a"),
                ("a2", "a"),
                ("b1", "b"),
                ("b2", "b"),
                ("a11", "a1"),
                ("a12", "a1"),
                ("a21", "a2"),
                ("a22", "a2"),
                ("b11", "b1"),
                ("b12", "b1"),
                ("b21", "b2"),
                ("b22", "b2"),
            ],
            RebalancePolicy::RequireBalanced,
        )
        .unwrap();
        let g = |s: &str| tax.node_by_name(s).unwrap();
        let db = TransactionDb::new(vec![
            vec![g("a11"), g("a22"), g("b11"), g("b22")],
            vec![g("a11"), g("a21"), g("b11")],
            vec![g("a12"), g("a21")],
            vec![g("a12"), g("a22"), g("b21")],
            vec![g("a12"), g("a22"), g("b21")],
            vec![g("a12"), g("a21"), g("b22")],
            vec![g("a21"), g("b12")],
            vec![g("b12"), g("b21"), g("b22")],
            vec![g("b12"), g("b21")],
            vec![g("a22"), g("b12"), g("b22")],
        ])
        .unwrap();
        (tax, db)
    }

    #[test]
    fn all_engines_count_the_toy_example() {
        let (tax, db) = toy();
        let view = MultiLevelView::build(&db, &tax);
        let g = |s: &str| tax.node_by_name(s).unwrap();
        // The paper's flipping pattern {a11, b11}: sup=2 at leaf level;
        // {a1, b1} sup=2 at level 2; {a, b} sup=7 at level 1.
        let cases = [
            (3usize, Itemset::pair(g("a11"), g("b11")), 2u64),
            (2, Itemset::pair(g("a1"), g("b1")), 2),
            (1, Itemset::pair(g("a"), g("b")), 7),
        ];
        for engine in [
            CountingEngine::Tidset,
            CountingEngine::Scan,
            CountingEngine::Bitset,
            CountingEngine::Auto,
        ] {
            let mut c = engine.make(&view);
            for (h, set, expect) in cases.iter() {
                let got = c.count_batch(*h, std::slice::from_ref(set));
                assert_eq!(got, vec![*expect], "{} level {h} {set}", c.engine_name());
            }
        }
    }

    #[test]
    fn batch_order_is_preserved() {
        let (tax, db) = toy();
        let view = MultiLevelView::build(&db, &tax);
        let g = |s: &str| tax.node_by_name(s).unwrap();
        let batch = vec![
            Itemset::pair(g("a12"), g("a22")),
            Itemset::pair(g("a11"), g("b11")),
            Itemset::pair(g("b21"), g("b22")),
        ];
        let mut c = TidsetCounter::new(&view);
        assert_eq!(c.count_batch(3, &batch), vec![2, 2, 1]);
        let mut c = ScanCounter::new(&view);
        assert_eq!(c.count_batch(3, &batch), vec![2, 2, 1]);
    }

    #[test]
    fn stats_accumulate() {
        let (tax, db) = toy();
        let view = MultiLevelView::build(&db, &tax);
        let g = |s: &str| tax.node_by_name(s).unwrap();
        let batch = vec![Itemset::pair(g("a11"), g("b11"))];
        let mut sc = ScanCounter::new(&view);
        sc.count_batch(3, &batch);
        sc.count_batch(3, &batch);
        assert_eq!(sc.stats().db_scans, 2);
        assert_eq!(sc.stats().candidates_counted, 2);
        assert!(sc.stats().subset_tests > 0);
        let mut tc = TidsetCounter::new(&view);
        tc.count_batch(3, &batch);
        assert_eq!(tc.stats().intersections, 1);
        assert_eq!(tc.stats().db_scans, 0);
        // Empty batches cost a scan counter nothing.
        let before = sc.stats();
        sc.count_batch(3, &[]);
        assert_eq!(sc.stats(), before);
    }

    #[test]
    fn counter_stats_merge_is_associative_with_identity() {
        let a = CounterStats {
            db_scans: 1,
            subset_tests: 10,
            intersections: 3,
            candidates_counted: 7,
            prefix_reuses: 5,
        };
        let b = CounterStats {
            db_scans: 2,
            subset_tests: 5,
            intersections: 11,
            candidates_counted: 13,
            prefix_reuses: 0,
        };
        let c = CounterStats {
            db_scans: 4,
            subset_tests: 1,
            intersections: 0,
            candidates_counted: 2,
            prefix_reuses: 9,
        };
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left, right);
        // Identity.
        let mut with_id = a;
        with_id.merge(&CounterStats::default());
        assert_eq!(with_id, a);
        // Totals are sums.
        assert_eq!(left.db_scans, 7);
        assert_eq!(left.candidates_counted, 22);
        assert_eq!(left.prefix_reuses, 14);
    }

    /// Sharded counting is bit-identical to sequential counting — counts
    /// AND stats — for every engine and thread count.
    #[test]
    fn sharded_counting_matches_sequential() {
        let tax = Taxonomy::uniform(3, 3, 2).unwrap();
        let leaves = tax.leaves().to_vec();
        let mut rng = Xoshiro256pp::seed_from_u64(0x5AAD);
        let rows: Vec<Vec<NodeId>> = (0..150)
            .map(|_| {
                let w = rng.gen_range(1..=6);
                (0..w)
                    .map(|_| leaves[rng.gen_range(0..leaves.len())])
                    .collect()
            })
            .collect();
        let db = TransactionDb::new(rows).unwrap();
        let view = MultiLevelView::build(&db, &tax);
        // A batch well above MIN_SHARD_CANDIDATES.
        let nodes = tax.nodes_at_level(2).unwrap();
        let mut cands = Vec::new();
        for i in 0..nodes.len() {
            for j in (i + 1)..nodes.len() {
                cands.push(Itemset::pair(nodes[i], nodes[j]));
            }
        }
        while cands.len() < 4 * MIN_SHARD_CANDIDATES {
            let extra = cands.clone();
            cands.extend(extra);
        }
        for engine in [
            CountingEngine::Tidset,
            CountingEngine::Scan,
            CountingEngine::Bitset,
            CountingEngine::Auto,
        ] {
            let mut seq = engine.make(&view);
            let expect = seq.count_batch(2, &cands);
            for threads in [2usize, 3, 7] {
                let mut par = engine.make(&view);
                let got = par.count_batch_sharded(2, &cands, threads);
                assert_eq!(got, expect, "{} threads={threads}", par.engine_name());
                assert_eq!(
                    par.stats(),
                    seq.stats(),
                    "{} stats diverge at threads={threads}",
                    par.engine_name()
                );
            }
        }
    }

    #[test]
    fn sharded_small_batches_fall_back_inline() {
        let (tax, db) = toy();
        let view = MultiLevelView::build(&db, &tax);
        let g = |s: &str| tax.node_by_name(s).unwrap();
        let batch = vec![Itemset::pair(g("a11"), g("b11"))];
        let mut c = TidsetCounter::new(&view);
        assert_eq!(c.count_batch_sharded(3, &batch, 8), vec![2]);
        assert_eq!(c.stats().candidates_counted, 1);
        let empty: Vec<Itemset> = Vec::new();
        let mut sc = ScanCounter::new(&view);
        assert!(sc.count_batch_sharded(3, &empty, 8).is_empty());
        assert_eq!(sc.stats(), CounterStats::default());
    }

    #[test]
    fn prefix_groups_split_on_prefix_and_length() {
        let s = |v: &[usize]| Itemset::new(v.iter().map(|&i| NodeId::from_index(i)).collect());
        // Three k=3 candidates sharing {1,2}, one with prefix {1,3}, two
        // pairs with first item 7, one singleton.
        let batch = vec![
            s(&[1, 2, 4]),
            s(&[1, 2, 5]),
            s(&[1, 2, 9]),
            s(&[1, 3, 4]),
            s(&[7, 8]),
            s(&[7, 9]),
            s(&[11]),
        ];
        let groups: Vec<_> = prefix_groups(&batch).collect();
        assert_eq!(groups, vec![0..3, 3..4, 4..6, 6..7]);
        // Singleton k<2 groups never merge, even when "prefixes" agree.
        let singles = vec![s(&[1]), s(&[1]), s(&[2])];
        assert_eq!(prefix_groups(&singles).count(), 3);
        // Empty batch: no groups.
        assert_eq!(prefix_groups(&[]).count(), 0);
    }

    /// The grouped kernels agree with the naive per-candidate reference on
    /// batches with degenerate group shapes: all-same-prefix, all-distinct
    /// prefixes, k = 2, and mixed sizes.
    #[test]
    fn grouped_kernels_match_naive_on_degenerate_groups() {
        let tax = Taxonomy::uniform(3, 3, 2).unwrap();
        let leaves = tax.leaves().to_vec();
        let mut rng = Xoshiro256pp::seed_from_u64(0x9F0F);
        let rows: Vec<Vec<NodeId>> = (0..180)
            .map(|_| {
                let w = rng.gen_range(2..=7);
                (0..w)
                    .map(|_| leaves[rng.gen_range(0..leaves.len())])
                    .collect()
            })
            .collect();
        let db = TransactionDb::new(rows).unwrap();
        let view = MultiLevelView::build(&db, &tax);
        let nodes = tax.nodes_at_level(2).unwrap().to_vec();
        // All-same-prefix: {n0, n1, x} for every other x.
        let same_prefix: Vec<Itemset> = nodes[2..]
            .iter()
            .map(|&x| Itemset::new(vec![nodes[0], nodes[1], x]))
            .collect();
        // All-distinct prefixes: consecutive triples.
        let distinct: Vec<Itemset> = (0..nodes.len() - 2)
            .map(|i| Itemset::new(vec![nodes[i], nodes[i + 1], nodes[i + 2]]))
            .collect();
        // k = 2 and mixed-size batches.
        let pairs: Vec<Itemset> = (0..nodes.len() - 1)
            .map(|i| Itemset::pair(nodes[i], nodes[i + 1]))
            .collect();
        let mut mixed: Vec<Itemset> = Vec::new();
        mixed.push(Itemset::single(nodes[0]));
        mixed.extend(pairs.iter().cloned());
        mixed.extend(same_prefix.iter().cloned());
        mixed.sort_unstable();
        for batch in [&same_prefix, &distinct, &pairs, &mixed] {
            let expect = naive_tidset_counts(&view, 2, batch);
            for engine in [CountingEngine::Tidset, CountingEngine::Bitset] {
                let mut c = engine.make(&view);
                assert_eq!(
                    c.count_batch(2, batch),
                    expect,
                    "{} disagrees with the naive reference",
                    c.engine_name()
                );
            }
        }
    }

    /// Reuse accounting: one group of g same-prefix k=3 candidates costs
    /// one materialized prefix (k−2 = 1 intersection) plus one size-only
    /// intersection per member, and reports g−1 prefix reuses; the naive
    /// kernel would have charged g·(k−1).
    #[test]
    fn prefix_reuse_stats_accounting() {
        let tax = Taxonomy::uniform(3, 3, 2).unwrap();
        let leaves = tax.leaves().to_vec();
        let mut rng = Xoshiro256pp::seed_from_u64(0xACC1);
        let rows: Vec<Vec<NodeId>> = (0..120)
            .map(|_| {
                let w = rng.gen_range(3..=6);
                (0..w)
                    .map(|_| leaves[rng.gen_range(0..leaves.len())])
                    .collect()
            })
            .collect();
        let db = TransactionDb::new(rows).unwrap();
        let view = MultiLevelView::build(&db, &tax);
        let nodes = tax.nodes_at_level(2).unwrap().to_vec();
        let batch: Vec<Itemset> = nodes[2..]
            .iter()
            .map(|&x| Itemset::new(vec![nodes[0], nodes[1], x]))
            .collect();
        let g = batch.len() as u64;
        let mut tc = TidsetCounter::new(&view);
        tc.count_batch(2, &batch);
        assert_eq!(tc.stats().prefix_reuses, g - 1);
        // {n0, n1} co-occur in this dense random data, so the prefix is
        // non-empty and every member costs exactly one intersection.
        assert_eq!(tc.stats().intersections, 1 + g);
        // Pairs cache nothing: zero reuses, one intersection per pair.
        let mut tc = TidsetCounter::new(&view);
        tc.count_batch(
            2,
            &batch
                .iter()
                .map(|c| Itemset::pair(c.items()[0], c.items()[1]))
                .collect::<Vec<_>>(),
        );
        assert_eq!(tc.stats().prefix_reuses, 0);
    }

    /// Group-boundary sharding: stats (not just counts) are identical at
    /// every thread count even when the batch is dominated by one giant
    /// prefix group that an even candidate split would tear apart.
    #[test]
    fn group_sharding_keeps_stats_invariant_across_threads() {
        let tax = Taxonomy::uniform(3, 3, 2).unwrap();
        let leaves = tax.leaves().to_vec();
        let mut rng = Xoshiro256pp::seed_from_u64(0x51AB);
        let rows: Vec<Vec<NodeId>> = (0..150)
            .map(|_| {
                let w = rng.gen_range(2..=6);
                (0..w)
                    .map(|_| leaves[rng.gen_range(0..leaves.len())])
                    .collect()
            })
            .collect();
        let db = TransactionDb::new(rows).unwrap();
        let view = MultiLevelView::build(&db, &tax);
        let nodes = tax.nodes_at_level(2).unwrap().to_vec();
        // One giant same-prefix group followed by distinct-prefix filler,
        // repeated until well past the sharding cutoff.
        let mut batch: Vec<Itemset> = Vec::new();
        while batch.len() < 4 * MIN_SHARD_CANDIDATES {
            for &x in &nodes[2..] {
                batch.push(Itemset::new(vec![nodes[0], nodes[1], x]));
            }
            for i in 0..nodes.len() - 2 {
                batch.push(Itemset::new(vec![nodes[i], nodes[i + 1], nodes[i + 2]]));
            }
        }
        for engine in [CountingEngine::Tidset, CountingEngine::Bitset] {
            let mut seq = engine.make(&view);
            let expect = seq.count_batch(2, &batch);
            assert_eq!(expect, naive_tidset_counts(&view, 2, &batch));
            for threads in [2usize, 3, 5, 7] {
                let mut par = engine.make(&view);
                assert_eq!(par.count_batch_sharded(2, &batch, threads), expect);
                assert_eq!(
                    par.stats(),
                    seq.stats(),
                    "{} stats diverge at threads={threads}",
                    par.engine_name()
                );
            }
        }
    }

    /// Build a random view plus sorted k=3 and k=4 batches whose prefixes
    /// chain across columns ({n0,n1,·} then {n0,n1,n2,·}), the shape the
    /// miner's zigzag produces.
    fn cached_fixture() -> (Taxonomy, crate::transaction::TransactionDb) {
        let tax = Taxonomy::uniform(3, 3, 2).unwrap();
        let leaves = tax.leaves().to_vec();
        let mut rng = Xoshiro256pp::seed_from_u64(0xCAC4E);
        let rows: Vec<Vec<NodeId>> = (0..160)
            .map(|_| {
                let w = rng.gen_range(3..=6);
                (0..w)
                    .map(|_| leaves[rng.gen_range(0..leaves.len())])
                    .collect()
            })
            .collect();
        (tax, TransactionDb::new(rows).unwrap())
    }

    fn chained_batches(tax: &Taxonomy) -> (Vec<Itemset>, Vec<Itemset>) {
        let nodes = tax.nodes_at_level(2).unwrap().to_vec();
        let mut b3: Vec<Itemset> = Vec::new();
        for i in 0..nodes.len() {
            for j in i + 1..nodes.len() {
                for &x in &nodes[j + 1..] {
                    b3.push(Itemset::new(vec![nodes[i], nodes[j], x]));
                }
            }
        }
        b3.sort_unstable();
        let mut b4: Vec<Itemset> = nodes[3..]
            .iter()
            .map(|&x| Itemset::new(vec![nodes[0], nodes[1], nodes[2], x]))
            .collect();
        b4.sort_unstable();
        (b3, b4)
    }

    /// The tentpole invariant: cached counting is bit-identical — counts
    /// AND reported stats — to the uncached path for every vertical engine,
    /// thread count and cache budget, including budget 0 (degenerates to
    /// the uncached behavior) and cross-batch warm caches.
    #[test]
    fn cached_counting_matches_uncached_across_budgets_and_threads() {
        let (tax, db) = cached_fixture();
        let view = MultiLevelView::build(&db, &tax);
        let (b3, b4) = chained_batches(&tax);
        assert!(b3.len() >= MIN_SHARD_CANDIDATES, "exercise sharding");
        for engine in [
            CountingEngine::Tidset,
            CountingEngine::Bitset,
            CountingEngine::Auto,
        ] {
            let mut base = engine.make(&view);
            let expect3 = base.count_batch(2, &b3);
            let expect4 = base.count_batch(2, &b4);
            assert_eq!(expect3, naive_tidset_counts(&view, 2, &b3));
            assert_eq!(expect4, naive_tidset_counts(&view, 2, &b4));
            for threads in [1usize, 2, 7] {
                for budget in [0usize, 2048, usize::MAX] {
                    let mut cache = CellCache::new(budget);
                    let mut c = engine.make(&view);
                    let got3 = c.count_batch_cached(2, &b3, threads, &mut cache);
                    let got4 = c.count_batch_cached(2, &b4, threads, &mut cache);
                    assert_eq!(got3, expect3, "{engine:?} t={threads} b={budget}");
                    assert_eq!(got4, expect4, "{engine:?} t={threads} b={budget}");
                    assert_eq!(
                        c.stats(),
                        base.stats(),
                        "{engine:?} stats diverge at t={threads} b={budget}"
                    );
                }
            }
        }
    }

    /// Cache-efficiency accounting: a repeated batch exact-hits its
    /// prefixes, the next k-column parent-hits the prefixes the previous
    /// column materialized, and a zero budget records nothing.
    #[test]
    fn cross_cell_cache_hits_are_observable() {
        let (tax, db) = cached_fixture();
        let view = MultiLevelView::build(&db, &tax);
        let (b3, b4) = chained_batches(&tax);
        let mut cache = CellCache::new(usize::MAX);
        let mut tc = TidsetCounter::new(&view);
        tc.count_batch_cached(2, &b3, 1, &mut cache);
        let cold = cache.stats();
        assert!(cold.insertions > 0, "cold run populates the cache");
        assert_eq!(cold.exact_hits, 0);
        tc.count_batch_cached(2, &b3, 1, &mut cache);
        let warm = cache.stats();
        assert!(warm.exact_hits > 0, "repeated batch exact-hits");
        tc.count_batch_cached(2, &b4, 1, &mut cache);
        let next_col = cache.stats();
        assert!(
            next_col.parent_hits > 0,
            "k=4 prefixes extend the cached k=3 prefixes"
        );
        assert!(next_col.bytes_resident > 0);
        // Budget 0: nothing probed, nothing stored.
        let mut off = CellCache::disabled();
        let mut tc = TidsetCounter::new(&view);
        tc.count_batch_cached(2, &b3, 1, &mut off);
        assert_eq!(off.stats(), crate::cache::CacheStats::default());
    }

    #[test]
    fn item_queries_delegate_to_view() {
        let (tax, db) = toy();
        let view = MultiLevelView::build(&db, &tax);
        let c = TidsetCounter::new(&view);
        let a = tax.node_by_name("a").unwrap();
        assert_eq!(c.item_support(1, a), 8);
        assert_eq!(c.num_transactions(), 10);
        assert_eq!(c.present_items(1).len(), 2);
    }

    #[test]
    fn engine_names_and_parse() {
        let (tax, db) = toy();
        let view = MultiLevelView::build(&db, &tax);
        assert_eq!(CountingEngine::Tidset.make(&view).engine_name(), "tidset");
        assert_eq!(CountingEngine::Scan.make(&view).engine_name(), "scan");
        assert_eq!(CountingEngine::Bitset.make(&view).engine_name(), "bitset");
        assert_eq!(CountingEngine::Auto.make(&view).engine_name(), "auto");
        for (name, engine) in [
            ("tidset", CountingEngine::Tidset),
            ("scan", CountingEngine::Scan),
            ("bitset", CountingEngine::Bitset),
            ("auto", CountingEngine::Auto),
        ] {
            assert_eq!(CountingEngine::parse(name), Some(engine));
            assert_eq!(engine.name(), name, "name() is the inverse of parse");
        }
        assert_eq!(CountingEngine::parse("nope"), None);
    }

    /// Random DBs over a uniform taxonomy: engines must agree with the
    /// naive reference count for random candidate itemsets at every level.
    #[test]
    fn engines_agree_with_reference_on_random_dbs() {
        let tax = Taxonomy::uniform(3, 2, 3).unwrap();
        let leaves = tax.leaves().to_vec();
        let mut rng = Xoshiro256pp::seed_from_u64(42);
        for _ in 0..10 {
            let rows: Vec<Vec<NodeId>> = (0..50)
                .map(|_| {
                    let w = rng.gen_range(1..=5);
                    (0..w)
                        .map(|_| leaves[rng.gen_range(0..leaves.len())])
                        .collect()
                })
                .collect();
            let db = TransactionDb::new(rows).unwrap();
            let view = MultiLevelView::build(&db, &tax);
            for h in 1..=3 {
                let nodes = tax.nodes_at_level(h).unwrap();
                let mut cands = Vec::new();
                for i in 0..nodes.len().min(4) {
                    for j in (i + 1)..nodes.len().min(5) {
                        cands.push(Itemset::pair(nodes[i], nodes[j]));
                    }
                }
                let mut tc = TidsetCounter::new(&view);
                let mut sc = ScanCounter::new(&view);
                let t = tc.count_batch(h, &cands);
                let s = sc.count_batch(h, &cands);
                assert_eq!(t, s, "engines disagree at level {h}");
                // Reference: project and scan.
                for (c, &sup) in cands.iter().zip(&t) {
                    let reference = view
                        .level(h)
                        .transactions()
                        .filter(|txn| c.items().iter().all(|it| txn.contains(it)))
                        .count() as u64;
                    assert_eq!(sup, reference, "level {h} {c}");
                }
            }
        }
    }

    /// Support of any pair is bounded by the min of item supports, and
    /// monotone under generalization (an ancestor pair's support
    /// dominates the leaf pair's support).
    ///
    /// Ported from a 256-case proptest drawing `seed in 0u64..500`; a fixed
    /// sweep of 256 seeds keeps the case count deterministically. (The
    /// retired `prop_assume!(p0 != p1)` is now an assert: the first and last
    /// leaves of a 2-root uniform taxonomy always sit under different roots.)
    #[test]
    fn generalization_monotonicity() {
        for seed in 0..256u64 {
            let tax = Taxonomy::uniform(2, 2, 2).unwrap();
            let leaves = tax.leaves().to_vec();
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            let rows: Vec<Vec<NodeId>> = (0..30)
                .map(|_| {
                    let w = rng.gen_range(1..=4);
                    (0..w)
                        .map(|_| leaves[rng.gen_range(0..leaves.len())])
                        .collect()
                })
                .collect();
            let db = TransactionDb::new(rows).unwrap();
            let view = MultiLevelView::build(&db, &tax);
            let mut c = TidsetCounter::new(&view);
            // A cross-category leaf pair and its level-1 generalization.
            let l0 = leaves[0];
            let l1 = *leaves.last().unwrap();
            let p0 = tax.ancestor_at_level(l0, 1).unwrap();
            let p1 = tax.ancestor_at_level(l1, 1).unwrap();
            assert_ne!(p0, p1, "cross-root leaves must generalize differently");
            let leaf_sup = c.count_batch(2, &[Itemset::pair(l0, l1)])[0];
            let gen_sup = c.count_batch(1, &[Itemset::pair(p0, p1)])[0];
            assert!(gen_sup >= leaf_sup, "seed {seed}");
            assert!(leaf_sup <= view.level(2).item_support(l0), "seed {seed}");
        }
    }
}
