//! Sorted, duplicate-free itemsets and the Apriori-style operations on them.

use flipper_taxonomy::NodeId;
use std::fmt;

/// A set of items (taxonomy nodes), stored sorted and duplicate-free.
///
/// The sorted representation makes equality, hashing, subset tests and the
/// Apriori prefix-join cheap, and gives every itemset a canonical form so
/// result sets are deterministic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Itemset(Vec<NodeId>);

impl Itemset {
    /// Build from an arbitrary item collection: sorts and deduplicates.
    pub fn new(mut items: Vec<NodeId>) -> Self {
        items.sort_unstable();
        items.dedup();
        Itemset(items)
    }

    /// Build from items already sorted and unique.
    ///
    /// # Panics
    /// Debug-panics if the input is not strictly increasing.
    pub fn from_sorted(items: Vec<NodeId>) -> Self {
        debug_assert!(
            items.windows(2).all(|w| w[0] < w[1]),
            "items must be strictly increasing"
        );
        Itemset(items)
    }

    /// A 1-itemset.
    pub fn single(item: NodeId) -> Self {
        Itemset(vec![item])
    }

    /// A 2-itemset from two distinct items.
    pub fn pair(a: NodeId, b: NodeId) -> Self {
        assert_ne!(a, b, "a pair needs two distinct items");
        if a < b {
            Itemset(vec![a, b])
        } else {
            Itemset(vec![b, a])
        }
    }

    /// Number of items, `k`.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the itemset has no items.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The items, sorted ascending.
    #[inline]
    pub fn items(&self) -> &[NodeId] {
        &self.0
    }

    /// Whether `item` is a member (binary search).
    #[inline]
    pub fn contains(&self, item: NodeId) -> bool {
        self.0.binary_search(&item).is_ok()
    }

    /// Whether `self ⊆ other`, both sorted (linear merge).
    pub fn is_subset_of(&self, other: &Itemset) -> bool {
        is_sorted_subset(&self.0, &other.0)
    }

    /// The `(k−1)`-subset omitting position `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn without_index(&self, i: usize) -> Itemset {
        let mut v = self.0.clone();
        v.remove(i);
        Itemset(v)
    }

    /// All `(k−1)`-subsets, in omitted-position order.
    pub fn subsets_k_minus_1(&self) -> impl Iterator<Item = Itemset> + '_ {
        (0..self.0.len()).map(|i| self.without_index(i))
    }

    /// Itemset with `item` inserted (no-op clone if already present).
    pub fn with_item(&self, item: NodeId) -> Itemset {
        match self.0.binary_search(&item) {
            Ok(_) => self.clone(),
            Err(pos) => {
                let mut v = self.0.clone();
                v.insert(pos, item);
                Itemset(v)
            }
        }
    }

    /// Apriori prefix join: if `self` and `other` are k-itemsets sharing
    /// their first `k−1` items, returns the `(k+1)`-itemset uniting them.
    ///
    /// Both inputs must have equal length ≥ 1. Returns `None` when the
    /// prefixes differ or the last items are equal.
    pub fn apriori_join(&self, other: &Itemset) -> Option<Itemset> {
        let k = self.0.len();
        if k == 0 || other.0.len() != k {
            return None;
        }
        if self.0[..k - 1] != other.0[..k - 1] {
            return None;
        }
        let (a, b) = (self.0[k - 1], other.0[k - 1]);
        if a == b {
            return None;
        }
        let mut v = self.0.clone();
        if a < b {
            v.push(b);
        } else {
            v.insert(k - 1, b);
        }
        Some(Itemset(v))
    }

    /// Map each item through `f`, re-canonicalizing (useful for
    /// generalization: items may collapse, shrinking the set).
    pub fn map<F: FnMut(NodeId) -> NodeId>(&self, f: F) -> Itemset {
        Itemset::new(self.0.iter().copied().map(f).collect())
    }

    /// Render with node names from `tax`, e.g. `{beer, diapers}`.
    pub fn display<'a>(&'a self, tax: &'a flipper_taxonomy::Taxonomy) -> DisplayItemset<'a> {
        DisplayItemset { set: self, tax }
    }
}

impl FromIterator<NodeId> for Itemset {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        Itemset::new(iter.into_iter().collect())
    }
}

impl fmt::Display for Itemset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, item) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{item}")?;
        }
        f.write_str("}")
    }
}

/// Named rendering of an itemset (see [`Itemset::display`]).
pub struct DisplayItemset<'a> {
    set: &'a Itemset,
    tax: &'a flipper_taxonomy::Taxonomy,
}

impl fmt::Display for DisplayItemset<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, &item) in self.set.items().iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(self.tax.name(item))?;
        }
        f.write_str("}")
    }
}

/// Subset test on two sorted slices.
pub(crate) fn is_sorted_subset(sub: &[NodeId], sup: &[NodeId]) -> bool {
    if sub.len() > sup.len() {
        return false;
    }
    let mut j = 0;
    for &x in sub {
        loop {
            if j == sup.len() {
                return false;
            }
            match sup[j].cmp(&x) {
                std::cmp::Ordering::Less => j += 1,
                std::cmp::Ordering::Equal => {
                    j += 1;
                    break;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::from_index(i as usize)
    }

    #[test]
    fn new_sorts_and_dedups() {
        let s = Itemset::new(vec![n(3), n(1), n(3), n(2)]);
        assert_eq!(s.items(), &[n(1), n(2), n(3)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn pair_orders_and_rejects_equal() {
        assert_eq!(Itemset::pair(n(5), n(2)).items(), &[n(2), n(5)]);
        let r = std::panic::catch_unwind(|| Itemset::pair(n(5), n(5)));
        assert!(r.is_err());
    }

    #[test]
    fn contains_and_subset() {
        let s = Itemset::new(vec![n(1), n(3), n(5)]);
        assert!(s.contains(n(3)));
        assert!(!s.contains(n(2)));
        let big = Itemset::new(vec![n(1), n(2), n(3), n(4), n(5)]);
        assert!(s.is_subset_of(&big));
        assert!(!big.is_subset_of(&s));
        assert!(s.is_subset_of(&s));
        assert!(Itemset::new(vec![]).is_subset_of(&s));
    }

    #[test]
    fn k_minus_1_subsets() {
        let s = Itemset::new(vec![n(1), n(2), n(3)]);
        let subs: Vec<Itemset> = s.subsets_k_minus_1().collect();
        assert_eq!(subs.len(), 3);
        assert!(subs.contains(&Itemset::new(vec![n(2), n(3)])));
        assert!(subs.contains(&Itemset::new(vec![n(1), n(3)])));
        assert!(subs.contains(&Itemset::new(vec![n(1), n(2)])));
    }

    #[test]
    fn apriori_join_rules() {
        let ab = Itemset::new(vec![n(1), n(2)]);
        let ac = Itemset::new(vec![n(1), n(3)]);
        let bc = Itemset::new(vec![n(2), n(3)]);
        assert_eq!(ab.apriori_join(&ac).unwrap().items(), &[n(1), n(2), n(3)]);
        // Reversed order still canonical.
        assert_eq!(ac.apriori_join(&ab).unwrap().items(), &[n(1), n(2), n(3)]);
        // Different prefixes don't join.
        assert!(ab.apriori_join(&bc).is_none());
        // Identical last items don't join.
        assert!(ab.apriori_join(&ab).is_none());
        // Length mismatch.
        assert!(ab.apriori_join(&Itemset::single(n(9))).is_none());
    }

    #[test]
    fn with_item_inserts_in_place() {
        let s = Itemset::new(vec![n(1), n(5)]);
        assert_eq!(s.with_item(n(3)).items(), &[n(1), n(3), n(5)]);
        assert_eq!(s.with_item(n(5)).items(), &[n(1), n(5)]);
    }

    #[test]
    fn map_collapses_duplicates() {
        // Generalizing sibling leaves to a shared parent shrinks the set.
        let s = Itemset::new(vec![n(10), n(11)]);
        let g = s.map(|_| n(2));
        assert_eq!(g.items(), &[n(2)]);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn display_plain() {
        let s = Itemset::new(vec![n(1), n(2)]);
        assert_eq!(s.to_string(), "{n1, n2}");
    }

    #[test]
    fn from_iterator() {
        let s: Itemset = [n(4), n(1), n(4)].into_iter().collect();
        assert_eq!(s.items(), &[n(1), n(4)]);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Itemset::new(vec![n(1), n(2)]);
        let b = Itemset::new(vec![n(1), n(3)]);
        let c = Itemset::new(vec![n(2)]);
        assert!(a < b);
        assert!(a < c); // n1 < n2 decides before length
    }
}
